file(REMOVE_RECURSE
  "CMakeFiles/fig5_config_dependence.dir/fig5_config_dependence.cc.o"
  "CMakeFiles/fig5_config_dependence.dir/fig5_config_dependence.cc.o.d"
  "fig5_config_dependence"
  "fig5_config_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_config_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
