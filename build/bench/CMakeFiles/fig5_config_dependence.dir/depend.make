# Empty dependencies file for fig5_config_dependence.
# This may be replaced when dependencies are built.
