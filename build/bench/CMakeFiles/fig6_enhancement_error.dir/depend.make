# Empty dependencies file for fig6_enhancement_error.
# This may be replaced when dependencies are built.
