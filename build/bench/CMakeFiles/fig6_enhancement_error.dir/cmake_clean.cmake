file(REMOVE_RECURSE
  "CMakeFiles/fig6_enhancement_error.dir/fig6_enhancement_error.cc.o"
  "CMakeFiles/fig6_enhancement_error.dir/fig6_enhancement_error.cc.o.d"
  "fig6_enhancement_error"
  "fig6_enhancement_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_enhancement_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
