# Empty compiler generated dependencies file for ablate_random_sampling.
# This may be replaced when dependencies are built.
