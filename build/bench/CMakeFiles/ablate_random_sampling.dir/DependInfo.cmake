
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_random_sampling.cc" "bench/CMakeFiles/ablate_random_sampling.dir/ablate_random_sampling.cc.o" "gcc" "bench/CMakeFiles/ablate_random_sampling.dir/ablate_random_sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/yasim_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/yasim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/techniques/CMakeFiles/yasim_techniques.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/yasim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/yasim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/yasim_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/yasim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/yasim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/yasim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
