file(REMOVE_RECURSE
  "CMakeFiles/ablate_random_sampling.dir/ablate_random_sampling.cc.o"
  "CMakeFiles/ablate_random_sampling.dir/ablate_random_sampling.cc.o.d"
  "ablate_random_sampling"
  "ablate_random_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_random_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
