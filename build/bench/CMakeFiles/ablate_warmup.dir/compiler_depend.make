# Empty compiler generated dependencies file for ablate_warmup.
# This may be replaced when dependencies are built.
