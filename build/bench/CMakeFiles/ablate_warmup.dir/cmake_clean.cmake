file(REMOVE_RECURSE
  "CMakeFiles/ablate_warmup.dir/ablate_warmup.cc.o"
  "CMakeFiles/ablate_warmup.dir/ablate_warmup.cc.o.d"
  "ablate_warmup"
  "ablate_warmup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
