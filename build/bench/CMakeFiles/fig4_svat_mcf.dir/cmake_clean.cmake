file(REMOVE_RECURSE
  "CMakeFiles/fig4_svat_mcf.dir/fig4_svat_mcf.cc.o"
  "CMakeFiles/fig4_svat_mcf.dir/fig4_svat_mcf.cc.o.d"
  "fig4_svat_mcf"
  "fig4_svat_mcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_svat_mcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
