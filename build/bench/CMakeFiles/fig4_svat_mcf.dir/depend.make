# Empty dependencies file for fig4_svat_mcf.
# This may be replaced when dependencies are built.
