# Empty dependencies file for ablate_pb_foldover.
# This may be replaced when dependencies are built.
