file(REMOVE_RECURSE
  "CMakeFiles/ablate_pb_foldover.dir/ablate_pb_foldover.cc.o"
  "CMakeFiles/ablate_pb_foldover.dir/ablate_pb_foldover.cc.o.d"
  "ablate_pb_foldover"
  "ablate_pb_foldover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_pb_foldover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
