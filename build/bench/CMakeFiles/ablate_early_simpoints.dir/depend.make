# Empty dependencies file for ablate_early_simpoints.
# This may be replaced when dependencies are built.
