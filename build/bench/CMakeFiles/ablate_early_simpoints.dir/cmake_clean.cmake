file(REMOVE_RECURSE
  "CMakeFiles/ablate_early_simpoints.dir/ablate_early_simpoints.cc.o"
  "CMakeFiles/ablate_early_simpoints.dir/ablate_early_simpoints.cc.o.d"
  "ablate_early_simpoints"
  "ablate_early_simpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_early_simpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
