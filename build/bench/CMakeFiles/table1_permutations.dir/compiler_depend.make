# Empty compiler generated dependencies file for table1_permutations.
# This may be replaced when dependencies are built.
