file(REMOVE_RECURSE
  "CMakeFiles/table1_permutations.dir/table1_permutations.cc.o"
  "CMakeFiles/table1_permutations.dir/table1_permutations.cc.o.d"
  "table1_permutations"
  "table1_permutations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_permutations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
