file(REMOVE_RECURSE
  "CMakeFiles/ablate_uarch_variants.dir/ablate_uarch_variants.cc.o"
  "CMakeFiles/ablate_uarch_variants.dir/ablate_uarch_variants.cc.o.d"
  "ablate_uarch_variants"
  "ablate_uarch_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_uarch_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
