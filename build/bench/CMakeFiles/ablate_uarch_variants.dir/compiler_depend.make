# Empty compiler generated dependencies file for ablate_uarch_variants.
# This may be replaced when dependencies are built.
