file(REMOVE_RECURSE
  "CMakeFiles/fig2_simpoint_smarts.dir/fig2_simpoint_smarts.cc.o"
  "CMakeFiles/fig2_simpoint_smarts.dir/fig2_simpoint_smarts.cc.o.d"
  "fig2_simpoint_smarts"
  "fig2_simpoint_smarts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_simpoint_smarts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
