# Empty dependencies file for fig2_simpoint_smarts.
# This may be replaced when dependencies are built.
