file(REMOVE_RECURSE
  "CMakeFiles/fig1_pb_distance.dir/fig1_pb_distance.cc.o"
  "CMakeFiles/fig1_pb_distance.dir/fig1_pb_distance.cc.o.d"
  "fig1_pb_distance"
  "fig1_pb_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_pb_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
