# Empty dependencies file for fig1_pb_distance.
# This may be replaced when dependencies are built.
