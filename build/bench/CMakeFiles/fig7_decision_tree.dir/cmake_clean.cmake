file(REMOVE_RECURSE
  "CMakeFiles/fig7_decision_tree.dir/fig7_decision_tree.cc.o"
  "CMakeFiles/fig7_decision_tree.dir/fig7_decision_tree.cc.o.d"
  "fig7_decision_tree"
  "fig7_decision_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_decision_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
