# Empty compiler generated dependencies file for fig7_decision_tree.
# This may be replaced when dependencies are built.
