# Empty dependencies file for table_similarity.
# This may be replaced when dependencies are built.
