file(REMOVE_RECURSE
  "CMakeFiles/table_similarity.dir/table_similarity.cc.o"
  "CMakeFiles/table_similarity.dir/table_similarity.cc.o.d"
  "table_similarity"
  "table_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
