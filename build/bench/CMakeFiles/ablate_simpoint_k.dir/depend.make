# Empty dependencies file for ablate_simpoint_k.
# This may be replaced when dependencies are built.
