file(REMOVE_RECURSE
  "CMakeFiles/ablate_simpoint_k.dir/ablate_simpoint_k.cc.o"
  "CMakeFiles/ablate_simpoint_k.dir/ablate_simpoint_k.cc.o.d"
  "ablate_simpoint_k"
  "ablate_simpoint_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_simpoint_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
