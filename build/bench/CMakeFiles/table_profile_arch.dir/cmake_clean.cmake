file(REMOVE_RECURSE
  "CMakeFiles/table_profile_arch.dir/table_profile_arch.cc.o"
  "CMakeFiles/table_profile_arch.dir/table_profile_arch.cc.o.d"
  "table_profile_arch"
  "table_profile_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_profile_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
