# Empty dependencies file for table_profile_arch.
# This may be replaced when dependencies are built.
