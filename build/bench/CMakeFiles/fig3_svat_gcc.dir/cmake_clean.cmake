file(REMOVE_RECURSE
  "CMakeFiles/fig3_svat_gcc.dir/fig3_svat_gcc.cc.o"
  "CMakeFiles/fig3_svat_gcc.dir/fig3_svat_gcc.cc.o.d"
  "fig3_svat_gcc"
  "fig3_svat_gcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_svat_gcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
