# Empty compiler generated dependencies file for fig3_svat_gcc.
# This may be replaced when dependencies are built.
