# Empty dependencies file for table_prevalence.
# This may be replaced when dependencies are built.
