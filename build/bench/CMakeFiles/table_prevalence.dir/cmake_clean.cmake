file(REMOVE_RECURSE
  "CMakeFiles/table_prevalence.dir/table_prevalence.cc.o"
  "CMakeFiles/table_prevalence.dir/table_prevalence.cc.o.d"
  "table_prevalence"
  "table_prevalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_prevalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
