file(REMOVE_RECURSE
  "CMakeFiles/ablate_smarts_uw.dir/ablate_smarts_uw.cc.o"
  "CMakeFiles/ablate_smarts_uw.dir/ablate_smarts_uw.cc.o.d"
  "ablate_smarts_uw"
  "ablate_smarts_uw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_smarts_uw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
