# Empty dependencies file for ablate_smarts_uw.
# This may be replaced when dependencies are built.
