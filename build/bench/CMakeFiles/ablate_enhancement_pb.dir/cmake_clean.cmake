file(REMOVE_RECURSE
  "CMakeFiles/ablate_enhancement_pb.dir/ablate_enhancement_pb.cc.o"
  "CMakeFiles/ablate_enhancement_pb.dir/ablate_enhancement_pb.cc.o.d"
  "ablate_enhancement_pb"
  "ablate_enhancement_pb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_enhancement_pb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
