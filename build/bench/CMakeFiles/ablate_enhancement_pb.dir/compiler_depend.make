# Empty compiler generated dependencies file for ablate_enhancement_pb.
# This may be replaced when dependencies are built.
