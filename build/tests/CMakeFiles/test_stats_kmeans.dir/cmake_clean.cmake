file(REMOVE_RECURSE
  "CMakeFiles/test_stats_kmeans.dir/test_stats_kmeans.cc.o"
  "CMakeFiles/test_stats_kmeans.dir/test_stats_kmeans.cc.o.d"
  "test_stats_kmeans"
  "test_stats_kmeans.pdb"
  "test_stats_kmeans[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
