# Empty dependencies file for test_characterizations.
# This may be replaced when dependencies are built.
