file(REMOVE_RECURSE
  "CMakeFiles/test_characterizations.dir/test_characterizations.cc.o"
  "CMakeFiles/test_characterizations.dir/test_characterizations.cc.o.d"
  "test_characterizations"
  "test_characterizations.pdb"
  "test_characterizations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_characterizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
