# Empty dependencies file for test_uarch_cache.
# This may be replaced when dependencies are built.
