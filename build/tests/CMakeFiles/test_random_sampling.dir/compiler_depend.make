# Empty compiler generated dependencies file for test_random_sampling.
# This may be replaced when dependencies are built.
