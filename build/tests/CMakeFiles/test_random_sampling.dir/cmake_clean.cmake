file(REMOVE_RECURSE
  "CMakeFiles/test_random_sampling.dir/test_random_sampling.cc.o"
  "CMakeFiles/test_random_sampling.dir/test_random_sampling.cc.o.d"
  "test_random_sampling"
  "test_random_sampling.pdb"
  "test_random_sampling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
