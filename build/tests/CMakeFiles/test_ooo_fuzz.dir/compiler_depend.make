# Empty compiler generated dependencies file for test_ooo_fuzz.
# This may be replaced when dependencies are built.
