file(REMOVE_RECURSE
  "CMakeFiles/test_ooo_fuzz.dir/test_ooo_fuzz.cc.o"
  "CMakeFiles/test_ooo_fuzz.dir/test_ooo_fuzz.cc.o.d"
  "test_ooo_fuzz"
  "test_ooo_fuzz.pdb"
  "test_ooo_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ooo_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
