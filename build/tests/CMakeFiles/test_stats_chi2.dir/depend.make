# Empty dependencies file for test_stats_chi2.
# This may be replaced when dependencies are built.
