file(REMOVE_RECURSE
  "CMakeFiles/test_stats_pb.dir/test_stats_pb.cc.o"
  "CMakeFiles/test_stats_pb.dir/test_stats_pb.cc.o.d"
  "test_stats_pb"
  "test_stats_pb.pdb"
  "test_stats_pb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_pb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
