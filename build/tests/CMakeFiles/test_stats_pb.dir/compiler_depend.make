# Empty compiler generated dependencies file for test_stats_pb.
# This may be replaced when dependencies are built.
