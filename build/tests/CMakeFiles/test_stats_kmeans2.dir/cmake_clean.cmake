file(REMOVE_RECURSE
  "CMakeFiles/test_stats_kmeans2.dir/test_stats_kmeans2.cc.o"
  "CMakeFiles/test_stats_kmeans2.dir/test_stats_kmeans2.cc.o.d"
  "test_stats_kmeans2"
  "test_stats_kmeans2.pdb"
  "test_stats_kmeans2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_kmeans2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
