# Empty dependencies file for test_stats_kmeans2.
# This may be replaced when dependencies are built.
