# Empty dependencies file for test_uarch_bp.
# This may be replaced when dependencies are built.
