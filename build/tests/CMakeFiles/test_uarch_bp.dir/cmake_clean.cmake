file(REMOVE_RECURSE
  "CMakeFiles/test_uarch_bp.dir/test_uarch_bp.cc.o"
  "CMakeFiles/test_uarch_bp.dir/test_uarch_bp.cc.o.d"
  "test_uarch_bp"
  "test_uarch_bp.pdb"
  "test_uarch_bp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch_bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
