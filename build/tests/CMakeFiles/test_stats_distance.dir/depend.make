# Empty dependencies file for test_stats_distance.
# This may be replaced when dependencies are built.
