file(REMOVE_RECURSE
  "CMakeFiles/test_stats_distance.dir/test_stats_distance.cc.o"
  "CMakeFiles/test_stats_distance.dir/test_stats_distance.cc.o.d"
  "test_stats_distance"
  "test_stats_distance.pdb"
  "test_stats_distance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
