# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_stats_summary[1]_include.cmake")
include("/root/repo/build/tests/test_stats_distance[1]_include.cmake")
include("/root/repo/build/tests/test_stats_chi2[1]_include.cmake")
include("/root/repo/build/tests/test_stats_pb[1]_include.cmake")
include("/root/repo/build/tests/test_stats_kmeans[1]_include.cmake")
include("/root/repo/build/tests/test_stats_histogram[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_functional[1]_include.cmake")
include("/root/repo/build/tests/test_uarch_bp[1]_include.cmake")
include("/root/repo/build/tests/test_uarch_cache[1]_include.cmake")
include("/root/repo/build/tests/test_memory_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_ooo_core[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_techniques[1]_include.cmake")
include("/root/repo/build/tests/test_characterizations[1]_include.cmake")
include("/root/repo/build/tests/test_options[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_random_sampling[1]_include.cmake")
include("/root/repo/build/tests/test_similarity[1]_include.cmake")
include("/root/repo/build/tests/test_sim_config[1]_include.cmake")
include("/root/repo/build/tests/test_stats_kmeans2[1]_include.cmake")
include("/root/repo/build/tests/test_ooo_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
