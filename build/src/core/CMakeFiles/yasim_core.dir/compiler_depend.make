# Empty compiler generated dependencies file for yasim_core.
# This may be replaced when dependencies are built.
