file(REMOVE_RECURSE
  "CMakeFiles/yasim_core.dir/arch_characterization.cc.o"
  "CMakeFiles/yasim_core.dir/arch_characterization.cc.o.d"
  "CMakeFiles/yasim_core.dir/config_dependence.cc.o"
  "CMakeFiles/yasim_core.dir/config_dependence.cc.o.d"
  "CMakeFiles/yasim_core.dir/decision_tree.cc.o"
  "CMakeFiles/yasim_core.dir/decision_tree.cc.o.d"
  "CMakeFiles/yasim_core.dir/enhancement_pb.cc.o"
  "CMakeFiles/yasim_core.dir/enhancement_pb.cc.o.d"
  "CMakeFiles/yasim_core.dir/enhancement_study.cc.o"
  "CMakeFiles/yasim_core.dir/enhancement_study.cc.o.d"
  "CMakeFiles/yasim_core.dir/options.cc.o"
  "CMakeFiles/yasim_core.dir/options.cc.o.d"
  "CMakeFiles/yasim_core.dir/pb_characterization.cc.o"
  "CMakeFiles/yasim_core.dir/pb_characterization.cc.o.d"
  "CMakeFiles/yasim_core.dir/profile_characterization.cc.o"
  "CMakeFiles/yasim_core.dir/profile_characterization.cc.o.d"
  "CMakeFiles/yasim_core.dir/similarity.cc.o"
  "CMakeFiles/yasim_core.dir/similarity.cc.o.d"
  "CMakeFiles/yasim_core.dir/survey.cc.o"
  "CMakeFiles/yasim_core.dir/survey.cc.o.d"
  "CMakeFiles/yasim_core.dir/svat_analysis.cc.o"
  "CMakeFiles/yasim_core.dir/svat_analysis.cc.o.d"
  "libyasim_core.a"
  "libyasim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yasim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
