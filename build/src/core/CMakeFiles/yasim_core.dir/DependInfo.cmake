
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arch_characterization.cc" "src/core/CMakeFiles/yasim_core.dir/arch_characterization.cc.o" "gcc" "src/core/CMakeFiles/yasim_core.dir/arch_characterization.cc.o.d"
  "/root/repo/src/core/config_dependence.cc" "src/core/CMakeFiles/yasim_core.dir/config_dependence.cc.o" "gcc" "src/core/CMakeFiles/yasim_core.dir/config_dependence.cc.o.d"
  "/root/repo/src/core/decision_tree.cc" "src/core/CMakeFiles/yasim_core.dir/decision_tree.cc.o" "gcc" "src/core/CMakeFiles/yasim_core.dir/decision_tree.cc.o.d"
  "/root/repo/src/core/enhancement_pb.cc" "src/core/CMakeFiles/yasim_core.dir/enhancement_pb.cc.o" "gcc" "src/core/CMakeFiles/yasim_core.dir/enhancement_pb.cc.o.d"
  "/root/repo/src/core/enhancement_study.cc" "src/core/CMakeFiles/yasim_core.dir/enhancement_study.cc.o" "gcc" "src/core/CMakeFiles/yasim_core.dir/enhancement_study.cc.o.d"
  "/root/repo/src/core/options.cc" "src/core/CMakeFiles/yasim_core.dir/options.cc.o" "gcc" "src/core/CMakeFiles/yasim_core.dir/options.cc.o.d"
  "/root/repo/src/core/pb_characterization.cc" "src/core/CMakeFiles/yasim_core.dir/pb_characterization.cc.o" "gcc" "src/core/CMakeFiles/yasim_core.dir/pb_characterization.cc.o.d"
  "/root/repo/src/core/profile_characterization.cc" "src/core/CMakeFiles/yasim_core.dir/profile_characterization.cc.o" "gcc" "src/core/CMakeFiles/yasim_core.dir/profile_characterization.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/yasim_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/yasim_core.dir/similarity.cc.o.d"
  "/root/repo/src/core/survey.cc" "src/core/CMakeFiles/yasim_core.dir/survey.cc.o" "gcc" "src/core/CMakeFiles/yasim_core.dir/survey.cc.o.d"
  "/root/repo/src/core/svat_analysis.cc" "src/core/CMakeFiles/yasim_core.dir/svat_analysis.cc.o" "gcc" "src/core/CMakeFiles/yasim_core.dir/svat_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/techniques/CMakeFiles/yasim_techniques.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/yasim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/yasim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/yasim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/yasim_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/yasim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/yasim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
