file(REMOVE_RECURSE
  "libyasim_core.a"
)
