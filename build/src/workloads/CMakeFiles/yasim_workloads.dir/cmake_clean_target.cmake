file(REMOVE_RECURSE
  "libyasim_workloads.a"
)
