# Empty dependencies file for yasim_workloads.
# This may be replaced when dependencies are built.
