file(REMOVE_RECURSE
  "CMakeFiles/yasim_workloads.dir/bench_art.cc.o"
  "CMakeFiles/yasim_workloads.dir/bench_art.cc.o.d"
  "CMakeFiles/yasim_workloads.dir/bench_bzip2.cc.o"
  "CMakeFiles/yasim_workloads.dir/bench_bzip2.cc.o.d"
  "CMakeFiles/yasim_workloads.dir/bench_equake.cc.o"
  "CMakeFiles/yasim_workloads.dir/bench_equake.cc.o.d"
  "CMakeFiles/yasim_workloads.dir/bench_gcc.cc.o"
  "CMakeFiles/yasim_workloads.dir/bench_gcc.cc.o.d"
  "CMakeFiles/yasim_workloads.dir/bench_gzip.cc.o"
  "CMakeFiles/yasim_workloads.dir/bench_gzip.cc.o.d"
  "CMakeFiles/yasim_workloads.dir/bench_mcf.cc.o"
  "CMakeFiles/yasim_workloads.dir/bench_mcf.cc.o.d"
  "CMakeFiles/yasim_workloads.dir/bench_perlbmk.cc.o"
  "CMakeFiles/yasim_workloads.dir/bench_perlbmk.cc.o.d"
  "CMakeFiles/yasim_workloads.dir/bench_vortex.cc.o"
  "CMakeFiles/yasim_workloads.dir/bench_vortex.cc.o.d"
  "CMakeFiles/yasim_workloads.dir/bench_vpr.cc.o"
  "CMakeFiles/yasim_workloads.dir/bench_vpr.cc.o.d"
  "CMakeFiles/yasim_workloads.dir/builder_util.cc.o"
  "CMakeFiles/yasim_workloads.dir/builder_util.cc.o.d"
  "CMakeFiles/yasim_workloads.dir/suite.cc.o"
  "CMakeFiles/yasim_workloads.dir/suite.cc.o.d"
  "libyasim_workloads.a"
  "libyasim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yasim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
