
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bench_art.cc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_art.cc.o" "gcc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_art.cc.o.d"
  "/root/repo/src/workloads/bench_bzip2.cc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_bzip2.cc.o" "gcc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_bzip2.cc.o.d"
  "/root/repo/src/workloads/bench_equake.cc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_equake.cc.o" "gcc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_equake.cc.o.d"
  "/root/repo/src/workloads/bench_gcc.cc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_gcc.cc.o" "gcc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_gcc.cc.o.d"
  "/root/repo/src/workloads/bench_gzip.cc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_gzip.cc.o" "gcc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_gzip.cc.o.d"
  "/root/repo/src/workloads/bench_mcf.cc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_mcf.cc.o" "gcc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_mcf.cc.o.d"
  "/root/repo/src/workloads/bench_perlbmk.cc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_perlbmk.cc.o" "gcc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_perlbmk.cc.o.d"
  "/root/repo/src/workloads/bench_vortex.cc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_vortex.cc.o" "gcc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_vortex.cc.o.d"
  "/root/repo/src/workloads/bench_vpr.cc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_vpr.cc.o" "gcc" "src/workloads/CMakeFiles/yasim_workloads.dir/bench_vpr.cc.o.d"
  "/root/repo/src/workloads/builder_util.cc" "src/workloads/CMakeFiles/yasim_workloads.dir/builder_util.cc.o" "gcc" "src/workloads/CMakeFiles/yasim_workloads.dir/builder_util.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/workloads/CMakeFiles/yasim_workloads.dir/suite.cc.o" "gcc" "src/workloads/CMakeFiles/yasim_workloads.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/yasim_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/yasim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/yasim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/yasim_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/yasim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
