# Empty dependencies file for yasim_engine.
# This may be replaced when dependencies are built.
