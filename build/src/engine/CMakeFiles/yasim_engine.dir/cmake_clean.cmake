file(REMOVE_RECURSE
  "CMakeFiles/yasim_engine.dir/bench_driver.cc.o"
  "CMakeFiles/yasim_engine.dir/bench_driver.cc.o.d"
  "CMakeFiles/yasim_engine.dir/cache_key.cc.o"
  "CMakeFiles/yasim_engine.dir/cache_key.cc.o.d"
  "CMakeFiles/yasim_engine.dir/engine.cc.o"
  "CMakeFiles/yasim_engine.dir/engine.cc.o.d"
  "CMakeFiles/yasim_engine.dir/result_io.cc.o"
  "CMakeFiles/yasim_engine.dir/result_io.cc.o.d"
  "libyasim_engine.a"
  "libyasim_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yasim_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
