file(REMOVE_RECURSE
  "libyasim_engine.a"
)
