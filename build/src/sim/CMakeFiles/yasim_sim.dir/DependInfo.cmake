
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bb_profiler.cc" "src/sim/CMakeFiles/yasim_sim.dir/bb_profiler.cc.o" "gcc" "src/sim/CMakeFiles/yasim_sim.dir/bb_profiler.cc.o.d"
  "/root/repo/src/sim/checkpoint.cc" "src/sim/CMakeFiles/yasim_sim.dir/checkpoint.cc.o" "gcc" "src/sim/CMakeFiles/yasim_sim.dir/checkpoint.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/yasim_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/yasim_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/functional.cc" "src/sim/CMakeFiles/yasim_sim.dir/functional.cc.o" "gcc" "src/sim/CMakeFiles/yasim_sim.dir/functional.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/yasim_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/yasim_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/ooo_core.cc" "src/sim/CMakeFiles/yasim_sim.dir/ooo_core.cc.o" "gcc" "src/sim/CMakeFiles/yasim_sim.dir/ooo_core.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/yasim_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/yasim_sim.dir/stats.cc.o.d"
  "/root/repo/src/sim/trivial.cc" "src/sim/CMakeFiles/yasim_sim.dir/trivial.cc.o" "gcc" "src/sim/CMakeFiles/yasim_sim.dir/trivial.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/yasim_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/yasim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/yasim_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/yasim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
