file(REMOVE_RECURSE
  "libyasim_sim.a"
)
