# Empty dependencies file for yasim_sim.
# This may be replaced when dependencies are built.
