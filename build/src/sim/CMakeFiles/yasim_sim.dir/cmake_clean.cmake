file(REMOVE_RECURSE
  "CMakeFiles/yasim_sim.dir/bb_profiler.cc.o"
  "CMakeFiles/yasim_sim.dir/bb_profiler.cc.o.d"
  "CMakeFiles/yasim_sim.dir/checkpoint.cc.o"
  "CMakeFiles/yasim_sim.dir/checkpoint.cc.o.d"
  "CMakeFiles/yasim_sim.dir/config.cc.o"
  "CMakeFiles/yasim_sim.dir/config.cc.o.d"
  "CMakeFiles/yasim_sim.dir/functional.cc.o"
  "CMakeFiles/yasim_sim.dir/functional.cc.o.d"
  "CMakeFiles/yasim_sim.dir/memory.cc.o"
  "CMakeFiles/yasim_sim.dir/memory.cc.o.d"
  "CMakeFiles/yasim_sim.dir/ooo_core.cc.o"
  "CMakeFiles/yasim_sim.dir/ooo_core.cc.o.d"
  "CMakeFiles/yasim_sim.dir/stats.cc.o"
  "CMakeFiles/yasim_sim.dir/stats.cc.o.d"
  "CMakeFiles/yasim_sim.dir/trivial.cc.o"
  "CMakeFiles/yasim_sim.dir/trivial.cc.o.d"
  "libyasim_sim.a"
  "libyasim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yasim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
