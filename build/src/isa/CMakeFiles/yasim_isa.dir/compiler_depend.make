# Empty compiler generated dependencies file for yasim_isa.
# This may be replaced when dependencies are built.
