file(REMOVE_RECURSE
  "libyasim_isa.a"
)
