file(REMOVE_RECURSE
  "CMakeFiles/yasim_isa.dir/instruction.cc.o"
  "CMakeFiles/yasim_isa.dir/instruction.cc.o.d"
  "CMakeFiles/yasim_isa.dir/program.cc.o"
  "CMakeFiles/yasim_isa.dir/program.cc.o.d"
  "CMakeFiles/yasim_isa.dir/program_builder.cc.o"
  "CMakeFiles/yasim_isa.dir/program_builder.cc.o.d"
  "libyasim_isa.a"
  "libyasim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yasim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
