file(REMOVE_RECURSE
  "CMakeFiles/yasim_support.dir/hash.cc.o"
  "CMakeFiles/yasim_support.dir/hash.cc.o.d"
  "CMakeFiles/yasim_support.dir/logging.cc.o"
  "CMakeFiles/yasim_support.dir/logging.cc.o.d"
  "CMakeFiles/yasim_support.dir/rng.cc.o"
  "CMakeFiles/yasim_support.dir/rng.cc.o.d"
  "CMakeFiles/yasim_support.dir/table.cc.o"
  "CMakeFiles/yasim_support.dir/table.cc.o.d"
  "CMakeFiles/yasim_support.dir/thread_pool.cc.o"
  "CMakeFiles/yasim_support.dir/thread_pool.cc.o.d"
  "libyasim_support.a"
  "libyasim_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yasim_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
