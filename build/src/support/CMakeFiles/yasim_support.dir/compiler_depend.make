# Empty compiler generated dependencies file for yasim_support.
# This may be replaced when dependencies are built.
