file(REMOVE_RECURSE
  "libyasim_support.a"
)
