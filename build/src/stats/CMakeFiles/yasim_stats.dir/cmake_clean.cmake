file(REMOVE_RECURSE
  "CMakeFiles/yasim_stats.dir/chi2.cc.o"
  "CMakeFiles/yasim_stats.dir/chi2.cc.o.d"
  "CMakeFiles/yasim_stats.dir/distance.cc.o"
  "CMakeFiles/yasim_stats.dir/distance.cc.o.d"
  "CMakeFiles/yasim_stats.dir/histogram.cc.o"
  "CMakeFiles/yasim_stats.dir/histogram.cc.o.d"
  "CMakeFiles/yasim_stats.dir/kmeans.cc.o"
  "CMakeFiles/yasim_stats.dir/kmeans.cc.o.d"
  "CMakeFiles/yasim_stats.dir/plackett_burman.cc.o"
  "CMakeFiles/yasim_stats.dir/plackett_burman.cc.o.d"
  "CMakeFiles/yasim_stats.dir/projection.cc.o"
  "CMakeFiles/yasim_stats.dir/projection.cc.o.d"
  "CMakeFiles/yasim_stats.dir/summary.cc.o"
  "CMakeFiles/yasim_stats.dir/summary.cc.o.d"
  "libyasim_stats.a"
  "libyasim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yasim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
