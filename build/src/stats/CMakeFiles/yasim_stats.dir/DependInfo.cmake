
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/chi2.cc" "src/stats/CMakeFiles/yasim_stats.dir/chi2.cc.o" "gcc" "src/stats/CMakeFiles/yasim_stats.dir/chi2.cc.o.d"
  "/root/repo/src/stats/distance.cc" "src/stats/CMakeFiles/yasim_stats.dir/distance.cc.o" "gcc" "src/stats/CMakeFiles/yasim_stats.dir/distance.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/yasim_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/yasim_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/kmeans.cc" "src/stats/CMakeFiles/yasim_stats.dir/kmeans.cc.o" "gcc" "src/stats/CMakeFiles/yasim_stats.dir/kmeans.cc.o.d"
  "/root/repo/src/stats/plackett_burman.cc" "src/stats/CMakeFiles/yasim_stats.dir/plackett_burman.cc.o" "gcc" "src/stats/CMakeFiles/yasim_stats.dir/plackett_burman.cc.o.d"
  "/root/repo/src/stats/projection.cc" "src/stats/CMakeFiles/yasim_stats.dir/projection.cc.o" "gcc" "src/stats/CMakeFiles/yasim_stats.dir/projection.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/stats/CMakeFiles/yasim_stats.dir/summary.cc.o" "gcc" "src/stats/CMakeFiles/yasim_stats.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/yasim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
