# Empty compiler generated dependencies file for yasim_stats.
# This may be replaced when dependencies are built.
