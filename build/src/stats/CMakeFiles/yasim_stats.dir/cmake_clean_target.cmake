file(REMOVE_RECURSE
  "libyasim_stats.a"
)
