file(REMOVE_RECURSE
  "CMakeFiles/yasim_techniques.dir/full_reference.cc.o"
  "CMakeFiles/yasim_techniques.dir/full_reference.cc.o.d"
  "CMakeFiles/yasim_techniques.dir/permutations.cc.o"
  "CMakeFiles/yasim_techniques.dir/permutations.cc.o.d"
  "CMakeFiles/yasim_techniques.dir/random_sampling.cc.o"
  "CMakeFiles/yasim_techniques.dir/random_sampling.cc.o.d"
  "CMakeFiles/yasim_techniques.dir/reduced_input.cc.o"
  "CMakeFiles/yasim_techniques.dir/reduced_input.cc.o.d"
  "CMakeFiles/yasim_techniques.dir/simpoint.cc.o"
  "CMakeFiles/yasim_techniques.dir/simpoint.cc.o.d"
  "CMakeFiles/yasim_techniques.dir/smarts.cc.o"
  "CMakeFiles/yasim_techniques.dir/smarts.cc.o.d"
  "CMakeFiles/yasim_techniques.dir/technique.cc.o"
  "CMakeFiles/yasim_techniques.dir/technique.cc.o.d"
  "CMakeFiles/yasim_techniques.dir/truncated.cc.o"
  "CMakeFiles/yasim_techniques.dir/truncated.cc.o.d"
  "libyasim_techniques.a"
  "libyasim_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yasim_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
