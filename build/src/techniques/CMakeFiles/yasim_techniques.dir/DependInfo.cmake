
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/techniques/full_reference.cc" "src/techniques/CMakeFiles/yasim_techniques.dir/full_reference.cc.o" "gcc" "src/techniques/CMakeFiles/yasim_techniques.dir/full_reference.cc.o.d"
  "/root/repo/src/techniques/permutations.cc" "src/techniques/CMakeFiles/yasim_techniques.dir/permutations.cc.o" "gcc" "src/techniques/CMakeFiles/yasim_techniques.dir/permutations.cc.o.d"
  "/root/repo/src/techniques/random_sampling.cc" "src/techniques/CMakeFiles/yasim_techniques.dir/random_sampling.cc.o" "gcc" "src/techniques/CMakeFiles/yasim_techniques.dir/random_sampling.cc.o.d"
  "/root/repo/src/techniques/reduced_input.cc" "src/techniques/CMakeFiles/yasim_techniques.dir/reduced_input.cc.o" "gcc" "src/techniques/CMakeFiles/yasim_techniques.dir/reduced_input.cc.o.d"
  "/root/repo/src/techniques/simpoint.cc" "src/techniques/CMakeFiles/yasim_techniques.dir/simpoint.cc.o" "gcc" "src/techniques/CMakeFiles/yasim_techniques.dir/simpoint.cc.o.d"
  "/root/repo/src/techniques/smarts.cc" "src/techniques/CMakeFiles/yasim_techniques.dir/smarts.cc.o" "gcc" "src/techniques/CMakeFiles/yasim_techniques.dir/smarts.cc.o.d"
  "/root/repo/src/techniques/technique.cc" "src/techniques/CMakeFiles/yasim_techniques.dir/technique.cc.o" "gcc" "src/techniques/CMakeFiles/yasim_techniques.dir/technique.cc.o.d"
  "/root/repo/src/techniques/truncated.cc" "src/techniques/CMakeFiles/yasim_techniques.dir/truncated.cc.o" "gcc" "src/techniques/CMakeFiles/yasim_techniques.dir/truncated.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/yasim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/yasim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/yasim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/yasim_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/yasim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/yasim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
