file(REMOVE_RECURSE
  "libyasim_techniques.a"
)
