# Empty dependencies file for yasim_techniques.
# This may be replaced when dependencies are built.
