file(REMOVE_RECURSE
  "CMakeFiles/yasim_uarch.dir/branch_predictor.cc.o"
  "CMakeFiles/yasim_uarch.dir/branch_predictor.cc.o.d"
  "CMakeFiles/yasim_uarch.dir/cache.cc.o"
  "CMakeFiles/yasim_uarch.dir/cache.cc.o.d"
  "CMakeFiles/yasim_uarch.dir/memory_hierarchy.cc.o"
  "CMakeFiles/yasim_uarch.dir/memory_hierarchy.cc.o.d"
  "CMakeFiles/yasim_uarch.dir/tlb.cc.o"
  "CMakeFiles/yasim_uarch.dir/tlb.cc.o.d"
  "libyasim_uarch.a"
  "libyasim_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yasim_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
