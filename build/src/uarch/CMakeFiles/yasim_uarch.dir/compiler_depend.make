# Empty compiler generated dependencies file for yasim_uarch.
# This may be replaced when dependencies are built.
