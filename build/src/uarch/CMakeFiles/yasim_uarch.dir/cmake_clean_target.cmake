file(REMOVE_RECURSE
  "libyasim_uarch.a"
)
