
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch_predictor.cc" "src/uarch/CMakeFiles/yasim_uarch.dir/branch_predictor.cc.o" "gcc" "src/uarch/CMakeFiles/yasim_uarch.dir/branch_predictor.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/yasim_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/yasim_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/memory_hierarchy.cc" "src/uarch/CMakeFiles/yasim_uarch.dir/memory_hierarchy.cc.o" "gcc" "src/uarch/CMakeFiles/yasim_uarch.dir/memory_hierarchy.cc.o.d"
  "/root/repo/src/uarch/tlb.cc" "src/uarch/CMakeFiles/yasim_uarch.dir/tlb.cc.o" "gcc" "src/uarch/CMakeFiles/yasim_uarch.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/yasim_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/yasim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
