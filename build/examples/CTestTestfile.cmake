# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "gzip" "small")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shootout "/root/repo/build/examples/technique_shootout" "gzip" "1" "250000")
set_tests_properties(example_shootout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dse "/root/repo/build/examples/design_space_exploration" "vortex" "250000")
set_tests_properties(example_dse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sampling "/root/repo/build/examples/sampling_deep_dive" "gzip" "250000")
set_tests_properties(example_sampling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
