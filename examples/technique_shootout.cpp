/**
 * @file
 * Technique shoot-out: run every technique family on one benchmark and
 * one machine, and report each one's CPI estimate, error against the
 * full reference simulation, and cost — the library's core question
 * ("which technique should I trust?") in one table.
 *
 * Usage: technique_shootout [benchmark] [config 1-4] [ref-insts]
 */

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "engine/engine.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"
#include "techniques/permutations.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "mcf";
    const int config_idx = argc > 2 ? std::atoi(argv[2]) : 2;
    const uint64_t ref_insts =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 500'000;

    SuiteConfig suite;
    suite.referenceInstructions = ref_insts;
    ExperimentEngine engine;
    TechniqueContext ctx = engine.context(benchmark, suite);
    SimConfig config = architecturalConfig(config_idx);

    std::cout << "benchmark " << benchmark << ", machine " << config.name
              << ", reference length "
              << Table::count(ctx.referenceLength) << " instructions\n\n";

    FullReference reference;
    TechniqueResult ref = engine.run(reference, ctx, config);

    Table table("technique shoot-out (error vs full reference CPI " +
                Table::num(ref.cpi, 4) + ")");
    table.setHeader({"technique", "permutation", "CPI", "error",
                     "cost %", "detailed insts"});
    table.addRow({"reference", "full", Table::num(ref.cpi, 4), "-",
                  "100.00", Table::count(ref.detailedInsts)});
    table.addRule();

    for (const TechniquePtr &technique :
         representativePermutations(benchmark)) {
        TechniqueResult r = engine.run(*technique, ctx, config);
        table.addRow(
            {technique->name(), technique->permutation(),
             Table::num(r.cpi, 4),
             Table::pct(std::fabs(r.cpi - ref.cpi) / ref.cpi * 100.0, 2),
             Table::num(100.0 * r.workUnits / ref.workUnits, 2),
             Table::count(r.detailedInsts)});
    }
    table.print(std::cout);

    std::cout << "\ncost % is deterministic simulation work relative to "
                 "the reference run\n(detailed instruction = 1.0; see "
                 "CostModel in techniques/technique.hh)\n";
    return 0;
}
