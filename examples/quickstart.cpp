/**
 * @file
 * Quickstart: build a workload, simulate it through the
 * ExperimentEngine — the library's entry point for running simulation
 * techniques — and print the core statistics. The five-minute tour of
 * the public API, including the part that makes experiment campaigns
 * affordable: every result is memoized, so asking the same question
 * twice costs nothing.
 *
 * Usage: quickstart [benchmark] [input-set]
 *   benchmark  one of the ten suite benchmarks   (default: gzip)
 *   input-set  small|medium|large|test|train|reference (default: reference)
 */

#include <chrono>
#include <cstring>
#include <iostream>

#include "engine/engine.hh"
#include "sim/config.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"
#include "techniques/reduced_input.hh"
#include "techniques/smarts.hh"
#include "workloads/suite.hh"

using namespace yasim;

namespace {

InputSet
parseInputSet(const char *name)
{
    for (InputSet input : allInputSets())
        if (std::strcmp(name, inputSetName(input)) == 0)
            return input;
    std::cerr << "unknown input set '" << name << "'\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "gzip";
    const InputSet input =
        argc > 2 ? parseInputSet(argv[2]) : InputSet::Reference;

    // 1. Build the workload (synthetic SPEC-2000 stand-in).
    SuiteConfig suite;
    suite.referenceInstructions = 2'000'000;
    Workload workload = buildWorkload(benchmark, input, suite);
    std::cout << "workload: " << workload.benchmark << " / "
              << inputSetName(workload.input) << " (input '"
              << workload.label << "', "
              << workload.program.size() << " static instructions, "
              << workload.program.numBlocks() << " basic blocks)\n";

    // 2. The engine is the entry point for running techniques: it
    //    memoizes every result (pass EngineOptions{.cacheDir = ...} to
    //    persist them across processes too).
    ExperimentEngine engine;
    TechniqueContext ctx = engine.context(benchmark, suite);
    SimConfig config = architecturalConfig(2);

    // 3. The gold standard: a full detailed reference simulation.
    //    Picking a non-reference input set is itself a technique (the
    //    paper's most popular one), so it goes through the same call.
    auto t0 = std::chrono::steady_clock::now();
    TechniqueResult ref =
        input == InputSet::Reference
            ? engine.run(FullReference(), ctx, config)
            : engine.run(ReducedInput(input), ctx, config);
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();

    // 4. Read the results.
    const SimStats &stats = ref.detailed;
    Table table("simulation results (" + config.name + ")");
    table.setHeader({"metric", "value"});
    table.addRow({"instructions", Table::count(stats.instructions)});
    table.addRow({"cycles", Table::count(stats.cycles)});
    table.addRow({"CPI", Table::num(stats.cpi(), 4)});
    table.addRow({"IPC", Table::num(stats.ipc(), 4)});
    table.addRow({"branch accuracy", Table::pct(stats.branchAccuracy() * 100.0)});
    table.addRow({"L1-I hit rate", Table::pct(stats.l1iHitRate() * 100.0)});
    table.addRow({"L1-D hit rate", Table::pct(stats.l1dHitRate() * 100.0)});
    table.addRow({"L2 hit rate", Table::pct(stats.l2HitRate() * 100.0)});
    table.addRow({"memory stall cycles",
                  Table::pct(stats.memStallFraction() * 100.0)});
    table.addRow({"trivial ops", Table::count(stats.trivialOps)});
    table.print(std::cout);

    std::cout << "host speed: "
              << Table::num(static_cast<double>(stats.instructions) /
                                secs / 1e6,
                            2)
              << " M simulated instructions/second\n";

    // 5. A sampling technique estimates the same CPI at a fraction of
    //    the cost; asking the engine the same question again is free.
    TechniqueResult fast = engine.run(Smarts(1000, 2000), ctx, config);
    TechniqueResult again = engine.run(Smarts(1000, 2000), ctx, config);
    EngineCounters counters = engine.counters();
    std::cout << "\nSMARTS estimate: CPI " << Table::num(fast.cpi, 4)
              << " (baseline " << Table::num(ref.cpi, 4) << ") at "
              << Table::num(100.0 * fast.workUnits /
                                static_cast<double>(ctx.referenceLength),
                            1)
              << "% of the full-reference cost\n"
              << "engine: " << counters.runsExecuted
              << " simulations executed, " << counters.memoHits
              << " memo hit (the repeated SMARTS run: CPI "
              << Table::num(again.cpi, 4) << ", zero new work)\n";
    return 0;
}
