/**
 * @file
 * Quickstart: build a workload, simulate it in detail, print the core
 * statistics — the five-minute tour of the library's public API.
 *
 * Usage: quickstart [benchmark] [input-set]
 *   benchmark  one of the ten suite benchmarks   (default: gzip)
 *   input-set  small|medium|large|test|train|reference (default: reference)
 */

#include <chrono>
#include <cstring>
#include <iostream>

#include "sim/config.hh"
#include "sim/functional.hh"
#include "sim/ooo_core.hh"
#include "support/table.hh"
#include "workloads/suite.hh"

using namespace yasim;

namespace {

InputSet
parseInputSet(const char *name)
{
    for (InputSet input : allInputSets())
        if (std::strcmp(name, inputSetName(input)) == 0)
            return input;
    std::cerr << "unknown input set '" << name << "'\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "gzip";
    const InputSet input =
        argc > 2 ? parseInputSet(argv[2]) : InputSet::Reference;

    // 1. Build the workload (synthetic SPEC-2000 stand-in).
    SuiteConfig suite;
    suite.referenceInstructions = 2'000'000;
    Workload workload = buildWorkload(benchmark, input, suite);
    std::cout << "workload: " << workload.benchmark << " / "
              << inputSetName(workload.input) << " (input '"
              << workload.label << "', "
              << workload.program.size() << " static instructions, "
              << workload.program.numBlocks() << " basic blocks)\n";

    // 2. Simulate it to completion on the Table-3 config #2 machine.
    SimConfig config = architecturalConfig(2);
    FunctionalSim fsim(workload.program);
    OooCore core(config);

    auto t0 = std::chrono::steady_clock::now();
    core.run(fsim, ~0ULL);
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();

    // 3. Read the results.
    SimStats stats = core.snapshot();
    Table table("simulation results (" + config.name + ")");
    table.setHeader({"metric", "value"});
    table.addRow({"instructions", Table::count(stats.instructions)});
    table.addRow({"cycles", Table::count(stats.cycles)});
    table.addRow({"CPI", Table::num(stats.cpi(), 4)});
    table.addRow({"IPC", Table::num(stats.ipc(), 4)});
    table.addRow({"branch accuracy", Table::pct(stats.branchAccuracy() * 100.0)});
    table.addRow({"L1-I hit rate", Table::pct(stats.l1iHitRate() * 100.0)});
    table.addRow({"L1-D hit rate", Table::pct(stats.l1dHitRate() * 100.0)});
    table.addRow({"L2 hit rate", Table::pct(stats.l2HitRate() * 100.0)});
    table.addRow({"memory stall cycles",
                  Table::pct(stats.memStallFraction() * 100.0)});
    table.addRow({"trivial ops", Table::count(stats.trivialOps)});
    table.print(std::cout);

    std::cout << "host speed: "
              << Table::num(static_cast<double>(stats.instructions) /
                                secs / 1e6,
                            2)
              << " M simulated instructions/second\n";
    return 0;
}
