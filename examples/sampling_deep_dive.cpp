/**
 * @file
 * Sampling deep dive: opens up the two sampling techniques' machinery.
 *
 * Part 1 maps a program's phases as SimPoint sees them: the chosen
 * simulation points, their weights, and the per-point CPI (so you can
 * see which phases exist and what each costs).
 *
 * Part 2 shows SMARTS's statistical engine: how the CPI estimate and
 * the confidence interval tighten as the sample count n grows — the
 * n >= (z * cv / eps)^2 rule in action.
 *
 * Usage: sampling_deep_dive [benchmark] [ref-insts]
 */

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "engine/engine.hh"
#include "sim/functional.hh"
#include "sim/ooo_core.hh"
#include "stats/summary.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"
#include "techniques/simpoint.hh"
#include "techniques/smarts.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "gcc";
    const uint64_t ref_insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500'000;

    SuiteConfig suite;
    suite.referenceInstructions = ref_insts;
    ExperimentEngine engine;
    TechniqueContext ctx = engine.context(benchmark, suite);
    SimConfig config = architecturalConfig(2);

    FullReference reference;
    TechniqueResult ref = engine.run(reference, ctx, config);
    std::cout << "reference CPI of " << benchmark << ": "
              << Table::num(ref.cpi, 4) << "\n\n";

    // ---- Part 1: SimPoint's phase map ----
    SimPoint simpoint(100.0, 10, 0.0, "multiple 100M");
    auto points = simpoint.choosePoints(ctx);

    Table phase_table("SimPoint phase map (" +
                      std::to_string(points.size()) +
                      " simulation points)");
    phase_table.setHeader({"point @ instruction", "weight",
                           "CPI of the interval"});
    Workload workload =
        buildWorkload(benchmark, InputSet::Reference, ctx.suite);
    for (const SimulationPoint &p : points) {
        FunctionalSim fsim(workload.program);
        OooCore core(config);
        fsim.fastForwardWarm(p.startInst, &core.memHierarchy(),
                             &core.predictor());
        SimStats before = core.snapshot();
        core.run(fsim, ctx.scaledM(100.0));
        SimStats delta = core.snapshot() - before;
        phase_table.addRow({Table::count(p.startInst),
                            Table::num(p.weight, 3),
                            Table::num(delta.cpi(), 4)});
    }
    phase_table.print(std::cout);

    // ---- Part 2: SMARTS's confidence interval vs n ----
    Table ci_table("\nSMARTS estimate vs sample count "
                   "(U=1000, W=2000, 99.7% confidence)");
    ci_table.setHeader({"n", "CPI estimate", "error", "CI half-width"});
    for (uint64_t n : {10ULL, 25ULL, 50ULL, 100ULL, 200ULL}) {
        // Disable the re-run loop so each row shows exactly n samples.
        Smarts smarts(1000, 2000, 0.997, 100.0, n);
        TechniqueResult r = engine.run(smarts, ctx, config);
        double err = (r.cpi - ref.cpi) / ref.cpi;
        // Reconstruct the half-width from the run's unit count: the
        // relative CI shrinks as 1/sqrt(n).
        ci_table.addRow({std::to_string(n), Table::num(r.cpi, 4),
                         Table::pct(err * 100.0, 2),
                         Table::pct(100.0 * 2.97 / std::sqrt((double)n),
                                    1)});
    }
    ci_table.print(std::cout);
    std::cout << "\n(the CI column shows the z/sqrt(n) scaling at unit "
                 "cv = 1; SMARTS's\nown rule recommends n >= "
                 "(z * cv / 0.03)^2 for +/-3%)\n";
    return 0;
}
