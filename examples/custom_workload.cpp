/**
 * @file
 * Custom workload: author your own program against the yasim ISA with
 * ProgramBuilder, then run the library's machinery on it — detailed
 * simulation, BBV profiling, and a hand-rolled SimPoint pipeline
 * (interval BBVs -> random projection -> k-means/BIC -> weighted
 * simulation points) built from the public stats API. This is the
 * drop-to-the-lower-level tour for users whose workload is not in the
 * shipped suite.
 */

#include <iostream>

#include "isa/program_builder.hh"
#include "sim/bb_profiler.hh"
#include "sim/functional.hh"
#include "sim/memory.hh"
#include "sim/ooo_core.hh"
#include "stats/kmeans.hh"
#include "stats/projection.hh"
#include "support/rng.hh"
#include "support/table.hh"

using namespace yasim;

namespace {

/**
 * A two-phase toy workload: a pointer-chase phase (memory-bound) then
 * a hash-mix phase (ALU-bound), repeated twice.
 */
Program
buildTwoPhase()
{
    ProgramBuilder b("two-phase");
    b.movi(1, static_cast<int64_t>(heapBase));
    b.movi(2, 2654435761LL);
    b.movi(3, 0); // chase cursor
    b.movi(8, 0x12345);

    for (int rep = 0; rep < 2; ++rep) {
        // Phase A: serial chase over 2 MB.
        {
            Label top = b.newLabel();
            b.movi(9, 0);
            b.movi(10, 20000);
            b.bind(top);
            b.add(4, 1, 3);
            b.ld(5, 4, 0);
            b.add(3, 3, 5);
            b.mul(3, 3, 2);
            b.addi(3, 3, 0x4F1BCDC9LL * 8);
            b.andi(3, 3, (2 << 20) - 1);
            b.andi(3, 3, ~7LL);
            b.addi(9, 9, 1);
            b.blt(9, 10, top);
        }
        // Phase B: register hash mixing.
        {
            Label top = b.newLabel();
            b.movi(9, 0);
            b.movi(10, 30000);
            b.bind(top);
            b.mul(8, 8, 2);
            b.shri(11, 8, 31);
            b.xor_(8, 8, 11);
            b.addi(9, 9, 1);
            b.blt(9, 10, top);
        }
    }
    b.halt();
    return b.finish();
}

} // namespace

int
main()
{
    Program program = buildTwoPhase();
    std::cout << "custom program: " << program.size()
              << " static instructions, " << program.numBlocks()
              << " basic blocks\n";

    // 1. Full detailed simulation (ground truth).
    SimConfig config = architecturalConfig(2);
    uint64_t total;
    double true_cpi;
    {
        FunctionalSim fsim(program);
        OooCore core(config);
        total = core.run(fsim, ~0ULL);
        true_cpi = core.snapshot().cpi();
    }
    std::cout << "full run: " << Table::count(total)
              << " instructions, CPI " << Table::num(true_cpi, 4)
              << "\n\n";

    // 2. SimPoint by hand: profile interval BBVs...
    const uint64_t interval = 5000;
    Rng rng(42);
    RandomProjection projection(program.numBlocks(), 8, rng);
    std::vector<std::vector<double>> intervals;
    {
        FunctionalSim fsim(program);
        ExecRecord rec;
        std::vector<double> bbv(program.numBlocks(), 0.0);
        uint64_t in_interval = 0;
        while (fsim.step(rec)) {
            bbv[program.blockOf(rec.pc)] += 1.0;
            if (++in_interval == interval) {
                normalizeL1(bbv);
                intervals.push_back(projection.project(bbv));
                std::fill(bbv.begin(), bbv.end(), 0.0);
                in_interval = 0;
            }
        }
    }
    // ... cluster with BIC-selected k ...
    KSelection sel = selectK(intervals, 8, rng);
    std::cout << "SimPoint-by-hand: " << intervals.size()
              << " intervals -> " << sel.best.numClusters
              << " clusters (the two phases x repeats)\n";

    // ... and estimate CPI from one representative per cluster.
    std::vector<uint64_t> population(sel.best.centroids.size(), 0);
    for (int c : sel.best.assignment)
        ++population[static_cast<size_t>(c)];
    double weighted_cpi = 0.0;
    for (size_t c = 0; c < sel.best.centroids.size(); ++c) {
        if (population[c] == 0)
            continue;
        // Representative: first interval of the cluster.
        uint64_t idx = 0;
        for (size_t i = 0; i < sel.best.assignment.size(); ++i) {
            if (sel.best.assignment[i] == static_cast<int>(c)) {
                idx = i;
                break;
            }
        }
        FunctionalSim fsim(program);
        OooCore core(config);
        fsim.fastForwardWarm(idx * interval, &core.memHierarchy(),
                             &core.predictor());
        SimStats before = core.snapshot();
        core.run(fsim, interval);
        SimStats delta = core.snapshot() - before;
        double weight = static_cast<double>(population[c]) /
                        static_cast<double>(intervals.size());
        weighted_cpi += weight * delta.cpi();
        std::cout << "  cluster " << c << ": weight "
                  << Table::num(weight, 3) << ", interval CPI "
                  << Table::num(delta.cpi(), 4) << "\n";
    }
    std::cout << "weighted estimate: CPI "
              << Table::num(weighted_cpi, 4) << " (true "
              << Table::num(true_cpi, 4) << ")\n";
    return 0;
}
