/**
 * @file
 * Design-space exploration — the workload the paper's introduction
 * motivates: an architect wants to sweep a design space (here, L2 size
 * x issue width) but cannot afford full reference simulations for
 * every point. This example runs the sweep with a sampling technique,
 * picks the best configuration per metric, and then *verifies* the
 * winner (and only the winner) against a full reference simulation —
 * the recommended deadline-season workflow.
 *
 * Usage: design_space_exploration [benchmark] [ref-insts]
 */

#include <cstdlib>
#include <iostream>

#include "engine/engine.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"
#include "techniques/simpoint.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "vortex";
    const uint64_t ref_insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500'000;

    SuiteConfig suite;
    suite.referenceInstructions = ref_insts;
    ExperimentEngine engine;
    TechniqueContext ctx = engine.context(benchmark, suite);

    SimPoint explorer(10.0, 100, 1.0, "multiple 10M");

    const uint32_t l2_sizes[] = {256, 512, 1024, 2048};
    const uint32_t widths[] = {2, 4, 8};

    Table table("design-space sweep of " + benchmark +
                " with SimPoint (CPI estimates)");
    std::vector<std::string> header = {"L2 size"};
    for (uint32_t w : widths)
        header.push_back(std::to_string(w) + "-wide");
    table.setHeader(header);

    double best_cpi = 1e300;
    SimConfig best_config;
    double total_work = 0.0;
    for (uint32_t l2 : l2_sizes) {
        std::vector<std::string> row = {std::to_string(l2) + "KB"};
        for (uint32_t width : widths) {
            SimConfig config = architecturalConfig(2);
            config.name = std::to_string(l2) + "KB/" +
                          std::to_string(width) + "w";
            config.mem.l2.sizeKb = l2;
            config.core.fetchWidth = config.core.decodeWidth = width;
            config.core.issueWidth = config.core.commitWidth = width;
            TechniqueResult r = engine.run(explorer, ctx, config);
            total_work += r.workUnits;
            row.push_back(Table::num(r.cpi, 4));
            if (r.cpi < best_cpi) {
                best_cpi = r.cpi;
                best_config = config;
            }
        }
        table.addRow(row);
    }
    table.print(std::cout);

    // Verify the chosen point with the gold-standard run.
    FullReference reference;
    TechniqueResult verified = engine.run(reference, ctx, best_config);
    total_work += verified.workUnits;

    std::cout << "\nwinner: " << best_config.name << " (estimated CPI "
              << Table::num(best_cpi, 4) << ", verified reference CPI "
              << Table::num(verified.cpi, 4) << ")\n";

    double full_sweep_work =
        static_cast<double>(ctx.referenceLength) *
        static_cast<double>(sizeof(l2_sizes) / sizeof(l2_sizes[0]) *
                            (sizeof(widths) / sizeof(widths[0])));
    std::cout << "exploration cost: "
              << Table::num(100.0 * total_work / full_sweep_work, 1)
              << "% of a full-reference sweep of all "
              << (sizeof(l2_sizes) / sizeof(l2_sizes[0])) *
                     (sizeof(widths) / sizeof(widths[0]))
              << " design points\n";
    return 0;
}
