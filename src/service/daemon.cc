#include "service/daemon.hh"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/artifact_io.hh"
#include "support/check.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"

namespace yasim {

namespace {

bool
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** Flip one deterministic bit of @p chunk (svc.read.corrupt). */
void
corruptChunk(std::string &chunk)
{
    if (!chunk.empty())
        chunk[chunk.size() / 2] ^= 0x10;
}

} // namespace

ServiceDaemon::ServiceDaemon(DaemonOptions options,
                             ExperimentEngine &engine)
    : opts(std::move(options)), engine(engine)
{
    if (opts.workers == 0)
        opts.workers = 1;
    if (opts.maxFrameBytes > kMaxServicePayload)
        opts.maxFrameBytes = kMaxServicePayload;
}

ServiceDaemon::~ServiceDaemon()
{
    stop();
}

bool
ServiceDaemon::start(std::string &error)
{
    YASIM_CHECK(!started, "ServiceDaemon started twice");
    if (opts.socketPath.empty() && opts.tcpPort < 0) {
        error = "no listener configured (need a socket path or port)";
        return false;
    }

    if (pipe(wakePipe) != 0) {
        error = csprintf("pipe: %s", std::strerror(errno));
        return false;
    }
    setNonBlocking(wakePipe[0]);
    setNonBlocking(wakePipe[1]);

    if (!opts.socketPath.empty()) {
        sockaddr_un addr{};
        if (opts.socketPath.size() >= sizeof(addr.sun_path)) {
            error = "socket path too long";
            return false;
        }
        unixFd = socket(AF_UNIX, SOCK_STREAM, 0);
        if (unixFd < 0) {
            error = csprintf("socket: %s", std::strerror(errno));
            return false;
        }
        ::unlink(opts.socketPath.c_str());
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, opts.socketPath.c_str(),
                    opts.socketPath.size() + 1);
        if (bind(unixFd, reinterpret_cast<sockaddr *>(&addr),
                 sizeof(addr)) != 0 ||
            listen(unixFd, 64) != 0) {
            error = csprintf("bind/listen '%s': %s",
                             opts.socketPath.c_str(),
                             std::strerror(errno));
            return false;
        }
        setNonBlocking(unixFd);
    }

    if (opts.tcpPort >= 0) {
        tcpFd = socket(AF_INET, SOCK_STREAM, 0);
        if (tcpFd < 0) {
            error = csprintf("socket: %s", std::strerror(errno));
            return false;
        }
        int one = 1;
        setsockopt(tcpFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(uint16_t(opts.tcpPort));
        if (bind(tcpFd, reinterpret_cast<sockaddr *>(&addr),
                 sizeof(addr)) != 0 ||
            listen(tcpFd, 64) != 0) {
            error = csprintf("bind/listen port %d: %s", opts.tcpPort,
                             std::strerror(errno));
            return false;
        }
        socklen_t len = sizeof(addr);
        getsockname(tcpFd, reinterpret_cast<sockaddr *>(&addr), &len);
        boundTcpPort = ntohs(addr.sin_port);
        setNonBlocking(tcpFd);
    }

    started = true;
    for (unsigned i = 0; i < opts.workers; ++i)
        workerThreads.emplace_back([this] { workerLoop(); });
    watchdogThread = std::thread([this] { watchdogLoop(); });
    ioThread = std::thread([this] { ioLoop(); });
    return true;
}

void
ServiceDaemon::requestDrain()
{
    // Async-signal-safe: one lock-free store and one pipe write.
    drainRequested.store(true);
    if (wakePipe[1] >= 0) {
        char byte = 'D';
        [[maybe_unused]] ssize_t n = ::write(wakePipe[1], &byte, 1);
    }
}

void
ServiceDaemon::wakeIo()
{
    if (wakePipe[1] >= 0) {
        char byte = 'W';
        [[maybe_unused]] ssize_t n = ::write(wakePipe[1], &byte, 1);
    }
}

void
ServiceDaemon::wait()
{
    if (!started || joined)
        return;
    if (ioThread.joinable())
        ioThread.join();
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopWorkers = true;
        stopWatchdog = true;
    }
    queueCv.notify_all();
    watchdogCv.notify_all();
    for (std::thread &t : workerThreads)
        if (t.joinable())
            t.join();
    if (watchdogThread.joinable())
        watchdogThread.join();
    joined = true;
}

void
ServiceDaemon::stop()
{
    if (!started || joined) {
        joined = started;
        return;
    }
    requestDrain();
    wait();
}

DaemonCounters
ServiceDaemon::counters() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return ctr;
}

JsonReport
ServiceDaemon::statsReport() const
{
    JsonReport report("service-stats");
    engine.appendCounters(report);
    DaemonCounters c = counters();
    report.setCount("svc_connections_accepted", c.connectionsAccepted);
    report.setCount("svc_accept_transients", c.acceptTransients);
    report.setCount("svc_requests_decoded", c.requestsDecoded);
    report.setCount("svc_jobs_accepted", c.jobsAccepted);
    report.setCount("svc_jobs_executed", c.jobsExecuted);
    report.setCount("svc_rejected_queue_full", c.rejectedQueueFull);
    report.setCount("svc_rejected_quota", c.rejectedQuota);
    report.setCount("svc_rejected_draining", c.rejectedDraining);
    report.setCount("svc_protocol_errors", c.protocolErrors);
    report.setCount("svc_disconnects", c.disconnects);
    report.setCount("svc_responses_dropped", c.responsesDropped);
    report.setCount("svc_max_queue_depth", c.maxQueueDepth);
    report.setCount("svc_jobs_cancelled", c.jobsCancelled);
    report.setCount("svc_jobs_deadline_expired", c.jobsDeadlineExpired);
    report.setCount("svc_jobs_shed", c.jobsShed);
    report.setCount("svc_watchdog_wakeups", c.watchdogWakeups);
    report.setBool("svc_draining", drainRequested.load());
    return report;
}

void
ServiceDaemon::acceptPending(int listen_fd)
{
    for (;;) {
        if (failpoint::fire("svc.accept.transient")) {
            // A transient accept failure: leave the pending connection
            // in the backlog; the next poll round retries it.
            std::lock_guard<std::mutex> lock(mutex);
            ++ctr.acceptTransients;
            return;
        }
        int fd = accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            return;
        setNonBlocking(fd);
        Connection conn;
        conn.fd = fd;
        connections.emplace(nextConnId++, std::move(conn));
        std::lock_guard<std::mutex> lock(mutex);
        ++ctr.connectionsAccepted;
    }
}

void
ServiceDaemon::respond(Connection &conn,
                       const ExperimentResponse &response)
{
    conn.outBuf += frameResponse(response);
}

void
ServiceDaemon::pushJobResponse(uint64_t conn_id,
                               const ExperimentResponse &response)
{
    // Caller holds `mutex` and wakes the I/O loop afterwards.
    Outbound out;
    out.connId = conn_id;
    out.frame = frameResponse(response);
    outbox.push_back(std::move(out));
}

void
ServiceDaemon::admit(uint64_t conn_id, Connection &conn,
                     const ExperimentRequest &request)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        ++ctr.requestsDecoded;
    }

    ExperimentResponse response;
    response.id = request.id;

    switch (request.kind) {
      case RequestKind::Ping:
        respond(conn, response);
        return;
      case RequestKind::Stats:
        response.report = statsReport().render();
        respond(conn, response);
        return;
      case RequestKind::Shutdown:
        respond(conn, response);
        requestDrain();
        return;
      case RequestKind::Cancel: {
        // The ack answers the Cancel itself; a cancelled queued job
        // answers separately through the outbox, and a running one
        // answers when its executor unwinds at the next poll.
        bool found = false;
        {
            std::lock_guard<std::mutex> lock(mutex);
            for (auto it = queue.begin(); it != queue.end(); ++it) {
                const Job &job = it->second;
                if (job.connId != conn_id ||
                    job.request.id != request.target)
                    continue;
                ExperimentResponse cancelled;
                cancelled.id = job.request.id;
                cancelled.status = ResponseStatus::Cancelled;
                cancelled.error = "cancelled while queued";
                pushJobResponse(conn_id, cancelled);
                ++ctr.jobsCancelled;
                queue.erase(it);
                found = true;
                break;
            }
            if (!found) {
                auto run = running.find({conn_id, request.target});
                if (run != running.end()) {
                    run->second->cancel(CancelCause::Cancelled);
                    found = true;
                }
            }
        }
        if (!found) {
            response.status = ResponseStatus::Error;
            response.error = "no such job";
        }
        respond(conn, response);
        return;
      }
      case RequestKind::Run:
        break;
    }

    bool deadline_armed = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (drainRequested.load()) {
            ++ctr.rejectedDraining;
            response.status = ResponseStatus::Rejected;
            response.error = "draining";
        } else if (queue.size() >= opts.maxQueue) {
            ++ctr.rejectedQueueFull;
            response.status = ResponseStatus::Rejected;
            response.error = "queue full";
        } else if (conn.outstanding >= opts.clientQuota) {
            ++ctr.rejectedQuota;
            response.status = ResponseStatus::Rejected;
            response.error = "per-client quota exceeded";
        } else {
            // Overload shedding: when this request carries a deadline
            // the estimated queue delay already blows through, answer
            // *something* Rejected "shed" now rather than burning an
            // executor on work that is dead on arrival. The victim is
            // the lowest-priority job in sight: the incoming one, or
            // the worst queued one it outranks (whose slot it takes).
            if (request.deadlineMs > 0 && ewmaJobMs > 0.0 &&
                !queue.empty()) {
                double est_delay_ms = double(queue.size()) * ewmaJobMs /
                                      double(opts.workers);
                if (est_delay_ms > double(request.deadlineMs)) {
                    auto worst = std::prev(queue.end());
                    if (request.priority >= worst->first.first) {
                        ++ctr.jobsShed;
                        response.status = ResponseStatus::Rejected;
                        response.error = "shed";
                    } else {
                        ExperimentResponse shed;
                        shed.id = worst->second.request.id;
                        shed.status = ResponseStatus::Rejected;
                        shed.error = "shed";
                        pushJobResponse(worst->second.connId, shed);
                        ++ctr.jobsShed;
                        queue.erase(worst);
                    }
                }
            }
            if (response.status != ResponseStatus::Rejected) {
                Job job;
                job.connId = conn_id;
                job.request = request;
                job.cancel = std::make_shared<CancelSource>();
                if (request.deadlineMs > 0) {
                    job.cancel->setDeadlineAfterMs(
                        int64_t(request.deadlineMs));
                    job.deadlineAtMs = job.cancel->deadlineAtMs();
                    deadline_armed = true;
                }
                queue.emplace(std::make_pair(request.priority,
                                             admissionSeq++),
                              std::move(job));
                ++conn.outstanding;
                ++ctr.jobsAccepted;
                if (queue.size() > ctr.maxQueueDepth)
                    ctr.maxQueueDepth = queue.size();
            }
        }
    }
    if (response.status == ResponseStatus::Rejected) {
        respond(conn, response);
        return;
    }
    queueCv.notify_one();
    if (deadline_armed)
        watchdogCv.notify_one();
}

bool
ServiceDaemon::serviceInput(uint64_t conn_id, Connection &conn,
                            bool &protocol_error)
{
    protocol_error = false;
    char buffer[1 << 16];
    for (;;) {
        ssize_t n = recv(conn.fd, buffer, sizeof(buffer), 0);
        if (n == 0)
            return false; // orderly disconnect
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                break;
            return false;
        }
        std::string chunk(buffer, size_t(n));
        if (failpoint::fire("svc.read.corrupt"))
            corruptChunk(chunk);
        conn.inBuf += chunk;
    }

    // Split the buffered bytes into complete frames.
    for (;;) {
        uint64_t frame_bytes = 0;
        FrameSizeStatus status =
            frameSize(conn.inBuf, opts.maxFrameBytes, frame_bytes);
        if (status == FrameSizeStatus::NeedMore)
            break;
        if (status == FrameSizeStatus::Malformed) {
            protocol_error = true;
            std::lock_guard<std::mutex> lock(mutex);
            ++ctr.protocolErrors;
            return false;
        }
        if (conn.inBuf.size() < frame_bytes)
            break;

        std::string payload, frame_error;
        bool frame_ok =
            decodeFrame(std::string_view(conn.inBuf).substr(
                            0, size_t(frame_bytes)),
                        kRequestMagic, kServiceFormatVersion, payload,
                        frame_error);
        conn.inBuf.erase(0, size_t(frame_bytes));

        ExperimentRequest request;
        std::string payload_error;
        if (!frame_ok ||
            !decodeRequest(payload, request, payload_error)) {
            // Checksum, version, or payload verification failed: the
            // stream can no longer be trusted. Drop the peer; it
            // reconnects and resubmits over a clean stream.
            protocol_error = true;
            std::lock_guard<std::mutex> lock(mutex);
            ++ctr.protocolErrors;
            return false;
        }
        admit(conn_id, conn, request);
    }
    return true;
}

void
ServiceDaemon::dropConnection(uint64_t conn_id, bool protocol_error)
{
    auto it = connections.find(conn_id);
    if (it == connections.end())
        return;
    ::close(it->second.fd);
    connections.erase(it);
    std::lock_guard<std::mutex> lock(mutex);
    if (!protocol_error)
        ++ctr.disconnects;
}

void
ServiceDaemon::flushOutbox()
{
    std::vector<Outbound> finished;
    {
        std::lock_guard<std::mutex> lock(mutex);
        finished.swap(outbox);
    }
    for (Outbound &out : finished) {
        auto it = connections.find(out.connId);
        if (it == connections.end()) {
            // The client vanished between admission and completion.
            // The work still populated the shared caches; only the
            // response bytes are dropped (and never duplicated — a
            // resubmitting client gets a fresh execution id).
            std::lock_guard<std::mutex> lock(mutex);
            ++ctr.responsesDropped;
            continue;
        }
        it->second.outBuf += out.frame;
        if (it->second.outstanding > 0)
            --it->second.outstanding;
    }
}

void
ServiceDaemon::ioLoop()
{
    for (;;) {
        flushOutbox();

        bool drain = drainRequested.load();
        bool idle;
        {
            std::lock_guard<std::mutex> lock(mutex);
            idle = queue.empty() && activeJobs == 0 && outbox.empty();
        }
        if (drain && idle) {
            bool flushed = true;
            for (const auto &entry : connections)
                if (!entry.second.outBuf.empty())
                    flushed = false;
            if (flushed)
                break;
        }

        std::vector<pollfd> fds;
        std::vector<uint64_t> ids;
        fds.push_back({wakePipe[0], POLLIN, 0});
        ids.push_back(0);
        // While draining, stop accepting (pending peers get ECONNRESET
        // at close; accepted ones are served to completion).
        if (!drain) {
            if (unixFd >= 0) {
                fds.push_back({unixFd, POLLIN, 0});
                ids.push_back(0);
            }
            if (tcpFd >= 0) {
                fds.push_back({tcpFd, POLLIN, 0});
                ids.push_back(0);
            }
        }
        for (const auto &entry : connections) {
            short events = POLLIN;
            if (!entry.second.outBuf.empty())
                events |= POLLOUT;
            fds.push_back({entry.second.fd, events, 0});
            ids.push_back(entry.first);
        }

        int ready = poll(fds.data(), nfds_t(fds.size()), -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }

        // Drain the wake pipe.
        if (fds[0].revents & POLLIN) {
            char sink[256];
            while (::read(wakePipe[0], sink, sizeof(sink)) > 0) {
            }
        }

        for (size_t i = 1; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            if (fds[i].fd == unixFd || fds[i].fd == tcpFd) {
                acceptPending(fds[i].fd);
                continue;
            }
            uint64_t conn_id = ids[i];
            auto it = connections.find(conn_id);
            if (it == connections.end())
                continue;
            Connection &conn = it->second;

            if (fds[i].revents & POLLOUT) {
                ssize_t n = send(conn.fd, conn.outBuf.data(),
                                 conn.outBuf.size(), MSG_NOSIGNAL);
                if (n > 0)
                    conn.outBuf.erase(0, size_t(n));
                else if (n < 0 && errno != EAGAIN &&
                         errno != EWOULDBLOCK && errno != EINTR) {
                    dropConnection(conn_id, false);
                    continue;
                }
            }
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
                bool protocol_error = false;
                if (!serviceInput(conn_id, conn, protocol_error))
                    dropConnection(conn_id, protocol_error);
            }
        }
    }

    // Drained: close every fd; accepted work is complete and flushed.
    for (const auto &entry : connections)
        ::close(entry.second.fd);
    connections.clear();
    if (unixFd >= 0) {
        ::close(unixFd);
        ::unlink(opts.socketPath.c_str());
        unixFd = -1;
    }
    if (tcpFd >= 0) {
        ::close(tcpFd);
        tcpFd = -1;
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopWorkers = true;
    }
    queueCv.notify_all();
}

void
ServiceDaemon::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex);
            queueCv.wait(lock, [this] {
                return stopWorkers || !queue.empty();
            });
            if (queue.empty()) {
                if (stopWorkers)
                    return;
                continue;
            }
            auto it = queue.begin();
            job = std::move(it->second);
            queue.erase(it);
            ++activeJobs;
            if (job.cancel)
                running.emplace(std::make_pair(job.connId,
                                               job.request.id),
                                job.cancel);
        }

        // Dispatch-time expiry backstop: a job whose deadline passed
        // in the queue (or that "svc.cancel.dispatch" forces past it)
        // is answered without touching the engine.
        if (job.cancel && failpoint::fire("svc.cancel.dispatch"))
            job.cancel->cancel(CancelCause::DeadlineExceeded);

        ExperimentResponse response;
        bool ran = false;
        int64_t elapsed_ms = 0;
        if (job.cancel && job.cancel->expired()) {
            response.id = job.request.id;
            response.status =
                job.cancel->cause() == CancelCause::Cancelled
                    ? ResponseStatus::Cancelled
                    : ResponseStatus::DeadlineExceeded;
            response.error = cancelCauseName(job.cancel->cause());
        } else {
            int64_t t0 = monotonicNowMs();
            response = executeRequest(engine, job.request,
                                      job.cancel ? job.cancel->token()
                                                 : CancelToken());
            elapsed_ms = monotonicNowMs() - t0;
            ran = true;
        }

        {
            std::lock_guard<std::mutex> lock(mutex);
            pushJobResponse(job.connId, response);
            --activeJobs;
            running.erase({job.connId, job.request.id});
            switch (response.status) {
              case ResponseStatus::Cancelled:
                ++ctr.jobsCancelled;
                break;
              case ResponseStatus::DeadlineExceeded:
                ++ctr.jobsDeadlineExpired;
                break;
              default:
                ++ctr.jobsExecuted;
                break;
            }
            if (ran) {
                // Admission's queue-delay estimate (file comment).
                ewmaJobMs = ewmaJobMs == 0.0
                                ? double(elapsed_ms)
                                : 0.9 * ewmaJobMs +
                                      0.1 * double(elapsed_ms);
            }
        }
        wakeIo();
    }
}

void
ServiceDaemon::watchdogLoop()
{
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        if (stopWatchdog)
            return;

        // Earliest pending expiry over queued and running jobs. A
        // running source already carrying a cause is its executor's
        // problem (it retires at the next poll) — considering it here
        // would spin the watchdog, lock held, until that retirement.
        int64_t next = INT64_MAX;
        for (const auto &entry : queue)
            next = std::min(next, entry.second.deadlineAtMs);
        for (const auto &entry : running)
            if (entry.second->cause() == CancelCause::None)
                next = std::min(next, entry.second->deadlineAtMs());

        if (next == INT64_MAX) {
            // Nothing has a deadline; sleep until admission arms one
            // (or shutdown). Spurious wakes just recompute.
            watchdogCv.wait(lock);
            continue;
        }
        int64_t now = monotonicNowMs();
        if (now < next) {
            watchdogCv.wait_for(
                lock, std::chrono::milliseconds(next - now));
            continue; // recompute: deadlines may have changed
        }

        ++ctr.watchdogWakeups;

        // Queued jobs past deadline never dispatch: answer them now.
        bool pushed = false;
        for (auto it = queue.begin(); it != queue.end();) {
            Job &job = it->second;
            if (job.deadlineAtMs > now) {
                ++it;
                continue;
            }
            if (job.cancel)
                job.cancel->cancel(CancelCause::DeadlineExceeded);
            ExperimentResponse response;
            response.id = job.request.id;
            response.status = ResponseStatus::DeadlineExceeded;
            response.error = "deadline expired while queued";
            pushJobResponse(job.connId, response);
            ++ctr.jobsDeadlineExpired;
            it = queue.erase(it);
            pushed = true;
        }

        // Running jobs past deadline: backstop cancel. The executor's
        // own deadline polls normally fire first; this covers sources
        // whose deadline landed between polls of a long batch.
        for (auto &entry : running)
            if (entry.second->cause() == CancelCause::None &&
                entry.second->deadlineAtMs() <= now)
                entry.second->cancel(CancelCause::DeadlineExceeded);

        if (pushed)
            wakeIo();
    }
}

} // namespace yasim
