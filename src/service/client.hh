/**
 * @file
 * Client side of the experiment service protocol.
 *
 * ServiceClient owns one connection to a yasimd and exchanges the
 * framed request/response messages of service/protocol.hh. Two modes:
 *
 *   - call(): one synchronous round trip (the yasim-client CLI).
 *   - runBatch(): windowed pipelining — keep up to `window` requests
 *     outstanding, match responses to requests by id, retry admission
 *     rejections after draining the window, and transparently
 *     reconnect + resubmit whatever was in flight when the daemon
 *     dropped the connection (which it does on any corrupt frame, so a
 *     failpoint-injected bit flip costs a reconnect, never a lost or
 *     duplicated response).
 *
 * The at-most-once story: the daemon never responds twice to one
 * admitted request, and a resubmission after a drop is a new admission
 * whose result comes from the engine's memo table — so batch results
 * are bit-identical to an in-process run whatever faults the transport
 * injected. bench_service asserts exactly this.
 */

#ifndef YASIM_SERVICE_CLIENT_HH
#define YASIM_SERVICE_CLIENT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "service/protocol.hh"

namespace yasim {

/** How a ServiceClient reaches its daemon. */
struct ClientOptions
{
    /** Unix-domain socket path ("" = use TCP). */
    std::string socketPath;
    /** Loopback TCP port (used when socketPath is empty). */
    int tcpPort = -1;
    /** Reconnect attempts before a batch gives up. */
    uint32_t maxReconnects = 32;
    /** Outstanding-request window for runBatch(). */
    uint32_t window = 16;
    /**
     * Total-attempt budget per logical request: connects plus
     * admission-rejection resubmits. Exhausting it fails the call or
     * batch instead of retrying forever against an overloaded daemon.
     */
    uint32_t maxAttempts = 64;
};

/** What a runBatch() observed (bench_service's report material). */
struct BatchStats
{
    /** Requests submitted, including resubmissions after drops. */
    uint64_t submitted = 0;
    /**
     * Distinct requests that reached a terminal response: Ok, Error,
     * Cancelled, DeadlineExceeded, or a "shed" rejection. Retried
     * admission rejections are not terminal.
     */
    uint64_t completed = 0;
    /** Admission rejections that were retried. */
    uint64_t rejections = 0;
    /** Connection drops survived by reconnect + resubmit. */
    uint64_t reconnects = 0;
    /** Requests answered Cancelled (terminal; never retried). */
    uint64_t cancelled = 0;
    /** Requests answered DeadlineExceeded (terminal; never retried). */
    uint64_t deadlineExceeded = 0;
    /**
     * Requests the daemon shed under overload (Rejected "shed").
     * Terminal: the daemon judged the deadline hopeless, so a retry
     * would only deepen the overload that shed it.
     */
    uint64_t shed = 0;
};

/** One connection to a yasimd. See file comment. */
class ServiceClient
{
  public:
    explicit ServiceClient(ClientOptions options);
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Connect (or reconnect). False with a cause on failure. */
    bool connect(std::string &error);

    /**
     * One synchronous round trip. Reconnects and resubmits once per
     * allowed attempt when the connection drops mid-call. False (with
     * a cause) when the daemon stays unreachable.
     */
    bool call(const ExperimentRequest &request,
              ExperimentResponse &response, std::string &error);

    /**
     * Pipeline @p requests through the daemon. On success, fills
     * @p responses so responses[i] answers requests[i] (matched by id;
     * every request must carry a distinct id) and returns true. A
     * Rejected admission is retried — with capped-exponential jittered
     * backoff, up to maxAttempts per request — *except* "shed", which
     * is terminal (see BatchStats::shed); Cancelled and
     * DeadlineExceeded responses are likewise terminal. A true return
     * means every request got exactly one terminal response.
     */
    bool runBatch(const std::vector<ExperimentRequest> &requests,
                  std::vector<ExperimentResponse> &responses,
                  BatchStats &stats, std::string &error);

  private:
    bool sendAll(const std::string &bytes, std::string &error);
    /** Block until one whole frame arrives; decode it. */
    bool receiveResponse(ExperimentResponse &response,
                         std::string &error);
    void disconnect();

    ClientOptions opts;
    int fd = -1;
    std::string inBuf;
};

} // namespace yasim

#endif // YASIM_SERVICE_CLIENT_HH
