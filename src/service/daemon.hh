/**
 * @file
 * yasimd's core: a multi-tenant experiment service over one socket.
 *
 * ServiceDaemon listens on a Unix and/or loopback-TCP socket and
 * serves the framed protocol of service/protocol.hh. One I/O thread
 * owns every connection: it polls, splits the byte stream into
 * artifact frames (support/artifact_io frameSize()), decodes requests,
 * and runs admission control; a pool of executor threads drains a
 * priority job queue through the shared ExperimentEngine — so every
 * tenant hits one memo table, one disk cache, and one trace store, and
 * a config grid queued by eight clients simulates each cell once.
 *
 * Admission control (evaluated in arrival order, on the I/O thread):
 *
 *   - draining           → Rejected "draining" (new Run work only)
 *   - queue ≥ maxQueue   → Rejected "queue full"
 *   - per-connection outstanding ≥ clientQuota → Rejected "quota"
 *
 * Rejections are well-formed responses, not disconnects; clients back
 * off and resubmit. A malformed or oversized frame, by contrast, is a
 * protocol error: the connection is dropped on the spot (the peer is
 * broken or hostile — there is no frame boundary to resynchronize to),
 * and any in-flight results for it are discarded and counted.
 *
 * Draining (requestDrain(), or a Shutdown request): stop admitting,
 * finish every accepted job, flush every response, then exit the I/O
 * loop. requestDrain() is async-signal-safe — yasimd calls it straight
 * from its SIGTERM handler — so "kill -TERM yasimd" never loses an
 * accepted job.
 *
 * Deterministic fault injection (support/failpoint.hh) covers the
 * socket path like the artifact path:
 *
 *     svc.accept.transient   accept() of a pending connection fails
 *     svc.read.corrupt       one bit of a received chunk flips
 *
 * Both are exercised by tests/test_service.cc and the CI service job.
 */

#ifndef YASIM_SERVICE_DAEMON_HH
#define YASIM_SERVICE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hh"

namespace yasim {

/** Daemon construction knobs. */
struct DaemonOptions
{
    /** Unix-domain socket path ("" = no Unix listener). */
    std::string socketPath;
    /**
     * Loopback TCP port (-1 = no TCP listener, 0 = ephemeral — read
     * the bound port back with tcpPort()).
     */
    int tcpPort = -1;
    /** Executor threads draining the job queue. */
    unsigned workers = 2;
    /** Bound on queued-but-not-executing jobs (admission control). */
    size_t maxQueue = 256;
    /** Bound on one connection's outstanding jobs (per-client quota). */
    uint32_t clientQuota = 64;
    /** Largest request payload accepted before dropping the peer. */
    uint64_t maxFrameBytes = kMaxServicePayload;
};

/** Monotonic daemon counters (Stats responses embed them). */
struct DaemonCounters
{
    uint64_t connectionsAccepted = 0;
    uint64_t acceptTransients = 0;
    /** Well-formed requests of any kind that reached admission. */
    uint64_t requestsDecoded = 0;
    /** Run jobs admitted to the queue. */
    uint64_t jobsAccepted = 0;
    /** Jobs executed to completion (includes dropped-response jobs). */
    uint64_t jobsExecuted = 0;
    uint64_t rejectedQueueFull = 0;
    uint64_t rejectedQuota = 0;
    uint64_t rejectedDraining = 0;
    /** Malformed/oversized frames or payloads → connection dropped. */
    uint64_t protocolErrors = 0;
    uint64_t disconnects = 0;
    /** Completed jobs whose connection was gone at response time. */
    uint64_t responsesDropped = 0;
    /** High-water mark of the job queue. */
    uint64_t maxQueueDepth = 0;
};

/** The experiment service daemon. See file comment. */
class ServiceDaemon
{
  public:
    /** @p engine must outlive the daemon; it is shared by all tenants. */
    ServiceDaemon(DaemonOptions options, ExperimentEngine &engine);
    ~ServiceDaemon();

    ServiceDaemon(const ServiceDaemon &) = delete;
    ServiceDaemon &operator=(const ServiceDaemon &) = delete;

    /**
     * Bind the configured listeners and start the I/O and executor
     * threads. False (with a cause) when a listener cannot be bound.
     */
    bool start(std::string &error);

    /** The bound TCP port (valid after start(); -1 when TCP is off). */
    int tcpPort() const { return boundTcpPort; }

    /**
     * Begin draining. Async-signal-safe: sets a lock-free flag and
     * wakes the poll loop through the self-pipe.
     */
    void requestDrain();

    /** Block until the daemon has drained and every thread exited. */
    void wait();

    /** requestDrain() + wait(). Idempotent; the destructor calls it. */
    void stop();

    /** True once draining has begun. */
    bool draining() const { return drainRequested.load(); }

    /** Snapshot of the counters. */
    DaemonCounters counters() const;

    /** Engine + daemon counters as one JsonReport (kind "service-stats"). */
    JsonReport statsReport() const;

  private:
    /** One accepted connection, owned by the I/O thread. */
    struct Connection
    {
        int fd = -1;
        std::string inBuf;
        std::string outBuf;
        /** Admitted jobs not yet responded to (quota accounting). */
        uint32_t outstanding = 0;
        bool dropped = false;
    };

    /** One admitted Run job. */
    struct Job
    {
        uint64_t connId = 0;
        ExperimentRequest request;
    };

    /** A finished job's framed response, heading back to its client. */
    struct Outbound
    {
        uint64_t connId = 0;
        std::string frame;
    };

    void ioLoop();
    void workerLoop();
    /** Accept everything pending on @p listen_fd. */
    void acceptPending(int listen_fd);
    /**
     * Read, deframe, decode, admit. False = drop the connection, with
     * @p protocol_error set when the peer sent unverifiable bytes
     * (rather than disconnecting cleanly).
     */
    bool serviceInput(uint64_t conn_id, Connection &conn,
                      bool &protocol_error);
    /** Admission control + dispatch for one decoded request. */
    void admit(uint64_t conn_id, Connection &conn,
               const ExperimentRequest &request);
    /** Queue @p response for @p conn (frames it). */
    void respond(Connection &conn, const ExperimentResponse &response);
    /** Move completed responses from the outbox into connections. */
    void flushOutbox();
    /** Close and forget a connection. */
    void dropConnection(uint64_t conn_id, bool protocol_error);
    /** Wake the poll loop. */
    void wakeIo();

    DaemonOptions opts;
    ExperimentEngine &engine;

    int unixFd = -1;
    int tcpFd = -1;
    int boundTcpPort = -1;
    int wakePipe[2] = {-1, -1};
    bool started = false;
    bool joined = false;

    std::thread ioThread;
    std::vector<std::thread> workerThreads;

    std::atomic<bool> drainRequested{false};

    /** Connections by id (I/O thread only; stable across fd reuse). */
    std::map<uint64_t, Connection> connections;
    uint64_t nextConnId = 1;
    uint64_t admissionSeq = 0;

    mutable std::mutex mutex;
    std::condition_variable queueCv;
    /** Priority queue: (priority, admission seq) → job. */
    std::map<std::pair<uint32_t, uint64_t>, Job> queue;
    /** Jobs popped but not yet pushed to the outbox. */
    size_t activeJobs = 0;
    std::vector<Outbound> outbox;
    bool stopWorkers = false;
    DaemonCounters ctr;
};

} // namespace yasim

#endif // YASIM_SERVICE_DAEMON_HH
