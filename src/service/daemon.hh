/**
 * @file
 * yasimd's core: a multi-tenant experiment service over one socket.
 *
 * ServiceDaemon listens on a Unix and/or loopback-TCP socket and
 * serves the framed protocol of service/protocol.hh. One I/O thread
 * owns every connection: it polls, splits the byte stream into
 * artifact frames (support/artifact_io frameSize()), decodes requests,
 * and runs admission control; a pool of executor threads drains a
 * priority job queue through the shared ExperimentEngine — so every
 * tenant hits one memo table, one disk cache, and one trace store, and
 * a config grid queued by eight clients simulates each cell once.
 *
 * Admission control (evaluated in arrival order, on the I/O thread):
 *
 *   - draining           → Rejected "draining" (new Run work only)
 *   - queue ≥ maxQueue   → Rejected "queue full"
 *   - per-connection outstanding ≥ clientQuota → Rejected "quota"
 *   - estimated queue delay > request deadline → "shed" (see below)
 *
 * Rejections are well-formed responses, not disconnects; clients back
 * off and resubmit. A malformed or oversized frame, by contrast, is a
 * protocol error: the connection is dropped on the spot (the peer is
 * broken or hostile — there is no frame boundary to resynchronize to),
 * and any in-flight results for it are discarded and counted.
 *
 * Deadlines and cancellation (protocol v2, docs/robustness.md):
 *
 * A Run request may carry deadline_ms; admission stamps an absolute
 * monotonic expiry on the job's CancelSource, so executor polls trip
 * DeadlineExceeded cooperatively mid-run. A watchdog thread wakes at
 * the earliest pending expiry: queued jobs past deadline are answered
 * DeadlineExceeded without ever dispatching (nobody polls a queued
 * job), and running jobs past deadline get a backstop cancel() on
 * their source. A Cancel request names an earlier request id on the
 * same connection: a queued target is answered Cancelled and removed;
 * a running target's source is cancelled (its executor unwinds at the
 * next poll and answers Cancelled); the Cancel itself is acked Ok, or
 * Error when no such job exists. Every admitted job gets exactly one
 * response, whatever path retires it.
 *
 * Overload shedding: admission keeps an EWMA of job execution time;
 * when a deadline-carrying Run arrives and the estimated queue delay
 * (depth x EWMA / workers) already exceeds its deadline, the daemon
 * sheds the lowest-priority job — the incoming one, or a queued one
 * it outranks — with a well-formed Rejected "shed" response, instead
 * of burning executor time on work that is already dead.
 *
 * Draining (requestDrain(), or a Shutdown request): stop admitting,
 * finish every accepted job, flush every response, then exit the I/O
 * loop. requestDrain() is async-signal-safe — yasimd calls it straight
 * from its SIGTERM handler — so "kill -TERM yasimd" never loses an
 * accepted job.
 *
 * Deterministic fault injection (support/failpoint.hh) covers the
 * socket path like the artifact path:
 *
 *     svc.accept.transient   accept() of a pending connection fails
 *     svc.read.corrupt       one bit of a received chunk flips
 *     svc.cancel.dispatch    a popped job expires at dispatch (its
 *                            deadline is forced past, pre-execution)
 *
 * All are exercised by tests/test_service.cc and the CI service job.
 */

#ifndef YASIM_SERVICE_DAEMON_HH
#define YASIM_SERVICE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hh"

namespace yasim {

/** Daemon construction knobs. */
struct DaemonOptions
{
    /** Unix-domain socket path ("" = no Unix listener). */
    std::string socketPath;
    /**
     * Loopback TCP port (-1 = no TCP listener, 0 = ephemeral — read
     * the bound port back with tcpPort()).
     */
    int tcpPort = -1;
    /** Executor threads draining the job queue. */
    unsigned workers = 2;
    /** Bound on queued-but-not-executing jobs (admission control). */
    size_t maxQueue = 256;
    /** Bound on one connection's outstanding jobs (per-client quota). */
    uint32_t clientQuota = 64;
    /** Largest request payload accepted before dropping the peer. */
    uint64_t maxFrameBytes = kMaxServicePayload;
};

/** Monotonic daemon counters (Stats responses embed them). */
struct DaemonCounters
{
    uint64_t connectionsAccepted = 0;
    uint64_t acceptTransients = 0;
    /** Well-formed requests of any kind that reached admission. */
    uint64_t requestsDecoded = 0;
    /** Run jobs admitted to the queue. */
    uint64_t jobsAccepted = 0;
    /** Jobs executed to completion (includes dropped-response jobs). */
    uint64_t jobsExecuted = 0;
    uint64_t rejectedQueueFull = 0;
    uint64_t rejectedQuota = 0;
    uint64_t rejectedDraining = 0;
    /** Malformed/oversized frames or payloads → connection dropped. */
    uint64_t protocolErrors = 0;
    uint64_t disconnects = 0;
    /** Completed jobs whose connection was gone at response time. */
    uint64_t responsesDropped = 0;
    /** High-water mark of the job queue. */
    uint64_t maxQueueDepth = 0;
    /** Jobs answered Cancelled (queued removal or mid-run unwind). */
    uint64_t jobsCancelled = 0;
    /**
     * Jobs answered DeadlineExceeded: expired while queued, caught at
     * dispatch, or unwound mid-run by a deadline poll.
     */
    uint64_t jobsDeadlineExpired = 0;
    /** Jobs shed by overload control (Rejected "shed"). */
    uint64_t jobsShed = 0;
    /** Watchdog scans (one per wakeup, timed or prodded). */
    uint64_t watchdogWakeups = 0;
};

/** The experiment service daemon. See file comment. */
class ServiceDaemon
{
  public:
    /** @p engine must outlive the daemon; it is shared by all tenants. */
    ServiceDaemon(DaemonOptions options, ExperimentEngine &engine);
    ~ServiceDaemon();

    ServiceDaemon(const ServiceDaemon &) = delete;
    ServiceDaemon &operator=(const ServiceDaemon &) = delete;

    /**
     * Bind the configured listeners and start the I/O and executor
     * threads. False (with a cause) when a listener cannot be bound.
     */
    bool start(std::string &error);

    /** The bound TCP port (valid after start(); -1 when TCP is off). */
    int tcpPort() const { return boundTcpPort; }

    /**
     * Begin draining. Async-signal-safe: sets a lock-free flag and
     * wakes the poll loop through the self-pipe.
     */
    void requestDrain();

    /** Block until the daemon has drained and every thread exited. */
    void wait();

    /** requestDrain() + wait(). Idempotent; the destructor calls it. */
    void stop();

    /** True once draining has begun. */
    bool draining() const { return drainRequested.load(); }

    /** Snapshot of the counters. */
    DaemonCounters counters() const;

    /** Engine + daemon counters as one JsonReport (kind "service-stats"). */
    JsonReport statsReport() const;

  private:
    /** One accepted connection, owned by the I/O thread. */
    struct Connection
    {
        int fd = -1;
        std::string inBuf;
        std::string outBuf;
        /** Admitted jobs not yet responded to (quota accounting). */
        uint32_t outstanding = 0;
        bool dropped = false;
    };

    /** One admitted Run job. */
    struct Job
    {
        uint64_t connId = 0;
        ExperimentRequest request;
        /**
         * Cancellation handle, created at admission. Carries the
         * absolute deadline (when the request had one), so executor
         * polls expire it without any daemon bookkeeping.
         */
        std::shared_ptr<CancelSource> cancel;
        /** Mirror of cancel->deadlineAtMs(); INT64_MAX = none. */
        int64_t deadlineAtMs = INT64_MAX;
    };

    /** A finished job's framed response, heading back to its client. */
    struct Outbound
    {
        uint64_t connId = 0;
        std::string frame;
    };

    void ioLoop();
    void workerLoop();
    /**
     * Expire queued jobs and backstop-cancel running ones whose
     * deadlines passed; sleeps until the earliest pending expiry.
     */
    void watchdogLoop();
    /**
     * Frame @p response into the outbox for @p conn_id. Caller holds
     * `mutex` and wakes the I/O loop afterwards. The uniform
     * retirement path for every admitted-job response — flushOutbox()
     * decrements the connection's outstanding count exactly once per
     * call, whatever path retired the job.
     */
    void pushJobResponse(uint64_t conn_id,
                         const ExperimentResponse &response);
    /** Accept everything pending on @p listen_fd. */
    void acceptPending(int listen_fd);
    /**
     * Read, deframe, decode, admit. False = drop the connection, with
     * @p protocol_error set when the peer sent unverifiable bytes
     * (rather than disconnecting cleanly).
     */
    bool serviceInput(uint64_t conn_id, Connection &conn,
                      bool &protocol_error);
    /** Admission control + dispatch for one decoded request. */
    void admit(uint64_t conn_id, Connection &conn,
               const ExperimentRequest &request);
    /** Queue @p response for @p conn (frames it). */
    void respond(Connection &conn, const ExperimentResponse &response);
    /** Move completed responses from the outbox into connections. */
    void flushOutbox();
    /** Close and forget a connection. */
    void dropConnection(uint64_t conn_id, bool protocol_error);
    /** Wake the poll loop. */
    void wakeIo();

    DaemonOptions opts;
    ExperimentEngine &engine;

    int unixFd = -1;
    int tcpFd = -1;
    int boundTcpPort = -1;
    int wakePipe[2] = {-1, -1};
    bool started = false;
    bool joined = false;

    std::thread ioThread;
    std::vector<std::thread> workerThreads;
    std::thread watchdogThread;

    std::atomic<bool> drainRequested{false};

    /** Connections by id (I/O thread only; stable across fd reuse). */
    std::map<uint64_t, Connection> connections;
    uint64_t nextConnId = 1;
    uint64_t admissionSeq = 0;

    mutable std::mutex mutex;
    std::condition_variable queueCv;
    /** Priority queue: (priority, admission seq) → job. */
    std::map<std::pair<uint32_t, uint64_t>, Job> queue;
    /** Jobs popped but not yet pushed to the outbox. */
    size_t activeJobs = 0;
    std::vector<Outbound> outbox;
    bool stopWorkers = false;
    DaemonCounters ctr;

    /** Dispatched jobs by (connection, request id), for Cancel and
     *  the watchdog's running-job deadline backstop. */
    std::map<std::pair<uint64_t, uint64_t>,
             std::shared_ptr<CancelSource>> running;
    std::condition_variable watchdogCv;
    bool stopWatchdog = false;
    /**
     * EWMA of job execution time in ms (admission's queue-delay
     * estimate). 0 until the first job completes — shedding never
     * fires before the daemon has seen real work.
     */
    double ewmaJobMs = 0.0;
};

} // namespace yasim

#endif // YASIM_SERVICE_DAEMON_HH
