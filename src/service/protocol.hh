/**
 * @file
 * The versioned experiment-service wire API (docs/service.md).
 *
 * One canonical request/response struct pair is the typed entry point
 * for every way of running an experiment: `yasim-client` builds an
 * ExperimentRequest from its flags, `yasimd` decodes the same struct
 * off the socket, and in-process callers (tests, bench_service's
 * verification engine) hand it straight to executeRequest(). There is
 * exactly one serialization of each, so a daemon and a CLI from the
 * same release can never disagree about a field.
 *
 * On the wire each message is one artifact frame (support/artifact_io
 * container framing: magic, version, length, checksum, end mark) whose
 * inner magic is kRequestMagic or kResponseMagic and whose inner
 * version is kServiceFormatVersion. The framed payload is the same
 * line-oriented text the result cache uses (engine/result_io): a
 * tagged line per field, doubles as IEEE-754 bit patterns, a strict
 * "end" marker. Frame verification failures are protocol errors — the
 * daemon drops the connection; the client resubmits over a fresh one.
 *
 * Version discipline: kServiceFormatVersion bumps on any layout or
 * semantics change; a peer speaking another version is rejected at the
 * frame layer before any field is interpreted.
 */

#ifndef YASIM_SERVICE_PROTOCOL_HH
#define YASIM_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "engine/engine.hh"
#include "support/cancel.hh"
#include "techniques/technique.hh"
#include "workloads/suite.hh"

namespace yasim {

/** Wire-format version of the service protocol (frame inner version). */
// yasim-lint: version(service)
constexpr uint32_t kServiceFormatVersion = 2;

/** Inner frame magic of a request message. */
inline constexpr const char *kRequestMagic = "yasim-svc-req";
/** Inner frame magic of a response message. */
inline constexpr const char *kResponseMagic = "yasim-svc-rsp";

/** Largest payload a well-behaved peer ever frames (admission bound). */
constexpr uint64_t kMaxServicePayload = 1 << 20;

/** What an ExperimentRequest asks the daemon to do. */
enum class RequestKind : uint32_t {
    /** Resolve and run one experiment; the response carries a result. */
    Run = 0,
    /** Liveness probe; the response is an empty Ok. */
    Ping = 1,
    /** Engine + daemon counters as a JsonReport in Response::report. */
    Stats = 2,
    /** Begin draining: finish accepted jobs, refuse new ones, exit. */
    Shutdown = 3,
    /**
     * Cancel the job whose correlation id is `target` on this
     * connection. A queued target is answered Cancelled before
     * dispatch; a running one is cooperatively cancelled and answers
     * when its executor reaches the next poll point. The Cancel
     * request itself is acknowledged Ok (Error when no such job).
     */
    Cancel = 4,
};

/** The canonical experiment request (CLI-built, wire-carried). */
struct ExperimentRequest
{
    /** Client-chosen correlation id, echoed verbatim in the response. */
    uint64_t id = 0;
    RequestKind kind = RequestKind::Run;
    /**
     * Scheduling priority; lower runs sooner. Ties dispatch in
     * admission order, so equal-priority traffic is FIFO.
     */
    uint32_t priority = 1;
    /** Suite benchmark name, e.g. "gzip" (Run only). */
    std::string benchmark;
    /**
     * Technique selector: "reference" for the full reference run, or
     * "<family>/<permutation>" matched against the benchmark's Table-1
     * permutations, e.g. "SimPoint/multiple 10M" (Run only).
     */
    std::string technique = "reference";
    /**
     * Configuration selector: "arch:N" (Table-3 preset 1..4),
     * "envelope:N" (envelopeConfigs() index), or "pb:N" (row N of the
     * un-folded 43-factor PB design) (Run only).
     */
    std::string config = "arch:1";
    /** Suite scaling the experiment runs under. */
    SuiteConfig suite;
    /**
     * Client deadline in milliseconds from admission; 0 = none (Run
     * only). A job still queued at expiry is answered DeadlineExceeded
     * without executing; a running one is cooperatively cancelled by
     * the daemon's watchdog and answers DeadlineExceeded within one
     * batch quantum of the executor's next poll.
     */
    uint64_t deadlineMs = 0;
    /** Correlation id of the job to cancel (Cancel only). */
    uint64_t target = 0;
};

/** Terminal status of a request. */
enum class ResponseStatus : uint32_t {
    Ok = 0,
    /** The request was understood but could not be executed. */
    Error = 1,
    /** Admission control refused it (queue full, quota, draining). */
    Rejected = 2,
    /** Cancelled by a Cancel request before or during execution. */
    Cancelled = 3,
    /** The request's deadline_ms passed before a result was ready. */
    DeadlineExceeded = 4,
};

/** The canonical experiment response. */
struct ExperimentResponse
{
    /** Correlation id echoed from the request. */
    uint64_t id = 0;
    ResponseStatus status = ResponseStatus::Ok;
    /** Human-readable cause when status != Ok. */
    std::string error;
    /** The result's full cache key (Run + Ok only; "" otherwise). */
    std::string key;
    /** The experiment result (Run + Ok only). */
    TechniqueResult result;
    /** Rendered JsonReport (Stats + Ok only; "" otherwise). */
    std::string report;
};

/** Serialize @p request to its canonical payload text. */
std::string encodeRequest(const ExperimentRequest &request);

/**
 * Parse a request payload. Returns false — with a cause in @p error —
 * on any malformed, truncated, or trailing-garbage input. Never
 * aborts: the input is untrusted wire data.
 */
bool decodeRequest(const std::string &payload,
                   ExperimentRequest &request, std::string &error);

/** Serialize @p response to its canonical payload text. */
std::string encodeResponse(const ExperimentResponse &response);

/** Parse a response payload (same contract as decodeRequest). */
bool decodeResponse(const std::string &payload,
                    ExperimentResponse &response, std::string &error);

/** @p request as one complete wire frame. */
std::string frameRequest(const ExperimentRequest &request);

/** @p response as one complete wire frame. */
std::string frameResponse(const ExperimentResponse &response);

/**
 * Resolve @p request's technique selector against the benchmark's
 * permutation table. Returns nullptr with a cause in @p error when the
 * selector names nothing.
 */
TechniquePtr resolveTechnique(const ExperimentRequest &request,
                              std::string &error);

/**
 * Resolve @p request's configuration selector. Returns false with a
 * cause in @p error on an unknown scheme or out-of-range index.
 */
bool resolveConfig(const ExperimentRequest &request, SimConfig &config,
                   std::string &error);

/**
 * Execute @p request on @p engine and build its response: validate,
 * resolve technique and configuration, run through the engine's memo /
 * disk caches, and attach the result under its cache key. Validation
 * failures come back as status Error, never as a crash — this is the
 * one execution path shared by the daemon, the CLI's local mode, and
 * the in-process drivers.
 *
 * When @p cancel is a valid token, the run polls it cooperatively and
 * a cancelled run comes back as status Cancelled or DeadlineExceeded
 * (per the token's cause) with no result attached — never an
 * exception, never a partial result.
 */
ExperimentResponse executeRequest(ExperimentEngine &engine,
                                  const ExperimentRequest &request,
                                  CancelToken cancel = CancelToken());

} // namespace yasim

#endif // YASIM_SERVICE_PROTOCOL_HH
