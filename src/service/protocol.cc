#include "service/protocol.hh"

#include <sstream>

#include "core/pb_characterization.hh"
#include "engine/cache_key.hh"
#include "engine/result_io.hh"
#include "sim/config.hh"
#include "stats/plackett_burman.hh"
#include "support/artifact_io.hh"
#include "techniques/full_reference.hh"
#include "techniques/permutations.hh"

namespace yasim {

namespace {

/** Read one whole line and return its remainder after "tag ". */
bool
readTagged(std::istream &is, const char *tag, std::string &value)
{
    std::string line;
    // Skip the newline left by a preceding >> extraction.
    while (std::getline(is, line) && line.empty()) {
    }
    size_t tag_len = std::char_traits<char>::length(tag);
    if (line.size() < tag_len + 1 ||
        line.compare(0, tag_len, tag) != 0 || line[tag_len] != ' ')
        return false;
    value = line.substr(tag_len + 1);
    return true;
}

/** Write an exact-length block: "tag N\n" + N raw bytes + "\n". */
void
writeBlock(std::ostream &os, const char *tag, const std::string &bytes)
{
    os << tag << ' ' << bytes.size() << '\n' << bytes << '\n';
}

/** Read a block written by writeBlock (length is wire data: bounded). */
bool
readBlock(std::istream &is, const char *expected_tag, std::string &out)
{
    std::string tag;
    uint64_t n = 0;
    if (!(is >> tag >> n) || tag != expected_tag ||
        n > kMaxServicePayload)
        return false;
    if (is.get() != '\n')
        return false;
    out.resize(n);
    if (n && !is.read(out.data(), std::streamsize(n)))
        return false;
    return is.get() == '\n';
}

/** Consume the trailing "end" marker and require EOF behind it. */
bool
readEnd(std::istream &is)
{
    std::string tag;
    if (!(is >> tag) || tag != "end")
        return false;
    std::string trailing;
    return !(is >> trailing);
}

bool
readHeader(std::istream &is, const char *magic, std::string &error)
{
    std::string tag;
    uint32_t version = 0;
    if (!(is >> tag >> version) || tag != magic) {
        error = "bad payload header";
        return false;
    }
    if (version != kServiceFormatVersion) {
        error = "unsupported payload version";
        return false;
    }
    return true;
}

} // namespace

// yasim-lint: serialized(service)
std::string
encodeRequest(const ExperimentRequest &request)
{
    std::ostringstream os;
    os << "yasim-request " << kServiceFormatVersion << '\n';
    os << "id " << request.id << '\n';
    os << "kind " << uint32_t(request.kind) << '\n';
    os << "priority " << request.priority << '\n';
    os << "deadline " << request.deadlineMs << '\n';
    os << "target " << request.target << '\n';
    os << "bench " << request.benchmark << '\n';
    os << "technique " << request.technique << '\n';
    os << "config " << request.config << '\n';
    os << "ref " << request.suite.referenceInstructions << '\n';
    os << "seed " << request.suite.seed << '\n';
    os << "end\n";
    return os.str();
}

// yasim-lint: serialized(service)
bool
decodeRequest(const std::string &payload, ExperimentRequest &request,
              std::string &error)
{
    std::istringstream is(payload);
    if (!readHeader(is, "yasim-request", error))
        return false;
    std::string tag;
    uint32_t kind = 0;
    if (!(is >> tag >> request.id) || tag != "id") {
        error = "bad id field";
        return false;
    }
    if (!(is >> tag >> kind) || tag != "kind" ||
        kind > uint32_t(RequestKind::Cancel)) {
        error = "bad kind field";
        return false;
    }
    request.kind = RequestKind(kind);
    if (!(is >> tag >> request.priority) || tag != "priority") {
        error = "bad priority field";
        return false;
    }
    if (!(is >> tag >> request.deadlineMs) || tag != "deadline") {
        error = "bad deadline field";
        return false;
    }
    if (!(is >> tag >> request.target) || tag != "target") {
        error = "bad target field";
        return false;
    }
    if (!readTagged(is, "bench", request.benchmark) ||
        !readTagged(is, "technique", request.technique) ||
        !readTagged(is, "config", request.config)) {
        error = "bad selector field";
        return false;
    }
    if (!(is >> tag >> request.suite.referenceInstructions) ||
        tag != "ref") {
        error = "bad ref field";
        return false;
    }
    if (!(is >> tag >> request.suite.seed) || tag != "seed") {
        error = "bad seed field";
        return false;
    }
    if (!readEnd(is)) {
        error = "bad end marker";
        return false;
    }
    return true;
}

// yasim-lint: serialized(service)
std::string
encodeResponse(const ExperimentResponse &response)
{
    std::ostringstream os;
    os << "yasim-response " << kServiceFormatVersion << '\n';
    os << "id " << response.id << '\n';
    os << "status " << uint32_t(response.status) << '\n';
    os << "error " << response.error << '\n';
    os << "key " << response.key << '\n';
    writeBlock(os, "report", response.report);
    std::string result_text;
    if (!response.key.empty()) {
        std::ostringstream ros;
        writeResult(ros, response.key, response.result);
        result_text = ros.str();
    }
    writeBlock(os, "result", result_text);
    os << "end\n";
    return os.str();
}

// yasim-lint: serialized(service)
bool
decodeResponse(const std::string &payload, ExperimentResponse &response,
               std::string &error)
{
    std::istringstream is(payload);
    if (!readHeader(is, "yasim-response", error))
        return false;
    std::string tag;
    uint32_t status = 0;
    if (!(is >> tag >> response.id) || tag != "id") {
        error = "bad id field";
        return false;
    }
    if (!(is >> tag >> status) || tag != "status" ||
        status > uint32_t(ResponseStatus::DeadlineExceeded)) {
        error = "bad status field";
        return false;
    }
    response.status = ResponseStatus(status);
    if (!readTagged(is, "error", response.error) ||
        !readTagged(is, "key", response.key)) {
        error = "bad error/key field";
        return false;
    }
    std::string result_text;
    if (!readBlock(is, "report", response.report) ||
        !readBlock(is, "result", result_text)) {
        error = "bad report/result block";
        return false;
    }
    if (!response.key.empty()) {
        std::istringstream ris(result_text);
        if (!readResult(ris, response.key, response.result)) {
            error = "bad embedded result";
            return false;
        }
    } else if (!result_text.empty()) {
        error = "result block without a key";
        return false;
    }
    if (!readEnd(is)) {
        error = "bad end marker";
        return false;
    }
    return true;
}

std::string
frameRequest(const ExperimentRequest &request)
{
    return encodeFrame(kRequestMagic, kServiceFormatVersion,
                       encodeRequest(request));
}

std::string
frameResponse(const ExperimentResponse &response)
{
    return encodeFrame(kResponseMagic, kServiceFormatVersion,
                       encodeResponse(response));
}

TechniquePtr
resolveTechnique(const ExperimentRequest &request, std::string &error)
{
    if (!isBenchmark(request.benchmark)) {
        error = "unknown benchmark '" + request.benchmark + "'";
        return nullptr;
    }
    if (request.technique == "reference")
        return std::make_shared<FullReference>();
    size_t slash = request.technique.find('/');
    if (slash == std::string::npos) {
        error = "technique selector '" + request.technique +
                "' is neither \"reference\" nor \"family/permutation\"";
        return nullptr;
    }
    std::string family = request.technique.substr(0, slash);
    std::string permutation = request.technique.substr(slash + 1);
    for (const TechniquePtr &t : table1Permutations(request.benchmark)) {
        if (t->name() == family && t->permutation() == permutation)
            return t;
    }
    error = "no Table-1 permutation '" + request.technique + "' for '" +
            request.benchmark + "'";
    return nullptr;
}

bool
resolveConfig(const ExperimentRequest &request, SimConfig &config,
              std::string &error)
{
    size_t colon = request.config.find(':');
    if (colon == std::string::npos) {
        error = "config selector '" + request.config +
                "' is not \"scheme:index\"";
        return false;
    }
    std::string scheme = request.config.substr(0, colon);
    char *end = nullptr;
    const char *index_text = request.config.c_str() + colon + 1;
    long index = std::strtol(index_text, &end, 10);
    if (end == index_text || *end != '\0' || index < 0) {
        error = "bad config index in '" + request.config + "'";
        return false;
    }
    if (scheme == "arch") {
        if (index < 1 || index > 4) {
            error = "arch config index must be 1..4";
            return false;
        }
        config = architecturalConfig(int(index));
        return true;
    }
    if (scheme == "envelope") {
        std::vector<SimConfig> configs = envelopeConfigs();
        if (size_t(index) >= configs.size()) {
            error = "envelope config index out of range";
            return false;
        }
        config = configs[size_t(index)];
        return true;
    }
    if (scheme == "pb") {
        std::vector<SimConfig> configs =
            pbDesignConfigs(PbDesign::forFactors(43, false));
        if (size_t(index) >= configs.size()) {
            error = "pb config index out of range";
            return false;
        }
        config = configs[size_t(index)];
        return true;
    }
    error = "unknown config scheme '" + scheme + "'";
    return false;
}

ExperimentResponse
executeRequest(ExperimentEngine &engine,
               const ExperimentRequest &request, CancelToken cancel)
{
    ExperimentResponse response;
    response.id = request.id;

    switch (request.kind) {
      case RequestKind::Ping:
      case RequestKind::Shutdown:
      case RequestKind::Cancel:
        // Shutdown and Cancel are interpreted by the daemon's
        // admission layer; as a plain execution either acknowledges
        // like a ping (in-process there is nothing to drain or
        // cancel).
        return response;
      case RequestKind::Stats:
        response.report = engine.statsReport().render();
        return response;
      case RequestKind::Run:
        break;
    }

    if (request.suite.referenceInstructions < 100000) {
        response.status = ResponseStatus::Error;
        response.error = "ref instructions must be at least 100000";
        return response;
    }
    TechniquePtr technique = resolveTechnique(request, response.error);
    if (!technique) {
        response.status = ResponseStatus::Error;
        return response;
    }
    SimConfig config;
    if (!resolveConfig(request, config, response.error)) {
        response.status = ResponseStatus::Error;
        return response;
    }

    TechniqueContext ctx =
        engine.context(request.benchmark, request.suite);
    ctx.cancel = std::move(cancel);
    try {
        response.result = engine.run(*technique, ctx, config);
    } catch (const CancelledError &cancelled) {
        response.status = cancelled.cause ==
                                  CancelCause::DeadlineExceeded
                              ? ResponseStatus::DeadlineExceeded
                              : ResponseStatus::Cancelled;
        response.error = cancelCauseName(cancelled.cause);
        return response;
    }
    response.key = resultCacheKey(*technique, ctx, config);
    return response;
}

} // namespace yasim
