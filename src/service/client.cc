#include "service/client.hh"

#include <cerrno>
#include <cstring>
#include <deque>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/artifact_io.hh"
#include "support/backoff.hh"
#include "support/logging.hh"

namespace yasim {

namespace {

/** Backoff seed for reconnects and admission retries (see rng.hh). */
constexpr uint64_t kClientBackoffSeed = 0xc11e47b0ffULL;

} // namespace

ServiceClient::ServiceClient(ClientOptions options)
    : opts(std::move(options))
{
    if (opts.window == 0)
        opts.window = 1;
}

ServiceClient::~ServiceClient()
{
    disconnect();
}

void
ServiceClient::disconnect()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    inBuf.clear();
}

bool
ServiceClient::connect(std::string &error)
{
    disconnect();
    if (!opts.socketPath.empty()) {
        sockaddr_un addr{};
        if (opts.socketPath.size() >= sizeof(addr.sun_path)) {
            error = "socket path too long";
            return false;
        }
        fd = socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            error = csprintf("socket: %s", std::strerror(errno));
            return false;
        }
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, opts.socketPath.c_str(),
                    opts.socketPath.size() + 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            error = csprintf("connect '%s': %s",
                             opts.socketPath.c_str(),
                             std::strerror(errno));
            disconnect();
            return false;
        }
        return true;
    }
    if (opts.tcpPort < 0) {
        error = "no endpoint configured (need a socket path or port)";
        return false;
    }
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = csprintf("socket: %s", std::strerror(errno));
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(uint16_t(opts.tcpPort));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = csprintf("connect port %d: %s", opts.tcpPort,
                         std::strerror(errno));
        disconnect();
        return false;
    }
    return true;
}

bool
ServiceClient::sendAll(const std::string &bytes, std::string &error)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = send(fd, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = csprintf("send: %s", std::strerror(errno));
            return false;
        }
        sent += size_t(n);
    }
    return true;
}

bool
ServiceClient::receiveResponse(ExperimentResponse &response,
                               std::string &error)
{
    for (;;) {
        uint64_t frame_bytes = 0;
        FrameSizeStatus status =
            frameSize(inBuf, kMaxServicePayload, frame_bytes);
        if (status == FrameSizeStatus::Malformed) {
            error = "malformed response frame";
            return false;
        }
        if (status == FrameSizeStatus::Known &&
            inBuf.size() >= frame_bytes) {
            std::string payload, frame_error;
            bool ok = decodeFrame(
                std::string_view(inBuf).substr(0, size_t(frame_bytes)),
                kResponseMagic, kServiceFormatVersion, payload,
                frame_error);
            inBuf.erase(0, size_t(frame_bytes));
            if (!ok) {
                error = "response frame failed verification: " +
                        frame_error;
                return false;
            }
            if (!decodeResponse(payload, response, error))
                return false;
            return true;
        }

        char buffer[1 << 16];
        ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
        if (n == 0) {
            error = "daemon closed the connection";
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = csprintf("recv: %s", std::strerror(errno));
            return false;
        }
        inBuf.append(buffer, size_t(n));
    }
}

bool
ServiceClient::call(const ExperimentRequest &request,
                    ExperimentResponse &response, std::string &error)
{
    std::string frame = frameRequest(request);
    Backoff retry_backoff(kClientBackoffSeed);
    for (uint32_t attempt = 0;; ++attempt) {
        if (attempt >= opts.maxAttempts) {
            error = "attempt budget exhausted";
            return false;
        }
        if (fd < 0 && !connect(error)) {
            if (attempt >= opts.maxReconnects)
                return false;
            retry_backoff.sleep();
            continue;
        }
        if (sendAll(frame, error) && receiveResponse(response, error))
            return true;
        disconnect();
        if (attempt >= opts.maxReconnects)
            return false;
        retry_backoff.sleep();
    }
}

bool
ServiceClient::runBatch(const std::vector<ExperimentRequest> &requests,
                        std::vector<ExperimentResponse> &responses,
                        BatchStats &stats, std::string &error)
{
    responses.assign(requests.size(), ExperimentResponse{});
    stats = BatchStats{};

    // Ids are the correlation key; a duplicate would make responses
    // unattributable.
    std::map<uint64_t, size_t> by_id;
    for (size_t i = 0; i < requests.size(); ++i) {
        if (!by_id.emplace(requests[i].id, i).second) {
            error = csprintf("duplicate request id %llu",
                             static_cast<unsigned long long>(
                                 requests[i].id));
            return false;
        }
    }

    std::deque<size_t> pending;
    for (size_t i = 0; i < requests.size(); ++i)
        pending.push_back(i);
    std::map<uint64_t, size_t> outstanding;
    size_t completed = 0;
    uint32_t reconnect_attempts = 0;
    uint32_t drain_rejections = 0;
    /** Per-request resubmission budget (admission retries). */
    std::vector<uint32_t> attempts(requests.size(), 0);
    Backoff reconnect_backoff(kClientBackoffSeed);
    Backoff reject_backoff(kClientBackoffSeed ^ 1);

    auto requeueOutstanding = [&] {
        // Oldest first, ahead of never-sent work.
        for (auto it = outstanding.rbegin(); it != outstanding.rend();
             ++it)
            pending.push_front(it->second);
        outstanding.clear();
    };

    while (completed < requests.size()) {
        if (fd < 0) {
            if (!connect(error)) {
                if (++reconnect_attempts > opts.maxReconnects)
                    return false;
                reconnect_backoff.sleep();
                continue;
            }
            reconnect_backoff.reset();
        }

        bool io_failed = false;
        while (outstanding.size() < opts.window && !pending.empty()) {
            size_t index = pending.front();
            pending.pop_front();
            if (!sendAll(frameRequest(requests[index]), error)) {
                pending.push_front(index);
                io_failed = true;
                break;
            }
            outstanding.emplace(requests[index].id, index);
            ++stats.submitted;
        }

        ExperimentResponse response;
        if (!io_failed && !outstanding.empty() &&
            !receiveResponse(response, error))
            io_failed = true;

        if (io_failed) {
            // The daemon drops a connection on any unverifiable frame
            // (e.g. an injected bit flip). Everything unanswered is
            // resubmitted on a fresh connection; answered requests are
            // never resent, so no response can be duplicated.
            disconnect();
            requeueOutstanding();
            ++stats.reconnects;
            if (++reconnect_attempts > opts.maxReconnects)
                return false;
            reconnect_backoff.sleep();
            continue;
        }
        if (outstanding.empty())
            continue;
        reconnect_attempts = 0;

        auto it = outstanding.find(response.id);
        if (it == outstanding.end()) {
            error = csprintf("response for unknown id %llu",
                             static_cast<unsigned long long>(
                                 response.id));
            return false;
        }
        size_t index = it->second;
        outstanding.erase(it);

        if (response.status == ResponseStatus::Rejected &&
            response.error != "shed") {
            if (response.error == "draining" &&
                ++drain_rejections > 3) {
                error = "daemon is draining; batch cannot complete";
                return false;
            }
            if (++attempts[index] >= opts.maxAttempts) {
                error = csprintf(
                    "attempt budget exhausted for request id %llu "
                    "(last rejection: %s)",
                    static_cast<unsigned long long>(response.id),
                    response.error.c_str());
                return false;
            }
            ++stats.rejections;
            pending.push_back(index);
            reject_backoff.sleep();
            continue;
        }
        // Terminal: Ok, Error, Cancelled, DeadlineExceeded, or a
        // "shed" rejection (retrying shed work would deepen the
        // overload that shed it).
        switch (response.status) {
          case ResponseStatus::Cancelled:
            ++stats.cancelled;
            break;
          case ResponseStatus::DeadlineExceeded:
            ++stats.deadlineExceeded;
            break;
          case ResponseStatus::Rejected:
            ++stats.shed;
            break;
          default:
            break;
        }
        responses[index] = std::move(response);
        ++completed;
        ++stats.completed;
    }
    return true;
}

} // namespace yasim
