/**
 * @file
 * The ExperimentEngine: a memoized, pooled simulation service.
 *
 * The engine is the single entry point for running techniques and
 * technique grids. Every result is memoized in memory under its full
 * content key (see cache_key.hh), deduplicating the detailed reference
 * runs that the characterizations and drivers would otherwise repeat
 * per figure; with a cache directory configured, results also persist
 * across processes in a versioned on-disk cache, so a repeated bench
 * invocation performs zero simulations. Concurrent requests for the
 * same key collapse onto one computation (the others wait), and
 * prefetch() schedules a whole technique x configuration grid onto the
 * process-wide work-stealing pool while leaving the driver's table
 * assembly serial — and therefore byte-identical to a serial run.
 *
 * The engine implements SimulationService, so every core analysis can
 * take it as a handle; counters (printStats) account for hits, misses,
 * disk traffic, evictions, and the work units the caches saved.
 */

#ifndef YASIM_ENGINE_ENGINE_HH
#define YASIM_ENGINE_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <iosfwd>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/result_io.hh"
#include "techniques/service.hh"
#include "techniques/trace_store.hh"

namespace yasim {

/** Engine construction knobs. */
struct EngineOptions
{
    /** Result-cache directory; empty = in-memory memoization only. */
    std::string cacheDir;
    /** Memo-table bound; least-recently-used entries evict beyond it. */
    size_t maxMemoEntries = 1 << 16;
    /**
     * Record each benchmark's execution once and replay it for every
     * configuration (--no-trace turns this off). Results are
     * bit-identical either way; only the functional-interpretation
     * work is shared.
     */
    bool traces = true;
    /** Trace checkpoint spacing (0 = adaptive; see ExecTrace). */
    uint64_t traceCheckpointSpacing = 0;
    /** In-memory trace budget in bytes (LRU eviction beyond it). */
    size_t maxTraceBytes = size_t(1) << 30;
    /**
     * On-disk cache-directory budget in bytes (0 = unbounded;
     * --cache-budget-mb on every bench). After each artifact write the
     * oldest files are evicted, by modification time, until the
     * directory fits — so long-lived shared cache dirs stay bounded.
     */
    uint64_t cacheBudgetBytes = 0;
    /**
     * Checkpoint-sharded parallel reference simulation (sim/sharded.hh),
     * stamped into every TechniqueContext the engine builds. When
     * enabled and warmDir is empty, warmed-uarch summaries persist
     * under "<cacheDir>/warm" (memory-only engines skip persistence).
     */
    ShardOptions shards = {};
    /**
     * Live-point sampled simulation (sim/livepoint.hh), stamped into
     * every TechniqueContext the engine builds. When enabled and dir
     * is empty, live-points persist under "<cacheDir>/livepoints"
     * (memory-only engines keep the library in memory). Results are
     * bit-identical with or without it; only wall-clock changes.
     */
    LivePointOptions livepoints = {};
};

/** Monotonic engine counters (work units: see CostModel). */
struct EngineCounters
{
    uint64_t memoHits = 0;
    uint64_t memoMisses = 0;
    /** Requests that joined an in-flight computation of the same key. */
    uint64_t inflightJoins = 0;
    uint64_t diskHits = 0;
    uint64_t diskWrites = 0;
    uint64_t evictions = 0;
    /** Technique::run invocations that actually simulated. */
    uint64_t runsExecuted = 0;
    uint64_t refLengthHits = 0;
    uint64_t refLengthMisses = 0;
    uint64_t refLengthDiskHits = 0;
    /** Reference lengths resolved from a recorded trace's length. */
    uint64_t refLengthFromTrace = 0;
    /** Jobs scheduled through prefetch(). */
    uint64_t gridJobs = 0;
    /**
     * Result/reflen cache entries that failed verification (bad
     * checksum, truncation, unparseable payload) and were quarantined
     * to "<file>.corrupt", then recomputed.
     */
    uint64_t cacheCorrupt = 0;
    /**
     * Result/reflen cache entries written by another format
     * generation: cleanly framed, deleted as stale (no quarantine),
     * recomputed. Counted apart from cacheCorrupt so a version bump
     * never reads as data rot.
     */
    uint64_t cacheVersionMiss = 0;
    /** Cache reads that stayed unreadable after bounded retries. */
    uint64_t cacheUnreadable = 0;
    /** Transient-I/O retries performed by artifact reads and writes. */
    uint64_t ioRetries = 0;
    /** Files evicted enforcing EngineOptions::cacheBudgetBytes. */
    uint64_t budgetEvictions = 0;
    /**
     * Technique runs that stopped at a cancellation poll (explicit
     * cancel or deadline). Their partial work units are still charged
     * to workUnitsComputed; their results are never memoized, cached,
     * or returned.
     */
    uint64_t runsCancelled = 0;
    /**
     * Disk-cache writes skipped because the request was cancelled by
     * the time the result would have been published (or the
     * "engine.cancel.write" failpoint fired). The atomic temp+rename
     * publish means an abort leaves no file at all — never a torn one.
     */
    uint64_t cacheWritesAborted = 0;
    double workUnitsComputed = 0.0;
    double workUnitsSaved = 0.0;
};

/** Memoized, pooled simulation service. See file comment. */
class ExperimentEngine : public SimulationService
{
  public:
    explicit ExperimentEngine(EngineOptions options = {});
    ~ExperimentEngine() override;

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    /** Memoized (and disk-cached) technique result. */
    TechniqueResult run(const Technique &technique,
                        const TechniqueContext &ctx,
                        const SimConfig &config) override;

    /** Memoized (and disk-cached) reference length. */
    uint64_t referenceLength(const std::string &benchmark,
                             const SuiteConfig &suite) override;

    /** TechniqueContext::make through this engine. */
    TechniqueContext context(const std::string &benchmark,
                             const SuiteConfig &suite);

    /** One grid cell for prefetch(). Pointees must outlive the call. */
    struct GridJob
    {
        const Technique *technique = nullptr;
        const TechniqueContext *ctx = nullptr;
        const SimConfig *config = nullptr;
    };

    /**
     * Warm the cache for every job on the work-stealing pool. Results
     * are discarded here; the subsequent (serial) table assembly hits
     * the memo table, so output ordering never depends on scheduling.
     */
    void prefetch(const std::vector<GridJob> &jobs);

    /**
     * Convenience grid: every technique on every configuration, plus —
     * when @p include_reference — the full reference run per
     * configuration (the baseline every analysis needs anyway).
     */
    void prefetch(const TechniqueContext &ctx,
                  const std::vector<TechniquePtr> &techniques,
                  const std::vector<SimConfig> &configs,
                  bool include_reference = true);

    const EngineOptions &options() const { return opts; }

    /** The shared trace store, or nullptr when traces are disabled. */
    TraceStore *traceStore() override { return traces.get(); }

    /** Snapshot of the counters. */
    EngineCounters counters() const;

    /** Render the counters and pool statistics as a Table. */
    void printStats(std::ostream &os) const;

    /**
     * The counters and pool statistics as a versioned JsonReport of
     * kind "engine-stats" (--engine-stats-json, yasimd `stats`).
     */
    JsonReport statsReport() const;

    /**
     * Stamp the counter fields of statsReport() into @p report —
     * emitters that wrap the engine (the service daemon) merge them
     * into their own reports this way.
     */
    void appendCounters(JsonReport &report) const;

  private:
    struct MemoEntry
    {
        TechniqueResult result;
        std::list<std::string>::iterator lruPos;
    };

    struct InFlight
    {
        bool done = false;
        /**
         * The computing request was cancelled: `result` never
         * existed. Joiners waiting on this flight loop back and
         * recompute (or become the new owner) instead of inheriting
         * a cancellation that was not theirs.
         */
        bool cancelled = false;
        TechniqueResult result;
    };

    /** Memoized lookup-or-compute; labels not yet normalized. */
    TechniqueResult fetch(const Technique &technique,
                          const TechniqueContext &ctx,
                          const SimConfig &config);

    /** Disk path for a key's payload file. */
    std::string diskPath(const std::string &key_text,
                         const char *suffix) const;
    bool loadResultFromDisk(const std::string &key_text,
                            TechniqueResult &result);
    void storeResultToDisk(const std::string &key_text,
                           const TechniqueResult &result);
    /**
     * Account a framed-artifact read that did not produce a payload:
     * bump the corruption/retry counters and emit the one-per-run
     * degraded-cache warning. @p what names the artifact kind.
     */
    void noteFailedRead(const std::string &path, const char *what,
                        const std::string &error, bool corrupt,
                        uint32_t retries);
    /** Enforce cacheBudgetBytes after a write (no-op when 0). */
    void enforceCacheBudget();
    /** Insert into the memo table and evict past the bound. Locked. */
    void memoInsert(const std::string &key_text,
                    const TechniqueResult &result);

    EngineOptions opts;
    /** Shared execution-trace store (null when opts.traces is false). */
    std::unique_ptr<TraceStore> traces;

    mutable std::mutex mutex;
    std::condition_variable inflightCv;
    std::unordered_map<std::string, MemoEntry> memo;
    /** LRU order, most recent first; values are memo keys. */
    std::list<std::string> lru;
    std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight;
    std::map<std::string, uint64_t> refLengths;
    EngineCounters ctr;
    /** One degraded-cache warning per run, however many entries rot. */
    std::atomic<bool> ioWarned{false};
};

} // namespace yasim

#endif // YASIM_ENGINE_ENGINE_HH
