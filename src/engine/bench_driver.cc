#include "engine/bench_driver.hh"

#include <algorithm>
#include <iostream>

#include "core/svat_analysis.hh"
#include "sim/config.hh"
#include "support/logging.hh"
#include "support/table.hh"

namespace yasim {

BenchDriver::BenchDriver(int argc, char **argv)
    : argCount(argc), argValues(argv)
{
}

BenchDriver::~BenchDriver() = default;

BenchDriver &
BenchDriver::defaultRefInsts(uint64_t ref_insts)
{
    refInsts = ref_insts;
    return *this;
}

BenchDriver &
BenchDriver::benchmark(std::string bench)
{
    svatBenchmark = std::move(bench);
    return *this;
}

BenchDriver &
BenchDriver::figure(std::string figure)
{
    svatFigure = std::move(figure);
    return *this;
}

BenchDriver &
BenchDriver::techniques(std::vector<TechniquePtr> techniques)
{
    svatTechniques = std::move(techniques);
    return *this;
}

void
BenchDriver::setUp()
{
    if (eng)
        return;
    opts = parseBenchOptions(argCount, argValues, refInsts);
    setInformEnabled(false);
    applyEngineRuntime(opts.engine);
    eng = std::make_unique<ExperimentEngine>(
        engineOptionsFrom(opts.engine));
}

int
BenchDriver::run(const std::function<void(BenchDriver &)> &body)
{
    setUp();
    body(*this);
    if (opts.engine.engineStats)
        eng->printStats(std::cerr);
    if (!opts.engine.engineStatsJson.empty())
        writeReportFile(eng->statsReport(),
                        opts.engine.engineStatsJson);
    return 0;
}

int
BenchDriver::run()
{
    YASIM_ASSERT(!svatBenchmark.empty() && !svatTechniques.empty());
    return run([](BenchDriver &driver) { driver.runSvat(); });
}

void
BenchDriver::runSvat()
{
    const std::string &bench = svatBenchmark;
    TechniqueContext ctx = context(bench);
    std::vector<SimConfig> config_set = configs();

    eng->prefetch(ctx, svatTechniques, config_set);
    auto points = svatAnalysis(*eng, ctx, svatTechniques, config_set);
    std::sort(points.begin(), points.end(),
              [](const SvatPoint &a, const SvatPoint &b) {
                  return a.speedPct < b.speedPct;
              });

    Table table(svatFigure + ": speed vs accuracy trade-off for " +
                bench +
                " (speed = % of reference simulation work; accuracy = "
                "Manhattan distance of CPI vectors over " +
                std::to_string(config_set.size()) + " configs)");
    table.setHeader({"technique", "permutation", "speed %",
                     "CPI distance"});
    for (const SvatPoint &p : points) {
        table.addRow({p.technique, p.permutation,
                      Table::num(p.speedPct, 2),
                      Table::num(p.cpiDistance, 3)});
    }
    print(table);
}

TechniqueContext
BenchDriver::context(const std::string &bench)
{
    return eng->context(bench, opts.suite);
}

std::vector<SimConfig>
BenchDriver::configs() const
{
    return opts.full ? envelopeConfigs() : architecturalConfigs();
}

void
BenchDriver::print(const Table &table) const
{
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

} // namespace yasim
