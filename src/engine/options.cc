#include "engine/options.hh"

#include <cstdlib>
#include <cstring>

#include "support/failpoint.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace yasim {

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--ref-insts N] [--benchmarks a,b,...] [--seed N]\n"
        "          [--csv] [--full]\n%s",
        argv0, engineCliUsage());
    std::exit(1);
}

const char *
nextValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        fatal("option '%s' needs a value", argv[i]);
    return argv[++i];
}

std::vector<std::string>
splitCommas(const std::string &arg)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= arg.size()) {
        size_t comma = arg.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(arg.substr(start));
            break;
        }
        out.push_back(arg.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

} // namespace

const char *
engineCliUsage()
{
    return "          [--cache-dir DIR] [--cache-budget-mb N]\n"
           "          [--engine-stats] [--engine-stats-json FILE]\n"
           "          [--workers N] [--trace] [--no-trace]\n"
           "          [--livepoints] [--no-livepoints]\n"
           "          [--shards N] [--shard-warmup M] [--exact]\n"
           "          [--failpoints SPEC]\n";
}

bool
parseEngineCliOption(EngineCliOptions &options, int argc, char **argv,
                     int &i)
{
    const char *arg = argv[i];
    auto next = [&]() { return nextValue(argc, argv, i); };
    if (std::strcmp(arg, "--cache-dir") == 0) {
        options.cacheDir = next();
    } else if (std::strcmp(arg, "--cache-budget-mb") == 0) {
        options.cacheBudgetMb = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(arg, "--failpoints") == 0) {
        options.failpoints = next();
    } else if (std::strcmp(arg, "--engine-stats") == 0) {
        options.engineStats = true;
    } else if (std::strcmp(arg, "--engine-stats-json") == 0) {
        options.engineStatsJson = next();
    } else if (std::strcmp(arg, "--trace") == 0) {
        options.trace = true;
    } else if (std::strcmp(arg, "--no-trace") == 0) {
        options.trace = false;
    } else if (std::strcmp(arg, "--livepoints") == 0) {
        options.livepoints = true;
    } else if (std::strcmp(arg, "--no-livepoints") == 0) {
        options.livepoints = false;
    } else if (std::strcmp(arg, "--shards") == 0) {
        options.shards = uint32_t(std::strtoul(next(), nullptr, 10));
        if (options.shards == 0)
            fatal("--shards must be at least 1");
    } else if (std::strcmp(arg, "--shard-warmup") == 0) {
        options.shardWarmup = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(arg, "--exact") == 0) {
        options.exact = true;
    } else if (std::strcmp(arg, "--workers") == 0) {
        options.workers = unsigned(std::strtoul(next(), nullptr, 10));
        if (options.workers == 0)
            fatal("--workers must be at least 1");
    } else {
        return false;
    }
    return true;
}

EngineOptions
engineOptionsFrom(const EngineCliOptions &options)
{
    EngineOptions engine_options;
    engine_options.cacheDir = options.cacheDir;
    engine_options.cacheBudgetBytes = options.cacheBudgetMb << 20;
    engine_options.traces = options.trace;
    engine_options.livepoints.enabled = options.livepoints;
    engine_options.shards.shards = options.shards;
    engine_options.shards.warmupInsts = options.shardWarmup;
    engine_options.shards.exact = options.exact;
    return engine_options;
}

void
applyEngineRuntime(const EngineCliOptions &options)
{
    if (options.workers)
        setParallelWorkers(options.workers);
    if (!options.failpoints.empty())
        failpoint::configure(options.failpoints);
}

BenchOptions
parseBenchOptions(int argc, char **argv, uint64_t default_ref_insts)
{
    BenchOptions options;
    options.suite.referenceInstructions = default_ref_insts;
    options.benchmarks = benchmarkNames();

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (parseEngineCliOption(options.engine, argc, argv, i))
            continue;
        auto next = [&]() { return nextValue(argc, argv, i); };
        if (std::strcmp(arg, "--ref-insts") == 0) {
            options.suite.referenceInstructions =
                std::strtoull(next(), nullptr, 10);
        } else if (std::strcmp(arg, "--seed") == 0) {
            options.suite.seed = std::strtoull(next(), nullptr, 10);
        } else if (std::strcmp(arg, "--benchmarks") == 0) {
            options.benchmarks = splitCommas(next());
            for (const std::string &bench : options.benchmarks)
                if (!isBenchmark(bench))
                    fatal("unknown benchmark '%s'", bench.c_str());
        } else if (std::strcmp(arg, "--csv") == 0) {
            options.csv = true;
        } else if (std::strcmp(arg, "--full") == 0) {
            options.full = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg);
            usage(argv[0]);
        }
    }
    if (options.suite.referenceInstructions < 100000)
        fatal("--ref-insts must be at least 100000");
    return options;
}

} // namespace yasim
