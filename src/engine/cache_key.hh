/**
 * @file
 * Canonical cache-key construction for the ExperimentEngine.
 *
 * A key is a human-readable canonical text that spells out everything a
 * simulation result depends on: the cache-format version, the benchmark
 * and suite scaling, the technique's cacheKey() (every technique
 * parameter), the cost model, and every field of the machine
 * configuration. The text is the identity used by the in-memory memo
 * table (collision-free by construction); its 128-bit content digest
 * names the on-disk cache file, and the file stores the full text so a
 * load verifies it before trusting the payload.
 *
 * The configuration's display name is deliberately excluded: two
 * differently-labelled but field-identical configurations share one
 * cache entry.
 */

#ifndef YASIM_ENGINE_CACHE_KEY_HH
#define YASIM_ENGINE_CACHE_KEY_HH

#include <string>
#include <string_view>
#include <vector>

#include "sim/config.hh"
#include "techniques/technique.hh"

namespace yasim {

/**
 * Bumped whenever the key layout, the result serialization, or the
 * meaning of any simulated statistic changes; old disk caches then
 * miss instead of resurrecting stale results.
 */
// yasim-lint: version(result)
constexpr int kCacheFormatVersion = 1;

/**
 * Validating segment-by-segment cache-key builder.
 *
 * A key is composed from a fixed, ordered segment layout. stamp()ing a
 * segment the layout does not know, stamping one twice, stamping out
 * of canonical order, or finish()ing with a required segment missing
 * is a YASIM_CHECK failure with the offending segment named — a key
 * that would silently alias (or split) cache entries can no longer be
 * composed. The rendered text is byte-for-byte the historical format:
 * segments join with '|' and each carries its layout prefix, so e.g.
 * the optional sharding segment still renders as "|shards{...}" and
 * pre-existing disk caches keep hitting.
 */
class CacheKeyStamper
{
  public:
    /** One layout slot. */
    struct Segment
    {
        /** stamp() lookup name, e.g. "bench". */
        const char *name;
        /** Rendered prefix, e.g. "bench=" ("" for bare segments). */
        const char *prefix;
        /** May be absent from a finished key (e.g. "shards"). */
        bool optional = false;
    };

    /** Begin a key reading "<head>"; segments append "|...". */
    CacheKeyStamper(std::string head, std::vector<Segment> layout);

    /** Append segment @p name with @p value (fatal on misuse). */
    CacheKeyStamper &stamp(std::string_view name, std::string_view value);

    /** The finished key (fatal when a required segment is missing). */
    std::string finish();

  private:
    std::string text;
    std::vector<Segment> layout;
    /** Layout slots already stamped (duplicate diagnosis). */
    std::vector<bool> slotStamped;
    /** First layout slot the next stamp() may fill. */
    size_t nextSlot = 0;
};

/** Stamper with the result-key layout (bench/suite/cost/shards/tech/cfg). */
CacheKeyStamper resultKeyStamper();

/** Stamper with the reference-length layout (bench/suite). */
CacheKeyStamper referenceLengthKeyStamper();

/** Canonical text for suite scaling. */
std::string suiteKeyText(const SuiteConfig &suite);

/** Canonical text for every result-affecting SimConfig field. */
std::string configKeyText(const SimConfig &config);

/** Full canonical key for one (technique, context, config) result. */
std::string resultCacheKey(const Technique &technique,
                           const TechniqueContext &ctx,
                           const SimConfig &config);

/** Canonical key for a benchmark's reference-length measurement. */
std::string referenceLengthKey(const std::string &benchmark,
                               const SuiteConfig &suite);

/** 32-hex-char content digest of a key text (disk file stem). */
std::string cacheDigest(const std::string &key_text);

} // namespace yasim

#endif // YASIM_ENGINE_CACHE_KEY_HH
