/**
 * @file
 * Canonical cache-key construction for the ExperimentEngine.
 *
 * A key is a human-readable canonical text that spells out everything a
 * simulation result depends on: the cache-format version, the benchmark
 * and suite scaling, the technique's cacheKey() (every technique
 * parameter), the cost model, and every field of the machine
 * configuration. The text is the identity used by the in-memory memo
 * table (collision-free by construction); its 128-bit content digest
 * names the on-disk cache file, and the file stores the full text so a
 * load verifies it before trusting the payload.
 *
 * The configuration's display name is deliberately excluded: two
 * differently-labelled but field-identical configurations share one
 * cache entry.
 */

#ifndef YASIM_ENGINE_CACHE_KEY_HH
#define YASIM_ENGINE_CACHE_KEY_HH

#include <string>

#include "sim/config.hh"
#include "techniques/technique.hh"

namespace yasim {

/**
 * Bumped whenever the key layout, the result serialization, or the
 * meaning of any simulated statistic changes; old disk caches then
 * miss instead of resurrecting stale results.
 */
constexpr int kCacheFormatVersion = 1;

/** Canonical text for suite scaling. */
std::string suiteKeyText(const SuiteConfig &suite);

/** Canonical text for every result-affecting SimConfig field. */
std::string configKeyText(const SimConfig &config);

/** Full canonical key for one (technique, context, config) result. */
std::string resultCacheKey(const Technique &technique,
                           const TechniqueContext &ctx,
                           const SimConfig &config);

/** Canonical key for a benchmark's reference-length measurement. */
std::string referenceLengthKey(const std::string &benchmark,
                               const SuiteConfig &suite);

/** 32-hex-char content digest of a key text (disk file stem). */
std::string cacheDigest(const std::string &key_text);

} // namespace yasim

#endif // YASIM_ENGINE_CACHE_KEY_HH
