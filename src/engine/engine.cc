#include "engine/engine.hh"

#include <chrono>
#include <filesystem>
#include <ostream>
#include <sstream>

#include "engine/cache_key.hh"
#include "engine/result_io.hh"
#include "support/artifact_io.hh"
#include "support/check.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "support/thread_pool.hh"
#include "techniques/full_reference.hh"

namespace yasim {

namespace fs = std::filesystem;

namespace {

/** Inner frame magics for the engine's two artifact kinds. */
constexpr char kResultMagic[] = "yasim-result";
constexpr char kRefLenMagic[] = "yasim-reflen";

} // namespace

ExperimentEngine::ExperimentEngine(EngineOptions options)
    : opts(std::move(options))
{
    YASIM_CHECK_GE(opts.maxMemoEntries, size_t(1));
    if (!opts.cacheDir.empty()) {
        std::error_code ec;
        fs::create_directories(opts.cacheDir, ec);
        if (ec)
            fatal("cannot create cache directory '%s': %s",
                  opts.cacheDir.c_str(), ec.message().c_str());
    }
    if (opts.shards.enabled() && opts.shards.warmDir.empty() &&
        !opts.cacheDir.empty()) {
        // Warmed-uarch summaries are cache artifacts like any other:
        // persist them beside the result cache unless the caller chose
        // a dedicated directory.
        opts.shards.warmDir = opts.cacheDir + "/warm";
    }
    if (opts.livepoints.enabled && opts.livepoints.dir.empty() &&
        !opts.cacheDir.empty()) {
        // Same policy as warm summaries: live-points are cache
        // artifacts and live beside the result cache by default.
        opts.livepoints.dir = opts.cacheDir + "/livepoints";
    }
    if (opts.traces) {
        TraceStoreOptions topts;
        topts.cacheDir = opts.cacheDir;
        topts.checkpointSpacing = opts.traceCheckpointSpacing;
        topts.maxBytes = opts.maxTraceBytes;
        topts.cacheBudgetBytes = opts.cacheBudgetBytes;
        traces = std::make_unique<TraceStore>(std::move(topts));
    }
}

ExperimentEngine::~ExperimentEngine() = default;

std::string
ExperimentEngine::diskPath(const std::string &key_text,
                           const char *suffix) const
{
    return (fs::path(opts.cacheDir) / (cacheDigest(key_text) + suffix))
        .string();
}

void
ExperimentEngine::noteFailedRead(const std::string &path,
                                 const char *what,
                                 const std::string &error, bool corrupt,
                                 uint32_t retries)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        ctr.ioRetries += retries;
        if (corrupt)
            ++ctr.cacheCorrupt;
        else
            ++ctr.cacheUnreadable;
    }
    if (!ioWarned.exchange(true)) {
        warn("cache artifact '%s' (%s) is %s: %s; %s and recomputing "
             "(one warning per run; --engine-stats counts the rest)",
             path.c_str(), what,
             corrupt ? "corrupt" : "unreadable", error.c_str(),
             corrupt ? "quarantined to .corrupt" : "left in place");
    }
}

bool
ExperimentEngine::loadResultFromDisk(const std::string &key_text,
                                     TechniqueResult &result)
{
    const std::string path = diskPath(key_text, ".result");
    ArtifactReadResult read =
        readArtifact(path, kResultMagic, kCacheFormatVersion);
    if (read.status == ArtifactStatus::VersionMismatch) {
        // A stale-format entry is a clean miss, not rot: readArtifact
        // already deleted the file; count it under its own column.
        std::lock_guard<std::mutex> lock(mutex);
        ctr.ioRetries += read.retries;
        ++ctr.cacheVersionMiss;
        return false;
    }
    if (read.retries || read.status == ArtifactStatus::Corrupt ||
        read.status == ArtifactStatus::Transient) {
        if (read.status == ArtifactStatus::Ok ||
            read.status == ArtifactStatus::Missing) {
            std::lock_guard<std::mutex> lock(mutex);
            ctr.ioRetries += read.retries;
        } else {
            noteFailedRead(path, "result", read.error,
                           read.status == ArtifactStatus::Corrupt,
                           read.retries);
        }
    }
    if (read.status != ArtifactStatus::Ok)
        return false;

    std::istringstream payload(read.payload);
    if (!readResult(payload, key_text, result)) {
        // The frame verified but the payload did not parse — a digest
        // collision or a format bug. Same self-healing path: move the
        // file aside and recompute.
        quarantineArtifact(path);
        noteFailedRead(path, "result", "unparseable payload", true, 0);
        return false;
    }
    return true;
}

void
ExperimentEngine::storeResultToDisk(const std::string &key_text,
                                    const TechniqueResult &result)
{
    std::ostringstream payload;
    writeResult(payload, key_text, result);
    const std::string path = diskPath(key_text, ".result");
    ArtifactWriteResult wrote = writeArtifact(
        path, kResultMagic, kCacheFormatVersion, payload.str());
    {
        std::lock_guard<std::mutex> lock(mutex);
        ctr.ioRetries += wrote.retries;
        if (wrote.ok)
            ++ctr.diskWrites;
    }
    if (!wrote.ok) {
        warn("cannot write result cache file '%s': %s", path.c_str(),
             wrote.error.c_str());
        return;
    }
    enforceCacheBudget();
}

void
ExperimentEngine::enforceCacheBudget()
{
    if (opts.cacheBudgetBytes == 0 || opts.cacheDir.empty())
        return;
    uint64_t evicted =
        evictToBudget(opts.cacheDir, opts.cacheBudgetBytes);
    if (evicted) {
        std::lock_guard<std::mutex> lock(mutex);
        ctr.budgetEvictions += evicted;
    }
}

void
ExperimentEngine::memoInsert(const std::string &key_text,
                             const TechniqueResult &result)
{
    auto it = memo.find(key_text);
    if (it != memo.end())
        return;
    lru.push_front(key_text);
    memo.emplace(key_text, MemoEntry{result, lru.begin()});
    while (memo.size() > opts.maxMemoEntries) {
        YASIM_CHECK(!lru.empty(),
                    "memo table and LRU list out of sync "
                    "(%zu entries over a bound of %zu)",
                    memo.size(), opts.maxMemoEntries);
        memo.erase(lru.back());
        lru.pop_back();
        ++ctr.evictions;
    }
    YASIM_DCHECK_EQ(memo.size(), lru.size());
}

TechniqueResult
ExperimentEngine::run(const Technique &technique,
                      const TechniqueContext &ctx,
                      const SimConfig &config)
{
    TechniqueResult result = fetch(technique, ctx, config);
    // The cache key deliberately ignores display labels (a SimPoint
    // labelled "max_k=30" and one labelled "dim=15" with identical
    // parameters share a key), so restamp the labels of the requesting
    // technique before handing the result back.
    result.technique = technique.name();
    result.permutation = technique.permutation();
    return result;
}

TechniqueResult
ExperimentEngine::fetch(const Technique &technique,
                        const TechniqueContext &ctx,
                        const SimConfig &config)
{
    const std::string key = resultCacheKey(technique, ctx, config);

    std::shared_ptr<InFlight> flight;
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            auto it = memo.find(key);
            if (it != memo.end()) {
                ++ctr.memoHits;
                ctr.workUnitsSaved += it->second.result.workUnits;
                lru.splice(lru.begin(), lru, it->second.lruPos);
                return it->second.result;
            }
            auto fit = inflight.find(key);
            if (fit == inflight.end())
                break;
            // Same key is being computed right now: wait for it
            // rather than simulating it twice. The wait polls our own
            // token so a joiner's deadline is honoured even while the
            // computing request keeps running.
            ++ctr.inflightJoins;
            std::shared_ptr<InFlight> other = fit->second;
            while (!inflightCv.wait_for(
                lock, std::chrono::milliseconds(20),
                [&] { return other->done; })) {
                if (ctx.cancel.cancelled()) {
                    CancelledError err;
                    err.cause = ctx.cancel.cause();
                    throw err;
                }
            }
            if (other->cancelled) {
                // The computation we joined was cancelled, not us:
                // loop back and recompute (or join its successor).
                continue;
            }
            ctr.workUnitsSaved += other->result.workUnits;
            return other->result;
        }
        ++ctr.memoMisses;
        flight = std::make_shared<InFlight>();
        inflight.emplace(key, flight);
    }

    TechniqueResult result;
    bool cancelled = false;
    CancelledError cancel_err;
    bool from_disk =
        !opts.cacheDir.empty() && loadResultFromDisk(key, result);
    if (!from_disk) {
        if (ctx.cancel.cancelled()) {
            // Cancelled before the run started: nothing to charge.
            cancelled = true;
            cancel_err.cause = ctx.cancel.cause();
        } else {
            try {
                result = technique.run(ctx, config);
            } catch (const CancelledError &err) {
                cancelled = true;
                cancel_err = err;
            }
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex);
        if (cancelled) {
            // Partial work was really performed: charge it. The
            // partial result is never memoized — joiners retry.
            ++ctr.runsCancelled;
            ctr.workUnitsComputed += cancel_err.partialWorkUnits;
            flight->cancelled = true;
        } else {
            if (from_disk) {
                ++ctr.diskHits;
                ctr.workUnitsSaved += result.workUnits;
            } else {
                ++ctr.runsExecuted;
                ctr.workUnitsComputed += result.workUnits;
            }
            memoInsert(key, result);
            flight->result = result;
        }
        flight->done = true;
        inflight.erase(key);
    }
    inflightCv.notify_all();
    if (cancelled)
        throw cancel_err;

    if (!from_disk && !opts.cacheDir.empty()) {
        if (ctx.cancel.cancelled() ||
            failpoint::fire("engine.cancel.write")) {
            // Cancelled between completion and publish: abort the
            // write outright. Atomic temp+rename means no torn file
            // exists either way; the next process recomputes.
            std::lock_guard<std::mutex> lock(mutex);
            ++ctr.cacheWritesAborted;
        } else {
            storeResultToDisk(key, result);
        }
    }
    return result;
}

uint64_t
ExperimentEngine::referenceLength(const std::string &benchmark,
                                  const SuiteConfig &suite)
{
    const std::string key = referenceLengthKey(benchmark, suite);
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = refLengths.find(key);
        if (it != refLengths.end()) {
            ++ctr.refLengthHits;
            return it->second;
        }
    }

    // With the trace store on, the reference recording *is* the
    // measurement: its dynamic length equals what a plain architectural
    // fast-forward would count, and the trace is needed by the sweep
    // anyway (the store dedups against its own memory/disk caches).
    if (traces) {
        uint64_t length =
            traces->get(benchmark, InputSet::Reference, suite)->length();
        std::lock_guard<std::mutex> lock(mutex);
        ++ctr.refLengthFromTrace;
        refLengths.emplace(key, length);
        return length;
    }

    uint64_t length = 0;
    bool from_disk = false;
    if (!opts.cacheDir.empty()) {
        const std::string path = diskPath(key, ".reflen");
        ArtifactReadResult read =
            readArtifact(path, kRefLenMagic, kCacheFormatVersion);
        if (read.status == ArtifactStatus::Ok) {
            std::istringstream payload(read.payload);
            from_disk = readReferenceLength(payload, key, length);
            if (!from_disk) {
                quarantineArtifact(path);
                noteFailedRead(path, "reference length",
                               "unparseable payload", true, 0);
            } else if (read.retries) {
                std::lock_guard<std::mutex> lock(mutex);
                ctr.ioRetries += read.retries;
            }
        } else if (read.status == ArtifactStatus::VersionMismatch) {
            std::lock_guard<std::mutex> lock(mutex);
            ctr.ioRetries += read.retries;
            ++ctr.cacheVersionMiss;
        } else if (read.status != ArtifactStatus::Missing) {
            noteFailedRead(path, "reference length", read.error,
                           read.status == ArtifactStatus::Corrupt,
                           read.retries);
        }
    }
    if (!from_disk) {
        length = measureReferenceLength(benchmark, suite);
        if (!opts.cacheDir.empty()) {
            std::ostringstream payload;
            writeReferenceLength(payload, key, length);
            ArtifactWriteResult wrote =
                writeArtifact(diskPath(key, ".reflen"), kRefLenMagic,
                              kCacheFormatVersion, payload.str());
            {
                std::lock_guard<std::mutex> lock(mutex);
                ctr.ioRetries += wrote.retries;
            }
            if (wrote.ok)
                enforceCacheBudget();
        }
    }

    std::lock_guard<std::mutex> lock(mutex);
    if (from_disk)
        ++ctr.refLengthDiskHits;
    else
        ++ctr.refLengthMisses;
    refLengths.emplace(key, length);
    return length;
}

TechniqueContext
ExperimentEngine::context(const std::string &benchmark,
                          const SuiteConfig &suite)
{
    TechniqueContext ctx = TechniqueContext::make(benchmark, suite, *this);
    ctx.shards = opts.shards;
    ctx.livepoints = opts.livepoints;
    return ctx;
}

void
ExperimentEngine::prefetch(const std::vector<GridJob> &jobs)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        ctr.gridJobs += jobs.size();
    }
    globalPool().parallelFor(jobs.size(), [&](size_t i) {
        const GridJob &job = jobs[i];
        YASIM_CHECK(job.technique && job.ctx && job.config,
                    "prefetch grid job %zu has null pointees", i);
        run(*job.technique, *job.ctx, *job.config);
    });
}

void
ExperimentEngine::prefetch(const TechniqueContext &ctx,
                           const std::vector<TechniquePtr> &techniques,
                           const std::vector<SimConfig> &configs,
                           bool include_reference)
{
    static const FullReference reference;
    std::vector<GridJob> jobs;
    jobs.reserve((techniques.size() + 1) * configs.size());
    for (const SimConfig &config : configs) {
        if (include_reference)
            jobs.push_back({&reference, &ctx, &config});
        for (const TechniquePtr &technique : techniques)
            jobs.push_back({technique.get(), &ctx, &config});
    }
    prefetch(jobs);
}

EngineCounters
ExperimentEngine::counters() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return ctr;
}

void
ExperimentEngine::printStats(std::ostream &os) const
{
    EngineCounters c = counters();
    ThreadPool::Stats pool = globalPool().stats();

    Table table("ExperimentEngine statistics");
    table.setHeader({"counter", "value"});
    table.addRow({"memo hits", Table::count(c.memoHits)});
    table.addRow({"memo misses", Table::count(c.memoMisses)});
    table.addRow({"in-flight joins", Table::count(c.inflightJoins)});
    table.addRow({"disk hits", Table::count(c.diskHits)});
    table.addRow({"disk writes", Table::count(c.diskWrites)});
    table.addRow({"evictions", Table::count(c.evictions)});
    table.addRow({"technique runs executed",
                  Table::count(c.runsExecuted)});
    table.addRow({"work units computed",
                  Table::num(c.workUnitsComputed, 0)});
    table.addRow({"work units saved by caches",
                  Table::num(c.workUnitsSaved, 0)});
    double total = c.workUnitsComputed + c.workUnitsSaved;
    table.addRow({"work saved",
                  total > 0.0
                      ? Table::pct(100.0 * c.workUnitsSaved / total, 1)
                      : "-"});
    table.addRow({"ref-length hits", Table::count(c.refLengthHits)});
    table.addRow(
        {"ref-length disk hits", Table::count(c.refLengthDiskHits)});
    table.addRow(
        {"ref-length measured", Table::count(c.refLengthMisses)});
    table.addRow({"grid jobs scheduled", Table::count(c.gridJobs)});
    table.addRow({"cache corrupt (quarantined)",
                  Table::count(c.cacheCorrupt)});
    table.addRow({"cache version misses",
                  Table::count(c.cacheVersionMiss)});
    table.addRow({"cache unreadable", Table::count(c.cacheUnreadable)});
    table.addRow({"artifact io retries", Table::count(c.ioRetries)});
    table.addRow({"cache budget evictions",
                  Table::count(c.budgetEvictions)});
    table.addRow({"runs cancelled", Table::count(c.runsCancelled)});
    table.addRow({"cache writes aborted",
                  Table::count(c.cacheWritesAborted)});
    table.addRule();
    if (traces) {
        TraceCounters t = traces->counters();
        table.addRow({"trace recordings", Table::count(t.recordings)});
        table.addRow({"trace hits", Table::count(t.hits)});
        table.addRow(
            {"trace in-flight joins", Table::count(t.inflightJoins)});
        table.addRow({"trace disk loads", Table::count(t.diskLoads)});
        table.addRow({"trace disk writes", Table::count(t.diskWrites)});
        table.addRow({"trace evictions", Table::count(t.evictions)});
        table.addRow(
            {"trace insts recorded", Table::count(t.instsRecorded)});
        table.addRow(
            {"trace bytes in memory", Table::count(t.bytesInMemory)});
        table.addRow({"trace quarantined", Table::count(t.quarantined)});
        table.addRow({"trace version misses",
                      Table::count(t.versionMisses)});
        table.addRow({"trace io retries", Table::count(t.ioRetries)});
        table.addRow({"ref lengths from traces",
                      Table::count(c.refLengthFromTrace)});
        table.addRule();
    }
    table.addRow({"pool workers",
                  Table::count(globalPool().workerThreads() + 1)});
    table.addRow({"pool batches", Table::count(pool.batches)});
    table.addRow({"pool tasks", Table::count(pool.tasks)});
    table.addRow({"pool caller tasks", Table::count(pool.callerTasks)});
    table.addRow({"pool steals", Table::count(pool.steals)});
    table.print(os);
}

JsonReport
ExperimentEngine::statsReport() const
{
    JsonReport report("engine-stats");
    appendCounters(report);
    return report;
}

void
ExperimentEngine::appendCounters(JsonReport &report) const
{
    EngineCounters c = counters();
    ThreadPool::Stats pool = globalPool().stats();

    report.setCount("memo_hits", c.memoHits);
    report.setCount("memo_misses", c.memoMisses);
    report.setCount("inflight_joins", c.inflightJoins);
    report.setCount("disk_hits", c.diskHits);
    report.setCount("disk_writes", c.diskWrites);
    report.setCount("evictions", c.evictions);
    report.setCount("runs_executed", c.runsExecuted);
    report.setNumber("work_units_computed", c.workUnitsComputed);
    report.setNumber("work_units_saved", c.workUnitsSaved);
    double total = c.workUnitsComputed + c.workUnitsSaved;
    report.setNumber("work_saved_pct",
                     total > 0.0 ? 100.0 * c.workUnitsSaved / total
                                 : 0.0);
    report.setCount("ref_length_hits", c.refLengthHits);
    report.setCount("ref_length_disk_hits", c.refLengthDiskHits);
    report.setCount("ref_length_measured", c.refLengthMisses);
    report.setCount("grid_jobs", c.gridJobs);
    report.setCount("cache_corrupt", c.cacheCorrupt);
    report.setCount("cache_version_misses", c.cacheVersionMiss);
    report.setCount("cache_unreadable", c.cacheUnreadable);
    report.setCount("io_retries", c.ioRetries);
    report.setCount("budget_evictions", c.budgetEvictions);
    report.setCount("runs_cancelled", c.runsCancelled);
    report.setCount("cache_writes_aborted", c.cacheWritesAborted);
    if (traces) {
        TraceCounters t = traces->counters();
        report.setCount("trace_recordings", t.recordings);
        report.setCount("trace_hits", t.hits);
        report.setCount("trace_inflight_joins", t.inflightJoins);
        report.setCount("trace_disk_loads", t.diskLoads);
        report.setCount("trace_disk_writes", t.diskWrites);
        report.setCount("trace_evictions", t.evictions);
        report.setCount("trace_insts_recorded", t.instsRecorded);
        report.setCount("trace_bytes_in_memory", t.bytesInMemory);
        report.setCount("trace_quarantined", t.quarantined);
        report.setCount("trace_version_misses", t.versionMisses);
        report.setCount("trace_io_retries", t.ioRetries);
        report.setCount("ref_lengths_from_traces", c.refLengthFromTrace);
    }
    report.setCount("pool_workers", globalPool().workerThreads() + 1);
    report.setCount("pool_batches", pool.batches);
    report.setCount("pool_tasks", pool.tasks);
    report.setCount("pool_caller_tasks", pool.callerTasks);
    report.setCount("pool_steals", pool.steals);
}

} // namespace yasim
