/**
 * @file
 * Fluent driver front end for the bench and example binaries.
 *
 * Every experiment regenerator used to open with the same boilerplate —
 * parseBenchOptions, setInformEnabled(false), a context per benchmark,
 * a csv-or-aligned print at the end — and none of it shared simulation
 * results. BenchDriver rolls that into one builder around an
 * ExperimentEngine:
 *
 *     int main(int argc, char **argv)
 *     {
 *         return BenchDriver(argc, argv)
 *             .defaultRefInsts(400'000)
 *             .run([](BenchDriver &driver) {
 *                 TechniqueContext ctx = driver.context("gcc");
 *                 ...
 *                 driver.print(table);
 *             });
 *     }
 *
 * The driver owns the engine (honouring --cache-dir, --workers,
 * --trace/--no-trace and --engine-stats), and the SvAT figures collapse
 * further to the benchmark()/figure()/techniques() shortcut with a
 * parameterless run().
 */

#ifndef YASIM_ENGINE_BENCH_DRIVER_HH
#define YASIM_ENGINE_BENCH_DRIVER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hh"
#include "engine/options.hh"
#include "techniques/technique.hh"

namespace yasim {

class Table;

/** Fluent experiment driver. See file comment. */
class BenchDriver
{
  public:
    /** Capture argv; parsing happens when run() is called. */
    BenchDriver(int argc, char **argv);
    ~BenchDriver();

    BenchDriver(const BenchDriver &) = delete;
    BenchDriver &operator=(const BenchDriver &) = delete;

    /** Default --ref-insts value (experiments scale from this). */
    BenchDriver &defaultRefInsts(uint64_t ref_insts);

    /** SvAT shortcut: the benchmark the figure plots. */
    BenchDriver &benchmark(std::string bench);

    /** SvAT shortcut: figure label, e.g. "Figure 3". */
    BenchDriver &figure(std::string figure);

    /** SvAT shortcut: the permutations to place on the graph. */
    BenchDriver &techniques(std::vector<TechniquePtr> techniques);

    /**
     * Parse options, build the engine, and run the experiment body.
     * Returns the process exit code (fatal option errors exit inside).
     */
    int run(const std::function<void(BenchDriver &)> &body);

    /**
     * Run the standard speed-versus-accuracy experiment configured via
     * benchmark()/figure()/techniques(): prefetch the whole technique x
     * configuration grid (plus the reference) on the work-stealing
     * pool, then assemble the figure's table serially from the memo
     * table — byte-identical to a serial run.
     */
    int run();

    /** Parsed options (valid inside the run() body). */
    const BenchOptions &options() const { return opts; }

    /** The memoized engine behind this driver. */
    ExperimentEngine &engine() { return *eng; }

    /** Benchmarks selected by --benchmarks (default: whole suite). */
    const std::vector<std::string> &benchmarks() const
    {
        return opts.benchmarks;
    }

    /** Context for @p bench through the engine's reference-length cache. */
    TechniqueContext context(const std::string &bench);

    /** The experiment's configuration set (--full: whole envelope). */
    std::vector<SimConfig> configs() const;

    /** Print to stdout as CSV (--csv) or an aligned table. */
    void print(const Table &table) const;

  private:
    /** Parse options and construct the engine (idempotent). */
    void setUp();
    void runSvat();

    int argCount;
    char **argValues;
    uint64_t refInsts = 400'000;

    std::string svatBenchmark;
    std::string svatFigure;
    std::vector<TechniquePtr> svatTechniques;

    BenchOptions opts;
    std::unique_ptr<ExperimentEngine> eng;
};

} // namespace yasim

#endif // YASIM_ENGINE_BENCH_DRIVER_HH
