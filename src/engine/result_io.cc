#include "engine/result_io.hh"

#include <bit>
#include <istream>
#include <ostream>
#include <sstream>

#include "engine/cache_key.hh"
#include "support/check.hh"

namespace yasim {

namespace {

std::string
encodeDouble(double v)
{
    static const char digits[] = "0123456789abcdef";
    uint64_t bits = std::bit_cast<uint64_t>(v);
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i)
        out[i] = digits[(bits >> (60 - 4 * i)) & 0xf];
    return out;
}

bool
decodeDouble(const std::string &hex, double &v)
{
    if (hex.size() != 16)
        return false;
    uint64_t bits = 0;
    for (char c : hex) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        bits = (bits << 4) | uint64_t(digit);
    }
    v = std::bit_cast<double>(bits);
    return true;
}

/** The SimStats fields in serialization order. */
template <typename Stats, typename Fn>
void
forEachStatField(Stats &stats, Fn &&fn)
{
    fn(stats.instructions);
    fn(stats.cycles);
    fn(stats.condBranches);
    fn(stats.condMispredicts);
    fn(stats.l1iAccesses);
    fn(stats.l1iMisses);
    fn(stats.l1dAccesses);
    fn(stats.l1dMisses);
    fn(stats.l2Accesses);
    fn(stats.l2Misses);
    fn(stats.trivialOps);
    fn(stats.prefetchesIssued);
    fn(stats.memStallCycles);
}

void
writeDoubles(std::ostream &os, const char *tag,
             const std::vector<double> &values)
{
    os << tag << ' ' << values.size();
    for (double v : values)
        os << ' ' << encodeDouble(v);
    os << '\n';
}

bool
readDoubles(std::istream &is, const std::string &expected_tag,
            std::vector<double> &values)
{
    std::string tag;
    size_t n;
    if (!(is >> tag >> n) || tag != expected_tag)
        return false;
    values.resize(n);
    std::string hex;
    for (size_t i = 0; i < n; ++i)
        if (!(is >> hex) || !decodeDouble(hex, values[i]))
            return false;
    return true;
}

/** Read one whole line and return its remainder after "tag ". */
bool
readTaggedLine(std::istream &is, const std::string &expected_tag,
               std::string &value)
{
    std::string line;
    // Skip the newline left by a preceding >> extraction.
    while (std::getline(is, line) && line.empty()) {
    }
    if (line.size() < expected_tag.size() + 1 ||
        line.compare(0, expected_tag.size(), expected_tag) != 0 ||
        line[expected_tag.size()] != ' ')
        return false;
    value = line.substr(expected_tag.size() + 1);
    return true;
}

/**
 * Consume the trailing "end" marker and require EOF behind it. A
 * well-formed payload followed by extra bytes is not a cache entry we
 * wrote — it is corruption (an interrupted overwrite, a concatenated
 * file) and must read as a miss, never as "close enough".
 */
bool
readEndMarker(std::istream &is)
{
    std::string tag;
    if (!(is >> tag) || tag != "end")
        return false;
    std::string trailing;
    return !(is >> trailing);
}

bool
readHeader(std::istream &is, const char *magic,
           const std::string &key_text)
{
    std::string tag;
    int version;
    if (!(is >> tag >> version) || tag != magic ||
        version != kCacheFormatVersion)
        return false;
    std::string key;
    if (!readTaggedLine(is, "key", key) || key != key_text)
        return false;
    return true;
}

} // namespace

void
writeResult(std::ostream &os, const std::string &key_text,
            const TechniqueResult &result)
{
    // An empty key would alias every lookup onto one cache file; keys
    // are non-empty by construction (see cache_key.cc).
    YASIM_CHECK(!key_text.empty(), "result cache key is empty");
    // The line-oriented format cannot survive a newline inside the key.
    YASIM_CHECK(key_text.find('\n') == std::string::npos,
                "result cache key contains a newline");
    os << "yasim-result " << kCacheFormatVersion << '\n';
    os << "key " << key_text << '\n';
    os << "technique " << result.technique << '\n';
    os << "permutation " << result.permutation << '\n';
    os << "cpi " << encodeDouble(result.cpi) << '\n';
    writeDoubles(os, "metrics", result.metrics);
    os << "stats";
    forEachStatField(result.detailed,
                     [&](const uint64_t &v) { os << ' ' << v; });
    os << '\n';
    writeDoubles(os, "bbef", result.bbef);
    writeDoubles(os, "bbv", result.bbv);
    os << "workUnits " << encodeDouble(result.workUnits) << '\n';
    os << "detailedInsts " << result.detailedInsts << '\n';
    os << "end\n";
}

bool
readResult(std::istream &is, const std::string &key_text,
           TechniqueResult &result)
{
    if (!readHeader(is, "yasim-result", key_text))
        return false;
    if (!readTaggedLine(is, "technique", result.technique))
        return false;
    if (!readTaggedLine(is, "permutation", result.permutation))
        return false;

    std::string tag, hex;
    if (!(is >> tag >> hex) || tag != "cpi" ||
        !decodeDouble(hex, result.cpi))
        return false;
    if (!readDoubles(is, "metrics", result.metrics))
        return false;
    if (!(is >> tag) || tag != "stats")
        return false;
    bool stats_ok = true;
    forEachStatField(result.detailed, [&](uint64_t &v) {
        if (!(is >> v))
            stats_ok = false;
    });
    if (!stats_ok)
        return false;
    if (!readDoubles(is, "bbef", result.bbef))
        return false;
    if (!readDoubles(is, "bbv", result.bbv))
        return false;
    if (!(is >> tag >> hex) || tag != "workUnits" ||
        !decodeDouble(hex, result.workUnits))
        return false;
    if (!(is >> tag >> result.detailedInsts) || tag != "detailedInsts")
        return false;
    return readEndMarker(is);
}

void
writeReferenceLength(std::ostream &os, const std::string &key_text,
                     uint64_t length)
{
    os << "yasim-reflen " << kCacheFormatVersion << '\n';
    os << "key " << key_text << '\n';
    os << "length " << length << '\n';
    os << "end\n";
}

bool
readReferenceLength(std::istream &is, const std::string &key_text,
                    uint64_t &length)
{
    if (!readHeader(is, "yasim-reflen", key_text))
        return false;
    std::string tag;
    if (!(is >> tag >> length) || tag != "length")
        return false;
    return readEndMarker(is);
}

} // namespace yasim
