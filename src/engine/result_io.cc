#include "engine/result_io.hh"

#include <bit>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <istream>
#include <ostream>
#include <sstream>

#include "engine/cache_key.hh"
#include "support/check.hh"
#include "support/logging.hh"

namespace yasim {

namespace {

std::string
encodeDouble(double v)
{
    static const char digits[] = "0123456789abcdef";
    uint64_t bits = std::bit_cast<uint64_t>(v);
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i)
        out[i] = digits[(bits >> (60 - 4 * i)) & 0xf];
    return out;
}

bool
decodeDouble(const std::string &hex, double &v)
{
    if (hex.size() != 16)
        return false;
    uint64_t bits = 0;
    for (char c : hex) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        bits = (bits << 4) | uint64_t(digit);
    }
    v = std::bit_cast<double>(bits);
    return true;
}

/** The SimStats fields in serialization order. */
template <typename Stats, typename Fn>
void
forEachStatField(Stats &stats, Fn &&fn)
{
    fn(stats.instructions);
    fn(stats.cycles);
    fn(stats.condBranches);
    fn(stats.condMispredicts);
    fn(stats.l1iAccesses);
    fn(stats.l1iMisses);
    fn(stats.l1dAccesses);
    fn(stats.l1dMisses);
    fn(stats.l2Accesses);
    fn(stats.l2Misses);
    fn(stats.trivialOps);
    fn(stats.prefetchesIssued);
    fn(stats.memStallCycles);
}

void
writeDoubles(std::ostream &os, const char *tag,
             const std::vector<double> &values)
{
    os << tag << ' ' << values.size();
    for (double v : values)
        os << ' ' << encodeDouble(v);
    os << '\n';
}

bool
readDoubles(std::istream &is, const std::string &expected_tag,
            std::vector<double> &values)
{
    std::string tag;
    size_t n;
    if (!(is >> tag >> n) || tag != expected_tag)
        return false;
    values.resize(n);
    std::string hex;
    for (size_t i = 0; i < n; ++i)
        if (!(is >> hex) || !decodeDouble(hex, values[i]))
            return false;
    return true;
}

/** Read one whole line and return its remainder after "tag ". */
bool
readTaggedLine(std::istream &is, const std::string &expected_tag,
               std::string &value)
{
    std::string line;
    // Skip the newline left by a preceding >> extraction.
    while (std::getline(is, line) && line.empty()) {
    }
    if (line.size() < expected_tag.size() + 1 ||
        line.compare(0, expected_tag.size(), expected_tag) != 0 ||
        line[expected_tag.size()] != ' ')
        return false;
    value = line.substr(expected_tag.size() + 1);
    return true;
}

/**
 * Consume the trailing "end" marker and require EOF behind it. A
 * well-formed payload followed by extra bytes is not a cache entry we
 * wrote — it is corruption (an interrupted overwrite, a concatenated
 * file) and must read as a miss, never as "close enough".
 */
bool
readEndMarker(std::istream &is)
{
    std::string tag;
    if (!(is >> tag) || tag != "end")
        return false;
    std::string trailing;
    return !(is >> trailing);
}

bool
readHeader(std::istream &is, const char *magic,
           const std::string &key_text)
{
    std::string tag;
    int version;
    if (!(is >> tag >> version) || tag != magic ||
        version != kCacheFormatVersion)
        return false;
    std::string key;
    if (!readTaggedLine(is, "key", key) || key != key_text)
        return false;
    return true;
}

} // namespace

// yasim-lint: serialized(result)
void
writeResult(std::ostream &os, const std::string &key_text,
            const TechniqueResult &result)
{
    // An empty key would alias every lookup onto one cache file; keys
    // are non-empty by construction (see cache_key.cc).
    YASIM_CHECK(!key_text.empty(), "result cache key is empty");
    // The line-oriented format cannot survive a newline inside the key.
    YASIM_CHECK(key_text.find('\n') == std::string::npos,
                "result cache key contains a newline");
    os << "yasim-result " << kCacheFormatVersion << '\n';
    os << "key " << key_text << '\n';
    os << "technique " << result.technique << '\n';
    os << "permutation " << result.permutation << '\n';
    os << "cpi " << encodeDouble(result.cpi) << '\n';
    writeDoubles(os, "metrics", result.metrics);
    os << "stats";
    forEachStatField(result.detailed,
                     [&](const uint64_t &v) { os << ' ' << v; });
    os << '\n';
    writeDoubles(os, "bbef", result.bbef);
    writeDoubles(os, "bbv", result.bbv);
    os << "workUnits " << encodeDouble(result.workUnits) << '\n';
    os << "detailedInsts " << result.detailedInsts << '\n';
    os << "end\n";
}

// yasim-lint: serialized(result)
bool
readResult(std::istream &is, const std::string &key_text,
           TechniqueResult &result)
{
    if (!readHeader(is, "yasim-result", key_text))
        return false;
    if (!readTaggedLine(is, "technique", result.technique))
        return false;
    if (!readTaggedLine(is, "permutation", result.permutation))
        return false;

    std::string tag, hex;
    if (!(is >> tag >> hex) || tag != "cpi" ||
        !decodeDouble(hex, result.cpi))
        return false;
    if (!readDoubles(is, "metrics", result.metrics))
        return false;
    if (!(is >> tag) || tag != "stats")
        return false;
    bool stats_ok = true;
    forEachStatField(result.detailed, [&](uint64_t &v) {
        if (!(is >> v))
            stats_ok = false;
    });
    if (!stats_ok)
        return false;
    if (!readDoubles(is, "bbef", result.bbef))
        return false;
    if (!readDoubles(is, "bbv", result.bbv))
        return false;
    if (!(is >> tag >> hex) || tag != "workUnits" ||
        !decodeDouble(hex, result.workUnits))
        return false;
    if (!(is >> tag >> result.detailedInsts) || tag != "detailedInsts")
        return false;
    return readEndMarker(is);
}

void
writeReferenceLength(std::ostream &os, const std::string &key_text,
                     uint64_t length)
{
    os << "yasim-reflen " << kCacheFormatVersion << '\n';
    os << "key " << key_text << '\n';
    os << "length " << length << '\n';
    os << "end\n";
}

bool
readReferenceLength(std::istream &is, const std::string &key_text,
                    uint64_t &length)
{
    if (!readHeader(is, "yasim-reflen", key_text))
        return false;
    std::string tag;
    if (!(is >> tag >> length) || tag != "length")
        return false;
    return readEndMarker(is);
}

namespace {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
renderNumber(double v)
{
    // Reports must stay valid JSON: NaN/Inf have no JSON spelling, and
    // no gate metric is legitimately non-finite.
    YASIM_CHECK(v == v && v <= 1e308 && v >= -1e308,
                "non-finite value in a JSON report");
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Hand-rolled cursor over a flat JSON report document. */
struct JsonCursor
{
    const char *at;
    const char *end;

    void
    skipSpace()
    {
        while (at != end &&
               std::isspace(static_cast<unsigned char>(*at)))
            ++at;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (at == end || *at != c)
            return false;
        ++at;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        out.clear();
        if (!consume('"'))
            return false;
        while (at != end && *at != '"') {
            char c = *at++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (at == end)
                return false;
            char esc = *at++;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (end - at < 4)
                      return false;
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = *at++;
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= unsigned(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          code |= unsigned(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          code |= unsigned(h - 'A' + 10);
                      else
                          return false;
                  }
                  // We only ever emit \u00xx control escapes; decode
                  // the Latin-1 range and reject the rest rather than
                  // mis-handle surrogate pairs.
                  if (code > 0xff)
                      return false;
                  out += char(code);
                  break;
              }
              default:
                return false;
            }
        }
        return consume('"');
    }

    /** One number/true/false token as raw text. */
    bool
    parseScalarToken(std::string &out)
    {
        skipSpace();
        out.clear();
        while (at != end && (std::isalnum(static_cast<unsigned char>(*at)) ||
                             *at == '-' || *at == '+' || *at == '.'))
            out += *at++;
        return !out.empty();
    }
};

} // namespace

JsonReport::Field &
JsonReport::field(std::string_view name)
{
    for (Field &f : fields)
        if (f.name == name)
            return f;
    Field f;
    f.name = std::string(name);
    fields.push_back(std::move(f));
    return fields.back();
}

const JsonReport::Field *
JsonReport::find(std::string_view name) const
{
    for (const Field &f : fields)
        if (f.name == name)
            return &f;
    return nullptr;
}

void
JsonReport::setCount(std::string_view name, uint64_t value)
{
    Field &f = field(name);
    f.type = FieldType::Count;
    f.countValue = value;
}

void
JsonReport::setNumber(std::string_view name, double value)
{
    Field &f = field(name);
    f.type = FieldType::Number;
    f.numberValue = value;
}

void
JsonReport::setBool(std::string_view name, bool value)
{
    Field &f = field(name);
    f.type = FieldType::Boolean;
    f.boolValue = value;
}

void
JsonReport::setText(std::string_view name, std::string_view value)
{
    Field &f = field(name);
    f.type = FieldType::Text;
    f.textValue = std::string(value);
}

bool
JsonReport::has(std::string_view name) const
{
    return find(name) != nullptr;
}

uint64_t
JsonReport::count(std::string_view name, uint64_t fallback) const
{
    const Field *f = find(name);
    if (!f)
        return fallback;
    if (f->type == FieldType::Count)
        return f->countValue;
    if (f->type == FieldType::Number && f->numberValue >= 0)
        return uint64_t(f->numberValue);
    return fallback;
}

double
JsonReport::number(std::string_view name, double fallback) const
{
    const Field *f = find(name);
    if (!f)
        return fallback;
    if (f->type == FieldType::Number)
        return f->numberValue;
    if (f->type == FieldType::Count)
        return double(f->countValue);
    return fallback;
}

bool
JsonReport::boolean(std::string_view name, bool fallback) const
{
    const Field *f = find(name);
    return f && f->type == FieldType::Boolean ? f->boolValue : fallback;
}

std::string
JsonReport::text(std::string_view name, std::string_view fallback) const
{
    const Field *f = find(name);
    return f && f->type == FieldType::Text ? f->textValue
                                           : std::string(fallback);
}

std::string
JsonReport::render() const
{
    std::string out = "{\n";
    out += "  \"schema\": \"yasim-report\",\n";
    out += "  \"schema_version\": " +
           std::to_string(kReportSchemaVersion) + ",\n";
    out += "  \"kind\": \"" + jsonEscape(reportKind) + "\"";
    for (const Field &f : fields) {
        out += ",\n  \"" + jsonEscape(f.name) + "\": ";
        switch (f.type) {
          case FieldType::Count:
            out += std::to_string(f.countValue);
            break;
          case FieldType::Number:
            out += renderNumber(f.numberValue);
            break;
          case FieldType::Boolean:
            out += f.boolValue ? "true" : "false";
            break;
          case FieldType::Text:
            out += '"' + jsonEscape(f.textValue) + '"';
            break;
        }
    }
    out += "\n}\n";
    return out;
}

bool
parseReport(const std::string &text, JsonReport &report)
{
    JsonCursor cur{text.data(), text.data() + text.size()};
    if (!cur.consume('{'))
        return false;

    bool saw_schema = false;
    bool saw_version = false;
    report.reportKind.clear();
    report.fields.clear();

    bool first = true;
    while (true) {
        cur.skipSpace();
        if (cur.consume('}'))
            break;
        if (!first && !cur.consume(','))
            return false;
        first = false;

        std::string name;
        if (!cur.parseString(name) || !cur.consume(':'))
            return false;

        cur.skipSpace();
        if (cur.at != cur.end && *cur.at == '"') {
            std::string value;
            if (!cur.parseString(value))
                return false;
            if (name == "schema") {
                if (value != "yasim-report")
                    return false;
                saw_schema = true;
            } else if (name == "kind") {
                report.reportKind = value;
            } else {
                report.setText(name, value);
            }
            continue;
        }

        std::string token;
        if (!cur.parseScalarToken(token))
            return false;
        if (token == "true" || token == "false") {
            report.setBool(name, token == "true");
        } else if (token.find_first_not_of("0123456789") ==
                   std::string::npos) {
            uint64_t value = std::strtoull(token.c_str(), nullptr, 10);
            if (name == "schema_version") {
                if (int(value) != kReportSchemaVersion)
                    return false;
                saw_version = true;
            } else {
                report.setCount(name, value);
            }
        } else {
            char *parse_end = nullptr;
            double value = std::strtod(token.c_str(), &parse_end);
            if (parse_end != token.c_str() + token.size())
                return false;
            report.setNumber(name, value);
        }
    }
    cur.skipSpace();
    return saw_schema && saw_version && cur.at == cur.end &&
           !report.reportKind.empty();
}

void
writeReportFile(const JsonReport &report, const std::string &path)
{
    std::string rendered = report.render();
    if (path.empty() || path == "-") {
        std::cout << rendered;
        return;
    }
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << rendered;
    os.flush();
    if (!os)
        fatal("cannot write report to '%s'", path.c_str());
}

} // namespace yasim
