#include "engine/cache_key.hh"

#include "support/check.hh"
#include "support/hash.hh"
#include "support/logging.hh"

namespace yasim {

namespace {

// yasim-lint: key(result) covers CacheConfig(uarch/cache.hh)
std::string
cacheKeyText(const CacheConfig &cache)
{
    return csprintf("%u/%u/%u/%d", cache.sizeKb, cache.assoc,
                    cache.blockBytes,
                    static_cast<int>(cache.replacement));
}

// yasim-lint: key(result) covers CoreConfig(sim/config.hh)
std::string
coreKeyText(const CoreConfig &core)
{
    return csprintf(
        "fw=%u,dw=%u,iw=%u,cw=%u,fq=%u,rob=%u,lsq=%u,iq=%u,"
        "ialu=%u,imd=%u,falu=%u,fmd=%u,mp=%u,"
        "lat=%u/%u/%u/%u/%u/%u,divp=%d,fe=%u,mpen=%u,triv=%d",
        core.fetchWidth, core.decodeWidth, core.issueWidth,
        core.commitWidth, core.fetchQueueEntries, core.robEntries,
        core.lsqEntries, core.iqEntries, core.intAlus,
        core.intMultDivUnits, core.fpAlus, core.fpMultDivUnits,
        core.memPorts, core.intAluLatency, core.intMulLatency,
        core.intDivLatency, core.fpAluLatency, core.fpMulLatency,
        core.fpDivLatency, core.divPipelined ? 1 : 0,
        core.frontendDepth, core.mispredictPenalty,
        core.trivialComputation ? 1 : 0);
}

// yasim-lint: key(result) covers BranchPredictorConfig(uarch/branch_predictor.hh)
std::string
bpKeyText(const BranchPredictorConfig &bp)
{
    return csprintf("kind=%d,bht=%u,gh=%u,btb=%u/%u,spec=%d",
                    static_cast<int>(bp.kind), bp.bhtEntries,
                    bp.globalHistoryBits, bp.btbEntries, bp.btbAssoc,
                    bp.speculativeUpdate ? 1 : 0);
}

// yasim-lint: key(result) covers MemoryConfig(uarch/memory_hierarchy.hh)
std::string
memKeyText(const MemoryConfig &mem)
{
    return csprintf(
        "l1i=%s,l1d=%s,l2=%s,lat=%u/%u/%u,mem=%u+%u*%u,"
        "itlb=%u,dtlb=%u,tlbmiss=%u,pf=%d",
        cacheKeyText(mem.l1i).c_str(), cacheKeyText(mem.l1d).c_str(),
        cacheKeyText(mem.l2).c_str(), mem.l1iLatency, mem.l1dLatency,
        mem.l2Latency, mem.memLatencyFirst, mem.memLatencyNext,
        mem.memBusBytes, mem.itlbEntries, mem.dtlbEntries,
        mem.tlbMissLatency, mem.nextLinePrefetch ? 1 : 0);
}

// yasim-lint: key(result) covers CostModel(techniques/technique.hh)
std::string
costKeyText(const CostModel &cost)
{
    return csprintf("%.17g/%.17g/%.17g/%.17g/%.17g",
                    cost.detailedPerInst, cost.functionalWarmPerInst,
                    cost.fastForwardPerInst, cost.profilePerInst,
                    cost.checkpointPerInst);
}

/**
 * Sharding segment of the result key. Empty when sharding is off, so
 * sequential results keep their historical keys (and caches); when on,
 * the shard plan changes the stitched statistics and the modeled cost,
 * so every knob that shapes the plan — and the stitch discipline —
 * participates. The warm directory deliberately does not: summaries
 * change wall-clock only, never results.
 */
// yasim-lint: key(result) covers ShardOptions(sim/sharded.hh)
std::string
shardKeyText(const ShardOptions &shards)
{
    if (!shards.enabled())
        return "";
    return csprintf("shards{n=%u,warm=%llu,stitch=%s}", shards.shards,
                    static_cast<unsigned long long>(shards.warmupInsts),
                    stitchModeName(shards.stitch));
}

} // namespace

CacheKeyStamper::CacheKeyStamper(std::string head,
                                 std::vector<Segment> layout)
    : text(std::move(head)), layout(std::move(layout)),
      slotStamped(this->layout.size(), false)
{
}

CacheKeyStamper &
CacheKeyStamper::stamp(std::string_view name, std::string_view value)
{
    std::string name_text(name);
    size_t slot = layout.size();
    for (size_t i = 0; i < layout.size(); ++i) {
        if (name == layout[i].name) {
            slot = i;
            break;
        }
    }
    YASIM_CHECK(slot < layout.size(),
                "unknown cache-key segment '%s'", name_text.c_str());
    YASIM_CHECK(!slotStamped[slot],
                "duplicate cache-key segment '%s'", name_text.c_str());
    YASIM_CHECK(slot >= nextSlot,
                "cache-key segment '%s' stamped out of canonical order",
                name_text.c_str());
    for (size_t i = nextSlot; i < slot; ++i) {
        YASIM_CHECK(layout[i].optional,
                    "required cache-key segment '%s' skipped before '%s'",
                    layout[i].name, name_text.c_str());
    }
    YASIM_CHECK(!value.empty(), "empty cache-key segment '%s'",
                name_text.c_str());
    YASIM_CHECK(value.find('\n') == std::string_view::npos,
                "cache-key segment '%s' contains a newline",
                name_text.c_str());
    text += '|';
    text += layout[slot].prefix;
    text += value;
    slotStamped[slot] = true;
    nextSlot = slot + 1;
    return *this;
}

std::string
CacheKeyStamper::finish()
{
    for (size_t i = nextSlot; i < layout.size(); ++i) {
        YASIM_CHECK(layout[i].optional,
                    "cache key finished without required segment '%s'",
                    layout[i].name);
    }
    nextSlot = layout.size();
    return text;
}

CacheKeyStamper
resultKeyStamper()
{
    return CacheKeyStamper(csprintf("v%d", kCacheFormatVersion),
                           {{"bench", "bench="},
                            {"suite", ""},
                            {"cost", "cost="},
                            {"shards", "", true},
                            {"tech", "tech="},
                            {"cfg", "cfg="}});
}

CacheKeyStamper
referenceLengthKeyStamper()
{
    return CacheKeyStamper(csprintf("v%d|reflen", kCacheFormatVersion),
                           {{"bench", "bench="}, {"suite", ""}});
}

// yasim-lint: key(result) covers SuiteConfig(workloads/suite.hh)
std::string
suiteKeyText(const SuiteConfig &suite)
{
    return csprintf("ref=%llu,seed=%llu",
                    static_cast<unsigned long long>(
                        suite.referenceInstructions),
                    static_cast<unsigned long long>(suite.seed));
}

// yasim-lint: key(result) covers SimConfig(sim/config.hh)
std::string
configKeyText(const SimConfig &config)
{
    return "core{" + coreKeyText(config.core) + "},bp{" +
           bpKeyText(config.bp) + "},mem{" + memKeyText(config.mem) +
           "}";
}

std::string
resultCacheKey(const Technique &technique, const TechniqueContext &ctx,
               const SimConfig &config)
{
    CacheKeyStamper stamper = resultKeyStamper();
    stamper.stamp("bench", ctx.benchmark)
        .stamp("suite", suiteKeyText(ctx.suite))
        .stamp("cost", costKeyText(ctx.cost));
    if (ctx.shards.enabled())
        stamper.stamp("shards", shardKeyText(ctx.shards));
    stamper.stamp("tech", technique.cacheKey())
        .stamp("cfg", configKeyText(config));
    return stamper.finish();
}

std::string
referenceLengthKey(const std::string &benchmark,
                   const SuiteConfig &suite)
{
    return referenceLengthKeyStamper()
        .stamp("bench", benchmark)
        .stamp("suite", suiteKeyText(suite))
        .finish();
}

std::string
cacheDigest(const std::string &key_text)
{
    Hasher h;
    h.str(key_text);
    return h.hex();
}

} // namespace yasim
