#include "engine/cache_key.hh"

#include "support/hash.hh"
#include "support/logging.hh"

namespace yasim {

namespace {

std::string
cacheKeyText(const CacheConfig &cache)
{
    return csprintf("%u/%u/%u/%d", cache.sizeKb, cache.assoc,
                    cache.blockBytes,
                    static_cast<int>(cache.replacement));
}

std::string
coreKeyText(const CoreConfig &core)
{
    return csprintf(
        "fw=%u,dw=%u,iw=%u,cw=%u,fq=%u,rob=%u,lsq=%u,iq=%u,"
        "ialu=%u,imd=%u,falu=%u,fmd=%u,mp=%u,"
        "lat=%u/%u/%u/%u/%u/%u,divp=%d,fe=%u,mpen=%u,triv=%d",
        core.fetchWidth, core.decodeWidth, core.issueWidth,
        core.commitWidth, core.fetchQueueEntries, core.robEntries,
        core.lsqEntries, core.iqEntries, core.intAlus,
        core.intMultDivUnits, core.fpAlus, core.fpMultDivUnits,
        core.memPorts, core.intAluLatency, core.intMulLatency,
        core.intDivLatency, core.fpAluLatency, core.fpMulLatency,
        core.fpDivLatency, core.divPipelined ? 1 : 0,
        core.frontendDepth, core.mispredictPenalty,
        core.trivialComputation ? 1 : 0);
}

std::string
bpKeyText(const BranchPredictorConfig &bp)
{
    return csprintf("kind=%d,bht=%u,gh=%u,btb=%u/%u,spec=%d",
                    static_cast<int>(bp.kind), bp.bhtEntries,
                    bp.globalHistoryBits, bp.btbEntries, bp.btbAssoc,
                    bp.speculativeUpdate ? 1 : 0);
}

std::string
memKeyText(const MemoryConfig &mem)
{
    return csprintf(
        "l1i=%s,l1d=%s,l2=%s,lat=%u/%u/%u,mem=%u+%u*%u,"
        "itlb=%u,dtlb=%u,tlbmiss=%u,pf=%d",
        cacheKeyText(mem.l1i).c_str(), cacheKeyText(mem.l1d).c_str(),
        cacheKeyText(mem.l2).c_str(), mem.l1iLatency, mem.l1dLatency,
        mem.l2Latency, mem.memLatencyFirst, mem.memLatencyNext,
        mem.memBusBytes, mem.itlbEntries, mem.dtlbEntries,
        mem.tlbMissLatency, mem.nextLinePrefetch ? 1 : 0);
}

std::string
costKeyText(const CostModel &cost)
{
    return csprintf("%.17g/%.17g/%.17g/%.17g/%.17g",
                    cost.detailedPerInst, cost.functionalWarmPerInst,
                    cost.fastForwardPerInst, cost.profilePerInst,
                    cost.checkpointPerInst);
}

/**
 * Sharding segment of the result key. Empty when sharding is off, so
 * sequential results keep their historical keys (and caches); when on,
 * the shard plan changes the stitched statistics and the modeled cost,
 * so every knob that shapes the plan — and the stitch discipline —
 * participates. The warm directory deliberately does not: summaries
 * change wall-clock only, never results.
 */
std::string
shardKeyText(const ShardOptions &shards)
{
    if (!shards.enabled())
        return "";
    return csprintf("|shards{n=%u,warm=%llu,stitch=%s}", shards.shards,
                    static_cast<unsigned long long>(shards.warmupInsts),
                    stitchModeName(shards.stitch));
}

} // namespace

std::string
suiteKeyText(const SuiteConfig &suite)
{
    return csprintf("ref=%llu,seed=%llu",
                    static_cast<unsigned long long>(
                        suite.referenceInstructions),
                    static_cast<unsigned long long>(suite.seed));
}

std::string
configKeyText(const SimConfig &config)
{
    return "core{" + coreKeyText(config.core) + "},bp{" +
           bpKeyText(config.bp) + "},mem{" + memKeyText(config.mem) +
           "}";
}

std::string
resultCacheKey(const Technique &technique, const TechniqueContext &ctx,
               const SimConfig &config)
{
    return csprintf("v%d|bench=%s|%s|cost=%s%s|tech=%s|cfg=%s",
                    kCacheFormatVersion, ctx.benchmark.c_str(),
                    suiteKeyText(ctx.suite).c_str(),
                    costKeyText(ctx.cost).c_str(),
                    shardKeyText(ctx.shards).c_str(),
                    technique.cacheKey().c_str(),
                    configKeyText(config).c_str());
}

std::string
referenceLengthKey(const std::string &benchmark,
                   const SuiteConfig &suite)
{
    return csprintf("v%d|reflen|bench=%s|%s", kCacheFormatVersion,
                    benchmark.c_str(), suiteKeyText(suite).c_str());
}

std::string
cacheDigest(const std::string &key_text)
{
    Hasher h;
    h.str(key_text);
    return h.hex();
}

} // namespace yasim
