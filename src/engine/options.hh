/**
 * @file
 * Shared command-line option parsing for every yasim entry point.
 *
 * One parser serves the bench drivers (through BenchDriver), the
 * examples, the `yasimd` experiment daemon, the `yasim-client` CLI,
 * and the service load generator, so an engine knob added here appears
 * everywhere at once instead of in 24 copy-pasted flag loops:
 *
 *   --ref-insts N     reference-run dynamic length (scales everything)
 *   --benchmarks a,b  subset of the suite to run
 *   --seed N          suite data seed
 *   --csv             emit CSV instead of aligned text
 *   --full            full-fidelity mode (all permutations / configs)
 *   --cache-dir DIR   persist simulation results across invocations
 *   --cache-budget-mb N  bound the cache directory; evict oldest files
 *   --engine-stats    print ExperimentEngine counters to stderr
 *   --engine-stats-json FILE  write the counters as a versioned JSON
 *                     report (result_io.hh schema) instead of a table
 *   --workers N       bound the work-stealing pool at N workers
 *   --trace           record/replay execution traces (the default)
 *   --no-trace        re-interpret functionally on every run
 *   --livepoints      persisted per-unit live-points and the parallel
 *                     sampling fan-out (the default; see docs/perf.md)
 *   --no-livepoints   serial in-memory sampling loop (bit-identical)
 *   --shards N        split the reference detailed run into N parallel
 *                     checkpoint-aligned shards (see docs/perf.md)
 *   --shard-warmup M  functional-warming lead-in per shard, in
 *                     instructions (0 = warm the full prefix)
 *   --exact           force the sequential reference path regardless
 *                     of --shards (byte-identical to --shards 1)
 *   --failpoints SPEC arm deterministic fault-injection sites
 *                     (see support/failpoint.hh for the grammar)
 */

#ifndef YASIM_ENGINE_OPTIONS_HH
#define YASIM_ENGINE_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.hh"
#include "workloads/suite.hh"

namespace yasim {

/**
 * The engine-shaping flags every yasim binary accepts. Parsed either
 * through parseBenchOptions() (drivers) or one flag at a time through
 * parseEngineCliOption() (daemon / client / load-generator loops that
 * carry extra flags of their own).
 */
struct EngineCliOptions
{
    /** On-disk result cache directory ("" = memory-only memoization). */
    std::string cacheDir;
    /** Cache-directory budget in MiB (0 = unbounded). */
    uint64_t cacheBudgetMb = 0;
    /**
     * Failpoint schedule to arm before the run ("" = none beyond any
     * YASIM_FAILPOINTS environment schedule). Deterministic: the same
     * spec produces the same fault sequence every run.
     */
    std::string failpoints;
    /** Print ExperimentEngine counters to stderr after the run. */
    bool engineStats = false;
    /** Write the counters as a versioned JSON report to this path. */
    std::string engineStatsJson;
    /** Worker-pool bound (0 = auto-detect). */
    unsigned workers = 0;
    /**
     * Record each benchmark's execution once and replay it everywhere
     * (--no-trace disables; results are bit-identical either way).
     */
    bool trace = true;
    /**
     * Persist per-unit live-points and fan sampled measurement units
     * across the worker pool (--no-livepoints selects the serial
     * in-memory loop; results are bit-identical either way).
     */
    bool livepoints = true;
    /** Reference-run shard count (1 = sequential; see docs/perf.md). */
    uint32_t shards = 1;
    /** Per-shard functional-warming bound (0 = full prefix). */
    uint64_t shardWarmup = 0;
    /** Force the exact sequential reference path. */
    bool exact = false;
};

/** Parsed common options for the bench/example drivers. */
struct BenchOptions
{
    /** Suite scaling derived from --ref-insts / --seed. */
    SuiteConfig suite;
    /** Benchmarks to run (defaults to the full suite). */
    std::vector<std::string> benchmarks;
    /** Emit CSV instead of the aligned table. */
    bool csv = false;
    /** Run the full-fidelity version of the experiment. */
    bool full = false;
    /** The shared engine flags. */
    EngineCliOptions engine;
};

/**
 * Try to consume the engine flag at argv[@p i] into @p options.
 * Returns true when the flag (and its value, if any) was consumed —
 * @p i then indexes the last consumed element. Missing or malformed
 * values are fatal(); unrecognized flags return false so the caller's
 * own loop can handle them.
 */
bool parseEngineCliOption(EngineCliOptions &options, int argc,
                          char **argv, int &i);

/** Usage text for the flags parseEngineCliOption() accepts. */
const char *engineCliUsage();

/**
 * Translate parsed flags into engine construction knobs. Pure — does
 * not touch process-wide state (see applyEngineRuntime()).
 */
EngineOptions engineOptionsFrom(const EngineCliOptions &options);

/**
 * Apply the process-wide side of the flags: the worker-pool bound and
 * the failpoint schedule. Call once, before the first parallel batch.
 */
void applyEngineRuntime(const EngineCliOptions &options);

/**
 * Parse argv. Unknown options are fatal (with a usage message).
 * @param default_ref_insts experiment-appropriate default length
 */
BenchOptions parseBenchOptions(int argc, char **argv,
                               uint64_t default_ref_insts);

} // namespace yasim

#endif // YASIM_ENGINE_OPTIONS_HH
