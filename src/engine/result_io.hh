/**
 * @file
 * Bit-exact (de)serialization of TechniqueResult for the disk cache.
 *
 * The format is line-oriented text: a version header, the full cache
 * key (verified on load — a digest collision or a renamed file can
 * never resurrect the wrong result), then one field per line. Doubles
 * are stored as 16-hex-digit IEEE-754 bit patterns so a round-tripped
 * result is bit-identical to the freshly simulated one — the derived
 * tables print byte-identically from either. Loads are strict: any
 * malformed or truncated file — or one with trailing bytes after a
 * well-formed payload — reads as a cache miss.
 *
 * The same file also defines the repo's one machine-readable report
 * format: JsonReport, a flat versioned JSON object every emitter
 * (--engine-stats-json, microbench --json / --json-ooo, yasimd,
 * bench_service) writes and every consumer (yasim-client, the CI perf
 * gates) parses. Historical field names are preserved as-is so gates
 * written against the pre-schema output keep working for one release.
 */

#ifndef YASIM_ENGINE_RESULT_IO_HH
#define YASIM_ENGINE_RESULT_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "techniques/technique.hh"

namespace yasim {

/** JsonReport schema version ("schema_version" in every report). */
constexpr int kReportSchemaVersion = 1;

/**
 * A flat, ordered JSON object under the versioned "yasim-report"
 * schema. Fields render in insertion order, so reports are
 * byte-deterministic; setting an existing name overwrites its value in
 * place (how old field names stay aliased to new ones). Rendered form:
 *
 *     {
 *       "schema": "yasim-report",
 *       "schema_version": 1,
 *       "kind": "engine-stats",
 *       "results_memoized": 42,
 *       ...
 *     }
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string kind) : reportKind(std::move(kind)) {}

    /** What the report describes, e.g. "engine-stats", "perf-gate". */
    const std::string &kind() const { return reportKind; }

    void setCount(std::string_view name, uint64_t value);
    void setNumber(std::string_view name, double value);
    void setBool(std::string_view name, bool value);
    void setText(std::string_view name, std::string_view value);

    /** True when the report carries @p name. */
    bool has(std::string_view name) const;
    /** Typed lookups; @p fallback when absent or differently typed. */
    uint64_t count(std::string_view name, uint64_t fallback = 0) const;
    double number(std::string_view name, double fallback = 0.0) const;
    bool boolean(std::string_view name, bool fallback = false) const;
    std::string text(std::string_view name,
                     std::string_view fallback = "") const;

    /** Render the complete JSON document (trailing newline included). */
    std::string render() const;

  private:
    friend bool parseReport(const std::string &text, JsonReport &report);

    enum class FieldType { Count, Number, Boolean, Text };

    struct Field
    {
        std::string name;
        FieldType type = FieldType::Count;
        uint64_t countValue = 0;
        double numberValue = 0.0;
        bool boolValue = false;
        std::string textValue;
    };

    Field &field(std::string_view name);
    const Field *find(std::string_view name) const;

    std::string reportKind;
    std::vector<Field> fields;
};

/**
 * Parse a rendered report. Strict about the envelope — the schema tag
 * and a supported schema_version are required — and tolerant about the
 * payload (unknown fields load fine, so old readers accept new
 * reports). Returns false on malformed JSON or a wrong envelope.
 */
bool parseReport(const std::string &text, JsonReport &report);

/** Render @p report to @p path ("-" or "" = stdout). Fatal on I/O error. */
void writeReportFile(const JsonReport &report, const std::string &path);

/** Serialize @p result (cached under @p key_text) to @p os. */
void writeResult(std::ostream &os, const std::string &key_text,
                 const TechniqueResult &result);

/**
 * Parse a result previously written with writeResult. Returns false —
 * leaving @p result unspecified — on a version, key, or format
 * mismatch.
 */
bool readResult(std::istream &is, const std::string &key_text,
                TechniqueResult &result);

/** Serialize a reference-length measurement. */
void writeReferenceLength(std::ostream &os, const std::string &key_text,
                          uint64_t length);

/** Parse a reference length; false on any mismatch. */
bool readReferenceLength(std::istream &is, const std::string &key_text,
                         uint64_t &length);

} // namespace yasim

#endif // YASIM_ENGINE_RESULT_IO_HH
