/**
 * @file
 * Bit-exact (de)serialization of TechniqueResult for the disk cache.
 *
 * The format is line-oriented text: a version header, the full cache
 * key (verified on load — a digest collision or a renamed file can
 * never resurrect the wrong result), then one field per line. Doubles
 * are stored as 16-hex-digit IEEE-754 bit patterns so a round-tripped
 * result is bit-identical to the freshly simulated one — the derived
 * tables print byte-identically from either. Loads are strict: any
 * malformed or truncated file — or one with trailing bytes after a
 * well-formed payload — reads as a cache miss.
 */

#ifndef YASIM_ENGINE_RESULT_IO_HH
#define YASIM_ENGINE_RESULT_IO_HH

#include <iosfwd>
#include <string>

#include "techniques/technique.hh"

namespace yasim {

/** Serialize @p result (cached under @p key_text) to @p os. */
void writeResult(std::ostream &os, const std::string &key_text,
                 const TechniqueResult &result);

/**
 * Parse a result previously written with writeResult. Returns false —
 * leaving @p result unspecified — on a version, key, or format
 * mismatch.
 */
bool readResult(std::istream &is, const std::string &key_text,
                TechniqueResult &result);

/** Serialize a reference-length measurement. */
void writeReferenceLength(std::ostream &os, const std::string &key_text,
                          uint64_t length);

/** Parse a reference length; false on any mismatch. */
bool readReferenceLength(std::istream &is, const std::string &key_text,
                         uint64_t &length);

} // namespace yasim

#endif // YASIM_ENGINE_RESULT_IO_HH
