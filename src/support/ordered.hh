/**
 * @file
 * Deterministic iteration over unordered containers.
 *
 * The repository's results must be bit-reproducible across runs,
 * platforms, and standard libraries, so iterating a hash container
 * directly is banned wherever the order can reach stats output,
 * serialization, or cache keys (yasim-lint rule D2). These helpers are
 * the sanctioned escape hatch: they snapshot the container and sort by
 * key, giving O(n log n) deterministic traversal. Hash containers stay
 * the right choice for the hot lookup paths; ordering is paid only at
 * the (cold) emission sites.
 */

#ifndef YASIM_SUPPORT_ORDERED_HH
#define YASIM_SUPPORT_ORDERED_HH

#include <algorithm>
#include <vector>

namespace yasim {

/**
 * Pointers to @p map's entries, sorted by key. The map must outlive
 * and not mutate under the returned view.
 *
 *     for (const auto *kv : orderedView(pages))
 *         use(kv->first, kv->second);
 */
template <typename Map>
std::vector<const typename Map::value_type *>
orderedView(const Map &map)
{
    std::vector<const typename Map::value_type *> view;
    view.reserve(map.size());
    // yasim-lint: allow(D2) — this is the sorting seam itself.
    for (const auto &kv : map)
        view.push_back(&kv);
    std::sort(view.begin(), view.end(),
              [](const auto *a, const auto *b) {
                  return a->first < b->first;
              });
    return view;
}

/** Key extraction: map entries carry pairs, sets carry keys. */
template <typename K, typename V>
const K &
keyOf(const std::pair<const K, V> &kv)
{
    return kv.first;
}

template <typename K>
const K &
keyOf(const K &key)
{
    return key;
}

/** The keys of a map or set, sorted ascending (copied). */
template <typename Container>
auto
sortedKeys(const Container &container)
{
    std::vector<typename Container::key_type> keys;
    keys.reserve(container.size());
    // yasim-lint: allow(D2) — this is the sorting seam itself.
    for (const auto &item : container)
        keys.push_back(keyOf(item));
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace yasim

#endif // YASIM_SUPPORT_ORDERED_HH
