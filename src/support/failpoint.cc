#include "support/failpoint.hh"

#include <cstdlib>
#include <map>
#include <mutex>

#include "support/hash.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace yasim::failpoint {

namespace {

constexpr uint64_t kDefaultSeed = 0x5ec5fa1171e5ULL;

enum class TriggerKind {
    OneIn,  ///< fire with probability 1/n on every evaluation
    After,  ///< fire exactly once, on the (n+1)-th evaluation
    Always, ///< fire on every evaluation
};

struct Site
{
    TriggerKind kind = TriggerKind::Always;
    uint64_t n = 0;
    /** Private stream so arming one site never shifts another's. */
    Rng rng;
    SiteStats stats;
    bool spent = false; ///< an After trigger that already fired

    Site() : rng(0) {}
};

struct Registry
{
    std::mutex mutex;
    bool envLoaded = false;
    uint64_t seed = kDefaultSeed;
    std::string spec;
    /** std::map: allStats() iterates in sorted order (lint rule D2). */
    std::map<std::string, Site> sites;
};

Registry &
registry()
{
    // Every member access below goes through Registry::mutex.
    static Registry instance; // yasim-lint: guarded(Registry::mutex)
    return instance;
}

/** Per-site Rng seed: schedule seed mixed with the site name. */
uint64_t
siteSeed(uint64_t seed, const std::string &name)
{
    Hasher h;
    h.u64(seed);
    h.str(name);
    return h.digest();
}

/** Parse one "site=trigger" entry into @p reg. Fatal on nonsense. */
void
parseEntry(Registry &reg, const std::string &entry)
{
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size())
        fatal("failpoint entry '%s' is not site=trigger", entry.c_str());
    std::string name = entry.substr(0, eq);
    std::string trigger = entry.substr(eq + 1);

    if (name == "seed") {
        reg.seed = std::strtoull(trigger.c_str(), nullptr, 10);
        return;
    }
    if (trigger == "off") {
        reg.sites.erase(name);
        return;
    }

    Site site;
    if (trigger == "always") {
        site.kind = TriggerKind::Always;
    } else if (trigger.compare(0, 3, "1in") == 0) {
        site.kind = TriggerKind::OneIn;
        char *end = nullptr;
        site.n = std::strtoull(trigger.c_str() + 3, &end, 10);
        if (site.n == 0 || *end != '\0')
            fatal("failpoint '%s': bad 1inN trigger '%s'", name.c_str(),
                  trigger.c_str());
    } else if (trigger.compare(0, 5, "after") == 0) {
        site.kind = TriggerKind::After;
        char *end = nullptr;
        site.n = std::strtoull(trigger.c_str() + 5, &end, 10);
        if (*end != '\0')
            fatal("failpoint '%s': bad afterK trigger '%s'",
                  name.c_str(), trigger.c_str());
    } else {
        fatal("failpoint '%s': unknown trigger '%s' (want 1inN, "
              "afterK, always, or off)",
              name.c_str(), trigger.c_str());
    }
    reg.sites[name] = site;
}

/** (Re)build the whole registry from @p spec. Caller holds the mutex. */
void
applySpec(Registry &reg, const std::string &spec)
{
    reg.seed = kDefaultSeed;
    reg.sites.clear();
    reg.spec = spec;

    size_t start = 0;
    while (start < spec.size()) {
        size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        if (comma > start)
            parseEntry(reg, spec.substr(start, comma - start));
        start = comma + 1;
    }
    for (auto &[name, site] : reg.sites)
        site.rng = Rng(siteSeed(reg.seed, name));
}

/** Load $YASIM_FAILPOINTS once, unless configure() already ran. */
void
ensureEnvLoaded(Registry &reg)
{
    if (reg.envLoaded)
        return;
    reg.envLoaded = true;
    const char *env = std::getenv("YASIM_FAILPOINTS");
    if (env && *env)
        applySpec(reg, env);
}

} // namespace

void
configure(const std::string &spec)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.envLoaded = true; // an explicit schedule overrides the env
    applySpec(reg, spec);
}

void
configureFromEnv()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.envLoaded = false;
    applySpec(reg, "");
    ensureEnvLoaded(reg);
}

void
reset()
{
    configure("");
}

bool
anyArmed()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    ensureEnvLoaded(reg);
    for (const auto &[name, site] : reg.sites)
        if (site.kind != TriggerKind::After || !site.spent)
            return true;
    return false;
}

bool
fire(const char *site_name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    ensureEnvLoaded(reg);
    auto it = reg.sites.find(site_name);
    if (it == reg.sites.end())
        return false;
    Site &site = it->second;
    ++site.stats.evaluations;

    bool fired = false;
    switch (site.kind) {
    case TriggerKind::Always:
        fired = true;
        break;
    case TriggerKind::OneIn:
        fired = site.rng.nextBelow(site.n) == 0;
        break;
    case TriggerKind::After:
        if (!site.spent && site.stats.evaluations > site.n) {
            fired = true;
            site.spent = true;
        }
        break;
    }
    if (fired)
        ++site.stats.fires;
    return fired;
}

SiteStats
stats(const std::string &site)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.sites.find(site);
    return it == reg.sites.end() ? SiteStats{} : it->second.stats;
}

std::vector<std::pair<std::string, SiteStats>>
allStats()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<std::pair<std::string, SiteStats>> out;
    for (const auto &[name, site] : reg.sites)
        out.emplace_back(name, site.stats);
    return out;
}

std::string
activeSpec()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    ensureEnvLoaded(reg);
    return reg.spec;
}

ScopedSchedule::ScopedSchedule(const std::string &spec)
    : saved(activeSpec())
{
    configure(spec);
}

ScopedSchedule::~ScopedSchedule()
{
    configure(saved);
}

} // namespace yasim::failpoint
