/**
 * @file
 * Self-healing framed artifact I/O for every on-disk cache.
 *
 * Every artifact the library persists — result-cache entries,
 * reference lengths, trace spills, checkpoint files — goes through one
 * reader/writer pair instead of three copy-pasted temp+rename blocks.
 * The wire format frames an opaque payload:
 *
 *     container magic  "yasimART"                 (8 bytes)
 *     container ver    kArtifactFormatVersion      (u32)
 *     inner magic      length-prefixed string      (u64 + bytes)
 *     inner version    caller's format version     (u32)
 *     payload length                                (u64)
 *     payload bytes
 *     checksum         two Hasher lanes over magic/version/payload
 *                                                   (2 x u64)
 *     end mark                                      (u64)
 *
 * and the file must end there: trailing garbage is corruption. Writes
 * build the frame in memory, stream it to a private temp file, fsync,
 * and atomically rename into place, so concurrent processes sharing a
 * cache directory can never observe a torn artifact. Reads verify
 * every field; any mismatch — bad magic, short file, checksum
 * failure, trailing bytes — quarantines the file to "<path>.corrupt"
 * and reports Corrupt, which callers treat as a miss and recompute.
 * A frame that verifies cleanly but carries a stale inner format
 * version is not rot: it is deleted (no quarantine) and reported as
 * VersionMismatch so callers can count it separately. Opens that fail
 * transiently are retried a bounded number of times with linear
 * backoff.
 *
 * All the failure paths are testable deterministically through the
 * failpoint sites documented in support/failpoint.hh.
 */

#ifndef YASIM_SUPPORT_ARTIFACT_IO_HH
#define YASIM_SUPPORT_ARTIFACT_IO_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace yasim {

/** Container-framing layout version (independent of inner formats). */
// yasim-lint: version(artifact)
constexpr uint32_t kArtifactFormatVersion = 1;

/** Outcome of a framed read. */
enum class ArtifactStatus {
    Ok,        ///< payload verified and returned
    Missing,   ///< no such file — a plain cache miss
    Corrupt,   ///< frame verification failed; file quarantined
    Transient, ///< open kept failing after bounded retries
    /**
     * The frame verified cleanly but carries a different inner format
     * version — a stale spill from an older (or newer) build, not rot.
     * The file is deleted, not quarantined: there is nothing to debug
     * in a well-formed artifact that simply aged out.
     */
    VersionMismatch,
};

/** Everything readArtifact() learned. */
struct ArtifactReadResult
{
    ArtifactStatus status = ArtifactStatus::Missing;
    /** The verified payload (valid only when status == Ok). */
    std::string payload;
    /** Human-readable cause when status != Ok. */
    std::string error;
    /** Transient-open retries that were needed. */
    uint32_t retries = 0;
    /** True when a corrupt file was moved to "<path>.corrupt". */
    bool quarantined = false;
};

/** Outcome of a framed write. */
struct ArtifactWriteResult
{
    bool ok = false;
    std::string error;
    /** Transient-open retries that were needed. */
    uint32_t retries = 0;
};

/**
 * Serialize one frame (layout in the file comment) around @p payload.
 * This is the byte sequence writeArtifact() publishes — exposed so the
 * experiment-service wire protocol (src/service/) frames its messages
 * identically to the on-disk artifacts.
 */
std::string encodeFrame(std::string_view magic, uint32_t version,
                        std::string_view payload);

/**
 * Parse and verify a complete frame against (@p magic, @p version).
 * Returns true and fills @p payload; false with a human-readable
 * cause in @p error otherwise. Trailing bytes are an error.
 *
 * The checksum is verified against the version the frame itself
 * carries, so a frame whose every check passes except the inner
 * version is distinguishable from corruption: that case sets
 * @p version_mismatch (when non-null) before returning false. A
 * corrupted version field fails the checksum and stays plain-false.
 */
bool decodeFrame(std::string_view frame, std::string_view magic,
                 uint32_t version, std::string &payload,
                 std::string &error, bool *version_mismatch = nullptr);

/** What frameSize() could learn from a frame prefix. */
enum class FrameSizeStatus {
    NeedMore,  ///< the prefix does not yet cover the header fields
    Known,     ///< total frame size determined
    Malformed, ///< bad container magic or an insane length field
};

/**
 * Incremental stream framing: inspect a prefix of a frame and, once
 * the header fields are available, report the total frame size in
 * @p size. Payloads longer than @p max_payload (or inner magics past
 * the layout bound) classify as Malformed, so a stream reader can drop
 * a hostile or corrupt peer without buffering gigabytes.
 */
FrameSizeStatus frameSize(std::string_view prefix, uint64_t max_payload,
                          uint64_t &size);

/**
 * Read and verify the framed artifact at @p path. The frame must
 * carry @p magic and @p version; any verification failure quarantines
 * the file and reports Corrupt, except a cleanly-framed stale version,
 * which deletes the file and reports VersionMismatch. Never throws,
 * never aborts.
 */
ArtifactReadResult readArtifact(const std::string &path,
                                std::string_view magic,
                                uint32_t version);

/**
 * Frame @p payload under (@p magic, @p version) and publish it at
 * @p path via write-temp/fsync/atomic-rename. Best-effort: failures
 * are reported, never thrown.
 */
ArtifactWriteResult writeArtifact(const std::string &path,
                                  std::string_view magic,
                                  uint32_t version,
                                  std::string_view payload);

/**
 * Move @p path aside to "<path>.corrupt" (replacing any previous
 * quarantine) so the next lookup misses instead of re-parsing a bad
 * file; used by callers whose payload-level parse fails after the
 * frame verified. Returns false when the file could not be moved (it
 * is removed instead, so the bad bytes never survive either way).
 */
bool quarantineArtifact(const std::string &path);

/**
 * Delete the oldest regular files (by modification time, then name)
 * in @p dir until the directory's total size is at most @p max_bytes.
 * The newest file always survives, whatever its size; in-flight
 * ".tmp." files are skipped. Returns the number of files removed.
 */
uint64_t evictToBudget(const std::string &dir, uint64_t max_bytes);

} // namespace yasim

#endif // YASIM_SUPPORT_ARTIFACT_IO_HH
