/**
 * @file
 * Status-message and error-reporting helpers in the gem5 idiom.
 *
 * panic() is for internal invariant violations (a simulator bug): it prints
 * and aborts. fatal() is for user errors (bad configuration, impossible
 * technique parameters): it prints and exits with status 1. warn() and
 * inform() report conditions without stopping the simulation.
 */

#ifndef YASIM_SUPPORT_LOGGING_HH
#define YASIM_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <string>

namespace yasim {

/** Print a formatted message and abort. Use for internal bugs only. */
[[noreturn]] void panic(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1). Use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it for clean tables). */
void setInformEnabled(bool enabled);

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert that holds in release builds too. Panics with the stringified
 * condition when it fails.
 */
#define YASIM_ASSERT(cond)                                                    \
    do {                                                                      \
        if (!(cond))                                                          \
            ::yasim::panic("assertion failed at %s:%d: %s",                   \
                           __FILE__, __LINE__, #cond);                        \
    } while (0)

} // namespace yasim

#endif // YASIM_SUPPORT_LOGGING_HH
