#include "support/check.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace yasim {

namespace {

[[noreturn]] void
emitAndAbort(const char *file, int line, const char *condition,
             const std::string &detail)
{
    std::fprintf(stderr, "panic: CHECK failed at %s:%d: %s%s%s\n", file,
                 line, condition, detail.empty() ? "" : " ",
                 detail.c_str());
    std::fflush(stderr);
    std::abort();
}

} // namespace

void
checkFailed(const char *file, int line, const char *condition)
{
    emitAndAbort(file, line, condition, "");
}

void
checkFailed(const char *file, int line, const char *condition,
            const char *fmt, ...)
{
    char buffer[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buffer, sizeof(buffer), fmt, args);
    va_end(args);
    emitAndAbort(file, line, condition, buffer);
}

} // namespace yasim
