/**
 * @file
 * Contract-checking layer: YASIM_CHECK and YASIM_DCHECK.
 *
 * YASIM_CHECK asserts an invariant in every build (like YASIM_ASSERT)
 * but with formatted diagnostics: an optional printf-style message and
 * _EQ/_NE/_LT/_LE/_GT/_GE comparison forms that print both operands on
 * failure. Use it at trust boundaries — deserialization, cross-layer
 * handoffs, cache-key construction — where a terse stringified
 * condition is not enough to debug a corrupted artifact.
 *
 * YASIM_DCHECK is the expensive sibling: it compiles to nothing unless
 * the build sets -DYASIM_CHECKS=ON (which defines YASIM_ENABLE_CHECKS),
 * so it may sit in hot loops (per-instruction replay, issue/retire).
 * The sanitizer CI jobs build with checks enabled, so every DCHECK
 * still runs on every push.
 *
 * Failure is a panic: these are internal invariants, not user errors.
 */

#ifndef YASIM_SUPPORT_CHECK_HH
#define YASIM_SUPPORT_CHECK_HH

#include <sstream>
#include <string>

namespace yasim {

/** Panic with "CHECK failed" diagnostics. @p fmt may add context. */
[[noreturn]] void checkFailed(const char *file, int line,
                              const char *condition);
[[noreturn]] void checkFailed(const char *file, int line,
                              const char *condition, const char *fmt,
                              ...) __attribute__((format(printf, 4, 5)));

/** Stream both operands of a failed comparison and panic. */
template <typename A, typename B>
[[noreturn]] void
checkOpFailed(const char *file, int line, const char *expr,
              const A &lhs, const B &rhs)
{
    std::ostringstream os;
    os << "(lhs=" << lhs << ", rhs=" << rhs << ")";
    checkFailed(file, line, expr, "%s", os.str().c_str());
}

#define YASIM_CHECK(cond, ...)                                         \
    do {                                                               \
        if (!(cond)) [[unlikely]]                                      \
            ::yasim::checkFailed(__FILE__, __LINE__,                   \
                                 #cond __VA_OPT__(, ) __VA_ARGS__);    \
    } while (0)

#define YASIM_CHECK_OP_(op, a, b)                                      \
    do {                                                               \
        const auto &yasim_check_a_ = (a);                              \
        const auto &yasim_check_b_ = (b);                              \
        if (!(yasim_check_a_ op yasim_check_b_)) [[unlikely]]          \
            ::yasim::checkOpFailed(__FILE__, __LINE__,                 \
                                   #a " " #op " " #b, yasim_check_a_,  \
                                   yasim_check_b_);                    \
    } while (0)

#define YASIM_CHECK_EQ(a, b) YASIM_CHECK_OP_(==, a, b)
#define YASIM_CHECK_NE(a, b) YASIM_CHECK_OP_(!=, a, b)
#define YASIM_CHECK_LT(a, b) YASIM_CHECK_OP_(<, a, b)
#define YASIM_CHECK_LE(a, b) YASIM_CHECK_OP_(<=, a, b)
#define YASIM_CHECK_GT(a, b) YASIM_CHECK_OP_(>, a, b)
#define YASIM_CHECK_GE(a, b) YASIM_CHECK_OP_(>=, a, b)

#ifdef YASIM_ENABLE_CHECKS
#define YASIM_DCHECK(...) YASIM_CHECK(__VA_ARGS__)
#define YASIM_DCHECK_EQ(a, b) YASIM_CHECK_EQ(a, b)
#define YASIM_DCHECK_NE(a, b) YASIM_CHECK_NE(a, b)
#define YASIM_DCHECK_LT(a, b) YASIM_CHECK_LT(a, b)
#define YASIM_DCHECK_LE(a, b) YASIM_CHECK_LE(a, b)
#define YASIM_DCHECK_GT(a, b) YASIM_CHECK_GT(a, b)
#define YASIM_DCHECK_GE(a, b) YASIM_CHECK_GE(a, b)
#else
/* Compiled out, but still parsed/type-checked so dchecked expressions
 * cannot rot (and variables used only in checks stay "used"). */
#define YASIM_DCHECK_DISABLED_(...)                                    \
    do {                                                               \
        if (false) {                                                   \
            YASIM_CHECK(__VA_ARGS__);                                  \
        }                                                              \
    } while (0)
#define YASIM_DCHECK(...) YASIM_DCHECK_DISABLED_(__VA_ARGS__)
#define YASIM_DCHECK_EQ(a, b) YASIM_DCHECK_DISABLED_((a) == (b))
#define YASIM_DCHECK_NE(a, b) YASIM_DCHECK_DISABLED_((a) != (b))
#define YASIM_DCHECK_LT(a, b) YASIM_DCHECK_DISABLED_((a) < (b))
#define YASIM_DCHECK_LE(a, b) YASIM_DCHECK_DISABLED_((a) <= (b))
#define YASIM_DCHECK_GT(a, b) YASIM_DCHECK_DISABLED_((a) > (b))
#define YASIM_DCHECK_GE(a, b) YASIM_DCHECK_DISABLED_((a) >= (b))
#endif

} // namespace yasim

#endif // YASIM_SUPPORT_CHECK_HH
