#include "support/codec.hh"

namespace yasim {

void
putVarint(std::string &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

bool
getVarint(std::string_view in, size_t &at, uint64_t &v)
{
    v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        if (at >= in.size())
            return false;
        const uint8_t byte = static_cast<uint8_t>(in[at++]);
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            // The 10th byte may only carry the top bit of a uint64_t.
            return shift < 63 || byte <= 1;
        }
    }
    return false; // continuation bit set past 10 bytes
}

void
rleEncode(std::string_view in, std::string &out)
{
    size_t i = 0;
    while (i < in.size()) {
        const char b = in[i];
        size_t j = i + 1;
        while (j < in.size() && in[j] == b)
            ++j;
        const size_t run = j - i;
        out.push_back(b);
        if (run >= 2) {
            out.push_back(b);
            putVarint(out, run - 2);
        }
        i = j;
    }
}

bool
rleDecode(std::string_view in, std::string &out, size_t max_out)
{
    size_t at = 0;
    while (at < in.size()) {
        const char b = in[at++];
        if (out.size() >= max_out)
            return false;
        out.push_back(b);
        if (at < in.size() && in[at] == b) {
            ++at;
            uint64_t extra = 0;
            if (!getVarint(in, at, extra))
                return false;
            // 1 for the pair's second byte, then the repeat count
            // (compared without forming extra + 1, which could wrap).
            if (extra >= max_out - out.size())
                return false;
            out.append(static_cast<size_t>(extra) + 1, b);
        }
    }
    return true;
}

} // namespace yasim
