/**
 * @file
 * Deterministic content hashing for cache keys.
 *
 * Hasher is a streaming, endianness-independent hash whose digest is
 * stable across processes and machines: values are decomposed into
 * explicit little-endian byte sequences before mixing, doubles are
 * hashed by bit pattern, and strings are length-prefixed so that
 * concatenation ambiguities cannot alias ("ab","c" vs "a","bc"). Two
 * independently-seeded FNV-1a lanes are combined into a 128-bit digest,
 * which keeps accidental collisions out of reach for the cache sizes
 * the ExperimentEngine deals in. This is not a cryptographic hash.
 */

#ifndef YASIM_SUPPORT_HASH_HH
#define YASIM_SUPPORT_HASH_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace yasim {

/** Streaming process-stable content hasher. */
class Hasher
{
  public:
    /** Mix a 64-bit value (little-endian byte order). */
    Hasher &u64(uint64_t v);
    /** Mix a 32-bit value. */
    Hasher &u32(uint32_t v) { return u64(v); }
    /** Mix a boolean. */
    Hasher &b(bool v) { return u64(v ? 1 : 0); }
    /** Mix a double by bit pattern (NaNs hash by representation). */
    Hasher &d(double v);
    /** Mix a length-prefixed string. */
    Hasher &str(std::string_view s);

    /** 128-bit digest as 32 lowercase hex characters. */
    std::string hex() const;

    /** Low 64 bits of the digest (for quick comparisons in tests). */
    uint64_t digest() const { return lane0; }

  private:
    void byte(uint8_t v);

    // FNV-1a offset bases; the second lane is seeded differently so the
    // two lanes disagree on any input that collides in one of them.
    uint64_t lane0 = 14695981039346656037ull;
    uint64_t lane1 = 0x9ae16a3b2f90404full;
};

} // namespace yasim

#endif // YASIM_SUPPORT_HASH_HH
