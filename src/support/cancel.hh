/**
 * @file
 * Cooperative cancellation and deadlines (docs/robustness.md).
 *
 * A CancelSource owns one cancellation flag; CancelTokens are cheap
 * shared handles onto it. Cancellation is strictly cooperative and
 * poll-based: nothing is interrupted, no signal is delivered — code
 * that wants to be cancellable calls token.cancelled() at its own
 * safe points and unwinds by returning early or throwing
 * CancelledError. The long-running loops (OooCore batches, shard
 * workers, ThreadPool claims) poll only at chunk/batch boundaries so
 * the hot paths stay branch-predictable; an *invalid* (default)
 * token's poll is a single null check and can never fire.
 *
 * Two causes exist and the first one recorded wins:
 *
 *     Cancelled         someone called CancelSource::cancel()
 *     DeadlineExceeded  the source's monotonic deadline passed
 *
 * Deadlines are the only place in src/ that reads a clock, and the
 * read is confined to monotonicNowMs() in cancel.cc with a lint
 * suppression: a deadline can only make a run *stop sooner*, and a
 * cancelled run is never memoized, cached, or stitched, so wall time
 * can never leak into a result (determinism rule D1 stays intact).
 *
 * Determinism in tests comes from the "engine.cancel.token" failpoint:
 * every poll of a *valid* token evaluates it, so a schedule like
 * "engine.cancel.token=after4" cancels on exactly the fifth poll of
 * the run — no timers, no races.
 */

#ifndef YASIM_SUPPORT_CANCEL_HH
#define YASIM_SUPPORT_CANCEL_HH

#include <atomic>
#include <cstdint>
#include <memory>

namespace yasim {

/** Why a run stopped early. */
enum class CancelCause : uint32_t {
    None = 0,
    /** Explicitly cancelled via CancelSource::cancel(). */
    Cancelled = 1,
    /** The source's monotonic deadline passed. */
    DeadlineExceeded = 2,
};

/** Stable lowercase name of @p cause ("none"/"cancelled"/...). */
const char *cancelCauseName(CancelCause cause);

/**
 * Milliseconds on the process-wide monotonic clock. Liveness-only:
 * results must never depend on it (see file comment).
 */
int64_t monotonicNowMs();

namespace detail {

/** Shared state behind one CancelSource and its tokens. */
struct CancelState
{
    /** CancelCause, sticky once non-zero (first cause wins). */
    std::atomic<uint32_t> cause{0};
    /** Monotonic expiry in ms; INT64_MAX when no deadline is set. */
    std::atomic<int64_t> deadlineAtMs{INT64_MAX};

    bool poll();
    CancelCause current() const
    {
        return CancelCause(cause.load(std::memory_order_acquire));
    }
};

} // namespace detail

/**
 * Thrown (by cancellation-aware callers, never by poll itself) to
 * unwind a cancelled run. Carries the cause and the partial work
 * already performed so accounting stays honest.
 */
struct CancelledError
{
    CancelCause cause = CancelCause::Cancelled;
    /** Cost-model work units completed before the run stopped. */
    double partialWorkUnits = 0.0;
    /** Raw partial progress, for layers that lack the cost model. */
    uint64_t detailedInsts = 0;
    uint64_t warmedInsts = 0;
};

/**
 * A poll-only view of a CancelSource. Default-constructed tokens are
 * invalid: cancelled() is one null check and always false, so
 * threading a token through an API costs nothing for callers that
 * never cancel.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /** True when bound to a CancelSource. */
    bool valid() const { return state != nullptr; }

    /**
     * Poll for cancellation: checks the sticky cause, then the
     * deadline, then the "engine.cancel.token" failpoint (valid
     * tokens only). Safe from any thread; sticky once true.
     */
    bool cancelled() const { return state && state->poll(); }

    /** The recorded cause (None while cancelled() is false). */
    CancelCause cause() const
    {
        return state ? state->current() : CancelCause::None;
    }

  private:
    friend class CancelSource;
    explicit CancelToken(std::shared_ptr<detail::CancelState> s)
        : state(std::move(s))
    {}

    std::shared_ptr<detail::CancelState> state;
};

/** Owner side: create tokens, set a deadline, request cancellation. */
class CancelSource
{
  public:
    CancelSource() : state(std::make_shared<detail::CancelState>()) {}

    /** A token observing this source. */
    CancelToken token() const { return CancelToken(state); }

    /**
     * Record @p cause; the first recorded cause wins and later calls
     * are no-ops. Safe from any thread.
     */
    void cancel(CancelCause cause = CancelCause::Cancelled);

    /** Expire this source @p ms from now on the monotonic clock. */
    void setDeadlineAfterMs(int64_t ms);

    /** Absolute monotonic expiry (INT64_MAX = none). */
    int64_t deadlineAtMs() const
    {
        return state->deadlineAtMs.load(std::memory_order_acquire);
    }

    /** True once cancelled or past deadline (polls, like a token). */
    bool expired() const { return state->poll(); }

    /** The recorded cause (None while expired() is false). */
    CancelCause cause() const { return state->current(); }

  private:
    std::shared_ptr<detail::CancelState> state;
};

} // namespace yasim

#endif // YASIM_SUPPORT_CANCEL_HH
