/**
 * @file
 * Plain-text table printer used by every bench binary to reproduce the
 * paper's tables and figure series in a uniform, diffable format.
 *
 * A Table is built row by row; column widths are computed at render time.
 * Cells are strings; numeric helpers format with a fixed precision so that
 * re-runs produce stable output. Tables can also be dumped as CSV for
 * downstream plotting.
 */

#ifndef YASIM_SUPPORT_TABLE_HH
#define YASIM_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace yasim {

/** Column alignment for rendering. */
enum class Align { Left, Right };

/** A simple text table with a title, header row, and body rows. */
class Table
{
  public:
    /** Construct with a title shown above the rendered table. */
    explicit Table(std::string title);

    /** Set the header row; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append one body row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Append a separator rule between row groups. */
    void addRule();

    /** Number of body rows added so far (rules excluded). */
    size_t numRows() const;

    /** Render as aligned plain text. First column left, rest right. */
    void print(std::ostream &os) const;

    /** Render as CSV (no title, header first). */
    void printCsv(std::ostream &os) const;

    /** Format a double with @p precision digits after the point. */
    static std::string num(double v, int precision = 3);

    /** Format a double as a percentage with a trailing '%'. */
    static std::string pct(double v, int precision = 2);

    /** Format an integer with thousands separators. */
    static std::string count(uint64_t v);

  private:
    std::string title;
    std::vector<std::string> header;
    /** Body rows; an empty vector encodes a rule. */
    std::vector<std::vector<std::string>> rows;
};

} // namespace yasim

#endif // YASIM_SUPPORT_TABLE_HH
