/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the library (workload generators, k-means
 * seeding, random projections) draws from an explicitly seeded Rng so that
 * simulations are bit-reproducible across runs and platforms. The generator
 * is xoshiro256**, seeded through SplitMix64 as its authors recommend.
 */

#ifndef YASIM_SUPPORT_RNG_HH
#define YASIM_SUPPORT_RNG_HH

#include <cstdint>

namespace yasim {

/** SplitMix64 step; used for seeding and as a cheap stateless hash. */
uint64_t splitMix64(uint64_t &state);

/** xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform in [0, bound) without modulo bias. @pre bound > 0 */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in the closed range [lo, hi]. @pre lo <= hi */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Standard normal variate (Box-Muller, cached pair). */
    double nextGaussian();

    /** Bernoulli trial with probability p of true. */
    bool nextBool(double p = 0.5);

  private:
    uint64_t s[4];
    double cachedGaussian = 0.0;
    bool hasCachedGaussian = false;
};

} // namespace yasim

#endif // YASIM_SUPPORT_RNG_HH
