/**
 * @file
 * Byte-stream primitives for compact serialization: LEB128 varints,
 * zigzag signed mapping, and a byte-run RLE. No external dependencies —
 * these are the building blocks of the delta/byte-plane encoded trace
 * chunks (sim/trace.cc, format v4) and are deterministic by
 * construction (pure functions of their input bytes).
 *
 * The RLE scheme is self-delimiting: a run of N >= 2 equal bytes is
 * emitted as the byte twice followed by a varint holding N - 2; a
 * single byte is emitted as itself. Adjacent runs always differ in
 * byte value, so the decoder needs no lookahead state: after reading
 * two equal bytes it knows a varint repeat count follows. Decoding is
 * bounded by an explicit output cap so hostile lengths cannot balloon
 * memory.
 */

#ifndef YASIM_SUPPORT_CODEC_HH
#define YASIM_SUPPORT_CODEC_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace yasim {

/** Append @p v to @p out as an LEB128 varint (1..10 bytes). */
void putVarint(std::string &out, uint64_t v);

/**
 * Parse one varint from @p in at offset @p at (advanced past it).
 * Returns false on truncation or a non-canonical >10-byte encoding.
 */
bool getVarint(std::string_view in, size_t &at, uint64_t &v);

/** Map a signed value onto unsigned so small magnitudes stay small. */
constexpr uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode. */
constexpr int64_t
zigzagDecode(uint64_t v)
{
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/** Append the RLE encoding of @p in to @p out (scheme in file cmt). */
void rleEncode(std::string_view in, std::string &out);

/**
 * Append the RLE decoding of @p in to @p out. Returns false when the
 * stream is malformed (truncated repeat count) or the decoded size
 * would exceed @p max_out — the caller's structural bound.
 */
bool rleDecode(std::string_view in, std::string &out, size_t max_out);

} // namespace yasim

#endif // YASIM_SUPPORT_CODEC_HH
