/**
 * @file
 * Minimal deterministic task parallelism for the bench drivers.
 *
 * parallelMap runs one job per input index on a bounded pool of
 * std::async workers and returns results in input order, so tables
 * print identically whatever the interleaving. Everything the jobs
 * touch in this library is either per-instance (simulators, cores) or
 * mutex-guarded (the reference-length and SimPoint-points caches), so
 * per-benchmark fan-out is safe.
 */

#ifndef YASIM_SUPPORT_PARALLEL_HH
#define YASIM_SUPPORT_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <future>
#include <thread>
#include <vector>

namespace yasim {

/** Number of workers parallelMap uses (hardware concurrency, >= 1). */
inline unsigned
parallelWorkers()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

/**
 * Apply @p fn to every index in [0, count) concurrently and return the
 * results in index order.
 */
template <typename Result>
std::vector<Result>
parallelMap(size_t count, const std::function<Result(size_t)> &fn)
{
    std::vector<std::future<Result>> futures;
    futures.reserve(count);
    // std::async with the async policy; the implicit future destructor
    // joins, and results are collected in order below.
    for (size_t i = 0; i < count; ++i)
        futures.push_back(
            std::async(std::launch::async, [&fn, i] { return fn(i); }));
    std::vector<Result> results;
    results.reserve(count);
    for (auto &f : futures)
        results.push_back(f.get());
    return results;
}

} // namespace yasim

#endif // YASIM_SUPPORT_PARALLEL_HH
