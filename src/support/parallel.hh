/**
 * @file
 * Deterministic data-parallel mapping for the bench drivers.
 *
 * parallelMap runs one job per input index on the process-wide
 * work-stealing pool (see thread_pool.hh), bounded at parallelWorkers()
 * concurrent jobs, and returns results in input order so tables print
 * identically whatever the interleaving. Everything the jobs touch in
 * this library is either per-instance (simulators, cores) or
 * mutex-guarded (the ExperimentEngine caches), so grid fan-out is safe.
 */

#ifndef YASIM_SUPPORT_PARALLEL_HH
#define YASIM_SUPPORT_PARALLEL_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "support/thread_pool.hh"

namespace yasim {

/**
 * Apply @p fn to every index in [0, count) on the global pool and
 * return the results in index order. Result must be default- and
 * move-constructible. Nested calls from inside a parallel job run
 * serially inline.
 *
 * A valid @p cancel token stops the map early: unstarted jobs are
 * skipped and their slots stay default-constructed, so callers that
 * pass a token must check it before using the results.
 */
template <typename Result, typename Fn>
std::vector<Result>
parallelMap(size_t count, Fn &&fn,
            const CancelToken &cancel = CancelToken())
{
    std::vector<Result> results(count);
    globalPool().parallelFor(
        count, [&](size_t i) { results[i] = fn(i); }, cancel);
    return results;
}

} // namespace yasim

#endif // YASIM_SUPPORT_PARALLEL_HH
