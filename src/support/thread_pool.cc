#include "support/thread_pool.hh"

#include <algorithm>
#include <cstdlib>

namespace yasim {

namespace {

std::atomic<unsigned> workerOverride{0};

} // namespace

unsigned
parallelWorkers()
{
    unsigned n = workerOverride.load();
    if (n > 0)
        return n;
    if (const char *env = std::getenv("YASIM_WORKERS")) {
        unsigned v = unsigned(std::strtoul(env, nullptr, 10));
        if (v > 0)
            return v;
    }
    n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

void
setParallelWorkers(unsigned n)
{
    workerOverride.store(n);
}

bool &
ThreadPool::inTask()
{
    thread_local bool in_task = false;
    return in_task;
}

ThreadPool::ThreadPool(unsigned worker_threads)
{
    threads.reserve(worker_threads);
    for (unsigned slot = 0; slot < worker_threads; ++slot)
        threads.emplace_back([this, slot] { workerLoop(slot); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(poolMutex);
        stopping = true;
    }
    workCv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats s;
    s.batches = statBatches.load();
    s.tasks = statTasks.load();
    s.callerTasks = statCallerTasks.load();
    s.steals = statSteals.load();
    return s;
}

void
ThreadPool::runBatch(Batch &batch, size_t count)
{
    std::lock_guard<std::mutex> serialize(batchMutex);

    // One contiguous chunk per participant (workers + this caller).
    size_t participants =
        std::min<size_t>(size_t(workerThreads()) + 1, count);
    batch.numChunks = participants;
    batch.chunks = std::make_unique<Chunk[]>(participants);
    batch.total = count;
    size_t base = count / participants;
    size_t extra = count % participants;
    size_t start = 0;
    for (size_t c = 0; c < participants; ++c) {
        size_t len = base + (c < extra ? 1 : 0);
        batch.chunks[c].next.store(start, std::memory_order_relaxed);
        batch.chunks[c].end = start + len;
        start += len;
    }

    {
        std::lock_guard<std::mutex> lock(poolMutex);
        current = &batch;
        ++generation;
    }
    statBatches.fetch_add(1, std::memory_order_relaxed);
    workCv.notify_all();

    // The caller owns chunk 0 and helps until nothing is claimable.
    drain(batch, 0, /*is_caller=*/true);

    // Wait for completion AND for every worker to have released the
    // batch — a worker can still be scanning the chunks after the last
    // task finishes, and the batch lives on the caller's stack.
    std::unique_lock<std::mutex> lock(poolMutex);
    doneCv.wait(lock, [&] {
        return batch.completed.load(std::memory_order_acquire) ==
                   batch.total &&
               batch.active.load(std::memory_order_acquire) == 0;
    });
    if (current == &batch)
        current = nullptr;
    if (batch.error)
        std::rethrow_exception(batch.error);
}

void
ThreadPool::workerLoop(unsigned slot)
{
    uint64_t seen = 0;
    for (;;) {
        Batch *batch = nullptr;
        size_t home = 0;
        {
            std::unique_lock<std::mutex> lock(poolMutex);
            workCv.wait(lock, [&] {
                return stopping || (current && generation != seen);
            });
            if (stopping)
                return;
            batch = current;
            seen = generation;
            batch->active.fetch_add(1, std::memory_order_acq_rel);
            // Chunk 0 is the caller's; workers start at 1 + slot.
            home = (1 + slot) % batch->numChunks;
        }
        drain(*batch, home, /*is_caller=*/false);
        {
            std::lock_guard<std::mutex> lock(poolMutex);
            batch->active.fetch_sub(1, std::memory_order_acq_rel);
            doneCv.notify_all();
        }
    }
}

void
ThreadPool::cancelSweep(Batch &batch)
{
    // Swallow every unclaimed index so completed still reaches total
    // and runBatch's wait terminates. exchange() serializes against
    // concurrent fetch_add claims, so each index is counted exactly
    // once — either run by whoever claimed it first or skipped here.
    size_t skipped = 0;
    for (size_t c = 0; c < batch.numChunks; ++c) {
        Chunk &chunk = batch.chunks[c];
        size_t prev = chunk.next.exchange(chunk.end,
                                          std::memory_order_acq_rel);
        if (prev < chunk.end)
            skipped += chunk.end - prev;
    }
    if (skipped == 0)
        return;
    size_t done = skipped + batch.completed.fetch_add(
                                skipped, std::memory_order_acq_rel);
    if (done == batch.total) {
        std::lock_guard<std::mutex> lock(poolMutex);
        doneCv.notify_all();
    }
}

size_t
ThreadPool::claim(Batch &batch, size_t home, bool *stolen)
{
    if (batch.cancel.cancelled()) {
        cancelSweep(batch);
        return SIZE_MAX;
    }
    Chunk &own = batch.chunks[home];
    size_t i = own.next.fetch_add(1, std::memory_order_relaxed);
    if (i < own.end) {
        *stolen = false;
        return i;
    }
    // Own chunk dry: steal from the chunk with the most work left.
    for (;;) {
        size_t victim = SIZE_MAX, best_left = 0;
        for (size_t c = 0; c < batch.numChunks; ++c) {
            if (c == home)
                continue;
            size_t next = batch.chunks[c].next.load(
                std::memory_order_relaxed);
            size_t left =
                next < batch.chunks[c].end ? batch.chunks[c].end - next
                                           : 0;
            if (left > best_left) {
                best_left = left;
                victim = c;
            }
        }
        if (victim == SIZE_MAX)
            return SIZE_MAX;
        Chunk &v = batch.chunks[victim];
        size_t j = v.next.fetch_add(1, std::memory_order_relaxed);
        if (j < v.end) {
            *stolen = true;
            return j;
        }
        // Lost the race on that chunk; rescan.
    }
}

void
ThreadPool::drain(Batch &batch, size_t home, bool is_caller)
{
    inTask() = true;
    for (;;) {
        bool stolen = false;
        size_t i = claim(batch, home, &stolen);
        if (i == SIZE_MAX)
            break;
        try {
            batch.invoke(batch.ctx, i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(poolMutex);
            if (!batch.error)
                batch.error = std::current_exception();
        }
        statTasks.fetch_add(1, std::memory_order_relaxed);
        if (is_caller)
            statCallerTasks.fetch_add(1, std::memory_order_relaxed);
        if (stolen)
            statSteals.fetch_add(1, std::memory_order_relaxed);
        size_t done = 1 + batch.completed.fetch_add(
                              1, std::memory_order_acq_rel);
        if (done == batch.total) {
            // Lock before notifying so the caller can't re-check the
            // predicate and sleep between our increment and notify.
            std::lock_guard<std::mutex> lock(poolMutex);
            doneCv.notify_all();
        }
    }
    inTask() = false;
}

ThreadPool &
globalPool()
{
    static ThreadPool pool(parallelWorkers() - 1);
    return pool;
}

} // namespace yasim
