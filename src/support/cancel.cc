#include "support/cancel.hh"

#include <chrono>

#include "support/failpoint.hh"

namespace yasim {

const char *
cancelCauseName(CancelCause cause)
{
    switch (cause) {
      case CancelCause::None:
        return "none";
      case CancelCause::Cancelled:
        return "cancelled";
      case CancelCause::DeadlineExceeded:
        return "deadline-exceeded";
    }
    return "unknown";
}

int64_t
monotonicNowMs()
{
    // The one sanctioned clock read in src/: deadlines affect only
    // *liveness* (a run stops sooner), never a value — cancelled runs
    // are discarded, not cached — so D1's no-wall-clock rule holds.
    // yasim-lint: allow(D1)
    using clock = std::chrono::steady_clock;
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               clock::now().time_since_epoch())
        .count();
}

namespace detail {

bool
CancelState::poll()
{
    if (cause.load(std::memory_order_acquire) != 0)
        return true;
    int64_t at = deadlineAtMs.load(std::memory_order_acquire);
    if (at != INT64_MAX && monotonicNowMs() >= at) {
        uint32_t none = 0;
        cause.compare_exchange_strong(
            none, uint32_t(CancelCause::DeadlineExceeded),
            std::memory_order_acq_rel);
        return true;
    }
    // Deterministic cancellation for tests: every poll of a valid
    // token evaluates the site, so "after K" schedules land on an
    // exact batch boundary.
    if (failpoint::fire("engine.cancel.token")) {
        uint32_t none = 0;
        cause.compare_exchange_strong(none,
                                      uint32_t(CancelCause::Cancelled),
                                      std::memory_order_acq_rel);
        return true;
    }
    return false;
}

} // namespace detail

void
CancelSource::cancel(CancelCause c)
{
    if (c == CancelCause::None)
        return;
    uint32_t none = 0;
    state->cause.compare_exchange_strong(none, uint32_t(c),
                                         std::memory_order_acq_rel);
}

void
CancelSource::setDeadlineAfterMs(int64_t ms)
{
    state->deadlineAtMs.store(monotonicNowMs() + ms,
                              std::memory_order_release);
}

} // namespace yasim
