#include "support/artifact_io.hh"

#include <algorithm>
#include <chrono>
#include <fcntl.h>
#include <filesystem>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "support/backoff.hh"
#include "support/failpoint.hh"
#include "support/hash.hh"
#include "support/logging.hh"

namespace yasim {

namespace fs = std::filesystem;

namespace {

constexpr char kContainerMagic[8] = {'y', 'a', 's', 'i',
                                     'm', 'A', 'R', 'T'};
/** Trailing sentinel: a file must end exactly after this. */
constexpr uint64_t kArtifactEndMark = 0x59415349'4d415254ULL;
/** Sanity bound on the length-prefixed inner magic. */
constexpr uint64_t kMaxMagicBytes = 1024;
/** Total open attempts before a transient failure becomes a miss. */
constexpr uint32_t kMaxOpenAttempts = 5;
/** Write syscall granularity (also the crash-failpoint granularity). */
constexpr size_t kWriteChunk = 1024;

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

bool
getU32(std::string_view in, size_t &at, uint32_t &v)
{
    if (at + 4 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    at += 4;
    return true;
}

bool
getU64(std::string_view in, size_t &at, uint64_t &v)
{
    if (at + 8 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    at += 8;
    return true;
}

/** 32-hex-char content checksum binding magic, version, and payload. */
std::string
frameChecksum(std::string_view magic, uint32_t version,
              std::string_view payload)
{
    Hasher h;
    h.str(magic);
    h.u32(version);
    h.str(payload);
    return h.hex();
}

} // namespace

// yasim-lint: serialized(artifact)
std::string
encodeFrame(std::string_view magic, uint32_t version,
            std::string_view payload)
{
    std::string frame;
    frame.reserve(payload.size() + magic.size() + 80);
    frame.append(kContainerMagic, sizeof(kContainerMagic));
    putU32(frame, kArtifactFormatVersion);
    putU64(frame, magic.size());
    frame.append(magic);
    putU32(frame, version);
    putU64(frame, payload.size());
    frame.append(payload);
    frame.append(frameChecksum(magic, version, payload));
    putU64(frame, kArtifactEndMark);
    return frame;
}

// yasim-lint: serialized(artifact)
bool
decodeFrame(std::string_view frame, std::string_view magic,
            uint32_t version, std::string &payload, std::string &error,
            bool *version_mismatch)
{
    size_t at = 0;
    if (frame.size() < sizeof(kContainerMagic) ||
        frame.compare(0, sizeof(kContainerMagic),
                      std::string_view(kContainerMagic,
                                       sizeof(kContainerMagic))) != 0) {
        error = "bad container magic";
        return false;
    }
    at = sizeof(kContainerMagic);

    uint32_t container_version = 0;
    if (!getU32(frame, at, container_version)) {
        error = "truncated before container version";
        return false;
    }
    if (container_version != kArtifactFormatVersion) {
        error = csprintf("container version %u, want %u",
                         container_version, kArtifactFormatVersion);
        return false;
    }

    uint64_t magic_len = 0;
    if (!getU64(frame, at, magic_len) || magic_len > kMaxMagicBytes ||
        at + magic_len > frame.size()) {
        error = "truncated or oversized inner magic";
        return false;
    }
    if (frame.substr(at, magic_len) != magic) {
        error = "inner magic mismatch (different artifact kind)";
        return false;
    }
    at += magic_len;

    uint32_t inner_version = 0;
    if (!getU32(frame, at, inner_version)) {
        error = "truncated before inner version";
        return false;
    }

    uint64_t payload_len = 0;
    if (!getU64(frame, at, payload_len) ||
        payload_len > frame.size() - at) {
        error = "truncated payload";
        return false;
    }
    std::string_view body = frame.substr(at, payload_len);
    at += payload_len;

    // Verified against the version the frame carries, not the one the
    // caller expects: that separates "clean frame from another format
    // generation" (reported below as a version mismatch) from actual
    // rot. A flipped version byte fails here and stays Corrupt.
    if (at + 32 > frame.size()) {
        error = "truncated before checksum";
        return false;
    }
    if (frame.substr(at, 32) !=
        frameChecksum(magic, inner_version, body)) {
        error = "checksum mismatch";
        return false;
    }
    at += 32;

    uint64_t end_mark = 0;
    if (!getU64(frame, at, end_mark) || end_mark != kArtifactEndMark) {
        error = "missing end mark";
        return false;
    }
    if (at != frame.size()) {
        error = csprintf("%zu trailing bytes after the frame",
                         frame.size() - at);
        return false;
    }
    if (inner_version != version) {
        error = csprintf("format version %u, want %u", inner_version,
                         version);
        if (version_mismatch)
            *version_mismatch = true;
        return false;
    }
    payload.assign(body);
    return true;
}

FrameSizeStatus
frameSize(std::string_view prefix, uint64_t max_payload, uint64_t &size)
{
    // Fixed prologue: container magic, container version, magic length.
    constexpr size_t kPrologue = sizeof(kContainerMagic) + 4 + 8;
    if (prefix.size() >= sizeof(kContainerMagic) &&
        prefix.compare(0, sizeof(kContainerMagic),
                       std::string_view(kContainerMagic,
                                        sizeof(kContainerMagic))) != 0) {
        return FrameSizeStatus::Malformed;
    }
    if (prefix.size() < kPrologue)
        return FrameSizeStatus::NeedMore;

    size_t at = sizeof(kContainerMagic) + 4;
    uint64_t magic_len = 0;
    getU64(prefix, at, magic_len);
    if (magic_len > kMaxMagicBytes)
        return FrameSizeStatus::Malformed;

    // Inner magic, inner version, payload length.
    if (prefix.size() < kPrologue + magic_len + 4 + 8)
        return FrameSizeStatus::NeedMore;
    at = kPrologue + magic_len + 4;
    uint64_t payload_len = 0;
    getU64(prefix, at, payload_len);
    if (payload_len > max_payload)
        return FrameSizeStatus::Malformed;

    // ... payload, 32-hex-char checksum, end mark.
    size = kPrologue + magic_len + 4 + 8 + payload_len + 32 + 8;
    return FrameSizeStatus::Known;
}

namespace {

/** Seed of the transient-open retry backoff (support/backoff.hh). */
constexpr uint64_t kOpenBackoffSeed = 0x10a271fac7edULL;

std::string
tempName(const std::string &path)
{
    std::ostringstream name;
    name << path << ".tmp." << ::getpid() << "."
         << std::this_thread::get_id();
    return name.str();
}

} // namespace

// yasim-lint: serialized(artifact)
ArtifactReadResult
readArtifact(const std::string &path, std::string_view magic,
             uint32_t version)
{
    ArtifactReadResult result;

    int fd = -1;
    Backoff retry_backoff(kOpenBackoffSeed);
    for (uint32_t attempt = 1; attempt <= kMaxOpenAttempts; ++attempt) {
        if (failpoint::fire("io.open.transient")) {
            errno = EIO;
            fd = -1;
        } else {
            fd = ::open(path.c_str(), O_RDONLY);
        }
        if (fd >= 0)
            break;
        if (errno == ENOENT) {
            result.status = ArtifactStatus::Missing;
            return result;
        }
        if (attempt == kMaxOpenAttempts) {
            result.status = ArtifactStatus::Transient;
            result.error = csprintf("open kept failing (%u attempts)",
                                    kMaxOpenAttempts);
            return result;
        }
        ++result.retries;
        retry_backoff.sleep();
    }

    std::string frame;
    char buffer[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buffer, sizeof(buffer));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            result.status = ArtifactStatus::Transient;
            result.error = "read failed mid-file";
            return result;
        }
        if (n == 0)
            break;
        frame.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);

    if (!frame.empty() && failpoint::fire("io.read.corrupt"))
        frame[frame.size() / 2] ^= 0x20; // injected single-bit flip

    std::string error;
    bool version_mismatch = false;
    if (decodeFrame(frame, magic, version, result.payload, error,
                    &version_mismatch)) {
        result.status = ArtifactStatus::Ok;
        return result;
    }
    if (version_mismatch) {
        // A clean frame from another format generation is a stale
        // cache entry, not rot: delete it outright so the next lookup
        // is a plain miss, and leave no ".corrupt" file to debug.
        result.status = ArtifactStatus::VersionMismatch;
        result.error = error;
        std::error_code ec;
        fs::remove(path, ec);
        return result;
    }
    result.status = ArtifactStatus::Corrupt;
    result.error = error;
    result.quarantined = quarantineArtifact(path);
    return result;
}

// yasim-lint: serialized(artifact)
ArtifactWriteResult
writeArtifact(const std::string &path, std::string_view magic,
              uint32_t version, std::string_view payload)
{
    ArtifactWriteResult result;
    std::string frame = encodeFrame(magic, version, payload);
    const std::string tmp = tempName(path);

    int fd = -1;
    Backoff retry_backoff(kOpenBackoffSeed);
    for (uint32_t attempt = 1; attempt <= kMaxOpenAttempts; ++attempt) {
        if (failpoint::fire("io.open.transient")) {
            errno = EIO;
            fd = -1;
        } else {
            fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY,
                        0644);
        }
        if (fd >= 0)
            break;
        if (attempt == kMaxOpenAttempts) {
            result.error =
                csprintf("cannot open '%s' (%u attempts)", tmp.c_str(),
                         kMaxOpenAttempts);
            return result;
        }
        ++result.retries;
        retry_backoff.sleep();
    }

    // An injected short write publishes a deliberately torn frame: the
    // reader's checksum must catch it (fsync is skipped too, like a
    // power cut would).
    bool torn = failpoint::fire("io.write.short");
    size_t to_write = torn ? frame.size() / 2 : frame.size();

    size_t written = 0;
    bool write_failed = false;
    while (written < to_write) {
        if (failpoint::fire("io.write.crash"))
            ::_exit(86); // simulated hard kill mid-write
        size_t n = std::min(kWriteChunk, to_write - written);
        ssize_t got = ::write(fd, frame.data() + written, n);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            write_failed = true;
            break;
        }
        written += static_cast<size_t>(got);
    }
    if (!write_failed && !torn && ::fsync(fd) != 0)
        write_failed = true;
    ::close(fd);

    std::error_code ec;
    if (write_failed) {
        fs::remove(tmp, ec);
        result.error = "write failed mid-frame";
        return result;
    }

    if (failpoint::fire("io.rename.fail")) {
        fs::remove(tmp, ec);
        result.error = "injected rename failure";
        return result;
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        result.error = csprintf("cannot publish '%s': %s", path.c_str(),
                                ec.message().c_str());
        fs::remove(tmp, ec);
        return result;
    }
    result.ok = true;
    return result;
}

bool
quarantineArtifact(const std::string &path)
{
    std::error_code ec;
    fs::rename(path, path + ".corrupt", ec);
    if (!ec)
        return true;
    // Could not move it aside (permissions, cross-process race):
    // remove it so the bad bytes cannot be re-read either way.
    fs::remove(path, ec);
    return false;
}

uint64_t
evictToBudget(const std::string &dir, uint64_t max_bytes)
{
    struct File
    {
        fs::file_time_type mtime;
        std::string path;
        uint64_t size = 0;
    };
    std::vector<File> files;
    uint64_t total = 0;

    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        const std::string name = it->path().filename().string();
        // Skip in-flight temp files: a concurrent writer owns them.
        if (name.find(".tmp.") != std::string::npos)
            continue;
        File f;
        f.path = it->path().string();
        f.size = it->file_size(ec);
        if (ec)
            continue;
        f.mtime = fs::last_write_time(it->path(), ec);
        if (ec)
            continue;
        total += f.size;
        files.push_back(std::move(f));
    }
    if (total <= max_bytes)
        return 0;

    // Oldest first; the path breaks mtime ties deterministically.
    std::sort(files.begin(), files.end(),
              [](const File &a, const File &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });

    uint64_t evicted = 0;
    for (const File &f : files) {
        if (total <= max_bytes)
            break;
        // The newest artifact always survives: evicting the entry just
        // published would turn every write into a self-defeating miss.
        if (&f == &files.back())
            break;
        if (fs::remove(f.path, ec) && !ec) {
            total -= f.size;
            ++evicted;
        }
    }
    return evicted;
}

} // namespace yasim
