/**
 * @file
 * Deterministic fault injection for artifact I/O.
 *
 * A failpoint is a named site in the code (e.g. "io.read.corrupt")
 * whose behaviour a test or a CI job can arm with a trigger. Sites are
 * evaluated with fire(): an unarmed site costs one branch and never
 * fires; an armed one consults its trigger. Triggers are driven by the
 * project's seeded Rng (support/rng.hh), never by entropy or wall
 * clock, so a schedule like "io.read.corrupt=1in8" reproduces the same
 * fault sequence on every run (lint rule D1 applies here too).
 *
 * Schedule grammar (comma-separated, whitespace-free):
 *
 *     site=1inN     fire pseudo-randomly with probability 1/N
 *     site=afterK   fire exactly once, on the (K+1)-th evaluation
 *     site=always   fire on every evaluation
 *     site=off      disarm the site
 *     seed=N        reseed the trigger Rng (default seed otherwise)
 *
 * The canonical sites live in support/artifact_io.cc:
 *
 *     io.open.transient   open() fails (reader/writer retries)
 *     io.read.corrupt     one bit of the read buffer flips
 *     io.write.short      the payload is silently truncated mid-write
 *     io.rename.fail      the atomic publish rename fails
 *     io.write.crash      the process _exit()s mid-write (torture tests)
 *
 * Configuration comes from configure() or, lazily on the first fire(),
 * from the YASIM_FAILPOINTS environment variable — which is how the CI
 * fault-injection job subjects the whole test suite to a schedule
 * without touching any test. Each site draws from its own Rng stream
 * (seeded from the schedule seed and the site name), so arming one
 * site never perturbs another's fault sequence.
 */

#ifndef YASIM_SUPPORT_FAILPOINT_HH
#define YASIM_SUPPORT_FAILPOINT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace yasim::failpoint {

/** Monotonic per-site counters. */
struct SiteStats
{
    uint64_t evaluations = 0;
    uint64_t fires = 0;
};

/**
 * Replace the active schedule with @p spec (see grammar above).
 * An empty spec disarms everything. Malformed specs are fatal() — a
 * schedule is user configuration, and a typo must not silently run
 * the suite without faults.
 */
void configure(const std::string &spec);

/** configure() from $YASIM_FAILPOINTS ("" when unset). */
void configureFromEnv();

/** Disarm every site and clear all counters. */
void reset();

/** True when any site is currently armed. Implies fire() may return
 *  true; tests use this to relax exact cache-counter assertions that
 *  deliberate fault injection perturbs. */
bool anyArmed();

/**
 * Evaluate the trigger of @p site. Returns false when the site is
 * unarmed. Thread-safe; the first call configures from the
 * environment if configure() was never called.
 */
bool fire(const char *site);

/** Counters for one site (zeros when never evaluated). */
SiteStats stats(const std::string &site);

/** Every site with counters, sorted by name (deterministic output). */
std::vector<std::pair<std::string, SiteStats>> allStats();

/** The currently active schedule spec (as last configured). */
std::string activeSpec();

/**
 * RAII schedule override for tests: configures @p spec on
 * construction and restores the previous schedule (including an
 * environment-provided one) on destruction.
 */
class ScopedSchedule
{
  public:
    explicit ScopedSchedule(const std::string &spec);
    ~ScopedSchedule();

    ScopedSchedule(const ScopedSchedule &) = delete;
    ScopedSchedule &operator=(const ScopedSchedule &) = delete;

  private:
    std::string saved;
};

} // namespace yasim::failpoint

#endif // YASIM_SUPPORT_FAILPOINT_HH
