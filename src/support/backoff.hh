/**
 * @file
 * Capped exponential retry backoff with deterministic jitter.
 *
 * The library used to carry two hand-rolled linear backoff() helpers
 * (service client reconnects, artifact reader retries); this is the
 * one shared policy both now use. Delays grow exponentially from
 * baseMs up to capMs, with full jitter — each delay is uniform in
 * [0, min(cap, base << attempt)] — drawn from the project's seeded
 * Rng, so a given (seed, attempt-sequence) produces the same delays
 * on every run and on every platform (determinism rule D1: no
 * entropy, no wall clock in policy decisions).
 *
 * Typical use:
 *
 *     Backoff backoff(kSiteSeed);
 *     while (!tryThing()) {
 *         backoff.sleep();   // attempt 0, 1, 2, ... since last reset
 *     }
 *     backoff.reset();       // success: next failure starts small
 */

#ifndef YASIM_SUPPORT_BACKOFF_HH
#define YASIM_SUPPORT_BACKOFF_HH

#include <chrono>
#include <cstdint>
#include <thread>

#include "support/rng.hh"

namespace yasim {

class Backoff
{
  public:
    explicit Backoff(uint64_t seed, uint32_t base_ms = 1,
                     uint32_t cap_ms = 64)
        : rng(seed), baseMs(base_ms ? base_ms : 1), capMs(cap_ms)
    {}

    /**
     * The next delay in the sequence, in milliseconds: full jitter
     * over an exponentially growing, capped window. Advances the
     * attempt counter.
     */
    uint64_t nextDelayMs()
    {
        uint64_t window = capMs;
        if (attempt < 32) {
            uint64_t grown = uint64_t(baseMs) << attempt;
            window = grown < capMs ? grown : capMs;
        }
        ++attempt;
        return rng.nextBelow(window + 1);
    }

    /** Sleep for nextDelayMs(). */
    void sleep()
    {
        uint64_t ms = nextDelayMs();
        if (ms > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }

    /** Attempts since construction or the last reset(). */
    uint32_t attempts() const { return attempt; }

    /** Back to attempt 0 (call after a success). */
    void reset() { attempt = 0; }

  private:
    Rng rng;
    uint32_t baseMs;
    uint32_t capMs;
    uint32_t attempt = 0;
};

} // namespace yasim

#endif // YASIM_SUPPORT_BACKOFF_HH
