#include "support/hash.hh"

#include <bit>

namespace yasim {

namespace {

constexpr uint64_t fnvPrime = 1099511628211ull;

} // namespace

void
Hasher::byte(uint8_t v)
{
    lane0 = (lane0 ^ v) * fnvPrime;
    // The second lane also folds in the first lane's running state so
    // the two never collide for the same reason.
    lane1 = (lane1 ^ v ^ (lane0 >> 57)) * fnvPrime;
}

Hasher &
Hasher::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        byte(static_cast<uint8_t>(v >> (8 * i)));
    return *this;
}

Hasher &
Hasher::d(double v)
{
    return u64(std::bit_cast<uint64_t>(v));
}

Hasher &
Hasher::str(std::string_view s)
{
    u64(s.size());
    for (char c : s)
        byte(static_cast<uint8_t>(c));
    return *this;
}

std::string
Hasher::hex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (uint64_t lane : {lane0, lane1})
        for (int i = 60; i >= 0; i -= 4)
            out.push_back(digits[(lane >> i) & 0xf]);
    return out;
}

} // namespace yasim
