#include "support/rng.hh"

#include <cmath>

#include "support/logging.hh"

namespace yasim {

uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    YASIM_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    YASIM_ASSERT(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    u2 = nextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedGaussian = r * std::sin(theta);
    hasCachedGaussian = true;
    return r * std::cos(theta);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace yasim
