#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace yasim {

namespace {

// Toggled by bench drivers while worker threads log; relaxed is enough
// because the only consequence of a stale read is one extra line.
std::atomic<bool> informEnabled{true};

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled, std::memory_order_relaxed);
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace yasim
