/**
 * @file
 * A bounded work-stealing thread pool for the experiment grids.
 *
 * The pool owns parallelWorkers() - 1 worker threads; the thread that
 * submits a batch participates too, so total concurrency is exactly
 * parallelWorkers(). A batch of N index-tasks is partitioned into one
 * contiguous chunk per participant; each participant claims indices
 * from its own chunk with an atomic cursor and, once its chunk runs
 * dry, steals from whichever chunk has the most work left. Stealing
 * keeps the pool busy when task costs are wildly uneven (a detailed
 * reference simulation next to a cache hit) without giving up the
 * deterministic result ordering parallelMap promises.
 *
 * Nested batches submitted from inside a task run inline and serially
 * on the submitting thread — simple, deadlock-free, and the outer grid
 * already saturates the machine. Batches from distinct external
 * threads serialize on an internal mutex.
 */

#ifndef YASIM_SUPPORT_THREAD_POOL_HH
#define YASIM_SUPPORT_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/cancel.hh"

namespace yasim {

/**
 * Number of concurrent workers parallel batches use: the
 * setParallelWorkers() override, else the YASIM_WORKERS environment
 * variable, else hardware concurrency (always >= 1).
 */
unsigned parallelWorkers();

/**
 * Override the worker count (0 restores auto-detection). Must be
 * called before the first parallel batch; the global pool is sized
 * once, on first use.
 */
void setParallelWorkers(unsigned n);

/** Work-stealing pool; see file comment. */
class ThreadPool
{
  public:
    /** @param worker_threads threads to spawn besides the callers */
    explicit ThreadPool(unsigned worker_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker threads owned by the pool (callers come on top). */
    unsigned workerThreads() const { return unsigned(threads.size()); }

    /** Scheduling counters (monotonic over the pool's lifetime). */
    struct Stats
    {
        uint64_t batches = 0;
        /** Tasks executed, total and by who ran them. */
        uint64_t tasks = 0;
        uint64_t callerTasks = 0;
        /** Tasks claimed from another participant's chunk. */
        uint64_t steals = 0;
    };

    Stats stats() const;

    /**
     * Run fn(i) for every i in [0, count). Blocks until all tasks
     * finished; the calling thread executes tasks too. The first
     * exception a task throws is rethrown here after the batch drains.
     *
     * When @p cancel is a valid token, cancellation stops *claiming*:
     * tasks not yet started are skipped (in-flight ones finish — tasks
     * that want a tighter bound poll the token themselves), the call
     * still returns normally, and the caller inspects the token to
     * decide whether the partially-run batch is an error.
     */
    template <typename Fn>
    void
    parallelFor(size_t count, Fn &&fn,
                const CancelToken &cancel = CancelToken())
    {
        if (count == 0)
            return;
        if (inTask() || workerThreads() == 0 || count == 1) {
            // Nested or degenerate: run inline.
            for (size_t i = 0; i < count; ++i) {
                if (cancel.cancelled())
                    return;
                fn(i);
            }
            return;
        }
        Batch batch;
        batch.ctx = &fn;
        batch.invoke = [](void *ctx, size_t i) {
            (*static_cast<std::remove_reference_t<Fn> *>(ctx))(i);
        };
        batch.cancel = cancel;
        runBatch(batch, count);
    }

  private:
    /** One participant's slice of a batch, padded to its own line. */
    struct alignas(64) Chunk
    {
        std::atomic<size_t> next{0};
        size_t end = 0;
    };

    /** A type-erased batch of index tasks (no per-task allocation). */
    struct Batch
    {
        void (*invoke)(void *ctx, size_t i) = nullptr;
        void *ctx = nullptr;
        std::unique_ptr<Chunk[]> chunks;
        size_t numChunks = 0;
        size_t total = 0;
        std::atomic<size_t> completed{0};
        /** Workers currently inside drain() for this batch. */
        std::atomic<int> active{0};
        std::exception_ptr error; // guarded by the pool mutex
        /** Batch-level cancellation (invalid token = never). */
        CancelToken cancel;
    };

    static bool &inTask();

    void runBatch(Batch &batch, size_t count);
    void workerLoop(unsigned slot);
    /** Claim-and-run loop; @p home is the preferred chunk. */
    void drain(Batch &batch, size_t home, bool is_caller);
    /** Claim one index, stealing if @p home is dry; SIZE_MAX = none. */
    size_t claim(Batch &batch, size_t home, bool *stolen);
    /** Mark every unclaimed index completed-without-running. */
    void cancelSweep(Batch &batch);

    mutable std::mutex poolMutex;
    std::condition_variable workCv; ///< wakes workers for a new batch
    std::condition_variable doneCv; ///< wakes the caller on completion
    Batch *current = nullptr;       ///< active batch (under poolMutex)
    uint64_t generation = 0;        ///< bumped per batch (under poolMutex)
    bool stopping = false;

    /** Serializes batches from distinct external threads. */
    std::mutex batchMutex;

    std::vector<std::thread> threads;

    std::atomic<uint64_t> statBatches{0};
    std::atomic<uint64_t> statTasks{0};
    std::atomic<uint64_t> statCallerTasks{0};
    std::atomic<uint64_t> statSteals{0};
};

/** The process-wide pool (parallelWorkers() - 1 threads, lazily built). */
ThreadPool &globalPool();

} // namespace yasim

#endif // YASIM_SUPPORT_THREAD_POOL_HH
