#include "support/table.hh"

#include <algorithm>
#include <cstdio>

#include "support/logging.hh"

namespace yasim {

Table::Table(std::string title) : title(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> new_header)
{
    header = std::move(new_header);
}

void
Table::addRow(std::vector<std::string> row)
{
    YASIM_ASSERT(header.empty() || row.size() == header.size());
    YASIM_ASSERT(!row.empty());
    rows.push_back(std::move(row));
}

void
Table::addRule()
{
    rows.emplace_back();
}

size_t
Table::numRows() const
{
    size_t n = 0;
    for (const auto &row : rows)
        if (!row.empty())
            ++n;
    return n;
}

void
Table::print(std::ostream &os) const
{
    size_t ncols = header.size();
    for (const auto &row : rows)
        ncols = std::max(ncols, row.size());
    std::vector<size_t> width(ncols, 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    if (!header.empty())
        widen(header);
    for (const auto &row : rows)
        widen(row);

    size_t total = 0;
    for (size_t w : width)
        total += w + 2;

    os << "== " << title << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            const std::string &cell = row[i];
            size_t pad = width[i] - cell.size();
            if (i == 0) { // left align
                os << cell << std::string(pad, ' ');
            } else {
                os << std::string(pad, ' ') << cell;
            }
            os << (i + 1 == row.size() ? "" : "  ");
        }
        os << "\n";
    };
    if (!header.empty()) {
        emit(header);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows) {
        if (row.empty())
            os << std::string(total, '-') << "\n";
        else
            emit(row);
    }
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            std::string cell = row[i];
            bool quote = cell.find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                std::string esc = "\"";
                for (char c : cell) {
                    if (c == '"')
                        esc += '"';
                    esc += c;
                }
                esc += '"';
                cell = esc;
            }
            os << cell << (i + 1 == row.size() ? "" : ",");
        }
        os << "\n";
    };
    if (!header.empty())
        emit(header);
    for (const auto &row : rows)
        if (!row.empty())
            emit(row);
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
    return buf;
}

std::string
Table::count(uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int run = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (run == 3) {
            out += ',';
            run = 0;
        }
        out += *it;
        ++run;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace yasim
