/**
 * @file
 * Chi-squared goodness-of-fit machinery for the execution-profile
 * characterization.
 *
 * The paper compares the basic-block execution-frequency (BBEF) and
 * basic-block-vector (BBV) distributions of each technique against the
 * reference input set with a chi-squared test: the test value doubles as a
 * distance measure, and the technique is "statistically similar" when the
 * test value falls below the chi-squared critical value for the profile's
 * degrees of freedom.
 */

#ifndef YASIM_STATS_CHI2_HH
#define YASIM_STATS_CHI2_HH

#include <cstddef>
#include <vector>

namespace yasim {

/** Regularized lower incomplete gamma P(a, x). @pre a > 0, x >= 0 */
double regularizedGammaP(double a, double x);

/** Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x). */
double regularizedGammaQ(double a, double x);

/** Chi-squared CDF with @p dof degrees of freedom evaluated at @p x. */
double chiSquaredCdf(double x, double dof);

/**
 * Chi-squared critical value: the x such that CDF(x; dof) = confidence.
 * E.g. chiSquaredCritical(3, 0.95) ~= 7.815.
 */
double chiSquaredCritical(double dof, double confidence);

/** Outcome of a chi-squared comparison of two count distributions. */
struct Chi2Result
{
    /** The chi-squared test statistic (distance measure). */
    double statistic = 0.0;
    /** Degrees of freedom (number of compared cells - 1). */
    double dof = 0.0;
    /** Critical value at the confidence level used. */
    double critical = 0.0;
    /** True when statistic < critical (statistically similar). */
    bool similar = false;
};

/**
 * Compare an observed count distribution against a reference one.
 *
 * The observed counts are scaled so both distributions have the same total
 * mass; cells where the expected (reference) count is zero contribute the
 * observed mass directly (a standard guard). Cells where both are zero are
 * skipped and do not contribute degrees of freedom.
 *
 * With @p normalized_total > 0 both distributions are first rescaled to
 * that total mass, making the statistic scale-free (a chi-squared test
 * on proportions at an effective sample size, the [Lilja00] style) —
 * raw dynamic-instruction counts otherwise make any nonzero shape
 * difference "significant" at scaled budgets.
 *
 * @param observed  per-cell counts for the technique under test
 * @param expected  per-cell counts for the reference input set
 * @param confidence confidence level for the critical value (default 0.95)
 * @param normalized_total rescale both distributions to this mass
 *                         (0 keeps raw counts)
 */
Chi2Result chiSquaredCompare(const std::vector<double> &observed,
                             const std::vector<double> &expected,
                             double confidence = 0.95,
                             double normalized_total = 0.0);

} // namespace yasim

#endif // YASIM_STATS_CHI2_HH
