#include "stats/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.hh"

namespace yasim {

namespace {

double
squaredDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += (a[i] - b[i]) * (a[i] - b[i]);
    return acc;
}

/** k-means++ seeding: spread initial centroids by D^2 sampling. */
std::vector<std::vector<double>>
seedCentroids(const std::vector<std::vector<double>> &points, int k, Rng &rng)
{
    std::vector<std::vector<double>> centroids;
    centroids.reserve(static_cast<size_t>(k));
    centroids.push_back(points[rng.nextBelow(points.size())]);
    std::vector<double> d2(points.size());
    while (centroids.size() < static_cast<size_t>(k)) {
        double total = 0.0;
        for (size_t i = 0; i < points.size(); ++i) {
            double best = std::numeric_limits<double>::max();
            for (const auto &c : centroids)
                best = std::min(best, squaredDistance(points[i], c));
            d2[i] = best;
            total += best;
        }
        if (total == 0.0) {
            // All points coincide with existing centroids; duplicate one.
            centroids.push_back(points[rng.nextBelow(points.size())]);
            continue;
        }
        double target = rng.nextDouble() * total;
        size_t pick = points.size() - 1;
        double acc = 0.0;
        for (size_t i = 0; i < points.size(); ++i) {
            acc += d2[i];
            if (acc >= target) {
                pick = i;
                break;
            }
        }
        centroids.push_back(points[pick]);
    }
    return centroids;
}

} // namespace

KmeansResult
kmeans(const std::vector<std::vector<double>> &points, int k, Rng &rng,
       int max_iters)
{
    YASIM_ASSERT(!points.empty());
    YASIM_ASSERT(k >= 1);
    k = std::min<int>(k, static_cast<int>(points.size()));
    const size_t dim = points[0].size();

    KmeansResult result;
    result.centroids = seedCentroids(points, k, rng);
    result.assignment.assign(points.size(), 0);

    for (int iter = 0; iter < max_iters; ++iter) {
        bool changed = false;
        for (size_t i = 0; i < points.size(); ++i) {
            int best = 0;
            double best_d = std::numeric_limits<double>::max();
            for (int c = 0; c < k; ++c) {
                double d = squaredDistance(points[i], result.centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (result.assignment[i] != best) {
                result.assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        std::vector<std::vector<double>> sums(
            static_cast<size_t>(k), std::vector<double>(dim, 0.0));
        std::vector<size_t> counts(static_cast<size_t>(k), 0);
        for (size_t i = 0; i < points.size(); ++i) {
            auto c = static_cast<size_t>(result.assignment[i]);
            ++counts[c];
            for (size_t d = 0; d < dim; ++d)
                sums[c][d] += points[i][d];
        }
        for (int c = 0; c < k; ++c) {
            auto cc = static_cast<size_t>(c);
            if (counts[cc] == 0)
                continue; // keep the stale centroid; cluster stays empty
            for (size_t d = 0; d < dim; ++d)
                result.centroids[cc][d] =
                    sums[cc][d] / static_cast<double>(counts[cc]);
        }
        if (!changed && iter > 0)
            break;
    }

    result.distortion = 0.0;
    std::vector<bool> used(static_cast<size_t>(k), false);
    for (size_t i = 0; i < points.size(); ++i) {
        auto c = static_cast<size_t>(result.assignment[i]);
        used[c] = true;
        result.distortion +=
            squaredDistance(points[i], result.centroids[c]);
    }
    result.numClusters =
        static_cast<int>(std::count(used.begin(), used.end(), true));
    return result;
}

KmeansResult
kmeansRestarts(const std::vector<std::vector<double>> &points, int k,
               Rng &rng, int restarts, int max_iters)
{
    YASIM_ASSERT(restarts >= 1);
    KmeansResult best = kmeans(points, k, rng, max_iters);
    for (int r = 1; r < restarts; ++r) {
        KmeansResult candidate = kmeans(points, k, rng, max_iters);
        if (candidate.distortion < best.distortion)
            best = std::move(candidate);
    }
    return best;
}

double
bicScore(const std::vector<std::vector<double>> &points,
         const KmeansResult &clustering)
{
    const double r = static_cast<double>(points.size());
    const double m = static_cast<double>(points[0].size());
    const double k = static_cast<double>(clustering.centroids.size());
    if (r <= k) // degenerate: every point its own cluster
        return -std::numeric_limits<double>::max();

    // Maximum-likelihood variance of the identical spherical model.
    double variance = clustering.distortion / (m * (r - k));
    variance = std::max(variance, 1e-12);

    std::vector<size_t> counts(clustering.centroids.size(), 0);
    for (int a : clustering.assignment)
        ++counts[static_cast<size_t>(a)];

    double loglik = 0.0;
    for (size_t c = 0; c < counts.size(); ++c) {
        double rn = static_cast<double>(counts[c]);
        if (rn == 0.0)
            continue;
        loglik += rn * std::log(rn / r);
    }
    loglik -= r * m / 2.0 * std::log(2.0 * M_PI * variance);
    loglik -= m * (r - k) / 2.0;

    double num_params = k * (m + 1.0);
    return loglik - num_params / 2.0 * std::log(r);
}

namespace {

KSelection
selectFromCandidates(const std::vector<std::vector<double>> &points,
                     const std::vector<int> &candidates, Rng &rng,
                     double threshold, int restarts)
{
    KSelection sel;
    std::vector<KmeansResult> runs;
    runs.reserve(candidates.size());
    for (int k : candidates) {
        runs.push_back(kmeansRestarts(points, k, rng, restarts));
        sel.scores.push_back(bicScore(points, runs.back()));
    }
    double best = *std::max_element(sel.scores.begin(), sel.scores.end());
    double worst = *std::min_element(sel.scores.begin(), sel.scores.end());
    double cut = worst + threshold * (best - worst);
    for (size_t i = 0; i < candidates.size(); ++i) {
        if (sel.scores[i] >= cut) {
            sel.k = candidates[i];
            sel.best = std::move(runs[i]);
            return sel;
        }
    }
    sel.k = candidates.back();
    sel.best = std::move(runs.back());
    return sel;
}

} // namespace

KSelection
selectK(const std::vector<std::vector<double>> &points, int max_k, Rng &rng,
        double threshold, int restarts)
{
    YASIM_ASSERT(max_k >= 1);
    max_k = std::min<int>(max_k, static_cast<int>(points.size()));
    std::vector<int> candidates;
    for (int k = 1; k <= max_k; ++k)
        candidates.push_back(k);
    return selectFromCandidates(points, candidates, rng, threshold,
                                restarts);
}

KSelection
selectKLadder(const std::vector<std::vector<double>> &points, int max_k,
              Rng &rng, double threshold, int restarts)
{
    YASIM_ASSERT(max_k >= 1);
    max_k = std::min<int>(max_k, static_cast<int>(points.size()));
    std::vector<int> candidates;
    int k = 1;
    while (k < max_k) {
        candidates.push_back(k);
        int next = std::max(k + 1, k + k / 4);
        k = next;
    }
    candidates.push_back(max_k);
    return selectFromCandidates(points, candidates, rng, threshold,
                                restarts);
}

} // namespace yasim
