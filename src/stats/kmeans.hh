/**
 * @file
 * K-means clustering with k-means++ seeding and a BIC model-selection
 * score, the statistical core of the SimPoint technique.
 *
 * SimPoint clusters the (dimension-reduced) basic-block vectors of the
 * program's fixed-length intervals, picks one representative interval per
 * cluster, and weights each representative by its cluster's population.
 * Model selection across k follows the SimPoint recipe: score every k up
 * to max_k with the Bayesian Information Criterion and choose the smallest
 * k whose score reaches a fixed fraction of the best score observed.
 */

#ifndef YASIM_STATS_KMEANS_HH
#define YASIM_STATS_KMEANS_HH

#include <cstdint>
#include <vector>

#include "support/rng.hh"

namespace yasim {

/** Result of one k-means run. */
struct KmeansResult
{
    /** Cluster index assigned to every input point. */
    std::vector<int> assignment;
    /** Cluster centroids. */
    std::vector<std::vector<double>> centroids;
    /** Sum of squared distances of points to their centroids. */
    double distortion = 0.0;
    /** Number of non-empty clusters actually produced. */
    int numClusters = 0;
};

/**
 * Lloyd's algorithm with k-means++ seeding.
 *
 * @param points     input vectors (all the same dimension)
 * @param k          requested cluster count (clamped to points.size())
 * @param rng        seeding randomness (deterministic given the seed)
 * @param max_iters  Lloyd iteration cap
 */
KmeansResult kmeans(const std::vector<std::vector<double>> &points, int k,
                    Rng &rng, int max_iters = 100);

/**
 * Run kmeans() @p restarts times from different seedings and keep the
 * lowest-distortion clustering — the SimPoint tool's multiple-random-
 * seeds refinement (Table 1 runs it with 7 seeds).
 */
KmeansResult kmeansRestarts(const std::vector<std::vector<double>> &points,
                            int k, Rng &rng, int restarts,
                            int max_iters = 100);

/**
 * BIC score of a clustering under the identical-spherical-Gaussian model
 * of Pelleg & Moore (X-means), as used by SimPoint. Higher is better.
 */
double bicScore(const std::vector<std::vector<double>> &points,
                const KmeansResult &clustering);

/** Outcome of a model-selection sweep over k. */
struct KSelection
{
    /** The chosen clustering. */
    KmeansResult best;
    /** The chosen k. */
    int k = 0;
    /** BIC score per candidate k (index 0 -> k = 1). */
    std::vector<double> scores;
};

/**
 * Sweep k = 1..max_k, score each clustering with BIC, and pick the
 * smallest k whose score is at least @p threshold of the way from the
 * worst to the best score (SimPoint uses ~0.9).
 */
KSelection selectK(const std::vector<std::vector<double>> &points, int max_k,
                   Rng &rng, double threshold = 0.9, int restarts = 1);

/**
 * As selectK but evaluating k on a logarithmic ladder (1, 2, 3, ...,
 * then growing ~25% per step) instead of every integer — the SimPoint
 * 3.0-style speedup for large max_k. scores holds one entry per ladder
 * value; the chosen k is a ladder value.
 */
KSelection selectKLadder(const std::vector<std::vector<double>> &points,
                         int max_k, Rng &rng, double threshold = 0.9,
                         int restarts = 1);

} // namespace yasim

#endif // YASIM_STATS_KMEANS_HH
