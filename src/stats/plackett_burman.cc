#include "stats/plackett_burman.hh"

#include <cmath>

#include "support/logging.hh"

namespace yasim {

namespace {

bool
isPrime(size_t p)
{
    if (p < 2)
        return false;
    for (size_t d = 2; d * d <= p; ++d)
        if (p % d == 0)
            return false;
    return true;
}

/** Legendre symbol chi(k) over GF(p): +1 for quadratic residues. */
int
legendre(size_t k, size_t p)
{
    k %= p;
    if (k == 0)
        return 0;
    // Euler's criterion via fast modular exponentiation.
    size_t e = (p - 1) / 2;
    unsigned long long base = k, result = 1;
    while (e) {
        if (e & 1)
            result = result * base % p;
        base = base * base % p;
        e >>= 1;
    }
    return result == 1 ? 1 : -1;
}

/** Sylvester doubling: H_{2n} = [[H, H], [H, -H]]. */
std::vector<std::vector<int>>
sylvester(size_t n)
{
    std::vector<std::vector<int>> h = {{1}};
    while (h.size() < n) {
        size_t m = h.size();
        std::vector<std::vector<int>> next(2 * m,
                                           std::vector<int>(2 * m));
        for (size_t i = 0; i < m; ++i) {
            for (size_t j = 0; j < m; ++j) {
                next[i][j] = h[i][j];
                next[i][j + m] = h[i][j];
                next[i + m][j] = h[i][j];
                next[i + m][j + m] = -h[i][j];
            }
        }
        h = std::move(next);
    }
    return h;
}

/**
 * Paley construction I for order p + 1, p prime, p == 3 (mod 4):
 * H = I + S where S embeds the (skew) Jacobsthal matrix.
 */
std::vector<std::vector<int>>
paley(size_t p)
{
    size_t n = p + 1;
    std::vector<std::vector<int>> h(n, std::vector<int>(n, 0));
    // S[0][j] = +1 (j > 0); S[i][0] = -1 (i > 0); S[i][j] = chi(i - j).
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            int s;
            if (i == j) {
                s = 0;
            } else if (i == 0) {
                s = 1;
            } else if (j == 0) {
                s = -1;
            } else {
                size_t diff = (i - 1 + p - (j - 1) % p) % p;
                s = legendre(diff, p);
            }
            h[i][j] = s + (i == j ? 1 : 0);
        }
    }
    return h;
}

bool
checkHadamard(const std::vector<std::vector<int>> &h)
{
    size_t n = h.size();
    for (size_t a = 0; a < n; ++a) {
        for (size_t b = a; b < n; ++b) {
            long dot = 0;
            for (size_t j = 0; j < n; ++j)
                dot += h[a][j] * h[b][j];
            long expect = (a == b) ? static_cast<long>(n) : 0;
            if (dot != expect)
                return false;
        }
    }
    return true;
}

} // namespace

std::vector<std::vector<int>>
hadamardMatrix(size_t n)
{
    YASIM_ASSERT(n >= 1);
    std::vector<std::vector<int>> h;
    if ((n & (n - 1)) == 0) {
        h = sylvester(n);
    } else if (n >= 4 && n % 4 == 0 && isPrime(n - 1) && (n - 1) % 4 == 3) {
        h = paley(n - 1);
    } else {
        fatal("no Hadamard construction available for order %zu", n);
    }
    if (!checkHadamard(h))
        panic("constructed matrix of order %zu is not Hadamard", n);
    return h;
}

PbDesign
PbDesign::forFactors(size_t num_factors, bool foldover)
{
    YASIM_ASSERT(num_factors >= 1);
    // Find the smallest constructible order with at least num_factors + 1
    // columns: orders are multiples of 4 (or 1, 2 trivially).
    size_t n = 4;
    auto constructible = [](size_t order) {
        if ((order & (order - 1)) == 0)
            return true;
        return order % 4 == 0 && isPrime(order - 1) && (order - 1) % 4 == 3;
    };
    while (n < num_factors + 1 || !constructible(n))
        n += 4;

    auto h = hadamardMatrix(n);

    // Normalize so column 0 is all +1, then drop it: the remaining n - 1
    // columns are the factor columns.
    PbDesign design;
    design.matrix.reserve(foldover ? 2 * n : n);
    for (size_t i = 0; i < n; ++i) {
        int row_sign = h[i][0];
        std::vector<int> row(n - 1);
        for (size_t j = 1; j < n; ++j)
            row[j - 1] = h[i][j] * row_sign;
        design.matrix.push_back(std::move(row));
    }
    if (foldover) {
        for (size_t i = 0; i < n; ++i) {
            std::vector<int> row(n - 1);
            for (size_t j = 0; j + 1 < n; ++j)
                row[j] = -design.matrix[i][j];
            design.matrix.push_back(std::move(row));
        }
    }
    return design;
}

int
PbDesign::level(size_t run, size_t factor) const
{
    YASIM_ASSERT(run < matrix.size());
    YASIM_ASSERT(factor < matrix[run].size());
    return matrix[run][factor];
}

std::vector<double>
PbDesign::computeEffects(const std::vector<double> &responses) const
{
    YASIM_ASSERT(responses.size() == numRuns());
    std::vector<double> effects(numFactors(), 0.0);
    for (size_t j = 0; j < numFactors(); ++j) {
        double hi_sum = 0.0, lo_sum = 0.0;
        size_t hi_n = 0, lo_n = 0;
        for (size_t i = 0; i < numRuns(); ++i) {
            if (matrix[i][j] > 0) {
                hi_sum += responses[i];
                ++hi_n;
            } else {
                lo_sum += responses[i];
                ++lo_n;
            }
        }
        YASIM_ASSERT(hi_n > 0 && lo_n > 0);
        effects[j] = hi_sum / static_cast<double>(hi_n) -
                     lo_sum / static_cast<double>(lo_n);
    }
    return effects;
}

bool
PbDesign::isOrthogonal() const
{
    for (size_t a = 0; a < numFactors(); ++a) {
        for (size_t b = a + 1; b < numFactors(); ++b) {
            long dot = 0;
            for (size_t i = 0; i < numRuns(); ++i)
                dot += matrix[i][a] * matrix[i][b];
            if (dot != 0)
                return false;
        }
    }
    return true;
}

} // namespace yasim
