#include "stats/projection.hh"

#include <cmath>

#include "support/logging.hh"

namespace yasim {

RandomProjection::RandomProjection(size_t in_dim, size_t out_dim, Rng &rng)
    : in(in_dim), out(out_dim), weights(in_dim * out_dim)
{
    YASIM_ASSERT(in_dim > 0 && out_dim > 0);
    for (auto &w : weights)
        w = rng.nextDouble();
}

std::vector<double>
RandomProjection::project(const std::vector<double> &v) const
{
    YASIM_ASSERT(v.size() == in);
    std::vector<double> result(out, 0.0);
    for (size_t i = 0; i < in; ++i) {
        double x = v[i];
        if (x == 0.0)
            continue;
        const double *row = &weights[i * out];
        for (size_t j = 0; j < out; ++j)
            result[j] += x * row[j];
    }
    return result;
}

std::vector<double>
RandomProjection::projectSparse(
    const std::vector<std::pair<size_t, double>> &v) const
{
    std::vector<double> result(out, 0.0);
    for (const auto &[idx, x] : v) {
        YASIM_ASSERT(idx < in);
        const double *row = &weights[idx * out];
        for (size_t j = 0; j < out; ++j)
            result[j] += x * row[j];
    }
    return result;
}

void
normalizeL1(std::vector<double> &v)
{
    double total = 0.0;
    for (double x : v)
        total += std::fabs(x);
    if (total == 0.0)
        return;
    for (double &x : v)
        x /= total;
}

} // namespace yasim
