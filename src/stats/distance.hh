/**
 * @file
 * Vector distances and normalizations used by the characterizations.
 *
 * The processor-bottleneck characterization compares *rank vectors* by
 * Euclidean distance (normalized against the maximum possible rank-vector
 * distance); the architecture-level characterization compares metric vectors
 * normalized per metric; the speed-vs-accuracy analysis uses the Manhattan
 * distance of CPI vectors, exactly as in the paper.
 */

#ifndef YASIM_STATS_DISTANCE_HH
#define YASIM_STATS_DISTANCE_HH

#include <cstddef>
#include <vector>

namespace yasim {

/** Euclidean (L2) distance. @pre a.size() == b.size() */
double euclideanDistance(const std::vector<double> &a,
                         const std::vector<double> &b);

/** Manhattan (L1) distance. @pre a.size() == b.size() */
double manhattanDistance(const std::vector<double> &a,
                         const std::vector<double> &b);

/**
 * Rank the magnitudes of @p effects: the element with the largest
 * |effect| gets rank 1, the next rank 2, and so on. Ties are broken by
 * index for determinism.
 */
std::vector<int> rankByMagnitude(const std::vector<double> &effects);

/**
 * Largest possible Euclidean distance between two permutations of
 * ranks 1..n (completely out-of-phase rank vectors). For n = 43 this is
 * the paper's normalization constant (~153.9).
 */
double maxRankDistance(size_t n);

/**
 * Euclidean distance between two rank vectors, normalized to the maximum
 * possible distance and scaled to 100 (the Figure-1 y axis).
 */
double normalizedRankDistance(const std::vector<int> &a,
                              const std::vector<int> &b);

/**
 * Normalize each coordinate of @p v by the matching coordinate of
 * @p reference (v[i]/ref[i]), enabling cross-metric comparison. Reference
 * coordinates equal to zero map to 1.0 when the values agree and 0/are
 * flagged otherwise via a large sentinel ratio.
 */
std::vector<double> normalizeBy(const std::vector<double> &v,
                                const std::vector<double> &reference);

} // namespace yasim

#endif // YASIM_STATS_DISTANCE_HH
