/**
 * @file
 * Random linear projection for dimensionality reduction.
 *
 * SimPoint reduces each interval's basic-block vector (one dimension per
 * static basic block, often thousands) to a small number of dimensions
 * (15 in the original tool) with a random projection before clustering;
 * by the Johnson-Lindenstrauss lemma relative distances are approximately
 * preserved, which is all k-means needs.
 */

#ifndef YASIM_STATS_PROJECTION_HH
#define YASIM_STATS_PROJECTION_HH

#include <cstddef>
#include <vector>

#include "support/rng.hh"

namespace yasim {

/** A fixed random projection matrix from in_dim to out_dim dimensions. */
class RandomProjection
{
  public:
    /**
     * Create a projection with entries drawn uniformly from [0, 1), the
     * distribution the SimPoint tool uses.
     */
    RandomProjection(size_t in_dim, size_t out_dim, Rng &rng);

    /** Project a dense vector. @pre v.size() == inDim() */
    std::vector<double> project(const std::vector<double> &v) const;

    /** Project a sparse vector given as (index, value) pairs. */
    std::vector<double>
    projectSparse(const std::vector<std::pair<size_t, double>> &v) const;

    size_t inDim() const { return in; }
    size_t outDim() const { return out; }

  private:
    size_t in;
    size_t out;
    /** Row-major in x out matrix. */
    std::vector<double> weights;
};

/** L1-normalize a vector in place (no-op for the zero vector). */
void normalizeL1(std::vector<double> &v);

} // namespace yasim

#endif // YASIM_STATS_PROJECTION_HH
