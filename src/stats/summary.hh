/**
 * @file
 * Summary statistics and confidence intervals.
 *
 * SMARTS's stopping rule is driven by the coefficient of variation of the
 * per-sample CPI estimates and a normal-approximation confidence interval;
 * those primitives live here along with the usual mean/stdev helpers used
 * throughout the characterization code.
 */

#ifndef YASIM_STATS_SUMMARY_HH
#define YASIM_STATS_SUMMARY_HH

#include <cstddef>
#include <vector>

namespace yasim {

/** Arithmetic mean. @pre !xs.empty() */
double mean(const std::vector<double> &xs);

/** Sample variance (n-1 denominator); 0 for fewer than two samples. */
double sampleVariance(const std::vector<double> &xs);

/** Sample standard deviation. */
double sampleStdev(const std::vector<double> &xs);

/** Coefficient of variation: stdev / mean. @pre mean(xs) != 0 */
double coefficientOfVariation(const std::vector<double> &xs);

/** Smallest element. @pre !xs.empty() */
double minOf(const std::vector<double> &xs);

/** Largest element. @pre !xs.empty() */
double maxOf(const std::vector<double> &xs);

/**
 * Two-sided standard-normal critical value z such that
 * P(-z <= Z <= z) = confidence. E.g. confidence 0.997 -> ~2.97.
 */
double normalCriticalValue(double confidence);

/**
 * Half-width of the normal-approximation confidence interval for the mean
 * of @p xs at the given two-sided @p confidence level, as a *fraction of
 * the mean* (the +/-3% in the paper's SMARTS configuration is this value).
 */
double relativeConfidenceHalfWidth(const std::vector<double> &xs,
                                   double confidence);

/**
 * Minimum number of samples needed so that the relative confidence-interval
 * half width drops to @p target_rel, given the measured coefficient of
 * variation. This is SMARTS's n >= (z * cv / epsilon)^2 rule.
 */
size_t requiredSamples(double cv, double confidence, double target_rel);

} // namespace yasim

#endif // YASIM_STATS_SUMMARY_HH
