#include "stats/chi2.hh"

#include <cmath>
#include <limits>

#include "support/logging.hh"

namespace yasim {

namespace {

constexpr int maxIterations = 500;
constexpr double epsilon = 1e-14;

/** Lower incomplete gamma by series expansion; good for x < a + 1. */
double
gammaPSeries(double a, double x)
{
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < maxIterations; ++n) {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if (std::fabs(del) < std::fabs(sum) * epsilon)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/** Upper incomplete gamma by Lentz continued fraction; good for x >= a+1. */
double
gammaQContinuedFraction(double a, double x)
{
    const double fpmin = std::numeric_limits<double>::min() / epsilon;
    double b = x + 1.0 - a;
    double c = 1.0 / fpmin;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= maxIterations; ++i) {
        double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = b + an / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < epsilon)
            break;
    }
    return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

} // namespace

double
regularizedGammaP(double a, double x)
{
    YASIM_ASSERT(a > 0.0 && x >= 0.0);
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaPSeries(a, x);
    return 1.0 - gammaQContinuedFraction(a, x);
}

double
regularizedGammaQ(double a, double x)
{
    return 1.0 - regularizedGammaP(a, x);
}

double
chiSquaredCdf(double x, double dof)
{
    YASIM_ASSERT(dof > 0.0);
    if (x <= 0.0)
        return 0.0;
    return regularizedGammaP(dof / 2.0, x / 2.0);
}

double
chiSquaredCritical(double dof, double confidence)
{
    YASIM_ASSERT(confidence > 0.0 && confidence < 1.0);
    // Bisection on the monotone CDF. Upper bracket grows until it covers
    // the requested quantile; the Wilson-Hilferty approximation seeds it.
    double hi = dof + 10.0 * std::sqrt(2.0 * dof) + 10.0;
    while (chiSquaredCdf(hi, dof) < confidence)
        hi *= 2.0;
    double lo = 0.0;
    for (int i = 0; i < 200; ++i) {
        double mid = 0.5 * (lo + hi);
        if (chiSquaredCdf(mid, dof) < confidence)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

Chi2Result
chiSquaredCompare(const std::vector<double> &observed,
                  const std::vector<double> &expected, double confidence,
                  double normalized_total)
{
    YASIM_ASSERT(observed.size() == expected.size());
    double obs_total = 0.0, exp_total = 0.0;
    for (size_t i = 0; i < observed.size(); ++i) {
        obs_total += observed[i];
        exp_total += expected[i];
    }
    Chi2Result res;
    if (obs_total == 0.0 || exp_total == 0.0) {
        res.similar = (obs_total == exp_total);
        return res;
    }
    double target = normalized_total > 0.0 ? normalized_total : exp_total;
    double scale = target / obs_total;
    double exp_scale = target / exp_total;
    size_t cells = 0;
    for (size_t i = 0; i < observed.size(); ++i) {
        double o = observed[i] * scale;
        double e = expected[i] * exp_scale;
        if (o == 0.0 && e == 0.0)
            continue;
        ++cells;
        if (e == 0.0)
            res.statistic += o; // guard: expected-zero cell contributes O
        else
            res.statistic += (o - e) * (o - e) / e;
    }
    res.dof = cells > 1 ? static_cast<double>(cells - 1) : 1.0;
    res.critical = chiSquaredCritical(res.dof, confidence);
    res.similar = res.statistic < res.critical;
    return res;
}

} // namespace yasim
