/**
 * @file
 * Fixed-bin histogram for the configuration-dependence analysis.
 *
 * Figure 5 of the paper buckets the absolute CPI error of every simulated
 * configuration into 3%-wide bins from 0% to 30% plus an overflow bin;
 * this class generalizes that to arbitrary uniform binning with overflow.
 */

#ifndef YASIM_STATS_HISTOGRAM_HH
#define YASIM_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace yasim {

/** Uniform-width histogram over [lo, hi) with an overflow bin. */
class Histogram
{
  public:
    /**
     * @param lo        lower bound of the first bin
     * @param bin_width width of each bin
     * @param num_bins  number of regular bins (overflow bin is extra)
     */
    Histogram(double lo, double bin_width, size_t num_bins);

    /** Record one sample. Values below lo clamp into the first bin. */
    void add(double value);

    /** Total number of samples recorded. */
    uint64_t total() const { return count; }

    /** Raw count in regular bin @p i (i < numBins()). */
    uint64_t binCount(size_t i) const;

    /** Count in the overflow bin (value >= lo + width * num_bins). */
    uint64_t overflowCount() const { return bins.back(); }

    /** Fraction of samples in bin @p i; index numBins() = overflow. */
    double fraction(size_t i) const;

    /** Number of regular bins. */
    size_t numBins() const { return bins.size() - 1; }

    /** Human-readable label for bin @p i, e.g. "3% to 6%" or "> 30%". */
    std::string label(size_t i, bool as_percent = true) const;

  private:
    double lo;
    double width;
    /** Regular bins followed by one overflow bin. */
    std::vector<uint64_t> bins;
    uint64_t count = 0;
};

} // namespace yasim

#endif // YASIM_STATS_HISTOGRAM_HH
