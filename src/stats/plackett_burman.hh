/**
 * @file
 * Plackett-Burman two-level screening designs.
 *
 * The processor-bottleneck characterization runs the simulator once per
 * design row, with each of the 43 parameters set to its low or high value
 * as the row dictates, and then estimates every parameter's main effect on
 * the cycle count. Designs are built from Paley-construction Hadamard
 * matrices (valid for any N where N-1 is a prime congruent to 3 mod 4,
 * which covers the paper's N = 44) and from the Sylvester construction for
 * powers of two. A fold-over option doubles the run count and removes the
 * aliasing of main effects with two-factor interactions, matching the
 * methodology of [Yi03] that the paper builds on.
 */

#ifndef YASIM_STATS_PLACKETT_BURMAN_HH
#define YASIM_STATS_PLACKETT_BURMAN_HH

#include <cstddef>
#include <vector>

namespace yasim {

/** A two-level screening design: rows are runs, columns are factors. */
class PbDesign
{
  public:
    /**
     * Build a design with at least @p num_factors factor columns.
     *
     * The smallest supported base size N > num_factors is used, giving
     * N - 1 factor columns (extra columns are dummy factors whose effects
     * estimate noise). With @p foldover the design is mirrored, doubling
     * the runs (the paper's "PB design with foldover", X = 2).
     */
    static PbDesign forFactors(size_t num_factors, bool foldover = true);

    /** Number of simulator runs the design prescribes. */
    size_t numRuns() const { return matrix.size(); }

    /** Number of factor columns (>= the requested factor count). */
    size_t numFactors() const { return matrix.empty() ? 0 : matrix[0].size(); }

    /** Level (+1 high / -1 low) of @p factor in @p run. */
    int level(size_t run, size_t factor) const;

    /**
     * Main effect of each factor given one response value per run:
     * effect_j = mean(y | factor_j high) - mean(y | factor_j low).
     *
     * @pre responses.size() == numRuns()
     */
    std::vector<double>
    computeEffects(const std::vector<double> &responses) const;

    /** Verify column orthogonality (used in tests; O(runs * factors^2)). */
    bool isOrthogonal() const;

  private:
    PbDesign() = default;

    /** Rows of +/-1 levels. */
    std::vector<std::vector<int>> matrix;
};

/**
 * Build a Hadamard matrix of order @p n (entries +/-1, H * H^T = n I).
 * Supported orders: powers of two (Sylvester) and p+1 for prime
 * p == 3 (mod 4) (Paley I), and products thereof are *not* needed here.
 * Calls fatal() for unsupported orders.
 */
std::vector<std::vector<int>> hadamardMatrix(size_t n);

} // namespace yasim

#endif // YASIM_STATS_PLACKETT_BURMAN_HH
