#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace yasim {

double
mean(const std::vector<double> &xs)
{
    YASIM_ASSERT(!xs.empty());
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
sampleVariance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size() - 1);
}

double
sampleStdev(const std::vector<double> &xs)
{
    return std::sqrt(sampleVariance(xs));
}

double
coefficientOfVariation(const std::vector<double> &xs)
{
    double m = mean(xs);
    YASIM_ASSERT(m != 0.0);
    return sampleStdev(xs) / std::fabs(m);
}

double
minOf(const std::vector<double> &xs)
{
    YASIM_ASSERT(!xs.empty());
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    YASIM_ASSERT(!xs.empty());
    return *std::max_element(xs.begin(), xs.end());
}

namespace {

/** Standard normal CDF via erfc. */
double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

} // namespace

double
normalCriticalValue(double confidence)
{
    YASIM_ASSERT(confidence > 0.0 && confidence < 1.0);
    // Invert Phi(z) - Phi(-z) = confidence by bisection; the CDF is
    // monotone so this converges to double precision quickly.
    double target = 0.5 + confidence / 2.0;
    double lo = 0.0, hi = 10.0;
    for (int i = 0; i < 200; ++i) {
        double mid = 0.5 * (lo + hi);
        if (normalCdf(mid) < target)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
relativeConfidenceHalfWidth(const std::vector<double> &xs, double confidence)
{
    YASIM_ASSERT(xs.size() >= 2);
    double m = mean(xs);
    YASIM_ASSERT(m != 0.0);
    double z = normalCriticalValue(confidence);
    double se = sampleStdev(xs) / std::sqrt(static_cast<double>(xs.size()));
    return z * se / std::fabs(m);
}

size_t
requiredSamples(double cv, double confidence, double target_rel)
{
    YASIM_ASSERT(target_rel > 0.0);
    double z = normalCriticalValue(confidence);
    double n = (z * cv / target_rel) * (z * cv / target_rel);
    return static_cast<size_t>(std::ceil(n));
}

} // namespace yasim
