#include "stats/histogram.hh"

#include <cmath>

#include "support/logging.hh"
#include "support/table.hh"

namespace yasim {

Histogram::Histogram(double lo, double bin_width, size_t num_bins)
    : lo(lo), width(bin_width), bins(num_bins + 1, 0)
{
    YASIM_ASSERT(bin_width > 0.0);
    YASIM_ASSERT(num_bins >= 1);
}

void
Histogram::add(double value)
{
    ++count;
    if (value < lo) {
        ++bins[0];
        return;
    }
    auto idx = static_cast<size_t>((value - lo) / width);
    if (idx >= numBins()) {
        ++bins.back();
        return;
    }
    ++bins[idx];
}

uint64_t
Histogram::binCount(size_t i) const
{
    YASIM_ASSERT(i < numBins());
    return bins[i];
}

double
Histogram::fraction(size_t i) const
{
    YASIM_ASSERT(i < bins.size());
    if (count == 0)
        return 0.0;
    return static_cast<double>(bins[i]) / static_cast<double>(count);
}

std::string
Histogram::label(size_t i, bool as_percent) const
{
    YASIM_ASSERT(i < bins.size());
    auto fmt = [&](double v) {
        double scaled = as_percent ? v * 100.0 : v;
        // Whole-number bounds print without decimals, like the paper.
        if (std::fabs(scaled - std::round(scaled)) < 1e-9)
            return Table::num(scaled, 0) + (as_percent ? "%" : "");
        return Table::num(scaled, 1) + (as_percent ? "%" : "");
    };
    if (i == numBins())
        return "> " + fmt(lo + width * static_cast<double>(numBins()));
    double a = lo + width * static_cast<double>(i);
    double b = a + width;
    return fmt(a) + " to " + fmt(b);
}

} // namespace yasim
