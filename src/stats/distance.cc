#include "stats/distance.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/logging.hh"

namespace yasim {

double
euclideanDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    YASIM_ASSERT(a.size() == b.size());
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(acc);
}

double
manhattanDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    YASIM_ASSERT(a.size() == b.size());
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += std::fabs(a[i] - b[i]);
    return acc;
}

std::vector<int>
rankByMagnitude(const std::vector<double> &effects)
{
    std::vector<size_t> order(effects.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t i, size_t j) {
        return std::fabs(effects[i]) > std::fabs(effects[j]);
    });
    std::vector<int> ranks(effects.size());
    for (size_t pos = 0; pos < order.size(); ++pos)
        ranks[order[pos]] = static_cast<int>(pos) + 1;
    return ranks;
}

double
maxRankDistance(size_t n)
{
    // Completely out-of-phase vectors <1..n> vs <n..1>: coordinate i
    // differs by |n + 1 - 2i|.
    double acc = 0.0;
    for (size_t i = 1; i <= n; ++i) {
        double d = static_cast<double>(n) + 1.0 - 2.0 * static_cast<double>(i);
        acc += d * d;
    }
    return std::sqrt(acc);
}

double
normalizedRankDistance(const std::vector<int> &a, const std::vector<int> &b)
{
    YASIM_ASSERT(a.size() == b.size());
    YASIM_ASSERT(!a.empty());
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = static_cast<double>(a[i] - b[i]);
        acc += d * d;
    }
    return 100.0 * std::sqrt(acc) / maxRankDistance(a.size());
}

std::vector<double>
normalizeBy(const std::vector<double> &v, const std::vector<double> &reference)
{
    YASIM_ASSERT(v.size() == reference.size());
    std::vector<double> out(v.size());
    for (size_t i = 0; i < v.size(); ++i) {
        if (reference[i] == 0.0)
            out[i] = (v[i] == 0.0) ? 1.0 : 1e9;
        else
            out[i] = v[i] / reference[i];
    }
    return out;
}

} // namespace yasim
