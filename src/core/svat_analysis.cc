#include "core/svat_analysis.hh"

#include "stats/distance.hh"
#include "support/logging.hh"
#include "techniques/full_reference.hh"

namespace yasim {

std::vector<SvatPoint>
svatAnalysis(SimulationService &service, const TechniqueContext &ctx,
             const std::vector<TechniquePtr> &techniques,
             const std::vector<SimConfig> &configs)
{
    YASIM_ASSERT(!configs.empty());

    FullReference reference;
    std::vector<double> ref_cpis;
    double ref_work = 0.0;
    for (const SimConfig &config : configs) {
        TechniqueResult r = service.run(reference, ctx, config);
        ref_cpis.push_back(r.cpi);
        ref_work += r.workUnits;
    }

    std::vector<SvatPoint> points;
    for (const TechniquePtr &technique : techniques) {
        SvatPoint point;
        point.technique = technique->name();
        point.permutation = technique->permutation();
        double work = 0.0;
        for (const SimConfig &config : configs) {
            TechniqueResult r = service.run(*technique, ctx, config);
            point.cpis.push_back(r.cpi);
            work += r.workUnits;
        }
        point.speedPct = 100.0 * work / ref_work;
        point.cpiDistance = manhattanDistance(point.cpis, ref_cpis);
        points.push_back(std::move(point));
    }
    return points;
}

std::vector<SvatPoint>
svatAnalysis(const TechniqueContext &ctx,
             const std::vector<TechniquePtr> &techniques,
             const std::vector<SimConfig> &configs)
{
    DirectService direct;
    return svatAnalysis(direct, ctx, techniques, configs);
}

} // namespace yasim
