/**
 * @file
 * The technique-selection decision tree (paper section 9, Figure 7).
 *
 * Encodes the paper's final recommendation as a queryable structure:
 * under "technical factors" the six techniques are ordered by each of
 * the study's criteria (the three characterizations, the speed-vs-
 * accuracy trade-off, and configuration dependence); under "practical
 * factors" they are ordered by complexity-to-use and cost-to-generate.
 * recommend() walks the tree for a stated goal and returns the ranked
 * technique list with the paper's rationale attached.
 */

#ifndef YASIM_CORE_DECISION_TREE_HH
#define YASIM_CORE_DECISION_TREE_HH

#include <ostream>
#include <string>
#include <vector>

namespace yasim {

/** What the architect cares about most. */
enum class SelectionGoal
{
    /** Reference-like results above all (accuracy). */
    Accuracy,
    /** Best accuracy per unit of simulation time. */
    SpeedAccuracyTradeoff,
    /** Stable error across machine configurations. */
    ConfigurationIndependence,
    /** Fewest simulator changes required. */
    LowComplexityToUse,
    /** Cheapest technique artifacts to generate. */
    LowCostToGenerate,
};

/** Printable goal name. */
const char *selectionGoalName(SelectionGoal goal);

/** All goals, in Figure 7's order. */
const std::vector<SelectionGoal> &allSelectionGoals();

/** One criterion's ranking of the six techniques. */
struct CriterionRanking
{
    SelectionGoal goal;
    /** Technique family names, best first. */
    std::vector<std::string> ranking;
    /** The paper's one-line rationale. */
    std::string rationale;
};

/** The full decision tree. */
class DecisionTree
{
  public:
    DecisionTree();

    /** Ranked techniques (best first) for @p goal. */
    const CriterionRanking &recommend(SelectionGoal goal) const;

    /** Every criterion's ranking. */
    const std::vector<CriterionRanking> &criteria() const
    {
        return rankings;
    }

    /** Render the Figure-7 tree as indented text. */
    void print(std::ostream &os) const;

  private:
    std::vector<CriterionRanking> rankings;
};

} // namespace yasim

#endif // YASIM_CORE_DECISION_TREE_HH
