/**
 * @file
 * Speed-versus-accuracy trade-off analysis (paper section 6.1,
 * Figures 3 and 4).
 *
 * For every technique permutation: speed is the technique's total work
 * (in deterministic work units, including SimPoint's profiling and
 * checkpoint generation and SMARTS's re-runs) as a percentage of the
 * reference run's work; accuracy is the Manhattan distance between the
 * technique's CPI vector and the reference's CPI vector across a set of
 * configurations.
 */

#ifndef YASIM_CORE_SVAT_ANALYSIS_HH
#define YASIM_CORE_SVAT_ANALYSIS_HH

#include <string>
#include <vector>

#include "techniques/service.hh"
#include "techniques/technique.hh"

namespace yasim {

/** One point in a Figure-3/4 style SvAT graph. */
struct SvatPoint
{
    std::string technique;
    std::string permutation;
    /** Total simulation work as % of the reference run's. */
    double speedPct = 0.0;
    /** Manhattan distance of the CPI vectors across configurations. */
    double cpiDistance = 0.0;
    /** Per-config CPI estimates (diagnostics). */
    std::vector<double> cpis;
};

/**
 * Run the SvAT analysis for one benchmark: every technique and the
 * reference run on every configuration, all through @p service — with
 * an ExperimentEngine handle the reference runs are shared with every
 * other analysis in the process (and, given a cache directory, across
 * processes).
 *
 * @param service     simulation service (engine or DirectService)
 * @param ctx         benchmark context
 * @param techniques  permutations to place on the graph
 * @param configs     configuration set (the paper uses ~50 envelope
 *                    configurations; Table-3's four are a cheap default)
 */
std::vector<SvatPoint>
svatAnalysis(SimulationService &service, const TechniqueContext &ctx,
             const std::vector<TechniquePtr> &techniques,
             const std::vector<SimConfig> &configs);

/** Uncached convenience overload (simulates everything afresh). */
std::vector<SvatPoint>
svatAnalysis(const TechniqueContext &ctx,
             const std::vector<TechniquePtr> &techniques,
             const std::vector<SimConfig> &configs);

} // namespace yasim

#endif // YASIM_CORE_SVAT_ANALYSIS_HH
