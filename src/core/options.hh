/**
 * @file
 * Tiny command-line option parser shared by the bench and example
 * binaries, so every experiment regenerator accepts the same knobs:
 *
 *   --ref-insts N     reference-run dynamic length (scales everything)
 *   --benchmarks a,b  subset of the suite to run
 *   --seed N          suite data seed
 *   --csv             emit CSV instead of aligned text
 *   --full            full-fidelity mode (all permutations / configs)
 *   --cache-dir DIR   persist simulation results across invocations
 *   --cache-budget-mb N  bound the cache directory; evict oldest files
 *   --engine-stats    print ExperimentEngine counters to stderr
 *   --workers N       bound the work-stealing pool at N workers
 *   --trace           record/replay execution traces (the default)
 *   --no-trace        re-interpret functionally on every run
 *   --shards N        split the reference detailed run into N parallel
 *                     checkpoint-aligned shards (see docs/perf.md)
 *   --shard-warmup M  functional-warming lead-in per shard, in
 *                     instructions (0 = warm the full prefix)
 *   --exact           force the sequential reference path regardless
 *                     of --shards (byte-identical to --shards 1)
 *   --failpoints SPEC arm deterministic fault-injection sites
 *                     (see support/failpoint.hh for the grammar)
 */

#ifndef YASIM_CORE_OPTIONS_HH
#define YASIM_CORE_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/suite.hh"

namespace yasim {

/** Parsed common options. */
struct BenchOptions
{
    /** Suite scaling derived from --ref-insts / --seed. */
    SuiteConfig suite;
    /** Benchmarks to run (defaults to the full suite). */
    std::vector<std::string> benchmarks;
    /** Emit CSV instead of the aligned table. */
    bool csv = false;
    /** Run the full-fidelity version of the experiment. */
    bool full = false;
    /** On-disk result cache directory ("" = memory-only memoization). */
    std::string cacheDir;
    /** Cache-directory budget in MiB (0 = unbounded). */
    uint64_t cacheBudgetMb = 0;
    /**
     * Failpoint schedule to arm before the run ("" = none beyond any
     * YASIM_FAILPOINTS environment schedule). Deterministic: the same
     * spec produces the same fault sequence every run.
     */
    std::string failpoints;
    /** Print ExperimentEngine counters to stderr after the run. */
    bool engineStats = false;
    /** Worker-pool bound (0 = auto-detect). */
    unsigned workers = 0;
    /**
     * Record each benchmark's execution once and replay it everywhere
     * (--no-trace disables; results are bit-identical either way).
     */
    bool trace = true;
    /** Reference-run shard count (1 = sequential; see docs/perf.md). */
    uint32_t shards = 1;
    /** Per-shard functional-warming bound (0 = full prefix). */
    uint64_t shardWarmup = 0;
    /** Force the exact sequential reference path. */
    bool exact = false;
};

/**
 * Parse argv. Unknown options are fatal (with a usage message).
 * @param default_ref_insts experiment-appropriate default length
 */
BenchOptions parseBenchOptions(int argc, char **argv,
                               uint64_t default_ref_insts);

} // namespace yasim

#endif // YASIM_CORE_OPTIONS_HH
