/**
 * @file
 * Characterization A: processor-bottleneck analysis via a
 * Plackett-Burman design (paper section 4.1 / 5.1, Figures 1 and 2).
 *
 * The simulator runs once per PB design row, with each of the 43
 * parameters at the low or high level the row dictates; the response is
 * the technique's CPI estimate (cycles normalized by the fixed reference
 * instruction count). The magnitude of each factor's main effect ranks
 * the performance bottlenecks (rank 1 = largest); the similarity of a
 * technique to the reference run is the Euclidean distance between their
 * rank vectors, normalized to the maximum possible distance and scaled
 * to 100 — Figure 1's y axis.
 */

#ifndef YASIM_CORE_PB_CHARACTERIZATION_HH
#define YASIM_CORE_PB_CHARACTERIZATION_HH

#include <string>
#include <vector>

#include "stats/plackett_burman.hh"
#include "techniques/service.hh"
#include "techniques/technique.hh"

namespace yasim {

/** Full PB outcome for one technique on one benchmark. */
struct PbOutcome
{
    std::string technique;
    std::string permutation;
    /** CPI response per design run. */
    std::vector<double> responses;
    /** Main effect per factor (canonical pbFactors() order). */
    std::vector<double> effects;
    /** Bottleneck rank per factor (1 = largest effect). */
    std::vector<int> ranks;
    /** Total work units spent across the design's runs. */
    double workUnits = 0.0;
};

/**
 * Run the full PB design for one technique through @p service. With an
 * ExperimentEngine handle the per-row simulations are shared across
 * techniques, analyses, and (with a cache directory) processes.
 */
PbOutcome runPbDesign(SimulationService &service,
                      const Technique &technique,
                      const TechniqueContext &ctx,
                      const PbDesign &design);

/** Uncached convenience overload (simulates every row afresh). */
PbOutcome runPbDesign(const Technique &technique,
                      const TechniqueContext &ctx,
                      const PbDesign &design);

/** The design's corner configurations in run order (for prefetching). */
std::vector<SimConfig> pbDesignConfigs(const PbDesign &design);

/**
 * Figure-1 distance: normalized (0..100) Euclidean distance between a
 * technique's rank vector and the reference's.
 */
double pbDistance(const PbOutcome &technique, const PbOutcome &reference);

/**
 * Figure-2 series: distance difference when only the N most significant
 * reference parameters are counted, for N = 1..43. Element N-1 holds
 * dist(a, ref | top-N) - dist(b, ref | top-N).
 */
std::vector<double> pbDistanceDifference(const PbOutcome &a,
                                         const PbOutcome &b,
                                         const PbOutcome &reference);

} // namespace yasim

#endif // YASIM_CORE_PB_CHARACTERIZATION_HH
