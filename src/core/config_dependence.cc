#include "core/config_dependence.hh"

#include <cmath>

#include "support/logging.hh"
#include "techniques/full_reference.hh"

namespace yasim {

double
ConfigDependence::errorConsistency() const
{
    if (signedErrors.empty())
        return 1.0;
    size_t positive = 0;
    for (double e : signedErrors)
        if (e >= 0.0)
            ++positive;
    size_t majority = std::max(positive, signedErrors.size() - positive);
    return static_cast<double>(majority) /
           static_cast<double>(signedErrors.size());
}

std::vector<double>
referenceCpis(SimulationService &service, const TechniqueContext &ctx,
              const std::vector<SimConfig> &configs)
{
    FullReference reference;
    std::vector<double> cpis;
    cpis.reserve(configs.size());
    for (const SimConfig &config : configs)
        cpis.push_back(service.run(reference, ctx, config).cpi);
    return cpis;
}

std::vector<double>
referenceCpis(const TechniqueContext &ctx,
              const std::vector<SimConfig> &configs)
{
    DirectService direct;
    return referenceCpis(direct, ctx, configs);
}

ConfigDependence
configDependence(SimulationService &service, const Technique &technique,
                 const TechniqueContext &ctx,
                 const std::vector<SimConfig> &configs,
                 const std::vector<double> &ref_cpis)
{
    YASIM_ASSERT(configs.size() == ref_cpis.size());
    ConfigDependence dep;
    dep.technique = technique.name();
    dep.permutation = technique.permutation();

    for (size_t i = 0; i < configs.size(); ++i) {
        TechniqueResult r = service.run(technique, ctx, configs[i]);
        YASIM_ASSERT(ref_cpis[i] > 0.0);
        double err = (r.cpi - ref_cpis[i]) / ref_cpis[i];
        dep.signedErrors.push_back(err);
        dep.errorHistogram.add(std::fabs(err));
    }
    return dep;
}

ConfigDependence
configDependence(const Technique &technique, const TechniqueContext &ctx,
                 const std::vector<SimConfig> &configs,
                 const std::vector<double> &ref_cpis)
{
    DirectService direct;
    return configDependence(direct, technique, ctx, configs, ref_cpis);
}

} // namespace yasim
