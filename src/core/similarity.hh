/**
 * @file
 * Benchmark-similarity analysis in the style of Eeckhout et al.
 * [Eeckhout02], which the paper's related-work section describes:
 * characterize each benchmark/input pair with a vector of
 * microarchitecture-independent and -dependent metrics (instruction
 * mix, branch predictability, cache miss rates, inherent parallelism),
 * normalize the metrics, and cluster the pairs — statistically similar
 * pairs are redundant in a benchmark suite, and a reduced input that
 * lands in a different cluster than its reference input is, in the
 * paper's words, "a completely different benchmark program".
 */

#ifndef YASIM_CORE_SIMILARITY_HH
#define YASIM_CORE_SIMILARITY_HH

#include <string>
#include <vector>

#include "workloads/suite.hh"

namespace yasim {

class TraceStore;

/** The characteristic vector of one benchmark/input pair. */
struct WorkloadCharacteristics
{
    std::string benchmark;
    InputSet input = InputSet::Reference;

    // Microarchitecture-independent: dynamic instruction mix.
    double loadFraction = 0.0;
    double storeFraction = 0.0;
    double branchFraction = 0.0;
    double fpFraction = 0.0;
    double mulDivFraction = 0.0;

    // Microarchitecture-dependent (fixed probe machines).
    double branchAccuracy = 0.0;
    double l1dMissRate = 0.0;
    double l2MissRate = 0.0;
    /** IPC on a very wide machine: inherent-parallelism proxy. */
    double ilpProxy = 0.0;

    /** The metrics as a vector (order matches metricNames()). */
    std::vector<double> vec() const;

    /** Names of the vector's coordinates. */
    static const std::vector<std::string> &metricNames();
};

/**
 * Measure one benchmark/input pair's characteristics: one functional
 * pass for the instruction mix and one detailed run on each probe
 * machine (Table-3 #2 for the memory/branch metrics, a widened #4 for
 * the ILP proxy). With @p traces, all three passes replay one shared
 * recording instead of interpreting the program three times.
 */
WorkloadCharacteristics
characterizeWorkload(const std::string &benchmark, InputSet input,
                     const SuiteConfig &suite,
                     TraceStore *traces = nullptr);

/**
 * Z-score-normalize a set of characteristic vectors per coordinate
 * (zero-variance coordinates normalize to zero).
 */
std::vector<std::vector<double>>
zScoreNormalize(const std::vector<std::vector<double>> &vectors);

/** The outcome of a similarity analysis over a set of pairs. */
struct SimilarityAnalysis
{
    std::vector<WorkloadCharacteristics> items;
    /** Z-scored characteristic vectors, one per item. */
    std::vector<std::vector<double>> normalized;
    /** Cluster index per item. */
    std::vector<int> cluster;
    /** Number of clusters the BIC criterion chose. */
    int numClusters = 0;
    /** Pairwise Euclidean distances in normalized space. */
    std::vector<std::vector<double>> distance;
};

/**
 * Characterize and cluster a set of benchmark/input pairs.
 *
 * @param pairs items to analyze
 * @param suite workload scaling
 * @param max_k cluster-count ceiling for the BIC selection
 * @param traces optional shared trace store for the characterizations
 */
SimilarityAnalysis
analyzeSimilarity(const std::vector<std::pair<std::string, InputSet>> &pairs,
                  const SuiteConfig &suite, int max_k = 6,
                  TraceStore *traces = nullptr);

} // namespace yasim

#endif // YASIM_CORE_SIMILARITY_HH
