#include "core/arch_characterization.hh"

#include "stats/distance.hh"
#include "support/logging.hh"
#include "techniques/full_reference.hh"

namespace yasim {

const std::vector<std::string> &
archMetricNames()
{
    static const std::vector<std::string> names = {
        "IPC", "branch accuracy", "L1-D hit rate", "L2 hit rate",
    };
    return names;
}

double
archDistance(const TechniqueResult &technique,
             const TechniqueResult &reference)
{
    YASIM_ASSERT(technique.metrics.size() == reference.metrics.size());
    std::vector<double> normalized =
        normalizeBy(technique.metrics, reference.metrics);
    std::vector<double> ones(normalized.size(), 1.0);
    return euclideanDistance(normalized, ones);
}

double
archDistanceOverConfigs(const std::vector<TechniqueResult> &technique,
                        const std::vector<TechniqueResult> &reference)
{
    YASIM_ASSERT(!technique.empty());
    YASIM_ASSERT(technique.size() == reference.size());
    double total = 0.0;
    for (size_t i = 0; i < technique.size(); ++i)
        total += archDistance(technique[i], reference[i]);
    return total / static_cast<double>(technique.size());
}

double
runArchDistance(SimulationService &service, const Technique &technique,
                const TechniqueContext &ctx,
                const std::vector<SimConfig> &configs)
{
    FullReference reference;
    std::vector<TechniqueResult> ref_results, results;
    for (const SimConfig &config : configs) {
        ref_results.push_back(service.run(reference, ctx, config));
        results.push_back(service.run(technique, ctx, config));
    }
    return archDistanceOverConfigs(results, ref_results);
}

} // namespace yasim
