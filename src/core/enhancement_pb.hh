/**
 * @file
 * PB-based enhancement-effect measurement — the third application of
 * the Plackett-Burman methodology in [Yi03], which this paper builds
 * on: add the enhancement (on/off) to the design as one more factor
 * and estimate its main effect on CPI *alongside* the 43 processor
 * parameters. The enhancement's rank among the parameters says whether
 * its benefit rises above the machine's own bottleneck structure — a
 * far stronger statement than a speedup number on one configuration.
 */

#ifndef YASIM_CORE_ENHANCEMENT_PB_HH
#define YASIM_CORE_ENHANCEMENT_PB_HH

#include "core/enhancement_study.hh"
#include "techniques/service.hh"
#include "techniques/technique.hh"

namespace yasim {

/** Outcome of ranking an enhancement among the PB factors. */
struct EnhancementPbOutcome
{
    Enhancement enhancement = Enhancement::TrivialComputation;
    /** Main effect of the enhancement on CPI (negative = speeds up). */
    double enhancementEffect = 0.0;
    /** Its rank among the 43 + 1 factors (1 = largest |effect|). */
    int enhancementRank = 0;
    /** Effects of every factor (43 processor factors + enhancement). */
    std::vector<double> effects;
    /** Ranks of every factor (same order; last = enhancement). */
    std::vector<int> ranks;
    /** Total simulation work spent. */
    double workUnits = 0.0;
};

/**
 * Run the 44-factor design (43 processor parameters + the enhancement
 * as factor 44) under @p technique and rank the enhancement's effect.
 *
 * The design grows to the next constructible size (48 runs); the
 * response is the technique's CPI estimate per run.
 */
EnhancementPbOutcome
rankEnhancementEffect(SimulationService &service,
                      const Technique &technique,
                      const TechniqueContext &ctx,
                      Enhancement enhancement);

/** Uncached convenience overload. */
EnhancementPbOutcome
rankEnhancementEffect(const Technique &technique,
                      const TechniqueContext &ctx,
                      Enhancement enhancement);

} // namespace yasim

#endif // YASIM_CORE_ENHANCEMENT_PB_HH
