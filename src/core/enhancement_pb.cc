#include "core/enhancement_pb.hh"

#include "stats/distance.hh"
#include "stats/plackett_burman.hh"

namespace yasim {

EnhancementPbOutcome
rankEnhancementEffect(SimulationService &service,
                      const Technique &technique,
                      const TechniqueContext &ctx,
                      Enhancement enhancement)
{
    const size_t base_factors = numPbFactors();
    const size_t all_factors = base_factors + 1;
    // Folded design: an enhancement's main effect is subtle next to the
    // machine factors, so un-aliasing it from two-factor interactions
    // matters here (unlike the rank-vector characterization, where the
    // same aliasing hits the technique and the reference alike).
    PbDesign design = PbDesign::forFactors(all_factors,
                                           /*foldover=*/true);

    EnhancementPbOutcome outcome;
    outcome.enhancement = enhancement;

    std::vector<double> responses;
    responses.reserve(design.numRuns());
    for (size_t run = 0; run < design.numRuns(); ++run) {
        std::vector<int> levels(design.numFactors());
        for (size_t j = 0; j < design.numFactors(); ++j)
            levels[j] = design.level(run, j);
        SimConfig config =
            applyPbRow(levels, "epb-run" + std::to_string(run));
        // Factor 44: the enhancement at its high level.
        if (levels[base_factors] > 0)
            config = withEnhancement(config, enhancement);
        TechniqueResult result = service.run(technique, ctx, config);
        responses.push_back(result.cpi);
        outcome.workUnits += result.workUnits;
    }

    std::vector<double> all_effects = design.computeEffects(responses);
    outcome.effects.assign(all_effects.begin(),
                           all_effects.begin() +
                               static_cast<long>(all_factors));
    outcome.ranks = rankByMagnitude(outcome.effects);
    outcome.enhancementEffect = outcome.effects[base_factors];
    outcome.enhancementRank = outcome.ranks[base_factors];
    return outcome;
}

EnhancementPbOutcome
rankEnhancementEffect(const Technique &technique,
                      const TechniqueContext &ctx,
                      Enhancement enhancement)
{
    DirectService direct;
    return rankEnhancementEffect(direct, technique, ctx, enhancement);
}

} // namespace yasim
