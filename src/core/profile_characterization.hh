/**
 * @file
 * Characterization B: execution-profile comparison (paper section 4.2 /
 * 5.2).
 *
 * Compares the BBEF and BBV distributions a technique's detailed
 * portion executed against the reference run's, with a chi-squared
 * test: the test value is the distance measure, and the technique is
 * "statistically similar" when the value is below the critical value
 * for the profile's degrees of freedom. The reference run's very large
 * basic-block counts make the critical value generous — the paper's
 * observation that almost every permutation passes the similarity test
 * even though the reduced/truncated distances are clearly larger.
 */

#ifndef YASIM_CORE_PROFILE_CHARACTERIZATION_HH
#define YASIM_CORE_PROFILE_CHARACTERIZATION_HH

#include "stats/chi2.hh"
#include "techniques/service.hh"
#include "techniques/technique.hh"

namespace yasim {

/** Chi-squared comparison of both profile flavours. */
struct ProfileComparison
{
    std::string technique;
    std::string permutation;
    /** Block-entry-count distribution comparison. */
    Chi2Result bbef;
    /** Instruction-weighted (BBV) distribution comparison. */
    Chi2Result bbv;
};

/**
 * Compare @p technique's execution profile to @p reference's.
 * @pre both results carry profiles of the same program shape.
 */
ProfileComparison compareProfiles(const TechniqueResult &technique,
                                  const TechniqueResult &reference,
                                  double confidence = 0.95);

/**
 * Simulate the technique and the reference run on @p config through
 * @p service and compare their profiles.
 */
ProfileComparison runProfileComparison(SimulationService &service,
                                       const Technique &technique,
                                       const TechniqueContext &ctx,
                                       const SimConfig &config,
                                       double confidence = 0.95);

} // namespace yasim

#endif // YASIM_CORE_PROFILE_CHARACTERIZATION_HH
