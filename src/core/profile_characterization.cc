#include "core/profile_characterization.hh"

#include "support/logging.hh"
#include "techniques/full_reference.hh"

namespace yasim {

ProfileComparison
compareProfiles(const TechniqueResult &technique,
                const TechniqueResult &reference, double confidence)
{
    YASIM_ASSERT(technique.bbv.size() == reference.bbv.size());
    ProfileComparison cmp;
    cmp.technique = technique.technique;
    cmp.permutation = technique.permutation;
    // Similarity verdicts use an effective sampling mass of 50 counts
    // per cell (the usual chi-squared validity scale); the statistic on
    // that normalized scale still orders techniques by profile
    // distance, mirroring the paper's dual use of the test value.
    double mass = 50.0 * static_cast<double>(reference.bbv.size());
    cmp.bbef = chiSquaredCompare(technique.bbef, reference.bbef,
                                 confidence, mass);
    cmp.bbv = chiSquaredCompare(technique.bbv, reference.bbv, confidence,
                                mass);
    return cmp;
}

ProfileComparison
runProfileComparison(SimulationService &service, const Technique &technique,
                     const TechniqueContext &ctx, const SimConfig &config,
                     double confidence)
{
    FullReference reference;
    TechniqueResult ref = service.run(reference, ctx, config);
    TechniqueResult res = service.run(technique, ctx, config);
    return compareProfiles(res, ref, confidence);
}

} // namespace yasim
