#include "core/survey.hh"

namespace yasim {

const std::vector<SurveyEntry> &
prevalenceSurvey()
{
    static const std::vector<SurveyEntry> survey = {
        {"FF X + Run Z", 27.3, true, "most prevalent technique"},
        {"Run Z", 23.1, true, ""},
        {"reduced input sets", 18.5, true, "MinneSPEC, SPEC test/train"},
        {"run to completion", 17.8, true, "the reference baseline"},
        {"SimPoint", 0.0, true,
         "included: usage expected to increase"},
        {"SMARTS", 0.0, true,
         "included: usage expected to increase"},
        {"FF X + WU Y + Run Z", 0.0, true,
         "included as the more accurate FF X + Run Z"},
        {"random sampling", 0.0, false,
         "excluded: rarely used despite being well known"},
    };
    return survey;
}

AdoptionTrend
adoptionTrend()
{
    return AdoptionTrend{};
}

} // namespace yasim
