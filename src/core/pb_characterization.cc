#include "core/pb_characterization.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/config.hh"
#include "stats/distance.hh"
#include "support/logging.hh"

namespace yasim {

std::vector<SimConfig>
pbDesignConfigs(const PbDesign &design)
{
    std::vector<SimConfig> configs;
    configs.reserve(design.numRuns());
    for (size_t run = 0; run < design.numRuns(); ++run) {
        std::vector<int> levels(design.numFactors());
        for (size_t j = 0; j < design.numFactors(); ++j)
            levels[j] = design.level(run, j);
        configs.push_back(
            applyPbRow(levels, "pb-run" + std::to_string(run)));
    }
    return configs;
}

PbOutcome
runPbDesign(SimulationService &service, const Technique &technique,
            const TechniqueContext &ctx, const PbDesign &design)
{
    PbOutcome outcome;
    outcome.technique = technique.name();
    outcome.permutation = technique.permutation();
    outcome.responses.reserve(design.numRuns());

    const size_t factors = numPbFactors();
    for (const SimConfig &config : pbDesignConfigs(design)) {
        TechniqueResult result = service.run(technique, ctx, config);
        outcome.responses.push_back(result.cpi);
        outcome.workUnits += result.workUnits;
    }

    std::vector<double> all_effects =
        design.computeEffects(outcome.responses);
    // Only the real factors rank; any extra design columns are dummy
    // factors that merely estimate noise.
    outcome.effects.assign(all_effects.begin(),
                           all_effects.begin() +
                               static_cast<long>(factors));
    outcome.ranks = rankByMagnitude(outcome.effects);
    return outcome;
}

PbOutcome
runPbDesign(const Technique &technique, const TechniqueContext &ctx,
            const PbDesign &design)
{
    DirectService direct;
    return runPbDesign(direct, technique, ctx, design);
}

double
pbDistance(const PbOutcome &technique, const PbOutcome &reference)
{
    return normalizedRankDistance(technique.ranks, reference.ranks);
}

std::vector<double>
pbDistanceDifference(const PbOutcome &a, const PbOutcome &b,
                     const PbOutcome &reference)
{
    const size_t n = reference.ranks.size();
    YASIM_ASSERT(a.ranks.size() == n && b.ranks.size() == n);

    // Parameters in ascending order of reference rank (most significant
    // first), as Figure 2 plots them.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
        return reference.ranks[i] < reference.ranks[j];
    });

    std::vector<double> series(n, 0.0);
    double acc_a = 0.0, acc_b = 0.0;
    for (size_t top = 0; top < n; ++top) {
        size_t p = order[top];
        double da = static_cast<double>(a.ranks[p] - reference.ranks[p]);
        double db = static_cast<double>(b.ranks[p] - reference.ranks[p]);
        acc_a += da * da;
        acc_b += db * db;
        series[top] = std::sqrt(acc_a) - std::sqrt(acc_b);
    }
    return series;
}

} // namespace yasim
