#include "core/similarity.hh"

#include <cmath>

#include "sim/ooo_core.hh"
#include "stats/distance.hh"
#include "stats/kmeans.hh"
#include "stats/summary.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "techniques/trace_store.hh"

namespace yasim {

std::vector<double>
WorkloadCharacteristics::vec() const
{
    return {loadFraction,   storeFraction, branchFraction,
            fpFraction,     mulDivFraction, branchAccuracy,
            l1dMissRate,    l2MissRate,     ilpProxy};
}

const std::vector<std::string> &
WorkloadCharacteristics::metricNames()
{
    static const std::vector<std::string> names = {
        "load frac",   "store frac",  "branch frac",
        "FP frac",     "mul/div frac", "BP accuracy",
        "L1D miss",    "L2 miss",      "ILP proxy",
    };
    return names;
}

WorkloadCharacteristics
characterizeWorkload(const std::string &benchmark, InputSet input,
                     const SuiteConfig &suite, TraceStore *traces)
{
    WorkloadCharacteristics wc;
    wc.benchmark = benchmark;
    wc.input = input;

    // Instruction mix: one pass over the stream.
    {
        StepSourceHandle src =
            openStepSource(benchmark, input, suite, traces);
        constexpr uint64_t kMixBatch = 4096;
        std::vector<ExecRecord> batch(kMixBatch);
        uint64_t total = 0, loads = 0, stores = 0, branches = 0,
                 fp = 0, muldiv = 0;
        uint64_t n;
        while ((n = src.source->stepBatch(batch.data(), kMixBatch)) > 0) {
            total += n;
            for (uint64_t i = 0; i < n; ++i) {
                const Instruction &inst = *batch[i].inst;
                if (inst.isLoad())
                    ++loads;
                if (inst.isStore())
                    ++stores;
                if (inst.isControl())
                    ++branches;
                if (inst.isFp())
                    ++fp;
                FuClass fu = inst.fuClass();
                if (fu == FuClass::IntMult || fu == FuClass::IntDiv ||
                    fu == FuClass::FpMult || fu == FuClass::FpDiv) {
                    ++muldiv;
                }
            }
        }
        YASIM_ASSERT(total > 0);
        auto frac = [total](uint64_t n) {
            return static_cast<double>(n) / static_cast<double>(total);
        };
        wc.loadFraction = frac(loads);
        wc.storeFraction = frac(stores);
        wc.branchFraction = frac(branches);
        wc.fpFraction = frac(fp);
        wc.mulDivFraction = frac(muldiv);
    }

    // Memory/branch behaviour on the mid-range probe machine.
    {
        StepSourceHandle src =
            openStepSource(benchmark, input, suite, traces);
        OooCore core(architecturalConfig(2));
        core.run(*src.source, ~0ULL);
        SimStats stats = core.snapshot();
        wc.branchAccuracy = stats.branchAccuracy();
        wc.l1dMissRate = 1.0 - stats.l1dHitRate();
        wc.l2MissRate = 1.0 - stats.l2HitRate();
    }

    // Inherent-parallelism proxy: IPC on a very wide, deep machine.
    {
        SimConfig wide = architecturalConfig(4);
        wide.core.fetchWidth = wide.core.decodeWidth = 16;
        wide.core.issueWidth = wide.core.commitWidth = 16;
        wide.core.intAlus = wide.core.fpAlus = 16;
        wide.core.robEntries = 512;
        wide.core.iqEntries = 256;
        wide.core.lsqEntries = 256;
        StepSourceHandle src =
            openStepSource(benchmark, input, suite, traces);
        OooCore core(wide);
        core.run(*src.source, ~0ULL);
        wc.ilpProxy = core.snapshot().ipc();
    }
    return wc;
}

std::vector<std::vector<double>>
zScoreNormalize(const std::vector<std::vector<double>> &vectors)
{
    YASIM_ASSERT(!vectors.empty());
    const size_t dim = vectors[0].size();
    std::vector<std::vector<double>> out(
        vectors.size(), std::vector<double>(dim, 0.0));
    for (size_t d = 0; d < dim; ++d) {
        std::vector<double> column;
        column.reserve(vectors.size());
        for (const auto &v : vectors)
            column.push_back(v[d]);
        double m = mean(column);
        double s = sampleStdev(column);
        for (size_t i = 0; i < vectors.size(); ++i)
            out[i][d] = s > 0.0 ? (vectors[i][d] - m) / s : 0.0;
    }
    return out;
}

SimilarityAnalysis
analyzeSimilarity(
    const std::vector<std::pair<std::string, InputSet>> &pairs,
    const SuiteConfig &suite, int max_k, TraceStore *traces)
{
    YASIM_ASSERT(!pairs.empty());
    SimilarityAnalysis analysis;
    std::vector<std::vector<double>> raw;
    for (const auto &[benchmark, input] : pairs) {
        analysis.items.push_back(
            characterizeWorkload(benchmark, input, suite, traces));
        raw.push_back(analysis.items.back().vec());
    }
    analysis.normalized = zScoreNormalize(raw);

    // A low BIC threshold favours finer clusterings: with only a few
    // dozen points the spherical-Gaussian BIC is conservative, and the
    // analysis is about *grouping*, not parsimony (Eeckhout et al. pick
    // the cluster count from the dendrogram by eye).
    Rng rng(1234);
    KSelection sel = selectK(analysis.normalized,
                             std::min<int>(max_k,
                                           static_cast<int>(
                                               pairs.size())),
                             rng, /*threshold=*/0.35);
    analysis.cluster = sel.best.assignment;
    analysis.numClusters = sel.best.numClusters;

    const size_t n = pairs.size();
    analysis.distance.assign(n, std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            analysis.distance[i][j] = euclideanDistance(
                analysis.normalized[i], analysis.normalized[j]);
    return analysis;
}

} // namespace yasim
