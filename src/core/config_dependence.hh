/**
 * @file
 * Configuration-dependence analysis (paper section 6.2, Figure 5).
 *
 * Measures how a technique's CPI error behaves across the envelope of
 * the configuration hypercube: the histogram of |CPI error| in 3%-wide
 * bins from 0% to 30% plus overflow (Figure 5's stacks), and whether
 * the signed error *trends* (is consistently positive or negative) —
 * the paper's second criterion for usable relative accuracy.
 */

#ifndef YASIM_CORE_CONFIG_DEPENDENCE_HH
#define YASIM_CORE_CONFIG_DEPENDENCE_HH

#include "stats/histogram.hh"
#include "techniques/service.hh"
#include "techniques/technique.hh"

namespace yasim {

/** Figure-5 data for one technique permutation. */
struct ConfigDependence
{
    std::string technique;
    std::string permutation;
    /** |CPI error| histogram: 10 bins of 3% plus overflow. */
    Histogram errorHistogram{0.0, 0.03, 10};
    /** Signed per-config CPI errors (technique - reference) / reference. */
    std::vector<double> signedErrors;

    /** Fraction of configs within ±3% CPI error. */
    double within3Pct() const { return errorHistogram.fraction(0); }

    /**
     * Error consistency in [0, 1]: the fraction of configurations whose
     * signed error matches the majority sign. 1.0 = the error trends
     * perfectly; ~0.5 = the error's direction is a coin flip.
     */
    double errorConsistency() const;
};

/**
 * Run one technique across a configuration set and histogram its CPI
 * error against per-config reference CPIs, sharing simulations through
 * @p service.
 *
 * @param ref_cpis  reference CPI per configuration (same order)
 */
ConfigDependence
configDependence(SimulationService &service, const Technique &technique,
                 const TechniqueContext &ctx,
                 const std::vector<SimConfig> &configs,
                 const std::vector<double> &ref_cpis);

/** Uncached convenience overload (simulates every config afresh). */
ConfigDependence
configDependence(const Technique &technique, const TechniqueContext &ctx,
                 const std::vector<SimConfig> &configs,
                 const std::vector<double> &ref_cpis);

/** Reference CPI per configuration through @p service. */
std::vector<double>
referenceCpis(SimulationService &service, const TechniqueContext &ctx,
              const std::vector<SimConfig> &configs);

/** Uncached reference CPI per configuration. */
std::vector<double>
referenceCpis(const TechniqueContext &ctx,
              const std::vector<SimConfig> &configs);

} // namespace yasim

#endif // YASIM_CORE_CONFIG_DEPENDENCE_HH
