/**
 * @file
 * Enhancement-impact study (paper section 7, Figure 6).
 *
 * Quantifies how each technique's inaccuracy distorts the *apparent
 * speedup* of a microarchitectural enhancement: the technique simulates
 * the machine with and without the enhancement, and the resulting
 * speedup is compared to the speedup the reference run reports. Two
 * enhancements, as in the paper: Trivial Computation simplification
 * [Yi02] (processor core, non-speculative) and Next-Line Prefetching
 * [Jouppi90] (memory hierarchy, speculative).
 */

#ifndef YASIM_CORE_ENHANCEMENT_STUDY_HH
#define YASIM_CORE_ENHANCEMENT_STUDY_HH

#include "techniques/service.hh"
#include "techniques/technique.hh"

namespace yasim {

/** The two studied enhancements. */
enum class Enhancement
{
    TrivialComputation,
    NextLinePrefetch,
};

/** Printable enhancement name. */
const char *enhancementName(Enhancement enhancement);

/** A copy of @p config with @p enhancement switched on. */
SimConfig withEnhancement(const SimConfig &config,
                          Enhancement enhancement);

/** Speedup-error datum for one technique permutation. */
struct EnhancementImpact
{
    std::string technique;
    std::string permutation;
    /** Speedup the technique reports: CPI(base) / CPI(enhanced). */
    double apparentSpeedup = 1.0;
    /** Speedup the reference run reports. */
    double referenceSpeedup = 1.0;

    /** Figure 6's y value: apparent minus reference speedup. */
    double speedupError() const
    {
        return apparentSpeedup - referenceSpeedup;
    }
};

/**
 * Evaluate the enhancement under one technique, sharing the base and
 * enhanced simulations through @p service.
 *
 * @param reference_speedup CPI(base)/CPI(enhanced) from the reference
 *                          run on the same configuration
 */
EnhancementImpact
evaluateEnhancement(SimulationService &service, const Technique &technique,
                    const TechniqueContext &ctx, const SimConfig &config,
                    Enhancement enhancement, double reference_speedup);

/** Uncached convenience overload. */
EnhancementImpact
evaluateEnhancement(const Technique &technique,
                    const TechniqueContext &ctx, const SimConfig &config,
                    Enhancement enhancement, double reference_speedup);

/** Reference speedup of @p enhancement on @p config through @p service. */
double referenceSpeedup(SimulationService &service,
                        const TechniqueContext &ctx,
                        const SimConfig &config, Enhancement enhancement);

/** Uncached reference speedup. */
double referenceSpeedup(const TechniqueContext &ctx,
                        const SimConfig &config, Enhancement enhancement);

} // namespace yasim

#endif // YASIM_CORE_ENHANCEMENT_STUDY_HH
