/**
 * @file
 * The paper's ten-year HPCA/ISCA/MICRO simulation-methodology survey
 * results (section 2), shipped as data.
 *
 * The survey fixed which techniques the study analyzes; it is an input
 * to the experiments, not an experiment itself, so the published
 * percentages are reproduced as a table rather than re-collected.
 */

#ifndef YASIM_CORE_SURVEY_HH
#define YASIM_CORE_SURVEY_HH

#include <string>
#include <vector>

namespace yasim {

/** One surveyed technique's prevalence. */
struct SurveyEntry
{
    std::string technique;
    /** Percentage of all papers with a known technique. */
    double percentOfKnown;
    /** Included in this paper's candidate set? */
    bool studied;
    std::string note;
};

/** The prevalence table from section 2. */
const std::vector<SurveyEntry> &prevalenceSurvey();

/**
 * Usage of reduced-input/truncated techniques before and after
 * SimPoint's introduction (the paper's Recommendation 2 statistic).
 */
struct AdoptionTrend
{
    double beforeSimPointPct = 68.9;
    double afterSimPointPct = 82.1;
};

/** The adoption-trend statistic. */
AdoptionTrend adoptionTrend();

} // namespace yasim

#endif // YASIM_CORE_SURVEY_HH
