#include "core/enhancement_study.hh"

#include "support/logging.hh"
#include "techniques/full_reference.hh"

namespace yasim {

const char *
enhancementName(Enhancement enhancement)
{
    switch (enhancement) {
      case Enhancement::TrivialComputation:
        return "trivial computation (TC)";
      case Enhancement::NextLinePrefetch:
        return "next-line prefetching (NLP)";
    }
    return "?";
}

SimConfig
withEnhancement(const SimConfig &config, Enhancement enhancement)
{
    SimConfig enhanced = config;
    switch (enhancement) {
      case Enhancement::TrivialComputation:
        enhanced.core.trivialComputation = true;
        enhanced.name = config.name + "+tc";
        break;
      case Enhancement::NextLinePrefetch:
        enhanced.mem.nextLinePrefetch = true;
        enhanced.name = config.name + "+nlp";
        break;
    }
    return enhanced;
}

double
referenceSpeedup(SimulationService &service, const TechniqueContext &ctx,
                 const SimConfig &config, Enhancement enhancement)
{
    FullReference reference;
    double base = service.run(reference, ctx, config).cpi;
    double enhanced =
        service.run(reference, ctx, withEnhancement(config, enhancement))
            .cpi;
    YASIM_ASSERT(enhanced > 0.0);
    return base / enhanced;
}

double
referenceSpeedup(const TechniqueContext &ctx, const SimConfig &config,
                 Enhancement enhancement)
{
    DirectService direct;
    return referenceSpeedup(direct, ctx, config, enhancement);
}

EnhancementImpact
evaluateEnhancement(SimulationService &service, const Technique &technique,
                    const TechniqueContext &ctx, const SimConfig &config,
                    Enhancement enhancement, double reference_speedup)
{
    EnhancementImpact impact;
    impact.technique = technique.name();
    impact.permutation = technique.permutation();
    impact.referenceSpeedup = reference_speedup;

    double base = service.run(technique, ctx, config).cpi;
    double enhanced =
        service.run(technique, ctx, withEnhancement(config, enhancement))
            .cpi;
    YASIM_ASSERT(enhanced > 0.0);
    impact.apparentSpeedup = base / enhanced;
    return impact;
}

EnhancementImpact
evaluateEnhancement(const Technique &technique,
                    const TechniqueContext &ctx, const SimConfig &config,
                    Enhancement enhancement, double reference_speedup)
{
    DirectService direct;
    return evaluateEnhancement(direct, technique, ctx, config, enhancement,
                               reference_speedup);
}

} // namespace yasim
