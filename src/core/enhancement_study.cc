#include "core/enhancement_study.hh"

#include "support/logging.hh"
#include "techniques/full_reference.hh"

namespace yasim {

const char *
enhancementName(Enhancement enhancement)
{
    switch (enhancement) {
      case Enhancement::TrivialComputation:
        return "trivial computation (TC)";
      case Enhancement::NextLinePrefetch:
        return "next-line prefetching (NLP)";
    }
    return "?";
}

SimConfig
withEnhancement(const SimConfig &config, Enhancement enhancement)
{
    SimConfig enhanced = config;
    switch (enhancement) {
      case Enhancement::TrivialComputation:
        enhanced.core.trivialComputation = true;
        enhanced.name = config.name + "+tc";
        break;
      case Enhancement::NextLinePrefetch:
        enhanced.mem.nextLinePrefetch = true;
        enhanced.name = config.name + "+nlp";
        break;
    }
    return enhanced;
}

double
referenceSpeedup(const TechniqueContext &ctx, const SimConfig &config,
                 Enhancement enhancement)
{
    FullReference reference;
    double base = reference.run(ctx, config).cpi;
    double enhanced =
        reference.run(ctx, withEnhancement(config, enhancement)).cpi;
    YASIM_ASSERT(enhanced > 0.0);
    return base / enhanced;
}

EnhancementImpact
evaluateEnhancement(const Technique &technique,
                    const TechniqueContext &ctx, const SimConfig &config,
                    Enhancement enhancement, double reference_speedup)
{
    EnhancementImpact impact;
    impact.technique = technique.name();
    impact.permutation = technique.permutation();
    impact.referenceSpeedup = reference_speedup;

    double base = technique.run(ctx, config).cpi;
    double enhanced =
        technique.run(ctx, withEnhancement(config, enhancement)).cpi;
    YASIM_ASSERT(enhanced > 0.0);
    impact.apparentSpeedup = base / enhanced;
    return impact;
}

} // namespace yasim
