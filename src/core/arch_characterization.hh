/**
 * @file
 * Characterization C: architecture-level metrics (paper section 4.3 /
 * 5.2, Table 3).
 *
 * Vectorizes {IPC, branch-prediction accuracy, L1-D hit rate, L2 hit
 * rate}, normalizes each coordinate by the reference run's value so
 * metrics with different scales are comparable, and reports the
 * Euclidean distance from the reference (whose normalized vector is all
 * ones). Run across the four Table-3 configurations.
 */

#ifndef YASIM_CORE_ARCH_CHARACTERIZATION_HH
#define YASIM_CORE_ARCH_CHARACTERIZATION_HH

#include "techniques/service.hh"
#include "techniques/technique.hh"

namespace yasim {

/** Names of the architecture-level metrics, paper order. */
const std::vector<std::string> &archMetricNames();

/**
 * Normalized Euclidean distance between a technique's metric vector and
 * the reference's (0 = identical).
 */
double archDistance(const TechniqueResult &technique,
                    const TechniqueResult &reference);

/**
 * Distance averaged over several configurations: element i of each
 * argument is the result on configuration i.
 */
double archDistanceOverConfigs(
    const std::vector<TechniqueResult> &technique,
    const std::vector<TechniqueResult> &reference);

/**
 * Simulate the technique and the reference run on every configuration
 * through @p service and average the metric distances.
 */
double runArchDistance(SimulationService &service,
                       const Technique &technique,
                       const TechniqueContext &ctx,
                       const std::vector<SimConfig> &configs);

} // namespace yasim

#endif // YASIM_CORE_ARCH_CHARACTERIZATION_HH
