#include "core/decision_tree.hh"

#include "support/logging.hh"

namespace yasim {

const char *
selectionGoalName(SelectionGoal goal)
{
    switch (goal) {
      case SelectionGoal::Accuracy:
        return "accuracy";
      case SelectionGoal::SpeedAccuracyTradeoff:
        return "speed vs accuracy trade-off";
      case SelectionGoal::ConfigurationIndependence:
        return "configuration independence";
      case SelectionGoal::LowComplexityToUse:
        return "complexity to use";
      case SelectionGoal::LowCostToGenerate:
        return "cost to generate";
    }
    return "?";
}

const std::vector<SelectionGoal> &
allSelectionGoals()
{
    static const std::vector<SelectionGoal> goals = {
        SelectionGoal::Accuracy,
        SelectionGoal::SpeedAccuracyTradeoff,
        SelectionGoal::ConfigurationIndependence,
        SelectionGoal::LowComplexityToUse,
        SelectionGoal::LowCostToGenerate,
    };
    return goals;
}

DecisionTree::DecisionTree()
{
    rankings = {
        {SelectionGoal::Accuracy,
         {"SMARTS", "SimPoint", "FF+WU+Run", "FF+Run", "Run Z",
          "reduced"},
         "all three characterizations agree: the sampling techniques "
         "are far ahead, with SMARTS slightly more accurate on most "
         "benchmarks"},
        {SelectionGoal::SpeedAccuracyTradeoff,
         {"SimPoint", "SMARTS", "FF+Run", "FF+WU+Run", "Run Z",
          "reduced"},
         "SimPoint trades a little accuracy for much lower simulation "
         "time; there is a large separation between the two sampling "
         "techniques and the rest"},
        {SelectionGoal::ConfigurationIndependence,
         {"SMARTS", "SimPoint", "FF+WU+Run", "FF+Run", "Run Z",
          "reduced"},
         "SMARTS has virtually no configuration dependence; SimPoint's "
         "best permutation has very little; the CPI error of reduced "
         "and truncated execution does not even trend"},
        {SelectionGoal::LowComplexityToUse,
         {"reduced", "Run Z", "FF+Run", "FF+WU+Run", "SimPoint",
          "SMARTS"},
         "reduced inputs need no simulator changes; SMARTS needs "
         "periodic sampling, functional warming, and statistics"},
        {SelectionGoal::LowCostToGenerate,
         {"SimPoint", "Run Z", "FF+Run", "FF+WU+Run", "SMARTS",
          "reduced"},
         "SimPoint needs minimal user intervention to find simulation "
         "points; SMARTS and reduced inputs cost the most to create"},
    };
}

const CriterionRanking &
DecisionTree::recommend(SelectionGoal goal) const
{
    for (const CriterionRanking &ranking : rankings)
        if (ranking.goal == goal)
            return ranking;
    panic("unhandled selection goal %d", static_cast<int>(goal));
}

void
DecisionTree::print(std::ostream &os) const
{
    os << "Decision tree for selecting a simulation technique\n";
    os << "|- Technical Factors\n";
    auto emit = [&](SelectionGoal goal, const char *indent) {
        const CriterionRanking &r = recommend(goal);
        os << indent << selectionGoalName(goal) << ": ";
        for (size_t i = 0; i < r.ranking.size(); ++i)
            os << (i ? " > " : "") << r.ranking[i];
        os << "\n" << indent << "   (" << r.rationale << ")\n";
    };
    emit(SelectionGoal::Accuracy, "|  |- ");
    emit(SelectionGoal::SpeedAccuracyTradeoff, "|  |- ");
    emit(SelectionGoal::ConfigurationIndependence, "|  `- ");
    os << "`- Practical Factors\n";
    emit(SelectionGoal::LowComplexityToUse, "   |- ");
    emit(SelectionGoal::LowCostToGenerate, "   `- ");
}

} // namespace yasim
