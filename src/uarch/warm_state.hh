/**
 * @file
 * Format version and POD stream helpers for warmed-uarch state.
 *
 * Warmed-microarchitecture summaries (cache tag/LRU arrays, TLB
 * entries, branch-predictor tables) serialize as one composite blob
 * carried by a Checkpoint: the blob opens with kWarmStateFormatVersion
 * (written and checked by MemoryHierarchy::serializeWarmState) and
 * every component embeds its geometry as a guard, so a stream produced
 * under a different configuration — or a different layout of any
 * component — can never be restored into a live structure.
 */

#ifndef YASIM_UARCH_WARM_STATE_HH
#define YASIM_UARCH_WARM_STATE_HH

#include <cstdint>
#include <istream>
#include <ostream>

namespace yasim {

/**
 * Layout version of the composite warmed-uarch blob. Bumped whenever
 * any component's serialized field set or ordering changes; mismatched
 * blobs fail deserialization and callers re-warm from scratch.
 */
// yasim-lint: version(warm)
constexpr uint32_t kWarmStateFormatVersion = 1;

namespace warmio {

template <typename T>
void
putPod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
getPod(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    return is.good();
}

} // namespace warmio

} // namespace yasim

#endif // YASIM_UARCH_WARM_STATE_HH
