#include "uarch/memory_hierarchy.hh"

#include "uarch/warm_state.hh"

namespace yasim {

MemoryHierarchy::MemoryHierarchy(const MemoryConfig &config)
    : cfg(config),
      l1i("l1i", cfg.l1i),
      l1d("l1d", cfg.l1d),
      l2("l2", cfg.l2),
      itlb("itlb", cfg.itlbEntries),
      dtlb("dtlb", cfg.dtlbEntries)
{
}

uint32_t
MemoryHierarchy::memoryLatency(uint32_t block_bytes) const
{
    uint32_t chunks = (block_bytes + cfg.memBusBytes - 1) / cfg.memBusBytes;
    if (chunks == 0)
        chunks = 1;
    return cfg.memLatencyFirst + (chunks - 1) * cfg.memLatencyNext;
}

uint32_t
MemoryHierarchy::instAccess(uint64_t addr)
{
    uint32_t latency = cfg.l1iLatency;
    if (!itlb.access(addr))
        latency += cfg.tlbMissLatency;
    if (!l1i.access(addr)) {
        latency += cfg.l2Latency;
        if (!l2.access(addr))
            latency += memoryLatency(cfg.l2.blockBytes);
    }
    return latency;
}

uint32_t
MemoryHierarchy::dataAccess(uint64_t addr, bool is_write)
{
    (void)is_write; // write-allocate: both directions fill identically
    uint32_t latency = cfg.l1dLatency;
    if (!dtlb.access(addr))
        latency += cfg.tlbMissLatency;
    if (!l1d.access(addr)) {
        latency += cfg.l2Latency;
        if (!l2.access(addr))
            latency += memoryLatency(cfg.l2.blockBytes);
        if (cfg.nextLinePrefetch)
            prefetchNextLine(addr);
    }
    return latency;
}

void
MemoryHierarchy::prefetchNextLine(uint64_t addr)
{
    uint64_t next = l1d.blockAddress(addr) + cfg.l1d.blockBytes;
    ++pfStats.issued;
    if (l1d.probe(next)) {
        ++pfStats.redundant;
        return;
    }
    l1d.touch(next);
    l2.touch(next);
}

void
MemoryHierarchy::warmData(uint64_t addr)
{
    dtlb.touch(addr);
    if (!l1d.touch(addr)) {
        l2.touch(addr);
        if (cfg.nextLinePrefetch)
            prefetchNextLine(addr);
    }
}

void
MemoryHierarchy::warmInst(uint64_t addr)
{
    itlb.touch(addr);
    if (!l1i.touch(addr))
        l2.touch(addr);
}

void
MemoryHierarchy::reset()
{
    l1i.reset();
    l1d.reset();
    l2.reset();
    itlb.reset();
    dtlb.reset();
}

void
MemoryHierarchy::clearStats()
{
    l1i.clearStats();
    l1d.clearStats();
    l2.clearStats();
    itlb.clearStats();
    dtlb.clearStats();
    pfStats = PrefetchStats();
}


void
// yasim-lint: serialized(warm)
MemoryHierarchy::serializeWarmState(std::ostream &os) const
{
    warmio::putPod(os, kWarmStateFormatVersion);
    l1i.serializeWarmState(os);
    l1d.serializeWarmState(os);
    l2.serializeWarmState(os);
    itlb.serializeWarmState(os);
    dtlb.serializeWarmState(os);
}

bool
// yasim-lint: serialized(warm)
MemoryHierarchy::deserializeWarmState(std::istream &is)
{
    uint32_t version = 0;
    if (!warmio::getPod(is, version) || version != kWarmStateFormatVersion)
        return false;
    return l1i.deserializeWarmState(is) && l1d.deserializeWarmState(is) &&
           l2.deserializeWarmState(is) && itlb.deserializeWarmState(is) &&
           dtlb.deserializeWarmState(is);
}

} // namespace yasim
