/**
 * @file
 * Combined (tournament) branch predictor with BTB.
 *
 * The predictor matches the paper's configurations ("Combined, 4K BHT
 * entries"): a bimodal table of 2-bit counters, a gshare table of 2-bit
 * counters indexed by PC xor global history, and a chooser table of 2-bit
 * counters that selects between them, all sized by the BHT-entries
 * parameter. Branch targets come from a set-associative BTB. A
 * misprediction is a wrong direction or, for a predicted/actually taken
 * branch, a BTB target miss.
 */

#ifndef YASIM_UARCH_BRANCH_PREDICTOR_HH
#define YASIM_UARCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace yasim {

/** Direction-predictor organizations. */
enum class PredictorKind
{
    /** Per-PC 2-bit counters only. */
    Bimodal,
    /** Global-history-xor-PC 2-bit counters only. */
    Gshare,
    /** Tournament of the two with a chooser (the paper's "Combined"). */
    Combined,
};

/** Printable predictor-kind name. */
const char *predictorKindName(PredictorKind kind);

/** Sizing knobs for the combined predictor (all the PB factors). */
struct BranchPredictorConfig
{
    /** Direction-predictor organization. */
    PredictorKind kind = PredictorKind::Combined;
    /** Entries in each direction table (power of two). */
    uint32_t bhtEntries = 4096;
    /** Global-history length in bits for the gshare component. */
    uint32_t globalHistoryBits = 12;
    /** BTB entry count (power of two). */
    uint32_t btbEntries = 2048;
    /** BTB associativity. */
    uint32_t btbAssoc = 4;
    /** Update history speculatively at predict time (vs. at resolve). */
    bool speculativeUpdate = true;
};

/** Direction + target prediction outcome. */
struct BranchPrediction
{
    bool taken = false;
    bool btbHit = false;
    uint64_t target = 0;
};

/** Counts kept by the predictor. */
struct BranchPredictorStats
{
    uint64_t lookups = 0;
    uint64_t condBranches = 0;
    uint64_t condMispredicts = 0;
    uint64_t btbMisses = 0;

    /** Conditional-branch direction accuracy in [0, 1]. */
    double directionAccuracy() const
    {
        if (condBranches == 0)
            return 1.0;
        return 1.0 - static_cast<double>(condMispredicts) /
                         static_cast<double>(condBranches);
    }
};

/** Tournament predictor: bimodal + gshare + chooser + BTB. */
class CombinedPredictor
{
  public:
    explicit CombinedPredictor(const BranchPredictorConfig &config);

    /** Predict direction and target for the branch at @p pc. */
    BranchPrediction predict(uint64_t pc) const;

    /**
     * Train on the resolved outcome and report whether the fetch stream
     * was redirected (i.e. a misprediction happened).
     *
     * @param pc          branch address
     * @param conditional true for conditional branches
     * @param taken       resolved direction (true for unconditionals)
     * @param target      resolved target address
     * @return true when direction or target was mispredicted
     */
    bool update(uint64_t pc, bool conditional, bool taken, uint64_t target);

    /**
     * Functional warming: train exactly as update() does but without
     * touching the statistics (SMARTS keeps predictor state hot across
     * skipped regions while measuring only the sampled units).
     */
    void warmUpdate(uint64_t pc, bool conditional, bool taken,
                    uint64_t target);

    /** Reset tables to the initial (cold) state; stats keep counting. */
    void reset();

    const BranchPredictorStats &stats() const { return bpStats; }
    /** Zero the statistics (tables keep their training). */
    void clearStats() { bpStats = BranchPredictorStats(); }

    /**
     * Append direction tables, global history, and the BTB to @p os
     * (no statistics). Table sizes guard restoration; the composite
     * blob is versioned by kWarmStateFormatVersion.
     */
    void serializeWarmState(std::ostream &os) const;

    /**
     * Restore state written by serializeWarmState. @return false on a
     * sizing mismatch or short stream (state then unspecified).
     */
    bool deserializeWarmState(std::istream &is);

  private:
    BranchPredictorConfig config;
    BranchPredictorStats bpStats;

    std::vector<uint8_t> bimodal;
    std::vector<uint8_t> gshare;
    std::vector<uint8_t> chooser;
    uint64_t globalHistory = 0;

    struct BtbEntry
    {
        uint64_t tag = 0;
        uint64_t target = 0;
        uint32_t lru = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb;
    uint32_t btbSets;
    uint32_t lruClock = 0;

    template <bool CountStats>
    bool updateImpl(uint64_t pc, bool conditional, bool taken,
                    uint64_t target);

    uint32_t bimodalIndex(uint64_t pc) const;
    uint32_t gshareIndex(uint64_t pc, uint64_t history) const;
    const BtbEntry *btbLookup(uint64_t pc) const;
    void btbInsert(uint64_t pc, uint64_t target);
};

} // namespace yasim

#endif // YASIM_UARCH_BRANCH_PREDICTOR_HH
