#include "uarch/cache.hh"

#include "support/logging.hh"
#include "uarch/warm_state.hh"

namespace yasim {

const char *
replacementPolicyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Lru:
        return "LRU";
      case ReplacementPolicy::Fifo:
        return "FIFO";
      case ReplacementPolicy::Random:
        return "random";
    }
    return "?";
}

namespace {

inline bool
isPow2(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

inline uint32_t
log2u(uint32_t v)
{
    uint32_t r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

} // namespace

Cache::Cache(std::string name, const CacheConfig &config)
    : cacheName(std::move(name)), cfg(config)
{
    YASIM_ASSERT(isPow2(cfg.blockBytes));
    uint64_t total_bytes = static_cast<uint64_t>(cfg.sizeKb) * 1024;
    uint64_t num_lines = total_bytes / cfg.blockBytes;
    YASIM_ASSERT(num_lines >= cfg.assoc);
    YASIM_ASSERT(num_lines % cfg.assoc == 0);
    numSets = static_cast<uint32_t>(num_lines / cfg.assoc);
    YASIM_ASSERT(isPow2(numSets));
    blockShift = log2u(cfg.blockBytes);
    lines.assign(num_lines, Line());
}

uint64_t
Cache::blockAddress(uint64_t addr) const
{
    return addr >> blockShift << blockShift;
}

bool
Cache::lookupAndFill(uint64_t addr)
{
    uint64_t block = addr >> blockShift;
    uint32_t set = static_cast<uint32_t>(block & (numSets - 1));
    uint64_t tag = block >> log2u(numSets);

    Line *base = &lines[static_cast<size_t>(set) * cfg.assoc];
    Line *victim = base;
    bool has_invalid = false;
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            if (cfg.replacement == ReplacementPolicy::Lru)
                line.lru = ++lruClock; // FIFO keeps insertion order
            return true;
        }
        if (!line.valid && !has_invalid) {
            victim = &line;
            has_invalid = true;
        } else if (!has_invalid && victim->valid &&
                   line.lru < victim->lru) {
            victim = &line;
        }
    }
    if (!has_invalid && cfg.replacement == ReplacementPolicy::Random) {
        // xorshift64: cheap, deterministic victim choice.
        rngState ^= rngState << 13;
        rngState ^= rngState >> 7;
        rngState ^= rngState << 17;
        victim = &base[rngState % cfg.assoc];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = ++lruClock;
    return false;
}

bool
Cache::access(uint64_t addr)
{
    ++cacheStats.accesses;
    bool hit = lookupAndFill(addr);
    if (!hit)
        ++cacheStats.misses;
    return hit;
}

bool
Cache::touch(uint64_t addr)
{
    return lookupAndFill(addr);
}

bool
Cache::probe(uint64_t addr) const
{
    uint64_t block = addr >> blockShift;
    uint32_t set = static_cast<uint32_t>(block & (numSets - 1));
    uint64_t tag = block >> log2u(numSets);
    const Line *base = &lines[static_cast<size_t>(set) * cfg.assoc];
    for (uint32_t w = 0; w < cfg.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::reset()
{
    for (Line &line : lines)
        line.valid = false;
    lruClock = 0;
}


void
// yasim-lint: serialized(warm)
Cache::serializeWarmState(std::ostream &os) const
{
    using warmio::putPod;
    putPod(os, numSets);
    putPod(os, cfg.assoc);
    putPod(os, blockShift);
    putPod(os, static_cast<uint64_t>(lines.size()));
    putPod(os, lruClock);
    putPod(os, rngState);
    for (const Line &line : lines) {
        putPod(os, line.tag);
        putPod(os, line.lru);
        putPod(os, static_cast<uint8_t>(line.valid ? 1 : 0));
    }
}

bool
// yasim-lint: serialized(warm)
Cache::deserializeWarmState(std::istream &is)
{
    using warmio::getPod;
    uint32_t sets = 0, assoc = 0, shift = 0;
    uint64_t n = 0;
    if (!getPod(is, sets) || !getPod(is, assoc) || !getPod(is, shift) ||
        !getPod(is, n)) {
        return false;
    }
    if (sets != numSets || assoc != cfg.assoc || shift != blockShift ||
        n != lines.size()) {
        return false;
    }
    if (!getPod(is, lruClock) || !getPod(is, rngState))
        return false;
    for (Line &line : lines) {
        uint8_t valid = 0;
        if (!getPod(is, line.tag) || !getPod(is, line.lru) ||
            !getPod(is, valid)) {
            return false;
        }
        line.valid = valid != 0;
    }
    return true;
}

} // namespace yasim
