/**
 * @file
 * Fully-associative translation lookaside buffer.
 *
 * The PB parameter space includes I-TLB and D-TLB sizes and the TLB miss
 * latency; a fully-associative LRU array of page entries is enough to make
 * those parameters bite.
 */

#ifndef YASIM_UARCH_TLB_HH
#define YASIM_UARCH_TLB_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace yasim {

/** TLB hit/miss counters. */
struct TlbStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double hitRate() const
    {
        if (accesses == 0)
            return 1.0;
        return 1.0 - static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

/** Fully-associative LRU TLB. */
class Tlb
{
  public:
    /**
     * @param name       for reports
     * @param entries    number of page entries
     * @param page_bytes page size (power of two)
     */
    Tlb(std::string name, uint32_t entries, uint32_t page_bytes = 4096);

    /** Translate the page of @p addr; fills on miss. @return true on hit. */
    bool access(uint64_t addr);

    /** As access() but without statistics (warming). */
    bool touch(uint64_t addr);

    /** Drop all entries. */
    void reset();

    const TlbStats &stats() const { return tlbStats; }
    void clearStats() { tlbStats = TlbStats(); }

    /** As Cache::serializeWarmState, for the TLB entry array. */
    void serializeWarmState(std::ostream &os) const;

    /** As Cache::deserializeWarmState. */
    bool deserializeWarmState(std::istream &is);

  private:
    bool lookupAndFill(uint64_t addr);

    std::string tlbName;
    uint32_t pageShift;
    TlbStats tlbStats;

    struct Entry
    {
        uint64_t page = 0;
        uint64_t lru = 0;
        bool valid = false;
    };
    std::vector<Entry> entries;
    uint64_t lruClock = 0;
};

} // namespace yasim

#endif // YASIM_UARCH_TLB_HH
