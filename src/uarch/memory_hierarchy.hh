/**
 * @file
 * Two-level memory hierarchy: split L1 I/D, unified L2, main memory,
 * I/D TLBs, and the optional next-line prefetcher.
 *
 * The hierarchy returns an access *latency* for the timing model and
 * keeps the hit-rate statistics the characterizations consume. Main
 * memory is charged as first-word latency plus per-chunk latency for the
 * rest of the block, matching the paper's "Memory Lat (Cycles): First,
 * Following" parameters.
 *
 * The next-line (one-block-lookahead) prefetcher implements the NLP
 * enhancement [Jouppi90]: on every L1-D miss, the sequentially next block
 * is also brought into L1-D (and L2). It is speculative and, in this
 * model, charged no extra latency on the demand path.
 */

#ifndef YASIM_UARCH_MEMORY_HIERARCHY_HH
#define YASIM_UARCH_MEMORY_HIERARCHY_HH

#include <cstdint>
#include <iosfwd>
#include <memory>

#include "uarch/cache.hh"
#include "uarch/tlb.hh"

namespace yasim {

/** All memory-system sizing and latency knobs. */
struct MemoryConfig
{
    CacheConfig l1i{32, 2, 64};
    CacheConfig l1d{32, 2, 64};
    CacheConfig l2{256, 4, 128};

    // Latencies and bus width shape cycle counts, never the warmed
    // tag/TLB/predictor tables, so the warm-summary key excludes them
    // (a latency sweep shares one set of warm summaries).
    uint32_t l1iLatency = 1; // yasim-lint: key-exempt(warm: timing-only)
    uint32_t l1dLatency = 1; // yasim-lint: key-exempt(warm: timing-only)
    uint32_t l2Latency = 8;  // yasim-lint: key-exempt(warm: timing-only)
    /** Cycles to the first chunk from main memory. */
    uint32_t memLatencyFirst = 150; // yasim-lint: key-exempt(warm: timing-only)
    /** Cycles per additional chunk. */
    uint32_t memLatencyNext = 2; // yasim-lint: key-exempt(warm: timing-only)
    /** Memory bus width in bytes (chunk size). */
    uint32_t memBusBytes = 8; // yasim-lint: key-exempt(warm: timing-only)

    uint32_t itlbEntries = 64;
    uint32_t dtlbEntries = 128;
    uint32_t tlbMissLatency = 30; // yasim-lint: key-exempt(warm: timing-only)

    /** Enable the next-line prefetcher on the data side. */
    bool nextLinePrefetch = false;
};

/** Prefetcher effectiveness counters. */
struct PrefetchStats
{
    uint64_t issued = 0;
    /** Prefetches that found the line already resident (wasted). */
    uint64_t redundant = 0;
};

/** The full cache/TLB/memory stack. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MemoryConfig &config);

    /** Latency in cycles of an instruction fetch at @p addr. */
    uint32_t instAccess(uint64_t addr);

    /** Latency in cycles of a data read/write at @p addr. */
    uint32_t dataAccess(uint64_t addr, bool is_write);

    /**
     * Functional warming: update cache/TLB state for a data access
     * without counting statistics or computing latency (SMARTS's
     * warming mode and FF X + WU Y warm-up).
     */
    void warmData(uint64_t addr);

    /** Functional warming of the instruction side. */
    void warmInst(uint64_t addr);

    /** Invalidate all caches and TLBs (cold start). */
    void reset();

    /** Zero all statistics; cache contents keep their training. */
    void clearStats();

    const CacheStats &l1iStats() const { return l1i.stats(); }
    const CacheStats &l1dStats() const { return l1d.stats(); }
    const CacheStats &l2Stats() const { return l2.stats(); }
    const TlbStats &itlbStats() const { return itlb.stats(); }
    const TlbStats &dtlbStats() const { return dtlb.stats(); }
    const PrefetchStats &prefetchStats() const { return pfStats; }

    const MemoryConfig &config() const { return cfg; }

    /**
     * Serialize the warmed state of every cache and TLB as one stream
     * opening with kWarmStateFormatVersion (uarch/warm_state.hh).
     * Statistics are excluded: warm state is table training only.
     */
    void serializeWarmState(std::ostream &os) const;

    /**
     * Restore a stream written by serializeWarmState. @return false on
     * a version or geometry mismatch or a short stream; the hierarchy
     * is then partially mutated and must be reset or discarded.
     */
    bool deserializeWarmState(std::istream &is);

  private:
    /** Cycles to fill a block of @p block_bytes from main memory. */
    uint32_t memoryLatency(uint32_t block_bytes) const;

    void prefetchNextLine(uint64_t addr);

    MemoryConfig cfg;
    Cache l1i;
    Cache l1d;
    Cache l2;
    Tlb itlb;
    Tlb dtlb;
    PrefetchStats pfStats;
};

} // namespace yasim

#endif // YASIM_UARCH_MEMORY_HIERARCHY_HH
