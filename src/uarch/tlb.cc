#include "uarch/tlb.hh"

#include "support/logging.hh"

namespace yasim {

namespace {

inline uint32_t
log2u(uint32_t v)
{
    uint32_t r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

} // namespace

Tlb::Tlb(std::string name, uint32_t num_entries, uint32_t page_bytes)
    : tlbName(std::move(name))
{
    YASIM_ASSERT(num_entries >= 1);
    YASIM_ASSERT(page_bytes != 0 && (page_bytes & (page_bytes - 1)) == 0);
    pageShift = log2u(page_bytes);
    entries.assign(num_entries, Entry());
}

bool
Tlb::lookupAndFill(uint64_t addr)
{
    uint64_t page = addr >> pageShift;
    Entry *victim = &entries[0];
    for (Entry &e : entries) {
        if (e.valid && e.page == page) {
            e.lru = ++lruClock;
            return true;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lru < victim->lru) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->page = page;
    victim->lru = ++lruClock;
    return false;
}

bool
Tlb::access(uint64_t addr)
{
    ++tlbStats.accesses;
    bool hit = lookupAndFill(addr);
    if (!hit)
        ++tlbStats.misses;
    return hit;
}

bool
Tlb::touch(uint64_t addr)
{
    return lookupAndFill(addr);
}

void
Tlb::reset()
{
    for (Entry &e : entries)
        e.valid = false;
    lruClock = 0;
}

} // namespace yasim
