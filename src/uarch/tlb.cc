#include "uarch/tlb.hh"

#include "support/logging.hh"
#include "uarch/warm_state.hh"

namespace yasim {

namespace {

inline uint32_t
log2u(uint32_t v)
{
    uint32_t r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

} // namespace

Tlb::Tlb(std::string name, uint32_t num_entries, uint32_t page_bytes)
    : tlbName(std::move(name))
{
    YASIM_ASSERT(num_entries >= 1);
    YASIM_ASSERT(page_bytes != 0 && (page_bytes & (page_bytes - 1)) == 0);
    pageShift = log2u(page_bytes);
    entries.assign(num_entries, Entry());
}

bool
Tlb::lookupAndFill(uint64_t addr)
{
    uint64_t page = addr >> pageShift;
    Entry *victim = &entries[0];
    for (Entry &e : entries) {
        if (e.valid && e.page == page) {
            e.lru = ++lruClock;
            return true;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lru < victim->lru) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->page = page;
    victim->lru = ++lruClock;
    return false;
}

bool
Tlb::access(uint64_t addr)
{
    ++tlbStats.accesses;
    bool hit = lookupAndFill(addr);
    if (!hit)
        ++tlbStats.misses;
    return hit;
}

bool
Tlb::touch(uint64_t addr)
{
    return lookupAndFill(addr);
}

void
Tlb::reset()
{
    for (Entry &e : entries)
        e.valid = false;
    lruClock = 0;
}


void
// yasim-lint: serialized(warm)
Tlb::serializeWarmState(std::ostream &os) const
{
    using warmio::putPod;
    putPod(os, pageShift);
    putPod(os, static_cast<uint64_t>(entries.size()));
    putPod(os, lruClock);
    for (const Entry &e : entries) {
        putPod(os, e.page);
        putPod(os, e.lru);
        putPod(os, static_cast<uint8_t>(e.valid ? 1 : 0));
    }
}

bool
// yasim-lint: serialized(warm)
Tlb::deserializeWarmState(std::istream &is)
{
    using warmio::getPod;
    uint32_t shift = 0;
    uint64_t n = 0;
    if (!getPod(is, shift) || !getPod(is, n))
        return false;
    if (shift != pageShift || n != entries.size())
        return false;
    if (!getPod(is, lruClock))
        return false;
    for (Entry &e : entries) {
        uint8_t valid = 0;
        if (!getPod(is, e.page) || !getPod(is, e.lru) ||
            !getPod(is, valid)) {
            return false;
        }
        e.valid = valid != 0;
    }
    return true;
}

} // namespace yasim
