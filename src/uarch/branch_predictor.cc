#include "uarch/branch_predictor.hh"

#include "support/logging.hh"
#include "uarch/warm_state.hh"

namespace yasim {

const char *
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Bimodal:
        return "bimodal";
      case PredictorKind::Gshare:
        return "gshare";
      case PredictorKind::Combined:
        return "combined";
    }
    return "?";
}

namespace {

inline bool
counterTaken(uint8_t c)
{
    return c >= 2;
}

inline uint8_t
counterTrain(uint8_t c, bool taken)
{
    if (taken)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

inline bool
isPow2(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

CombinedPredictor::CombinedPredictor(const BranchPredictorConfig &cfg)
    : config(cfg)
{
    YASIM_ASSERT(isPow2(config.bhtEntries));
    YASIM_ASSERT(isPow2(config.btbEntries));
    YASIM_ASSERT(config.btbAssoc >= 1 &&
                 config.btbEntries % config.btbAssoc == 0);
    bimodal.assign(config.bhtEntries, 1); // weakly not-taken
    gshare.assign(config.bhtEntries, 1);
    chooser.assign(config.bhtEntries, 2); // weakly prefer gshare
    btb.assign(config.btbEntries, BtbEntry());
    btbSets = config.btbEntries / config.btbAssoc;
}

uint32_t
CombinedPredictor::bimodalIndex(uint64_t pc) const
{
    return static_cast<uint32_t>((pc >> 2) & (config.bhtEntries - 1));
}

uint32_t
CombinedPredictor::gshareIndex(uint64_t pc, uint64_t history) const
{
    uint64_t mask = (config.globalHistoryBits >= 64)
                        ? ~0ULL
                        : ((1ULL << config.globalHistoryBits) - 1);
    return static_cast<uint32_t>(((pc >> 2) ^ (history & mask)) &
                                 (config.bhtEntries - 1));
}

const CombinedPredictor::BtbEntry *
CombinedPredictor::btbLookup(uint64_t pc) const
{
    uint32_t set = static_cast<uint32_t>((pc >> 2) % btbSets);
    uint64_t tag = pc >> 2;
    for (uint32_t w = 0; w < config.btbAssoc; ++w) {
        const BtbEntry &e = btb[set * config.btbAssoc + w];
        if (e.valid && e.tag == tag)
            return &e;
    }
    return nullptr;
}

void
CombinedPredictor::btbInsert(uint64_t pc, uint64_t target)
{
    uint32_t set = static_cast<uint32_t>((pc >> 2) % btbSets);
    uint64_t tag = pc >> 2;
    BtbEntry *victim = nullptr;
    for (uint32_t w = 0; w < config.btbAssoc; ++w) {
        BtbEntry &e = btb[set * config.btbAssoc + w];
        if (e.valid && e.tag == tag) {
            victim = &e;
            break;
        }
        if (!victim || !e.valid ||
            (victim->valid && e.lru < victim->lru)) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lru = ++lruClock;
}

BranchPrediction
CombinedPredictor::predict(uint64_t pc) const
{
    BranchPrediction pred;
    uint32_t bi = bimodalIndex(pc);
    uint32_t gi = gshareIndex(pc, globalHistory);
    bool bimodal_taken = counterTaken(bimodal[bi]);
    bool gshare_taken = counterTaken(gshare[gi]);
    switch (config.kind) {
      case PredictorKind::Bimodal:
        pred.taken = bimodal_taken;
        break;
      case PredictorKind::Gshare:
        pred.taken = gshare_taken;
        break;
      case PredictorKind::Combined:
        pred.taken = counterTaken(chooser[bi]) ? gshare_taken
                                               : bimodal_taken;
        break;
    }
    if (const BtbEntry *e = btbLookup(pc)) {
        pred.btbHit = true;
        pred.target = e->target;
    }
    return pred;
}

template <bool CountStats>
bool
CombinedPredictor::updateImpl(uint64_t pc, bool conditional, bool taken,
                              uint64_t target)
{
    if constexpr (CountStats)
        ++bpStats.lookups;
    BranchPrediction pred = predict(pc);

    bool mispredicted;
    if (conditional) {
        if constexpr (CountStats)
            ++bpStats.condBranches;
        bool wrong_dir = pred.taken != taken;
        bool wrong_target =
            taken && (!pred.btbHit || pred.target != target);
        if (wrong_dir) {
            if constexpr (CountStats)
                ++bpStats.condMispredicts;
        }
        mispredicted = wrong_dir || wrong_target;

        uint32_t bi = bimodalIndex(pc);
        uint32_t gi = gshareIndex(pc, globalHistory);
        bool bimodal_correct = counterTaken(bimodal[bi]) == taken;
        bool gshare_correct = counterTaken(gshare[gi]) == taken;
        if (bimodal_correct != gshare_correct)
            chooser[bi] = counterTrain(chooser[bi], gshare_correct);
        bimodal[bi] = counterTrain(bimodal[bi], taken);
        gshare[gi] = counterTrain(gshare[gi], taken);
        // With speculative update the history already contains this
        // branch at the *next* prediction; without it we still shift at
        // resolve time, which is what this single-pass model expresses.
        (void)config.speculativeUpdate;
        globalHistory = (globalHistory << 1) | (taken ? 1 : 0);
    } else {
        mispredicted = !pred.btbHit || pred.target != target;
    }
    if (!pred.btbHit) {
        if constexpr (CountStats)
            ++bpStats.btbMisses;
    }
    if (taken)
        btbInsert(pc, target);
    return mispredicted;
}

bool
CombinedPredictor::update(uint64_t pc, bool conditional, bool taken,
                          uint64_t target)
{
    return updateImpl<true>(pc, conditional, taken, target);
}

void
CombinedPredictor::warmUpdate(uint64_t pc, bool conditional, bool taken,
                              uint64_t target)
{
    updateImpl<false>(pc, conditional, taken, target);
}

void
CombinedPredictor::reset()
{
    bimodal.assign(config.bhtEntries, 1);
    gshare.assign(config.bhtEntries, 1);
    chooser.assign(config.bhtEntries, 2);
    btb.assign(config.btbEntries, BtbEntry());
    globalHistory = 0;
    lruClock = 0;
}


namespace {

/** One direction table: size guard + raw 2-bit counter bytes. */
void
putTable(std::ostream &os, const std::vector<uint8_t> &table)
{
    warmio::putPod(os, static_cast<uint64_t>(table.size()));
    os.write(reinterpret_cast<const char *>(table.data()),
             static_cast<std::streamsize>(table.size()));
}

bool
getTable(std::istream &is, std::vector<uint8_t> &table)
{
    uint64_t n = 0;
    if (!warmio::getPod(is, n) || n != table.size())
        return false;
    is.read(reinterpret_cast<char *>(table.data()),
            static_cast<std::streamsize>(table.size()));
    return is.good() || table.empty();
}

} // namespace

void
// yasim-lint: serialized(warm)
CombinedPredictor::serializeWarmState(std::ostream &os) const
{
    using warmio::putPod;
    putTable(os, bimodal);
    putTable(os, gshare);
    putTable(os, chooser);
    putPod(os, globalHistory);
    putPod(os, btbSets);
    putPod(os, static_cast<uint64_t>(btb.size()));
    putPod(os, lruClock);
    for (const BtbEntry &e : btb) {
        putPod(os, e.tag);
        putPod(os, e.target);
        putPod(os, e.lru);
        putPod(os, static_cast<uint8_t>(e.valid ? 1 : 0));
    }
}

bool
// yasim-lint: serialized(warm)
CombinedPredictor::deserializeWarmState(std::istream &is)
{
    using warmio::getPod;
    if (!getTable(is, bimodal) || !getTable(is, gshare) ||
        !getTable(is, chooser)) {
        return false;
    }
    uint32_t sets = 0;
    uint64_t n = 0;
    if (!getPod(is, globalHistory) || !getPod(is, sets) || !getPod(is, n))
        return false;
    if (sets != btbSets || n != btb.size())
        return false;
    if (!getPod(is, lruClock))
        return false;
    for (BtbEntry &e : btb) {
        uint8_t valid = 0;
        if (!getPod(is, e.tag) || !getPod(is, e.target) ||
            !getPod(is, e.lru) || !getPod(is, valid)) {
            return false;
        }
        e.valid = valid != 0;
    }
    return true;
}

} // namespace yasim
