/**
 * @file
 * Set-associative cache with true-LRU replacement.
 *
 * The model tracks tags only (no data — the functional simulator owns the
 * values); it exists to classify each access as a hit or a miss so the
 * timing model can charge the right latency, and to expose the hit rates
 * the architecture-level characterization vectorizes.
 */

#ifndef YASIM_UARCH_CACHE_HH
#define YASIM_UARCH_CACHE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace yasim {

/** Replacement policies. */
enum class ReplacementPolicy
{
    /** True least-recently-used. */
    Lru,
    /** First-in first-out (insertion order, hits don't refresh). */
    Fifo,
    /** Pseudo-random victim (deterministic xorshift). */
    Random,
};

/** Printable replacement-policy name. */
const char *replacementPolicyName(ReplacementPolicy policy);

/** Geometry of one cache level. */
struct CacheConfig
{
    /** Total capacity in KB. */
    uint32_t sizeKb = 32;
    /** Ways per set. */
    uint32_t assoc = 2;
    /** Line size in bytes (power of two). */
    uint32_t blockBytes = 64;
    /** Victim-selection policy. */
    ReplacementPolicy replacement = ReplacementPolicy::Lru;
};

/** Hit/miss counters for one cache. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double hitRate() const
    {
        if (accesses == 0)
            return 1.0;
        return 1.0 - static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

/** A single tag-only cache level. */
class Cache
{
  public:
    Cache(std::string name, const CacheConfig &config);

    /**
     * Look up @p addr; allocate the line on a miss (write-allocate).
     * @return true on hit.
     */
    bool access(uint64_t addr);

    /**
     * Look up without counting statistics (used for prefetches and for
     * probing). Still allocates on miss.
     * @return true on hit.
     */
    bool touch(uint64_t addr);

    /** True when the line holding @p addr is resident; no side effects. */
    bool probe(uint64_t addr) const;

    /** Invalidate every line (cold start). Stats keep counting. */
    void reset();

    /** Address of the block containing @p addr. */
    uint64_t blockAddress(uint64_t addr) const;

    const CacheStats &stats() const { return cacheStats; }
    void clearStats() { cacheStats = CacheStats(); }
    const std::string &name() const { return cacheName; }
    const CacheConfig &config() const { return cfg; }

    /**
     * Append tag/LRU/valid state plus the replacement clocks to @p os
     * (statistics are not part of warm state). The geometry is emitted
     * as a restore guard; the enclosing composite blob is versioned by
     * kWarmStateFormatVersion (uarch/warm_state.hh).
     */
    void serializeWarmState(std::ostream &os) const;

    /**
     * Restore state written by serializeWarmState. @return false on a
     * geometry mismatch or short stream; the cache contents are then
     * unspecified and the caller must reset or discard it.
     */
    bool deserializeWarmState(std::istream &is);

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    bool lookupAndFill(uint64_t addr);

    std::string cacheName;
    CacheConfig cfg;
    CacheStats cacheStats;
    std::vector<Line> lines;
    uint32_t numSets;
    uint32_t blockShift;
    uint64_t lruClock = 0;
    /** Deterministic xorshift state for random replacement. */
    uint64_t rngState = 0x243f6a8885a308d3ULL;
};

} // namespace yasim

#endif // YASIM_UARCH_CACHE_HH
