/**
 * @file
 * Synthetic bzip2: block-sorting compression.
 *
 * Signature reproduced: alternation between a sorting phase whose
 * compare branches are data-dependent coin flips (bzip2's block sort is
 * a notorious mispredict generator) and a run-length/encode phase with
 * highly predictable branches — two starkly different phase types — over
 * a block-sized working set.
 */

#include <algorithm>

#include "sim/memory.hh"
#include "workloads/builder_util.hh"
#include "workloads/suite.hh"

namespace yasim {

Program
buildBzip2(const WorkloadParams &params)
{
    ProgramBuilder b("bzip2");

    const uint64_t block_words =
        budgetWords(params.wsBytes / 8, params.targetInsts, 24);
    const uint64_t block_base = heapBase;
    const uint64_t out_base = block_base + block_words * 8;

    const Lcg lcg{1, 2, 3};
    lcg.prepare(b, params.seed);
    emitRandomFill(b, block_base, block_words, lcg, 4, 9, 10);

    const uint64_t init_cost = block_words * 6;
    const uint64_t budget =
        params.targetInsts > init_cost ? params.targetInsts - init_cost : 1;
    constexpr int num_blocks = 4; // compression "blocks" (phase pairs)
    // Sort pass ~14/elem (half swap), encode pass ~8/elem.
    const uint64_t block_cost = block_words * 22 + 20;
    uint64_t blocks_budget = budget / num_blocks;
    const uint64_t elems =
        std::max<uint64_t>(std::min(block_words,
                                    blocks_budget / 22),
                           16);

    b.movi(5, static_cast<int64_t>(block_base));
    b.movi(6, static_cast<int64_t>(out_base));
    (void)block_cost;

    for (int blk = 0; blk < num_blocks; ++blk) {
        // --- Sort phase: partition sweep with data-dependent swaps. ---
        b.movi(4, static_cast<int64_t>(block_base));
        lcg.step(b);
        b.or_(14, 1, 0); // pivot = current LCG value
        CountedLoop sort = beginCountedLoop(b, 9, 10, elems);
        b.ld(15, 4, 0);
        Label no_swap = b.newLabel();
        b.bge(15, 14, no_swap); // ~50% taken, data dependent
        // Swap with a partner element half a block away.
        b.ld(16, 4, static_cast<int64_t>((block_words / 2) * 8));
        b.st(4, 16, 0);
        b.st(4, 15, static_cast<int64_t>((block_words / 2) * 8));
        b.bind(no_swap);
        b.addi(4, 4, 8);
        endCountedLoop(b, sort);

        // --- Encode phase: run-length scan, predictable branches. ---
        b.movi(4, static_cast<int64_t>(block_base));
        b.movi(7, 0);  // run length
        b.movi(17, 0); // previous value
        CountedLoop enc = beginCountedLoop(b, 9, 10, elems);
        b.ld(15, 4, 0);
        Label same = b.newLabel();
        Label cont = b.newLabel();
        b.beq(15, 17, same); // rarely equal: predictable not-taken
        b.add(18, 6, 7);
        b.st(18, 15, 0); // emit literal
        b.addi(7, 7, 8);
        b.andi(7, 7, 0xFFF8);
        b.jmp(cont);
        b.bind(same);
        b.addi(7, 7, 0); // extend run
        b.bind(cont);
        b.or_(17, 15, 0);
        b.addi(4, 4, 8);
        endCountedLoop(b, enc);
    }

    b.halt();
    return b.finish();
}

} // namespace yasim
