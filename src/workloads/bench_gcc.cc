/**
 * @file
 * Synthetic gcc: an optimizing compiler with many distinct passes.
 *
 * gcc is the paper's stress case: it has highly complex phase behaviour
 * (SimPoint's 10M-interval permutation misses phase transitions and
 * underestimates the memory-latency bottleneck on it). This builder
 * reproduces that: each compiled "function" runs through eight passes
 * with *disjoint static code* (so the dominant basic blocks change from
 * phase to phase), function sizes vary pseudo-randomly (so phases are
 * not periodic), the alias pass pointer-chases through the full arena
 * (making the reference input memory-latency sensitive), and the
 * constant-folding pass is rich in trivial computations (the TC
 * enhancement's food).
 */

#include <algorithm>

#include "sim/memory.hh"
#include "workloads/builder_util.hh"
#include "workloads/suite.hh"

namespace yasim {

Program
buildGcc(const WorkloadParams &params)
{
    ProgramBuilder b("gcc");

    // The IR arena is written incrementally by the passes (no up-front
    // fill), so it is sized against the alias pass's chase budget
    // (roughly one chase step per 48 dynamic instructions) rather than
    // by an init cost: reference-class inputs (>= 2 MB) keep an arena
    // far larger than the chase can revisit — every step misses, gcc's
    // memory-latency bottleneck — while reduced inputs get arenas small
    // enough that the chase re-visits them and stays cached.
    const uint64_t chase_budget =
        std::max<uint64_t>(params.targetInsts / 48, 64);
    const bool huge_arena = params.wsBytes >= (2ULL << 20);
    const uint64_t arena_words =
        huge_arena
            ? floorPow2(std::min(params.wsBytes / 8,
                                 std::max<uint64_t>(
                                     params.targetInsts / 4, 4096)))
            : floorPow2(std::min(params.wsBytes / 8,
                                 std::max<uint64_t>(chase_budget / 3,
                                                    256)));
    const uint64_t arena_base = heapBase;

    // Function size range scales with the input (big inputs compile big
    // functions, 1/64 to ~1/8 of the arena) but is clamped so one
    // function's eight passes cost at most ~a third of the budget.
    const uint64_t budget_avg =
        std::max<uint64_t>(params.targetInsts / (48 * 3), 128);
    const uint64_t min_size = std::min(
        std::max<uint64_t>(arena_words / 64, 64), budget_avg / 2);
    const uint64_t size_mask =
        floorPow2(std::min(std::max<uint64_t>(arena_words / 8, 64),
                           budget_avg)) -
        1;

    // Per-function dynamic cost ~= avg_size * (sum of per-pass costs).
    const uint64_t avg_size = min_size + size_mask / 2;
    const uint64_t per_function = avg_size * 48 + 60;
    const uint64_t functions = tripsFor(params.targetInsts, per_function);

    const Lcg lcg{1, 2, 3};
    lcg.prepare(b, params.seed);

    // r5 = arena base, r6 = current function offset (bytes),
    // r7 = function size in words, r20 = diagnostics accumulator.
    b.movi(5, static_cast<int64_t>(arena_base));
    b.movi(6, 0);
    b.movi(20, 0);

    CountedLoop fn_loop = beginCountedLoop(b, 9, 10, functions);

    // Function size: min_size + (rand & size_mask) words.
    lcg.step(b);
    b.shri(7, 1, 17);
    b.andi(7, 7, static_cast<int64_t>(size_mask));
    b.addi(7, 7, static_cast<int64_t>(min_size));

    // Counted loops whose trip count lives in a register (the function
    // size, r7) are emitted inline with this helper.
    auto begin_reg_loop = [&](int counter, int limit_src) {
        Label top = b.newLabel();
        b.movi(counter, 0);
        b.bind(top);
        return CountedLoop{top, counter, limit_src};
    };

    // Pass 1: lex — sequential loads, cheap integer ops.
    b.add(4, 5, 6);
    {
        CountedLoop p = begin_reg_loop(11, 7);
        b.ld(13, 4, 0);
        b.xor_(20, 20, 13);
        b.addi(4, 4, 8);
        endCountedLoop(b, p);
    }

    // Pass 2: parse — strided stores build the IR for this function.
    b.add(4, 5, 6);
    {
        CountedLoop p = begin_reg_loop(11, 7);
        lcg.step(b);
        b.st(4, 1, 0);
        b.addi(4, 4, 8);
        endCountedLoop(b, p);
    }

    // Pass 3: constant folding — loads plus trivial-heavy arithmetic
    // (x + 0, x * 1, x / 1): the TC enhancement's primary target. The
    // divide-by-one chain is serial, so simplifying it to an ALU move
    // rescues the unpipelined divider's latency.
    b.add(4, 5, 6);
    b.movi(15, 0);
    b.movi(16, 1);
    {
        CountedLoop p = begin_reg_loop(11, 7);
        b.ld(13, 4, 0);
        b.add(14, 13, 15); // x + 0  (trivial)
        b.mul(14, 14, 16); // x * 1  (trivial)
        b.add(20, 20, 14);
        b.div(20, 20, 16); // acc / 1 (trivial, serial)
        b.addi(4, 4, 8);
        endCountedLoop(b, p);
    }

    // Pass 4: SSA renumbering — random-access read-modify-write within
    // the function's IR region.
    {
        CountedLoop p = begin_reg_loop(11, 7);
        lcg.step(b);
        b.shri(13, 1, 13);
        b.andi(13, 13, static_cast<int64_t>(size_mask));
        b.shli(13, 13, 3);
        b.add(13, 13, 5);
        b.add(13, 13, 6);
        b.ld(14, 13, 0);
        b.addi(14, 14, 7);
        b.st(13, 14, 0);
        endCountedLoop(b, p);
    }

    // Pass 5: alias analysis — serial pointer chase across the WHOLE
    // arena. This is what makes gcc's reference input memory-latency
    // bound: each load's value feeds the next address.
    b.movi(17, 0); // chase cursor (byte offset)
    {
        CountedLoop p = begin_reg_loop(11, 7);
        b.add(13, 5, 17);
        b.ld(14, 13, 0);
        b.add(17, 17, 14);
        b.shli(18, 11, 6);
        b.add(17, 17, 18);
        b.andi(17, 17, static_cast<int64_t>(arena_words * 8 - 1));
        b.andi(17, 17, ~7LL);
        endCountedLoop(b, p);
    }

    // Pass 6: register allocation — data-dependent compare/spill.
    b.add(4, 5, 6);
    b.movi(15, 0); // pressure
    {
        CountedLoop p = begin_reg_loop(11, 7);
        b.ld(13, 4, 0);
        b.andi(14, 13, 0xFF);
        Label no_spill = b.newLabel();
        b.slti(18, 14, 128);
        b.bne(18, 0, no_spill); // ~50% spills, data dependent
        b.st(4, 15, 0);
        b.addi(15, 15, 1);
        b.bind(no_spill);
        b.addi(4, 4, 8);
        endCountedLoop(b, p);
    }

    // Pass 7: scheduling — window scan comparing adjacent IR entries.
    b.add(4, 5, 6);
    {
        CountedLoop p = begin_reg_loop(11, 7);
        b.ld(13, 4, 0);
        b.ld(14, 4, 8);
        Label ordered = b.newLabel();
        b.bge(14, 13, ordered);
        b.st(4, 14, 0);
        b.st(4, 13, 8);
        b.bind(ordered);
        b.addi(4, 4, 8);
        endCountedLoop(b, p);
    }

    // Pass 8: emit — sequential object-code stores.
    b.add(4, 5, 6);
    {
        CountedLoop p = begin_reg_loop(11, 7);
        b.add(13, 20, 11);
        b.st(4, 13, 0);
        b.addi(4, 4, 8);
        endCountedLoop(b, p);
    }

    // Next function starts where this one's hot region ended.
    b.shli(13, 7, 3);
    b.add(6, 6, 13);
    b.andi(6, 6, static_cast<int64_t>(arena_words * 8 - 1));
    b.andi(6, 6, ~7LL);

    endCountedLoop(b, fn_loop);

    b.halt();
    return b.finish();
}

} // namespace yasim
