/**
 * @file
 * Synthetic vpr: FPGA placement (simulated annealing) and routing
 * (maze-expansion wavefront).
 *
 * vpr-place's signature is data-dependent accept/reject branches whose
 * predictability *changes over the run* as the annealing temperature
 * drops (early phases accept most swaps, late phases almost none), with
 * random access into a placement grid. vpr-route's signature is
 * breadth-of-wavefront expansion loops with congestion-update branches
 * at roughly 50% and moderate working set.
 */

#include "sim/memory.hh"
#include "workloads/builder_util.hh"
#include "workloads/suite.hh"

namespace yasim {

Program
buildVprPlace(const WorkloadParams &params)
{
    ProgramBuilder b("vpr-place");

    const uint64_t grid_words =
        budgetWords(params.wsBytes / 8, params.targetInsts, 6);
    const uint64_t grid_base = heapBase;

    const Lcg lcg{1, 2, 3};
    lcg.prepare(b, params.seed);
    emitRandomFill(b, grid_base, grid_words, lcg, 4, 9, 10);

    const uint64_t init_cost = grid_words * 6;
    const uint64_t budget =
        params.targetInsts > init_cost ? params.targetInsts - init_cost : 1;
    constexpr int num_phases = 8;
    const uint64_t swaps_per_phase = tripsFor(budget / num_phases, 23);

    b.movi(5, static_cast<int64_t>(grid_base));
    b.movi(13, 0); // accepted-swap counter

    // Annealing schedule: each temperature phase halves the acceptance
    // threshold, so the accept branch drifts from ~always-taken to
    // ~never-taken across phases.
    for (int phase = 0; phase < num_phases; ++phase) {
        b.movi(14, static_cast<int64_t>(0x100000 >> phase)); // threshold
        CountedLoop loop = beginCountedLoop(b, 9, 10, swaps_per_phase);

        // Pick two random cells.
        lcg.step(b);
        lcg.maskedOffset(b, 6, grid_words);
        lcg.step(b);
        lcg.maskedOffset(b, 7, grid_words);
        b.add(6, 6, 5);
        b.add(7, 7, 5);
        b.ld(15, 6, 0);
        b.ld(16, 7, 0);

        // Cost delta from the two occupants.
        b.sub(17, 15, 16);
        b.xor_(18, 15, 16);
        b.andi(17, 17, 0xFFFFF);

        Label reject = b.newLabel();
        b.bge(17, 14, reject); // accept when delta below threshold
        b.st(6, 16, 0);        // swap
        b.st(7, 15, 0);
        b.addi(13, 13, 1);
        b.bind(reject);
        b.add(13, 13, 0); // bookkeeping (keeps the path lengths close)

        endCountedLoop(b, loop);
    }

    b.halt();
    return b.finish();
}

Program
buildVprRoute(const WorkloadParams &params)
{
    ProgramBuilder b("vpr-route");

    const uint64_t node_words =
        budgetWords(params.wsBytes / 8, params.targetInsts, 6);
    const uint64_t cost_base = heapBase;

    const Lcg lcg{1, 2, 3};
    lcg.prepare(b, params.seed);
    emitRandomFill(b, cost_base, node_words, lcg, 4, 9, 10);

    const uint64_t init_cost = node_words * 6;
    const uint64_t budget =
        params.targetInsts > init_cost ? params.targetInsts - init_cost : 1;
    constexpr uint64_t expansions_per_net = 12;
    const uint64_t nets = tripsFor(budget, expansions_per_net * 13 + 10);

    b.movi(5, static_cast<int64_t>(cost_base));
    b.movi(13, 0); // accumulated path cost

    CountedLoop net_loop = beginCountedLoop(b, 9, 10, nets);
    // Random source node for this net.
    lcg.step(b);
    b.shri(6, 1, 11);
    b.andi(6, 6, static_cast<int64_t>(node_words - 1));

    CountedLoop exp_loop = beginCountedLoop(b, 11, 12, expansions_per_net);
    // Neighbour select: wavefront hops through the routing graph.
    b.movi(15, 5);
    b.mul(6, 6, 15);
    b.addi(6, 6, 1);
    b.andi(6, 6, static_cast<int64_t>(node_words - 1));
    b.shli(7, 6, 3);
    b.add(7, 7, 5);
    b.ld(16, 7, 0); // node congestion cost
    b.add(13, 13, 16);

    // Congestion update on ~half the visited nodes (data dependent).
    Label no_update = b.newLabel();
    b.andi(17, 16, 1);
    b.bne(17, 0, no_update);
    b.addi(16, 16, 1);
    b.st(7, 16, 0);
    b.bind(no_update);
    endCountedLoop(b, exp_loop);
    endCountedLoop(b, net_loop);

    b.halt();
    return b.finish();
}

} // namespace yasim
