/**
 * @file
 * Synthetic art: adaptive-resonance-theory neural-network image scanner.
 *
 * Signature reproduced: floating-point dominated, streaming sequential
 * passes over image and weight arrays that overflow the L1 D-cache but
 * mostly fit in the L2 (art is famously L1-thrashing), near-perfectly
 * predictable loop branches, and per-epoch normalization with FP
 * divides.
 */

#include "sim/memory.hh"
#include "workloads/builder_util.hh"
#include "workloads/suite.hh"

namespace yasim {

Program
buildArt(const WorkloadParams &params)
{
    ProgramBuilder b("art");

    const uint64_t image_words =
        budgetWords(params.wsBytes / 8 / 2, params.targetInsts, 26);
    const uint64_t image_base = heapBase;
    const uint64_t weight_base = image_base + image_words * 8;

    const Lcg lcg{1, 2, 3};
    lcg.prepare(b, params.seed);

    // Initialization: fill image and weights with small FP values.
    // (~10 dynamic instructions per element.)
    for (uint64_t region = 0; region < 2; ++region) {
        uint64_t base = region == 0 ? image_base : weight_base;
        b.movi(4, static_cast<int64_t>(base));
        CountedLoop init = beginCountedLoop(b, 9, 10, image_words);
        lcg.step(b);
        b.andi(13, 1, 1023);
        b.addi(13, 13, 1);
        b.fcvt(1, 13);
        b.fst(4, 1, 0);
        b.addi(4, 4, 8);
        endCountedLoop(b, init);
    }

    const uint64_t init_cost = image_words * 2 * 10;
    const uint64_t budget =
        params.targetInsts > init_cost ? params.targetInsts - init_cost : 1;
    // Each epoch: match scan (~7/elem) + weight update (~6/elem).
    const uint64_t epoch_cost = image_words * 13 + 40;
    const uint64_t epochs = tripsFor(budget, epoch_cost);

    b.movi(5, static_cast<int64_t>(image_base));
    b.movi(6, static_cast<int64_t>(weight_base));
    b.movi(13, 999);
    b.fcvt(4, 13); // f4: decay constant numerator
    b.movi(13, 1000);
    b.fcvt(5, 13);
    b.fdiv(4, 4, 5); // f4 = 0.999 decay

    CountedLoop epoch = beginCountedLoop(b, 9, 10, epochs);

    // Match phase: activation = sum(image[i] * weight[i]).
    b.movi(14, 0);
    b.fcvt(6, 14); // f6 = accumulator
    b.movi(7, static_cast<int64_t>(image_base));
    b.movi(8, static_cast<int64_t>(weight_base));
    {
        CountedLoop scan = beginCountedLoop(b, 11, 12, image_words);
        b.fld(1, 7, 0);
        b.fld(2, 8, 0);
        b.fmul(3, 1, 2);
        b.fadd(6, 6, 3);
        b.addi(7, 7, 8);
        b.addi(8, 8, 8);
        endCountedLoop(b, scan);
    }

    // Update phase: weights decay toward the image.
    b.movi(8, static_cast<int64_t>(weight_base));
    {
        CountedLoop upd = beginCountedLoop(b, 11, 12, image_words);
        b.fld(2, 8, 0);
        b.fmul(2, 2, 4);
        b.fst(8, 2, 0);
        b.addi(8, 8, 8);
        endCountedLoop(b, upd);
    }

    // Normalization: one FP divide per epoch (vigilance test).
    b.movi(14, 1);
    b.fcvt(7, 14);
    b.fadd(7, 6, 7);
    b.fdiv(6, 6, 7);

    endCountedLoop(b, epoch);

    b.halt();
    return b.finish();
}

} // namespace yasim
