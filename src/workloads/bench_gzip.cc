/**
 * @file
 * Synthetic gzip: LZ77-style compression.
 *
 * Behavioural signature reproduced: sequential scan over a sliding
 * window, hash-table probes with moderately predictable match branches,
 * a modest working set that mostly lives in the L1/L2, and three
 * deflate/scan/inflate passes that give the program mild phase
 * behaviour. Integer-only, memory-moderate, branch-moderate — gzip is
 * the "well-behaved" benchmark of the suite.
 */

#include "sim/memory.hh"
#include "workloads/builder_util.hh"
#include "workloads/suite.hh"

namespace yasim {

Program
buildGzip(const WorkloadParams &params)
{
    ProgramBuilder b("gzip");

    const uint64_t window_words =
        budgetWords(params.wsBytes / 8 / 2, params.targetInsts, 6);
    const uint64_t hash_words = window_words / 2;
    const uint64_t window_base = heapBase;
    const uint64_t hash_base = window_base + window_words * 8;
    const uint64_t out_base = hash_base + hash_words * 8;

    const Lcg lcg{1, 2, 3};
    lcg.prepare(b, params.seed);

    // Phase 0: read the "file" into the window and clear the hash
    // table (gzip zeroes its hash chains before deflating; skipping
    // this would leave a long first-touch cold transient inside pass 1
    // that the real program does not have).
    emitRandomFill(b, window_base, window_words, lcg, 4, 9, 10);
    b.movi(4, static_cast<int64_t>(hash_base));
    {
        CountedLoop clear = beginCountedLoop(b, 9, 10, hash_words);
        b.st(4, 0, 0);
        b.addi(4, 4, 8);
        endCountedLoop(b, clear);
    }

    // Instruction budget: ~17 dynamic instructions per main-loop trip,
    // split over three passes.
    const uint64_t init_cost = window_words * 6 + hash_words * 4;
    const uint64_t budget =
        params.targetInsts > init_cost ? params.targetInsts - init_cost : 1;
    const uint64_t trips_per_pass = tripsFor(budget / 3, 17);

    // r5 = window base, r6 = hash base, r7 = out base, r8 = out offset.
    b.movi(5, static_cast<int64_t>(window_base));
    b.movi(6, static_cast<int64_t>(hash_base));
    b.movi(7, static_cast<int64_t>(out_base));
    b.movi(8, 0);
    b.movi(13, 0); // match counter

    // Three passes with distinct code (distinct basic blocks) and
    // slightly different hash mixing: deflate, scan, inflate.
    const int64_t hash_consts[3] = {0x9e3779b1, 0x85ebca6b, 0xc2b2ae35};
    for (int pass = 0; pass < 3; ++pass) {
        b.movi(14, hash_consts[pass]);
        CountedLoop loop = beginCountedLoop(b, 9, 10, trips_per_pass);

        // Current window position: (i * 8) & window mask.
        b.shli(4, 9, 3);
        b.andi(4, 4, static_cast<int64_t>(window_words * 8 - 1));
        b.add(4, 4, 5);
        b.ld(15, 4, 0); // w = window[pos]

        // hash = ((w ^ (w >> 13)) * K) masked into the hash table.
        b.shri(16, 15, 13);
        b.xor_(16, 15, 16);
        b.mul(16, 16, 14);
        b.shri(16, 16, 7);
        b.andi(16, 16, static_cast<int64_t>(hash_words - 1));
        b.shli(16, 16, 3);
        b.add(16, 16, 6);
        b.ld(17, 16, 0); // candidate match

        Label no_match = b.newLabel();
        b.bne(17, 15, no_match); // usually taken: no match
        b.addi(13, 13, 1);       // match found
        b.bind(no_match);
        b.st(16, 15, 0); // update hash chain head

        // Every 16th position emits an output token.
        Label no_out = b.newLabel();
        b.andi(18, 9, 15);
        b.bne(18, 0, no_out);
        b.add(19, 7, 8);
        b.st(19, 15, 0);
        b.addi(8, 8, 8);
        b.andi(8, 8, static_cast<int64_t>(window_words * 8 - 1));
        b.bind(no_out);

        endCountedLoop(b, loop);
    }

    b.halt();
    return b.finish();
}

} // namespace yasim
