/**
 * @file
 * The synthetic SPEC-2000-like benchmark suite (Table 2 substitute).
 *
 * SPEC CPU2000 is proprietary, so each of the paper's ten C benchmarks is
 * replaced by a synthetic program written for the yasim ISA that
 * reproduces the published behavioural signature of its namesake: phase
 * structure, working-set size relative to the cache hierarchy, branch
 * predictability, FP/INT mix, and pointer-chasing vs. streaming memory
 * behaviour. Every benchmark has up to six input sets (MinneSPEC
 * small/medium/large plus SPEC test/train/reference) whose working sets
 * and dynamic lengths genuinely differ — e.g. mcf's reference input
 * thrashes the L2 while its reduced inputs are cache-resident, which is
 * the exact property the paper's reduced-input findings hinge on.
 *
 * Instruction budgets are scaled: the reference input of each benchmark
 * is a few million dynamic instructions (configurable), and the paper's
 * technique parameters are interpreted in "scaled M-instructions" of
 * reference_length / 10000 (see DESIGN.md section 5).
 */

#ifndef YASIM_WORKLOADS_SUITE_HH
#define YASIM_WORKLOADS_SUITE_HH

#include <optional>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace yasim {

/** The input-set ladder from Table 2. */
enum class InputSet
{
    Small,     ///< MinneSPEC smred
    Medium,    ///< MinneSPEC mdred
    Large,     ///< MinneSPEC lgred
    Test,      ///< SPEC test
    Train,     ///< SPEC train
    Reference, ///< SPEC reference
};

/** Printable name ("small", ..., "reference"). */
const char *inputSetName(InputSet input);

/** All six input sets, reduced first. */
const std::vector<InputSet> &allInputSets();

/** A built benchmark: program plus provenance. */
struct Workload
{
    std::string benchmark;
    InputSet input = InputSet::Reference;
    /** Table-2-style input label, e.g. "smred.log". */
    std::string label;
    Program program;
};

/** Generation knobs shared by all builders. */
struct SuiteConfig
{
    /** Target dynamic length of every reference input. */
    uint64_t referenceInstructions = 2'000'000;
    /** Data seed (varies synthetic input content, not structure). */
    uint64_t seed = 12345;
};

/** Per-builder parameters derived from SuiteConfig + input set. */
struct WorkloadParams
{
    /** Desired dynamic instruction count (approximate). */
    uint64_t targetInsts = 1'000'000;
    /** Main working-set size in bytes. */
    uint64_t wsBytes = 1 << 20;
    /** Data seed. */
    uint64_t seed = 12345;
};

/** The ten benchmark names in suite order. */
const std::vector<std::string> &benchmarkNames();

/** True when @p benchmark exists in the suite. */
bool isBenchmark(const std::string &benchmark);

/**
 * True when Table 2 provides this benchmark/input combination (the
 * paper's N/A holes are preserved).
 */
bool hasInput(const std::string &benchmark, InputSet input);

/** Table-2-style label for a benchmark/input pair ("" when N/A). */
std::string inputLabel(const std::string &benchmark, InputSet input);

/**
 * Build a workload. fatal()s on unknown benchmarks or N/A inputs.
 */
Workload buildWorkload(const std::string &benchmark, InputSet input,
                       const SuiteConfig &config = SuiteConfig());

/** Input sets available for @p benchmark, in ladder order. */
std::vector<InputSet> availableInputs(const std::string &benchmark);

// Individual builders (one per benchmark, in their own .cc files).
Program buildGzip(const WorkloadParams &params);
Program buildVprPlace(const WorkloadParams &params);
Program buildVprRoute(const WorkloadParams &params);
Program buildGcc(const WorkloadParams &params);
Program buildArt(const WorkloadParams &params);
Program buildMcf(const WorkloadParams &params);
Program buildEquake(const WorkloadParams &params);
Program buildPerlbmk(const WorkloadParams &params);
Program buildVortex(const WorkloadParams &params);
Program buildBzip2(const WorkloadParams &params);

} // namespace yasim

#endif // YASIM_WORKLOADS_SUITE_HH
