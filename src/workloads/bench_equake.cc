/**
 * @file
 * Synthetic equake: earthquake-wave simulation (sparse matrix-vector
 * kernels).
 *
 * Signature reproduced: FP sparse algebra with *indirect* loads — the
 * column-index array is read and its value used as the address of the
 * vector element — banded sparsity, and per-timestep alternation
 * between the SpMV kernel and a vector update (two phase types).
 */

#include <algorithm>

#include "sim/memory.hh"
#include "workloads/builder_util.hh"
#include "workloads/suite.hh"

namespace yasim {

Program
buildEquake(const WorkloadParams &params)
{
    ProgramBuilder b("equake");

    // Thirds: x vector, value array, column-index array.
    const uint64_t n_words =
        budgetWords(params.wsBytes / 8 / 4, params.targetInsts, 40);
    const uint64_t x_base = heapBase;
    const uint64_t val_base = x_base + n_words * 8;
    const uint64_t col_base = val_base + n_words * 8;
    const uint64_t y_base = col_base + n_words * 8;

    const Lcg lcg{1, 2, 3};
    lcg.prepare(b, params.seed);

    // Init: x and vals as FP, cols as banded random indices.
    b.movi(4, static_cast<int64_t>(x_base));
    {
        CountedLoop init = beginCountedLoop(b, 9, 10, n_words * 2);
        lcg.step(b);
        b.andi(13, 1, 255);
        b.addi(13, 13, 1);
        b.fcvt(1, 13);
        b.fst(4, 1, 0);
        b.addi(4, 4, 8);
        endCountedLoop(b, init);
    }
    b.movi(4, static_cast<int64_t>(col_base));
    {
        // col[i] = byte offset of a vector element near row i (banded).
        CountedLoop init = beginCountedLoop(b, 9, 10, n_words);
        lcg.step(b);
        b.andi(13, 1, 511);       // band halfwidth 512 elements
        b.add(13, 13, 9);         // centered on the row
        b.andi(13, 13, static_cast<int64_t>(n_words - 1));
        b.shli(13, 13, 3);
        b.st(4, 13, 0);
        b.addi(4, 4, 8);
        endCountedLoop(b, init);
    }

    const uint64_t init_cost = n_words * 2 * 10 + n_words * 10;
    const uint64_t budget =
        params.targetInsts > init_cost ? params.targetInsts - init_cost : 1;
    constexpr uint64_t nnz_per_row = 6;
    const uint64_t rows = n_words / nnz_per_row;
    // Timestep: SpMV (~11/nnz) + vector update (~6/elem over rows).
    const uint64_t step_cost = rows * nnz_per_row * 11 + rows * 6;
    const uint64_t timesteps = tripsFor(budget, std::max<uint64_t>(step_cost, 1));

    CountedLoop step = beginCountedLoop(b, 9, 10, timesteps);

    // --- SpMV: y[r] = sum_j val[j] * x[col[j]] ---
    b.movi(5, static_cast<int64_t>(col_base));
    b.movi(6, static_cast<int64_t>(val_base));
    b.movi(7, static_cast<int64_t>(y_base));
    b.movi(8, static_cast<int64_t>(x_base));
    {
        CountedLoop row = beginCountedLoop(b, 11, 12, rows);
        b.movi(14, 0);
        b.fcvt(6, 14); // f6 = row accumulator
        for (uint64_t j = 0; j < nnz_per_row; ++j) {
            int64_t disp = static_cast<int64_t>(j * 8);
            b.ld(15, 5, disp);  // column byte offset
            b.add(15, 15, 8);   // &x[col]
            b.fld(1, 15, 0);    // x[col]   (indirect)
            b.fld(2, 6, disp);  // val[j]
            b.fmul(3, 1, 2);
            b.fadd(6, 6, 3);
        }
        b.fst(7, 6, 0);
        b.addi(5, 5, static_cast<int64_t>(nnz_per_row * 8));
        b.addi(6, 6, static_cast<int64_t>(nnz_per_row * 8));
        b.addi(7, 7, 8);
        endCountedLoop(b, row);
    }

    // --- Vector update: x[r] += 0.5 * y[r] ---
    b.movi(14, 1);
    b.fcvt(4, 14);
    b.movi(14, 2);
    b.fcvt(5, 14);
    b.fdiv(4, 4, 5); // f4 = 0.5
    b.movi(7, static_cast<int64_t>(y_base));
    b.movi(8, static_cast<int64_t>(x_base));
    {
        CountedLoop upd = beginCountedLoop(b, 11, 12, rows);
        b.fld(1, 7, 0);
        b.fmul(1, 1, 4);
        b.fld(2, 8, 0);
        b.fadd(2, 2, 1);
        b.fst(8, 2, 0);
        b.addi(7, 7, 8);
        b.addi(8, 8, 8);
        endCountedLoop(b, upd);
    }

    endCountedLoop(b, step);

    b.halt();
    return b.finish();
}

} // namespace yasim
