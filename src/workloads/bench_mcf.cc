/**
 * @file
 * Synthetic mcf: minimum-cost network-flow solver.
 *
 * Signature reproduced: the dominant behaviour is a value-carried
 * pointer chase over a network far larger than any cache for the
 * reference input — each load's result feeds the next effective address,
 * so the run is serialized on main-memory latency and the CPI collapses.
 * The reduced inputs use networks that fit in the L2 (or even the L1),
 * which is exactly why the paper finds reduced-input mcf wildly
 * unrepresentative: the percentage of cycles due to main-memory misses
 * is much larger for reference than for any reduced input. A sequential
 * "pricing" sweep adds a streaming phase, and network arcs are consulted
 * for light integer arithmetic.
 *
 * The chase arena is deliberately *not* initialized: untouched memory
 * reads zero and the next index is derived from (index, loaded value),
 * preserving the serial load-to-address dependence while keeping the
 * initialization cost independent of the (huge) working set — mirroring
 * how mcf mmap()s its arena.
 */

#include "sim/memory.hh"
#include "workloads/builder_util.hh"
#include "workloads/suite.hh"

namespace yasim {

Program
buildMcf(const WorkloadParams &params)
{
    ProgramBuilder b("mcf");

    // Reference-class networks (>= 4 MB) stay unclamped: the chase
    // never revisits, so every access is a main-memory miss no matter
    // the instruction budget — mcf's defining behaviour. Reduced-input
    // networks are sized so the chase sweeps them several times over,
    // i.e. they become cache-resident, which is exactly the
    // unrepresentativeness the paper measures.
    const bool huge_network = params.wsBytes >= (4ULL << 20);
    const uint64_t arena_base = heapBase;
    const uint64_t arc_words =
        budgetWords(4096, params.targetInsts, 30); // small hot arc table
    // The arc table lives far above any possible arena size.
    const uint64_t arc_base = arena_base + (64ULL << 20);

    const Lcg lcg{1, 2, 3};
    lcg.prepare(b, params.seed);
    emitRandomFill(b, arc_base, arc_words, lcg, 4, 9, 10);

    const uint64_t init_cost = arc_words * 6;
    const uint64_t budget =
        params.targetInsts > init_cost ? params.targetInsts - init_cost : 1;
    constexpr int num_iterations = 6; // simplex iterations (phases)
    // Chase step ~14 instructions; pricing sweep ~5 per element. The
    // sweep covers a 16K-element slice at full scale and shrinks with
    // the budget so reduced inputs keep their phase balance.
    const uint64_t per_iter_budget =
        std::max<uint64_t>(budget / num_iterations, 60);
    const uint64_t sweep_elems = std::min<uint64_t>(
        16384, std::max<uint64_t>(per_iter_budget / 10, 32));
    const uint64_t pricing_cost = sweep_elems * 5;
    const uint64_t chase_steps =
        per_iter_budget > pricing_cost
            ? tripsFor(per_iter_budget - pricing_cost, 14)
            : 1;
    const uint64_t chase_total = chase_steps * num_iterations;
    const uint64_t arena_words =
        huge_network
            ? floorPow2(params.wsBytes / 8)
            : floorPow2(std::min(params.wsBytes / 8,
                                 std::max<uint64_t>(chase_total / 3,
                                                    256)));

    b.movi(5, static_cast<int64_t>(arena_base));
    b.movi(6, static_cast<int64_t>(arc_base));
    b.movi(7, 0);  // chase cursor (byte offset)
    b.movi(13, 0); // flow accumulator
    b.movi(15, 2654435761LL); // index mix constant

    for (int iter = 0; iter < num_iterations; ++iter) {
        // --- Phase A: node-potential chase (memory-latency bound). ---
        CountedLoop chase = beginCountedLoop(b, 9, 10, chase_steps);
        // Full-period LCG over word-aligned offsets (a == 1 mod 4, the
        // byte increment is 8 * odd): every arena word is visited once
        // per period, so there is no temporal locality to cache. The
        // loaded value stays in the index dataflow, preserving the
        // load-to-address serial chain mcf is famous for.
        b.add(14, 5, 7);
        b.ld(16, 14, 0); // serial: value feeds the next address
        b.add(7, 7, 16);
        b.mul(7, 7, 15);
        b.addi(7, 7, 0x4F1BCDC8LL); // 8 * 0x9E3779B9 (odd)
        b.andi(7, 7, static_cast<int64_t>(arena_words * 8 - 1));
        b.andi(7, 7, ~7LL);
        // Arc-cost arithmetic on the hot arc table.
        b.shri(17, 7, 9);
        b.andi(17, 17, static_cast<int64_t>(arc_words - 1));
        b.shli(17, 17, 3);
        b.add(17, 17, 6);
        b.ld(18, 17, 0);
        b.add(13, 13, 18);
        endCountedLoop(b, chase);

        // --- Phase B: pricing sweep (streaming) over an arena slice. ---
        b.movi(4, static_cast<int64_t>(arena_base +
                                       (static_cast<uint64_t>(iter) *
                                        sweep_elems * 8) %
                                           (arena_words * 8)));
        CountedLoop sweep = beginCountedLoop(b, 11, 12, sweep_elems);
        b.ld(16, 4, 0);
        b.add(13, 13, 16);
        b.addi(4, 4, 8);
        endCountedLoop(b, sweep);
    }

    b.halt();
    return b.finish();
}

} // namespace yasim
