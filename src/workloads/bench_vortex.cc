/**
 * @file
 * Synthetic vortex: an object-oriented in-memory database.
 *
 * Signature reproduced: hash-bucket lookups followed by short chain
 * walks, a balanced mix of loads and stores with data-dependent found/
 * not-found branches, and six statically distinct "transaction types"
 * executed round-robin, giving vortex the larger instruction footprint
 * (I-cache/BTB pressure) its namesake is known for.
 */

#include "sim/memory.hh"
#include "workloads/builder_util.hh"
#include "workloads/suite.hh"

namespace yasim {

Program
buildVortex(const WorkloadParams &params)
{
    ProgramBuilder b("vortex");

    const uint64_t table_words =
        budgetWords(params.wsBytes / 8, params.targetInsts, 6);
    const uint64_t table_base = heapBase;

    const Lcg lcg{1, 2, 3};
    lcg.prepare(b, params.seed);
    emitRandomFill(b, table_base, table_words, lcg, 4, 9, 10);

    const uint64_t init_cost = table_words * 6;
    const uint64_t budget =
        params.targetInsts > init_cost ? params.targetInsts - init_cost : 1;
    constexpr int transaction_types = 6;
    // One outer trip executes all six transactions, ~21 insts each.
    const uint64_t outer_trips =
        tripsFor(budget, transaction_types * 21 + 2);

    b.movi(5, static_cast<int64_t>(table_base));
    b.movi(13, 0); // found counter

    CountedLoop loop = beginCountedLoop(b, 9, 10, outer_trips);

    // Six transaction types as disjoint static code: each hashes a key
    // with its own multiplier, walks a 3-node chain, and applies its own
    // update rule — same shape, different basic blocks.
    const int64_t mixers[transaction_types] = {
        0x9e3779b1, 0x85ebca6b, 0xc2b2ae35, 0x27d4eb2f,
        0x165667b1, 0x2545f491,
    };
    for (int t = 0; t < transaction_types; ++t) {
        lcg.step(b);
        b.movi(14, mixers[t]);
        b.mul(15, 1, 14); // hash the key
        b.shri(15, 15, 9);
        b.andi(15, 15, static_cast<int64_t>(table_words - 1));
        b.shli(15, 15, 3);
        b.add(15, 15, 5); // bucket address

        Label done = b.newLabel();
        for (int hop = 0; hop < 3; ++hop) {
            b.ld(16, 15, 0); // object header
            b.andi(17, 16, 15);
            b.movi(18, t);
            Label miss = b.newLabel();
            b.bne(17, 18, miss); // type tag match ~1/16
            b.addi(13, 13, 1);
            b.st(15, 16, 0); // touch object (update timestamp)
            b.jmp(done);
            b.bind(miss);
            // Follow the chain: next object derived from the header.
            b.shri(17, 16, 7);
            b.andi(17, 17, static_cast<int64_t>(table_words - 1));
            b.shli(17, 17, 3);
            b.add(15, 17, 5);
        }
        // Not found: insert (store) at the last probed slot.
        b.st(15, 1, 0);
        b.bind(done);
    }

    endCountedLoop(b, loop);

    b.halt();
    return b.finish();
}

} // namespace yasim
