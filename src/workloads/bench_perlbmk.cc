/**
 * @file
 * Synthetic perlbmk: a bytecode-interpreter dispatch loop.
 *
 * Signature reproduced: the dominant behaviour is an 8-way opcode
 * dispatch implemented as a compare-and-branch chain over data-random
 * opcodes — the classic interpreter pattern that defeats direction
 * predictors — followed by small per-opcode handlers that hit a tiny
 * operand stack. Branch-dominated, high mispredict rate, small working
 * set.
 */

#include "sim/memory.hh"
#include "workloads/builder_util.hh"
#include "workloads/suite.hh"

namespace yasim {

Program
buildPerlbmk(const WorkloadParams &params)
{
    ProgramBuilder b("perlbmk");

    const uint64_t code_words =
        budgetWords(params.wsBytes / 8, params.targetInsts, 6);
    const uint64_t code_base = heapBase;
    const uint64_t stack_words = 256;
    const uint64_t stack_base = code_base + code_words * 8;

    const Lcg lcg{1, 2, 3};
    lcg.prepare(b, params.seed);
    emitRandomFill(b, code_base, code_words, lcg, 4, 9, 10);

    const uint64_t init_cost = code_words * 6;
    const uint64_t budget =
        params.targetInsts > init_cost ? params.targetInsts - init_cost : 1;
    const uint64_t dispatches = tripsFor(budget, 15);

    b.movi(5, static_cast<int64_t>(code_base));
    b.movi(6, static_cast<int64_t>(stack_base));
    b.movi(7, 0);  // instruction pointer (byte offset)
    b.movi(8, 0);  // stack pointer (byte offset)
    b.movi(13, 0); // virtual accumulator

    CountedLoop loop = beginCountedLoop(b, 9, 10, dispatches);

    // Fetch the next virtual opcode.
    b.add(14, 5, 7);
    b.ld(15, 14, 0);
    b.addi(7, 7, 8);
    b.andi(7, 7, static_cast<int64_t>(code_words * 8 - 1));
    b.andi(15, 15, 7); // 8 opcodes

    Label next = b.newLabel();
    Label handlers[8];
    for (auto &h : handlers)
        h = b.newLabel();

    // Dispatch: compare-and-branch chain (the mispredict machine).
    for (int op = 0; op < 7; ++op) {
        b.movi(16, op);
        b.beq(15, 16, handlers[op]);
    }
    b.jmp(handlers[7]);

    // Handlers: each a small distinct block ending in a jump back.
    b.bind(handlers[0]); // ADD
    b.addi(13, 13, 3);
    b.jmp(next);

    b.bind(handlers[1]); // MUL
    b.movi(17, 5);
    b.mul(13, 13, 17);
    b.jmp(next);

    b.bind(handlers[2]); // LOAD local
    b.andi(17, 13, static_cast<int64_t>(stack_words - 1));
    b.shli(17, 17, 3);
    b.add(17, 17, 6);
    b.ld(13, 17, 0);
    b.jmp(next);

    b.bind(handlers[3]); // STORE local
    b.andi(17, 13, static_cast<int64_t>(stack_words - 1));
    b.shli(17, 17, 3);
    b.add(17, 17, 6);
    b.st(17, 13, 0);
    b.jmp(next);

    b.bind(handlers[4]); // SUB
    b.addi(13, 13, -1);
    b.jmp(next);

    b.bind(handlers[5]); // XOR/SHIFT hash op
    b.shri(17, 13, 3);
    b.xor_(13, 13, 17);
    b.jmp(next);

    b.bind(handlers[6]); // PUSH
    b.add(17, 6, 8);
    b.st(17, 13, 0);
    b.addi(8, 8, 8);
    b.andi(8, 8, static_cast<int64_t>(stack_words * 8 - 1));
    b.jmp(next);

    b.bind(handlers[7]); // POP
    b.addi(8, 8, -8);
    b.andi(8, 8, static_cast<int64_t>(stack_words * 8 - 1));
    b.add(17, 6, 8);
    b.ld(13, 17, 0);
    b.bind(next);

    endCountedLoop(b, loop);

    b.halt();
    return b.finish();
}

} // namespace yasim
