/**
 * @file
 * Shared code-generation helpers for the benchmark builders.
 *
 * Every builder emits three kinds of constructs over and over: an
 * in-register linear congruential generator (data-dependent values and
 * "random" indices computed by the *simulated* program), counted loops,
 * and array-initialization loops. These helpers keep the builders
 * readable and their instruction counts predictable.
 */

#ifndef YASIM_WORKLOADS_BUILDER_UTIL_HH
#define YASIM_WORKLOADS_BUILDER_UTIL_HH

#include <cstdint>

#include "isa/program_builder.hh"

namespace yasim {

/**
 * An in-program PRNG: an LCG followed by an xorshift output mix. The
 * mix matters: a power-of-two-modulus LCG has short-period low bits, so
 * without it any branch keyed on low bits of "random" data is trivially
 * learnable by a history predictor. Each step() costs one IntMult and
 * three IntAlu operations.
 */
struct Lcg
{
    /** Register holding the evolving value. */
    int value;
    /** Register holding the multiplier constant. */
    int mulReg;
    /** Register holding the increment constant. */
    int addReg;
    /** Scratch register for the output mix. */
    int tmpReg = 28;

    /** Load the constants and seed the value register. */
    void prepare(ProgramBuilder &b, uint64_t seed) const;

    /** Advance: value = mix(value * mul + add). */
    void step(ProgramBuilder &b) const;

    /**
     * Derive a masked array *byte* offset into @p dst: dst holds
     * ((value >> 11) & (words - 1)) * 8. @pre words is a power of two.
     */
    void maskedOffset(ProgramBuilder &b, int dst, uint64_t words) const;
};

/** A counted up-loop under construction. */
struct CountedLoop
{
    Label top;
    int counterReg;
    int limitReg;
};

/**
 * Begin `for (counter = 0; counter < trips; ++counter)`. The limit is
 * materialized into @p limit_reg. Loops with zero trips still execute
 * once (do-while shape) — pass trips >= 1.
 */
CountedLoop beginCountedLoop(ProgramBuilder &b, int counter_reg,
                             int limit_reg, uint64_t trips);

/** Close the loop: increment, compare, branch to the top. */
void endCountedLoop(ProgramBuilder &b, const CountedLoop &loop);

/**
 * Emit an initialization loop storing LCG-derived values to
 * words consecutive 8-byte words at @p base. Costs ~6 dynamic
 * instructions per word. Registers addr/cnt/limit are scratch.
 */
void emitRandomFill(ProgramBuilder &b, uint64_t base, uint64_t words,
                    const Lcg &lcg, int addr_reg, int cnt_reg,
                    int limit_reg);

/** Round @p v down to a power of two (minimum 1). */
uint64_t floorPow2(uint64_t v);

/**
 * Clamp a requested array size (in words) to what the instruction
 * budget affords: initializing and minimally traversing the array at
 * @p per_word_cost dynamic instructions per word must not consume more
 * than ~a quarter of @p budget_insts. Result is a power of two, at
 * least 256 words, so cache-index masks stay valid.
 */
uint64_t budgetWords(uint64_t requested_words, uint64_t budget_insts,
                     uint64_t per_word_cost);

/** Compute loop trips for a target dynamic length. Never below 1. */
uint64_t tripsFor(uint64_t target_insts, uint64_t insts_per_trip);

} // namespace yasim

#endif // YASIM_WORKLOADS_BUILDER_UTIL_HH
