#include "workloads/builder_util.hh"

#include <algorithm>

#include "support/logging.hh"

namespace yasim {

void
Lcg::prepare(ProgramBuilder &b, uint64_t seed) const
{
    b.movi(value, static_cast<int64_t>(seed | 1));
    b.movi(mulReg, static_cast<int64_t>(6364136223846793005ULL));
    b.movi(addReg, static_cast<int64_t>(1442695040888963407ULL));
}

void
Lcg::step(ProgramBuilder &b) const
{
    b.mul(value, value, mulReg);
    b.add(value, value, addReg);
    b.shri(tmpReg, value, 29);
    b.xor_(value, value, tmpReg);
}

void
Lcg::maskedOffset(ProgramBuilder &b, int dst, uint64_t words) const
{
    YASIM_ASSERT(words != 0 && (words & (words - 1)) == 0);
    b.shri(dst, value, 11);
    b.andi(dst, dst, static_cast<int64_t>(words - 1));
    b.shli(dst, dst, 3);
}

CountedLoop
beginCountedLoop(ProgramBuilder &b, int counter_reg, int limit_reg,
                 uint64_t trips)
{
    YASIM_ASSERT(trips >= 1);
    CountedLoop loop{b.newLabel(), counter_reg, limit_reg};
    b.movi(counter_reg, 0);
    b.movi(limit_reg, static_cast<int64_t>(trips));
    b.bind(loop.top);
    return loop;
}

void
endCountedLoop(ProgramBuilder &b, const CountedLoop &loop)
{
    b.addi(loop.counterReg, loop.counterReg, 1);
    b.blt(loop.counterReg, loop.limitReg, loop.top);
}

void
emitRandomFill(ProgramBuilder &b, uint64_t base, uint64_t words,
               const Lcg &lcg, int addr_reg, int cnt_reg, int limit_reg)
{
    YASIM_ASSERT(words >= 1);
    b.movi(addr_reg, static_cast<int64_t>(base));
    CountedLoop loop = beginCountedLoop(b, cnt_reg, limit_reg, words);
    lcg.step(b);
    b.st(addr_reg, lcg.value, 0);
    b.addi(addr_reg, addr_reg, 8);
    endCountedLoop(b, loop);
}

uint64_t
floorPow2(uint64_t v)
{
    uint64_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

uint64_t
budgetWords(uint64_t requested_words, uint64_t budget_insts,
            uint64_t per_word_cost)
{
    YASIM_ASSERT(per_word_cost >= 1);
    uint64_t affordable = budget_insts / (4 * per_word_cost);
    uint64_t words = std::min(requested_words,
                              std::max<uint64_t>(affordable, 256));
    return floorPow2(words);
}

uint64_t
tripsFor(uint64_t target_insts, uint64_t insts_per_trip)
{
    YASIM_ASSERT(insts_per_trip >= 1);
    uint64_t trips = target_insts / insts_per_trip;
    return trips >= 1 ? trips : 1;
}

} // namespace yasim
