#include "workloads/suite.hh"

#include <array>
#include <map>

#include "support/logging.hh"

namespace yasim {

const char *
inputSetName(InputSet input)
{
    switch (input) {
      case InputSet::Small: return "small";
      case InputSet::Medium: return "medium";
      case InputSet::Large: return "large";
      case InputSet::Test: return "test";
      case InputSet::Train: return "train";
      case InputSet::Reference: return "reference";
    }
    return "?";
}

const std::vector<InputSet> &
allInputSets()
{
    static const std::vector<InputSet> sets = {
        InputSet::Small, InputSet::Medium, InputSet::Large,
        InputSet::Test, InputSet::Train, InputSet::Reference,
    };
    return sets;
}

namespace {

using BuildFn = Program (*)(const WorkloadParams &);

/** One available input set: Table-2 label, length, working set. */
struct InputSpec
{
    const char *label;
    /** Dynamic length as a fraction of the reference input's. */
    double relLength;
    /** Working set in KB. */
    uint64_t wsKb;
};

struct BenchSpec
{
    const char *name;
    BuildFn build;
    std::map<InputSet, InputSpec> inputs;
};

/**
 * The suite table. Length fractions follow the MinneSPEC design goals
 * (small ~ minutes, large ~ a few percent of reference) and Table 2's
 * N/A holes are preserved. Working sets are sized against the
 * configuration space's caches: reference mcf exceeds every L2, while
 * its reduced inputs are cache-resident.
 */
const std::vector<BenchSpec> &
suiteTable()
{
    using I = InputSet;
    static const std::vector<BenchSpec> table = {
        {"gzip", &buildGzip,
         {{I::Small, {"smred.log", 0.006, 32}},
          {I::Medium, {"mdred.log", 0.02, 64}},
          {I::Large, {"lgred.log", 0.06, 128}},
          {I::Test, {"test.combined", 0.10, 192}},
          {I::Train, {"train.combined", 0.30, 256}},
          {I::Reference, {"ref.log", 1.0, 512}}}},
        {"vpr-place", &buildVprPlace,
         {{I::Small, {"smred.net", 0.006, 16}},
          {I::Medium, {"mdred.net", 0.02, 32}},
          {I::Test, {"test.net", 0.10, 96}},
          {I::Train, {"train.net", 0.30, 160}},
          {I::Reference, {"ref.net", 1.0, 512}}}},
        {"vpr-route", &buildVprRoute,
         {{I::Small, {"small.arch.in", 0.006, 16}},
          {I::Medium, {"small.arch.in", 0.02, 32}},
          {I::Large, {"small.arch.in", 0.06, 64}},
          {I::Test, {"train.arch.in", 0.10, 96}},
          {I::Train, {"train.arch.in", 0.30, 160}},
          {I::Reference, {"ref.arch.in", 1.0, 512}}}},
        {"gcc", &buildGcc,
         {{I::Small, {"smred.c-iterate.i", 0.008, 64}},
          {I::Medium, {"mdred.rtlanal.i", 0.02, 128}},
          {I::Test, {"cccp.i", 0.10, 256}},
          {I::Train, {"cp-decl.i", 0.30, 512}},
          {I::Reference, {"166.i", 1.0, 2048}}}},
        {"art", &buildArt,
         {{I::Large, {"lgred", 0.06, 128}},
          {I::Test, {"test", 0.10, 256}},
          {I::Train, {"train", 0.30, 512}},
          {I::Reference, {"-startx 110", 1.0, 2048}}}},
        {"mcf", &buildMcf,
         {{I::Small, {"smred.in", 0.006, 64}},
          {I::Large, {"lgred.in", 0.06, 256}},
          {I::Test, {"test.in", 0.10, 512}},
          {I::Train, {"train.in", 0.30, 1024}},
          {I::Reference, {"ref.in", 1.0, 8192}}}},
        {"equake", &buildEquake,
         {{I::Large, {"lgred.in", 0.06, 128}},
          {I::Test, {"test.in", 0.10, 256}},
          {I::Train, {"train.in", 0.30, 512}},
          {I::Reference, {"ref.in", 1.0, 2048}}}},
        {"perlbmk", &buildPerlbmk,
         {{I::Small, {"smred.makerand", 0.006, 16}},
          {I::Medium, {"mdred.makerand", 0.02, 32}},
          {I::Train, {"scrabbl", 0.30, 64}},
          {I::Reference, {"diffmail", 1.0, 256}}}},
        {"vortex", &buildVortex,
         {{I::Small, {"smred.raw", 0.006, 32}},
          {I::Medium, {"mdred.raw", 0.02, 64}},
          {I::Large, {"lgred.raw", 0.06, 128}},
          {I::Test, {"test.raw", 0.10, 256}},
          {I::Train, {"train.raw", 0.30, 512}},
          {I::Reference, {"lendian1.raw", 1.0, 2048}}}},
        {"bzip2", &buildBzip2,
         {{I::Large, {"lgred.source", 0.06, 128}},
          {I::Test, {"test.random", 0.10, 256}},
          {I::Train, {"train.compressed", 0.30, 512}},
          {I::Reference, {"ref.source", 1.0, 2048}}}},
    };
    return table;
}

const BenchSpec *
findBench(const std::string &name)
{
    for (const BenchSpec &spec : suiteTable())
        if (name == spec.name)
            return &spec;
    return nullptr;
}

} // namespace

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const BenchSpec &spec : suiteTable())
            out.emplace_back(spec.name);
        return out;
    }();
    return names;
}

bool
isBenchmark(const std::string &benchmark)
{
    return findBench(benchmark) != nullptr;
}

bool
hasInput(const std::string &benchmark, InputSet input)
{
    const BenchSpec *spec = findBench(benchmark);
    return spec && spec->inputs.count(input) > 0;
}

std::string
inputLabel(const std::string &benchmark, InputSet input)
{
    const BenchSpec *spec = findBench(benchmark);
    if (!spec)
        return "";
    auto it = spec->inputs.find(input);
    return it == spec->inputs.end() ? "" : it->second.label;
}

std::vector<InputSet>
availableInputs(const std::string &benchmark)
{
    std::vector<InputSet> available;
    const BenchSpec *spec = findBench(benchmark);
    if (!spec)
        return available;
    for (InputSet input : allInputSets())
        if (spec->inputs.count(input))
            available.push_back(input);
    return available;
}

Workload
buildWorkload(const std::string &benchmark, InputSet input,
              const SuiteConfig &config)
{
    const BenchSpec *spec = findBench(benchmark);
    if (!spec)
        fatal("unknown benchmark '%s'", benchmark.c_str());
    auto it = spec->inputs.find(input);
    if (it == spec->inputs.end()) {
        fatal("benchmark '%s' has no %s input set (N/A in Table 2)",
              benchmark.c_str(), inputSetName(input));
    }
    const InputSpec &in = it->second;

    WorkloadParams params;
    params.targetInsts = static_cast<uint64_t>(
        in.relLength * static_cast<double>(config.referenceInstructions));
    if (params.targetInsts < 10000)
        params.targetInsts = 10000;
    params.wsBytes = in.wsKb * 1024;
    params.seed = config.seed ^ (std::hash<std::string>{}(benchmark) |
                                 (static_cast<uint64_t>(input) << 56));

    return Workload{benchmark, input, in.label, spec->build(params)};
}

} // namespace yasim
