/**
 * @file
 * Live-points: random-access entry states for sampled simulation.
 *
 * A live-point is the self-contained state one measurement unit of a
 * sampling technique needs — nothing more. Where a Checkpoint carries
 * the complete architectural state (every touched memory word), a
 * live-point carries only the *unit-relevant* slice, following
 * TurboSMARTSim's liblvpt:
 *
 *  - the register file, PC, and dynamic position at the unit's
 *    warm-up start,
 *  - the memory words the unit's own U+W instruction span *loads
 *    before storing* — everything the span stores first it will
 *    regenerate itself, so the pre-span values of those words are
 *    irrelevant and are not captured,
 *  - the warmed-microarchitecture summary (cache tags, TLBs,
 *    predictor tables) produced by functional warming of the whole
 *    prefix, reusing the Checkpoint v3 warm-blob layout
 *    (uarch/warm_state.hh).
 *
 * Restoring a live-point into a fresh FunctionalSim + OooCore
 * reproduces the unit's instruction stream and warm state bit-exactly,
 * so units become independent, embarrassingly-parallel jobs: the CPIs,
 * counters, and profiles a fanned-out SMARTS run computes are
 * byte-identical to a serial loop over the same units.
 *
 * A LivePointLibrary owns every point of one (program, sampling plan,
 * warm-geometry configuration): it builds missing points in a single
 * resumable functional-warming pass, persists each one as a framed,
 * varint/RLE-compressed artifact (support/artifact_io, support/codec)
 * under the engine cache, and serves random-access loads. On-disk
 * points affect wall-clock only — never results and never modeled
 * cost (the same contract as sharded warm summaries).
 *
 * In replay mode (an ExecTrace is available) architectural state lives
 * in the trace and the replayer seeks in O(1), so points carry only
 * the warm summary; in live mode they carry both.
 */

#ifndef YASIM_SIM_LIVEPOINT_HH
#define YASIM_SIM_LIVEPOINT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "support/cancel.hh"

namespace yasim {

class ExecTrace;
struct ExecRecord;
class FunctionalSim;
class MemoryHierarchy;
class CombinedPredictor;
class Program;
class StepSource;

/**
 * Binary layout version of LivePoint::encode. Bumped whenever the
 * serialized field set, ordering, or compression changes; decode
 * rejects mismatches and readers treat stale files as misses.
 */
// yasim-lint: version(livepoint)
constexpr uint32_t kLivePointFormatVersion = 1;

/** Live-point knobs, carried from the driver down to the techniques. */
struct LivePointOptions
{
    /**
     * Use the live-point library for sampled simulation: persisted
     * points plus a parallel measurement fan-out (--no-livepoints
     * falls back to the serial in-memory loop). Results are
     * bit-identical either way — the per-unit math is shared — so
     * this knob is deliberately absent from the result cache key.
     */
    // yasim-lint: key-exempt(result: results bit-identical either way)
    bool enabled = true;
    /**
     * Directory for persisted live-points; "" keeps the library
     * in-memory only. Points are themselves keyed (libraryKey), so
     * where they live cannot change any measured statistic.
     */
    // yasim-lint: key-exempt(result: changes wall-clock only)
    std::string dir;
};

/**
 * The systematic sampling grid: maxUnits measurement units of
 * unitInsts instructions, each preceded by warmupInsts of detailed
 * warm-up, spaced period instructions apart over a run of length
 * instructions. Escalation selects every 2^k-th unit of the grid, so
 * a denser selection is always a superset of a sparser one and
 * already-measured units are reused verbatim.
 */
struct SamplingPlan
{
    uint64_t unitInsts = 0;
    uint64_t warmupInsts = 0;
    uint64_t length = 0;
    /** Grid spacing (>= span() except for single-unit runs). */
    uint64_t period = 0;
    /** Units on the grid (>= 1). */
    uint64_t maxUnits = 0;

    /**
     * Lay the grid over a run of @p length instructions. Applies the
     * SMARTS warm-up degrade rule first: a warm-up that would swallow
     * the run shrinks to leave room for at least one measured unit.
     */
    static SamplingPlan make(uint64_t unit_insts, uint64_t warmup_insts,
                             uint64_t length);

    /** Detailed instructions per unit (warm-up + measured). */
    uint64_t span() const { return unitInsts + warmupInsts; }

    /** Dynamic position where unit @p j's detailed warm-up begins. */
    uint64_t warmStart(uint64_t j) const
    {
        uint64_t gap = period > span() ? period - span() : 0;
        return j * period + gap;
    }

    /** Dynamic position where unit @p j's measured region begins. */
    uint64_t unitStart(uint64_t j) const
    {
        return warmStart(j) + warmupInsts;
    }

    /**
     * The largest power-of-two grid stride that still yields at least
     * min(@p n, maxUnits) units. Strides halve as n grows, so every
     * selection contains all sparser selections.
     */
    uint64_t strideFor(uint64_t n) const;

    /** Ascending unit indices {0, s, 2s, ...} for stride strideFor(n). */
    std::vector<uint64_t> indicesFor(uint64_t n) const;
};

/** Monotonic live-point library counters. */
struct LivePointCounters
{
    /** Points captured by a warming/execution pass. */
    uint64_t built = 0;
    /** Requests served from the in-memory set. */
    uint64_t hits = 0;
    uint64_t diskLoads = 0;
    uint64_t diskWrites = 0;
    /** Files that failed frame/payload/warm-blob verification and
     *  were quarantined to "<file>.corrupt", then rebuilt. */
    uint64_t quarantined = 0;
    /** Files written by another live-point format generation: deleted
     *  as stale (no quarantine) and rebuilt. Counted separately from
     *  quarantined so version churn never reads as corruption. */
    uint64_t versionMisses = 0;
    /** Transient-I/O retries performed by reads and writes. */
    uint64_t ioRetries = 0;
};

/** One unit's entry state. See the file comment for what's inside. */
class LivePoint
{
  public:
    LivePoint() = default;

    /**
     * A warm-only carrier at dynamic position @p position — the replay
     *-mode shape, where architectural state lives in the trace.
     */
    static LivePoint atPosition(uint64_t position);

    /**
     * Capture @p sim's registers, PC, and position. Memory words are
     * *not* captured here: the library adds the unit-relevant slice
     * via noteWord() while walking the unit's span.
     */
    static LivePoint captureArch(const FunctionalSim &sim);

    /**
     * Record the pre-span value of one memory word the unit loads
     * before storing. Words must arrive in first-access order; zero
     * values are skipped (restoring into zeroed memory is a no-op).
     */
    void noteWord(uint64_t addr, int64_t value);

    /**
     * Restore registers, PC, position, and the captured word slice
     * into @p sim (fresh, same program). Requires hasArchState().
     * Words the span stores before loading are deliberately absent:
     * the span itself recreates them, so the replayed stream is
     * bit-identical to the original run's.
     */
    void restoreArch(FunctionalSim &sim) const;

    /** True when registers/PC were captured (live-mode point). */
    bool hasArchState() const { return !intRegs.empty(); }

    /** Attach the warmed-uarch summary of @p mem and @p bp under
     *  identity @p key (same contract as Checkpoint::attachUarch). */
    void attachUarch(const MemoryHierarchy &mem,
                     const CombinedPredictor &bp, const std::string &key);

    /** True when a warmed-uarch summary is attached. */
    bool hasUarch() const { return !warmBlob.empty(); }

    /** Identity key of the attached summary ("" when none). */
    const std::string &uarchKey() const { return warmKey; }

    /**
     * Restore the attached warm summary into @p mem and @p bp.
     * @return false when none is attached, @p key mismatches, or the
     * blob fails structural validation — the tables are then partially
     * mutated and must be discarded (rebuild the core).
     */
    bool restoreUarch(MemoryHierarchy &mem, CombinedPredictor &bp,
                      const std::string &key) const;

    /** Dynamic instruction position of this point. */
    uint64_t position() const { return icount; }

    /** Captured memory words (diagnostics and tests). */
    size_t wordCount() const { return words.size(); }

    /** Approximate in-memory footprint in bytes. */
    size_t footprintBytes() const;

    /**
     * Serialize to the compressed binary payload saveFile() frames:
     * varint/zigzag-delta encoded architectural slice plus the
     * RLE-compressed warm blob (support/codec).
     */
    std::string encode() const;

    /** Inverse of encode(). @return false on any structural defect. */
    static bool decode(std::string_view payload, LivePoint &out);

    /**
     * Persist as a standalone file: the encode() payload framed,
     * checksummed, and atomically published through
     * support/artifact_io. Never throws.
     */
    bool saveFile(const std::string &path,
                  LivePointCounters *ctr = nullptr) const;

    /**
     * Load a live-point persisted by saveFile. Corruption at any
     * layer quarantines the file to "<path>.corrupt" and returns
     * false; a cleanly-framed stale format version deletes the file
     * (a miss, not rot). @p ctr, when non-null, receives the
     * disk/quarantine/version accounting.
     */
    static bool loadFile(const std::string &path, LivePoint &out,
                         LivePointCounters *ctr = nullptr);

    /**
     * Execute one instruction of @p sim while functionally warming
     * @p mem / @p bp *and* producing @p record — the combined mode the
     * library's span walk needs (public step() does not warm; public
     * fastForwardWarm() yields no record). Exposed through LivePoint
     * because it is the friend seam into FunctionalSim.
     * @return false when @p sim was already halted.
     */
    static bool stepWarm(FunctionalSim &sim, ExecRecord &record,
                         MemoryHierarchy *mem, CombinedPredictor *bp);

  private:
    uint64_t pc = 0;
    uint64_t icount = 0;
    bool halted = false;
    std::vector<int64_t> intRegs;
    std::vector<double> fpRegs;
    /** Unit-relevant word slice (addr -> pre-span value), in
     *  first-access order; addresses are 8-byte aligned. */
    std::vector<std::pair<uint64_t, int64_t>> words;

    /** Identity key of the optional warm summary ("" = none). */
    std::string warmKey;
    /** Composite warm-state blob (uarch/warm_state.hh layout). */
    std::string warmBlob;
};

/**
 * Every live-point of one (program, sampling plan, warm-geometry
 * configuration), built on demand and measured in parallel.
 *
 * Thread-compatible, not thread-safe: ensure() runs on the caller;
 * measureUnits() fans read-only work across the global pool.
 */
class LivePointLibrary
{
  public:
    /**
     * Replay-mode library over a recorded trace: points are warm-only
     * and workers seek private replayer cursors. @p config contributes
     * only its warm-relevant geometry to the identity key.
     */
    LivePointLibrary(std::shared_ptr<const ExecTrace> trace,
                     const SamplingPlan &plan, const SimConfig &config,
                     const LivePointOptions &options);

    /**
     * Live-mode library over @p program (which must outlive the
     * library): points carry the architectural slice too.
     */
    LivePointLibrary(const Program &program, const SamplingPlan &plan,
                     const SimConfig &config,
                     const LivePointOptions &options);

    LivePointLibrary(const LivePointLibrary &) = delete;
    LivePointLibrary &operator=(const LivePointLibrary &) = delete;

    /**
     * Make every point in @p indices (ascending grid indices) resident
     * in memory: from the in-memory set, from disk (any verification
     * failure quarantines and falls through to a rebuild), or by
     * extending one resumable functional-warming pass from the nearest
     * preceding resident point. Newly built points persist to
     * options.dir when set.
     *
     * @return the *modeled* functional-warming instructions this call
     * charges: the pass-extension the plan implies, deliberately
     * independent of how many points disk served (wall-clock may be
     * far cheaper; modeled cost and results never depend on cache
     * state).
     *
     * A valid cancelled @p cancel token aborts between bounded warming
     * chunks by throwing CancelledError carrying the instructions
     * actually warmed; completed points persist (atomically), partial
     * ones never do.
     */
    uint64_t ensure(const std::vector<uint64_t> &indices,
                    const CancelToken &cancel = CancelToken());

    /** The resident point for grid index @p j (nullptr when absent). */
    const LivePoint *at(uint64_t index) const;

    /** What measuring one unit produced. */
    struct UnitResult
    {
        uint64_t index = 0;
        /** False when the unit lies entirely past program end. */
        bool measured = false;
        /** Snapshot-delta statistics of the measured region. */
        SimStats stats;
        uint64_t warmupDone = 0;
        uint64_t unitDone = 0;
        std::vector<double> bbef;
        std::vector<double> bbv;
    };

    /**
     * Measure the units in @p indices independently — each worker gets
     * a fresh core, restores the unit's warm summary (and, live, its
     * architectural slice), runs the detailed warm-up, and measures
     * the unit as a snapshot delta. Results come back in @p indices
     * order regardless of scheduling, and every per-unit value is
     * bit-identical between @p parallel true and false (the fan-out is
     * the only difference).
     *
     * All requested points must be resident (ensure() first). On
     * cancellation the call throws CancelledError instead of
     * returning partially-measured units.
     */
    std::vector<UnitResult>
    measureUnits(const std::vector<uint64_t> &indices, bool parallel,
                 const CancelToken &cancel = CancelToken()) const;

    const SamplingPlan &plan() const { return gridPlan; }

    /**
     * Human-readable identity of this library — the "livepoints{...}"
     * cache-key segment naming the format version, plan geometry, and
     * warm-relevant configuration digest. Point files and warm-blob
     * keys both derive from it.
     */
    const std::string &keyText() const { return key; }

    /** On-disk path of point @p index ("" when dir is unset). */
    std::string pointPath(uint64_t index) const;

    /** Snapshot of the counters. */
    const LivePointCounters &counters() const { return ctr; }

  private:
    const Program &libraryProgram() const;
    std::string pointKey(uint64_t index) const;
    /** Load-and-verify one point from disk into the resident set. */
    bool loadPoint(uint64_t index);
    /** Extend the warming pass to build @p missing (ascending). */
    void buildPoints(const std::vector<uint64_t> &missing,
                     const CancelToken &cancel);

    std::shared_ptr<const ExecTrace> trace; ///< replay mode when set
    const Program *prog = nullptr;          ///< live mode when set
    SamplingPlan gridPlan;
    SimConfig cfg;
    LivePointOptions opts;
    std::string key;
    std::string fileDigest;
    std::map<uint64_t, LivePoint> points;
    /** Grid position the modeled warming charge has reached. */
    uint64_t chargedTo = 0;
    LivePointCounters ctr;
};

/**
 * Drop-in replacement for src.fastForward(@p count) ahead of a
 * detailed region of @p span_insts instructions: when @p src is a
 * live FunctionalSim at position zero and @p options enable
 * persistence, the jump is served from (or captured into) an
 * architectural live-point keyed by program content and position
 * alone — configuration-independent, so one file serves a whole
 * configuration sweep. The returned count and every subsequent
 * record of the stream are bit-identical to the plain call; replay
 * sources (O(1) seek already) and mid-stream sims fall through
 * untouched.
 */
uint64_t fastForwardDetailedRegion(StepSource &src, uint64_t count,
                                   uint64_t span_insts,
                                   const LivePointOptions &options,
                                   LivePointCounters *ctr = nullptr);

} // namespace yasim

#endif // YASIM_SIM_LIVEPOINT_HH
