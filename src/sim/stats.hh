/**
 * @file
 * Aggregated simulation statistics.
 *
 * A SimStats is a value-type snapshot of everything the characterizations
 * consume: cycle and instruction counts (CPI/IPC), branch-predictor
 * accuracy, and cache hit rates. Snapshots subtract, so sampling
 * techniques measure a region as snapshot(end) - snapshot(begin).
 */

#ifndef YASIM_SIM_STATS_HH
#define YASIM_SIM_STATS_HH

#include <cstdint>
#include <vector>

namespace yasim {

/** Value-type statistics snapshot. */
struct SimStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;

    uint64_t condBranches = 0;
    uint64_t condMispredicts = 0;

    uint64_t l1iAccesses = 0;
    uint64_t l1iMisses = 0;
    uint64_t l1dAccesses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l2Accesses = 0;
    uint64_t l2Misses = 0;

    uint64_t trivialOps = 0;
    uint64_t prefetchesIssued = 0;

    /**
     * Commit-stall cycles attributed to loads that missed the L1
     * (bounded by each load's extra memory latency). The paper's
     * "percentage of cycles due to cache misses serviced by main
     * memory" — the statistic behind the mcf reduced-input finding.
     */
    uint64_t memStallCycles = 0;

    /** Cycles per instruction. */
    double cpi() const;
    /** Instructions per cycle. */
    double ipc() const;
    /** Conditional branch direction accuracy in [0, 1]. */
    double branchAccuracy() const;
    double l1iHitRate() const;
    double l1dHitRate() const;
    double l2HitRate() const;
    /** Fraction of all cycles stalled on post-L1 memory latency. */
    double memStallFraction() const;

    /**
     * The architecture-level characterization vector in the paper's
     * order: {IPC, branch prediction accuracy, L1-D hit rate, L2 hit
     * rate}.
     */
    std::vector<double> metricVector() const;

    /** Region statistics: end-snapshot minus begin-snapshot. */
    SimStats operator-(const SimStats &earlier) const;
    SimStats &operator+=(const SimStats &other);
};

/**
 * Deterministically stitch per-shard region statistics into whole-run
 * statistics: the counters sum in shard-index order. All fields are
 * integral, so the stitch is exact and order-independent in value —
 * the fixed order matters only as a statement of the contract (and
 * keeps any future non-commutative field honest).
 */
SimStats stitchStats(const std::vector<SimStats> &shards);

} // namespace yasim

#endif // YASIM_SIM_STATS_HH
