/**
 * @file
 * Architectural checkpoints.
 *
 * A checkpoint captures a FunctionalSim's complete architectural state
 * — program counter, register files, instruction count, and (copy-on-
 * capture) data memory — so simulation can later resume from that point
 * without re-executing the prefix. This is the facility whose
 * generation cost the paper charges to SimPoint and the truncated
 * techniques: generating checkpoints is one pass over the program, and
 * every later run on a different machine configuration restores instead
 * of fast-forwarding.
 *
 * Microarchitectural state (caches, predictor) is *not* measured
 * state and is never required: techniques re-warm it, which is why
 * SimPoint pairs checkpoints with a warm-up policy. A checkpoint can
 * however carry an *optional* warmed-uarch summary — the serialized
 * cache tag arrays, TLB entries, and branch-predictor tables produced
 * by functional warming (uarch/warm_state.hh) — keyed by a caller-
 * supplied identity string, so repeated checkpoint-sharded runs skip
 * re-warming their lead-ins (docs/perf.md).
 */

#ifndef YASIM_SIM_CHECKPOINT_HH
#define YASIM_SIM_CHECKPOINT_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace yasim {

class FunctionalSim;
class MemoryHierarchy;
class CombinedPredictor;
class Program;

/**
 * Binary layout version of Checkpoint::writeBinary. Bumped whenever
 * the serialized field set or ordering changes; readBinary rejects
 * mismatches so stale embedded checkpoints can never be misparsed.
 * Version 2: version marker prepended, memory words emitted in
 * ascending address order (deterministic across standard libraries).
 * Version 3: optional warmed-uarch summary trailer (key + composite
 * blob, see uarch/warm_state.hh).
 */
// yasim-lint: version(checkpoint)
constexpr uint32_t kCheckpointFormatVersion = 3;

/** A restorable snapshot of architectural state. */
class Checkpoint
{
  public:
    /** Capture @p sim's full architectural state. */
    static Checkpoint capture(const FunctionalSim &sim);

    /**
     * A carrier checkpoint at dynamic position @p icount with *no*
     * architectural payload — it exists to hold a warmed-uarch summary
     * for replay-mode sharding, where architectural state lives in the
     * trace and only the warm tables are worth persisting.
     */
    static Checkpoint atPosition(uint64_t icount);

    /**
     * Restore into @p sim (which must run the same program). Requires
     * hasArchState().
     * @post sim.instsExecuted() == instruction() and execution
     *       continues exactly as the original run did.
     */
    void restore(FunctionalSim &sim) const;

    /** True when this checkpoint carries architectural state (i.e. it
     *  was captured from a simulator, not built by atPosition). */
    bool hasArchState() const { return !intRegs.empty(); }

    /**
     * Attach the warmed-uarch summary of @p mem and @p bp under
     * identity @p key. The key must encode everything the warm state
     * depends on (program content, warm span, machine configuration,
     * format versions); restoreUarch refuses a key mismatch.
     */
    void attachUarch(const MemoryHierarchy &mem,
                     const CombinedPredictor &bp, const std::string &key);

    /** True when a warmed-uarch summary is attached. */
    bool hasUarch() const { return !warmBlob.empty(); }

    /** Identity key of the attached summary ("" when none). */
    const std::string &uarchKey() const { return warmKey; }

    /**
     * Restore the attached warmed-uarch summary into @p mem and @p bp.
     * @return false when no summary is attached, @p key does not
     * match, or the blob fails structural validation — in which case
     * @p mem / @p bp may be partially mutated and must be discarded
     * (rebuild the core) or reset before use.
     */
    bool restoreUarch(MemoryHierarchy &mem, CombinedPredictor &bp,
                      const std::string &key) const;

    /** Dynamic instruction count at capture time. */
    uint64_t instruction() const { return icount; }

    /** Approximate in-memory footprint in bytes (for cost reports). */
    size_t footprintBytes() const;

    /**
     * Serialize to @p os as native-endian binary (trace embedding; see
     * docs/trace.md for the cache-locality caveats). The stream opens
     * with kCheckpointFormatVersion.
     */
    void writeBinary(std::ostream &os) const;

    /**
     * Deserialize one checkpoint written by writeBinary into @p out.
     * @return false on a short or malformed stream or a
     *         format-version mismatch.
     */
    static bool readBinary(std::istream &is, Checkpoint &out);

    /**
     * Persist this checkpoint as a standalone file: the writeBinary
     * stream framed, checksummed, and atomically published through
     * support/artifact_io. @return false when the file could not be
     * written (a warning is emitted; never throws).
     */
    bool saveFile(const std::string &path) const;

    /**
     * Load a checkpoint persisted by saveFile. A verification failure
     * — bad frame, bad checksum, truncated or over-long payload —
     * quarantines the file to "<path>.corrupt" and returns false, so
     * callers fall back to regeneration.
     */
    static bool loadFile(const std::string &path, Checkpoint &out);

  private:
    Checkpoint() = default;

    friend class ExecTrace; // builds checkpoint vectors during read()

    uint64_t pc = 0;
    uint64_t icount = 0;
    bool halted = false;
    std::vector<int64_t> intRegs;
    std::vector<double> fpRegs;
    /** Deep copy of every touched memory word (addr -> value). */
    std::vector<std::pair<uint64_t, int64_t>> words;

    /** Identity key of the optional warmed-uarch summary ("" = none). */
    std::string warmKey;
    /** Composite warm-state blob (uarch/warm_state.hh layout). */
    std::string warmBlob;
};

/**
 * An ordered library of checkpoints for one program, built in one
 * architectural pass and then reused across machine configurations.
 */
class CheckpointLibrary
{
  public:
    /**
     * Build checkpoints at the given dynamic-instruction positions
     * (must be sorted ascending) by executing @p program once.
     *
     * @return instructions executed during generation (the cost).
     */
    uint64_t build(const Program &program,
                   const std::vector<uint64_t> &positions);

    /** Number of checkpoints held. */
    size_t size() const { return checkpoints.size(); }

    /**
     * The latest checkpoint at or before @p position, or nullptr when
     * none qualifies.
     */
    const Checkpoint *latestAtOrBefore(uint64_t position) const;

    /** Checkpoint @p idx in position order. */
    const Checkpoint &at(size_t idx) const { return checkpoints[idx]; }

    /** Total footprint of all checkpoints in bytes. */
    size_t footprintBytes() const;

  private:
    std::vector<Checkpoint> checkpoints;
};

} // namespace yasim

#endif // YASIM_SIM_CHECKPOINT_HH
