/**
 * @file
 * Cycle-level out-of-order superscalar core.
 *
 * The core is trace-driven: it consumes the in-order ExecRecord stream
 * from a FunctionalSim and computes, per dynamic instruction, the cycle
 * of every pipeline event with a ready-time model. The model captures
 * everything the 43-factor PB space varies:
 *
 *  - fetch bandwidth, taken-branch fetch breaks, I-cache/I-TLB stalls,
 *    fetch-queue backpressure, branch mispredict redirects
 *  - in-order dispatch limited by decode width and by ROB, IQ, and LSQ
 *    occupancy
 *  - data-dependence-driven out-of-order issue limited by issue width,
 *    functional-unit counts (unpipelined dividers), and memory ports
 *  - store-to-load forwarding through a small forwarding table
 *  - in-order commit limited by commit width
 *
 * Known simplifications (documented for reviewers): wrong-path fetch is
 * not simulated (mispredicts charge the full redirect penalty instead);
 * memory disambiguation is perfect; stores retire through an ideal store
 * buffer (they occupy ports and train the caches but do not stall
 * commit). These match the fidelity class of trace-driven academic
 * models, and every PB factor still has a first-order effect.
 */

#ifndef YASIM_SIM_OOO_CORE_HH
#define YASIM_SIM_OOO_CORE_HH

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "sim/bb_profiler.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/step_source.hh"
#include "support/cancel.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/memory_hierarchy.hh"

namespace yasim {

class TraceReplayer;

/** The detailed timing model. */
class OooCore
{
  public:
    explicit OooCore(const SimConfig &config);

    /**
     * Instructions between cancellation polls in the run loops. A
     * cancelled run stops within one quantum of the cancel, and the
     * hot loops stay poll-free in between (the poll on a default
     * invalid token is a single null check).
     */
    static constexpr uint64_t kCancelCheckInsts = 8192;

    /**
     * Detail-simulate up to @p max_insts instructions from @p src — a
     * live FunctionalSim or a TraceReplayer, indistinguishably — (stops
     * early at Halt), optionally attributing every committed
     * instruction to @p profiler. A valid @p cancel token is polled
     * every kCancelCheckInsts committed instructions; on cancellation
     * the call returns early with the count committed so far (the
     * caller decides whether that partial progress is an error).
     *
     * The dynamic StepSource type is resolved once per call, not once
     * per instruction: both concrete sources are `final`, so the inner
     * loops bind step() statically, and a TraceReplayer is consumed
     * through its pre-decoded flat uop runs instead of step() entirely.
     * All three paths execute the same per-instruction model and are
     * bit-identical.
     *
     * @return the number of instructions committed by this call.
     */
    uint64_t run(StepSource &src, uint64_t max_insts,
                 BbProfiler *profiler = nullptr,
                 const CancelToken &cancel = CancelToken());

    /**
     * run(), returning only this call's statistics delta
     * (snapshot-after minus snapshot-before). This is the SMARTS
     * measured-unit pattern: functional warming pollutes some counters
     * (e.g. prefetches issued by warmData), and subtracting snapshots
     * is the one correct way to attribute stats to a detailed region.
     * @p insts_done receives the committed-instruction count when
     * non-null.
     */
    SimStats runMeasured(StepSource &src, uint64_t max_insts,
                         BbProfiler *profiler = nullptr,
                         uint64_t *insts_done = nullptr,
                         const CancelToken &cancel = CancelToken());

    /**
     * Clear in-flight pipeline state between discontiguous detailed
     * regions (sampling techniques). Caches, predictor and cycle/stat
     * counters are preserved.
     */
    void resetPipeline();

    /** Enable the trivial-computation enhancement (TC). */
    void setTrivialComputation(bool enabled) { tcEnabled = enabled; }

    /** Total committed instructions across all run() calls. */
    uint64_t instsRetired() const { return retired; }

    /** Cycle of the most recent commit (total elapsed cycles). */
    uint64_t cycles() const { return lastCommitCycle; }

    /** Point-in-time statistics snapshot (subtractable). */
    SimStats snapshot() const;

    MemoryHierarchy &memHierarchy() { return mem; }
    CombinedPredictor &predictor() { return bp; }
    const SimConfig &config() const { return cfg; }

  private:
    /**
     * Zero-initialized array backed by calloc. Large allocations come
     * from freshly-mapped zero pages, so neither construction nor the
     * first touch of the array pays for zeroing the whole window the
     * way vector::assign's memset does; pages fault in only as the
     * simulation actually reaches their cycles.
     */
    template <typename T>
    class ZeroedArray
    {
      public:
        ZeroedArray() = default;
        ~ZeroedArray() { std::free(p); }
        ZeroedArray(const ZeroedArray &) = delete;
        ZeroedArray &operator=(const ZeroedArray &) = delete;

        void alloc(size_t n);
        void clear(size_t n);
        T &operator[](size_t i) const { return p[i]; }
        explicit operator bool() const { return p != nullptr; }

      private:
        T *p = nullptr;
    };

    /**
     * Per-cycle slot pool for non-monotonic schedulers (issue ports,
     * memory ports, pipelined FU pools). A stamped ring buffer: slots
     * for a cycle are lazily zeroed when the cycle is first touched,
     * and a generation tag makes reset() O(1) — sampling techniques
     * call resetPipeline() per sample, which used to memset the whole
     * window (9 MB per core) every time.
     */
    class SlotPool
    {
      public:
        void init(uint32_t width);
        /** First cycle >= earliest with a free slot (does not consume). */
        uint64_t findFree(uint64_t earliest) const;
        /** Consume one slot at @p cycle. */
        void consume(uint64_t cycle);
        /** Invalidate every slot by bumping the generation. O(1). */
        void reset();

      private:
        static constexpr uint32_t windowBits = 17;
        static constexpr uint64_t window = 1ULL << windowBits;
        static constexpr uint64_t mask = window - 1;

        /** A slot belongs to @p cycle in the current generation. */
        bool valid(uint64_t idx, uint64_t cycle) const
        {
            return stampGen[idx] == gen && stampCycle[idx] == cycle;
        }
        /** Lazily take a slot over for @p cycle with zero usage. */
        void claim(uint64_t idx, uint64_t cycle) const
        {
            stampGen[idx] = gen;
            stampCycle[idx] = cycle;
            used[idx] = 0;
        }

        uint32_t width = 1;
        /** Current generation; 0 never occurs, so calloc'd pages miss. */
        uint32_t gen = 1;
        mutable ZeroedArray<uint32_t> used;
        mutable ZeroedArray<uint32_t> stampGen;
        mutable ZeroedArray<uint64_t> stampCycle;
    };

    /** Monotonic bandwidth limiter for in-order stages. */
    struct InOrderStage
    {
        uint32_t width = 1;
        uint64_t cycle = 0;
        uint32_t usedThisCycle = 0;

        /** Schedule at the first cycle >= earliest with spare bandwidth. */
        uint64_t schedule(uint64_t earliest);
        void reset(uint64_t at);
    };

    /** Ring of historical event times for occupancy limits. */
    struct HistoryRing
    {
        std::vector<uint64_t> times;
        uint64_t count = 0;

        void init(size_t entries);
        /** Time recorded @p entries slots ago (0 when history is short). */
        uint64_t back() const;
        void push(uint64_t t);
        void reset(uint64_t fill);
    };

    /**
     * Schedule the issue of one instruction at or after @p earliest,
     * respecting issue bandwidth, the functional-unit pool for @p fu,
     * and memory ports. @p bypass_fu skips the FU constraint entirely
     * (trivial computations are *eliminated*, not re-executed [Yi02]).
     */
    uint64_t scheduleIssue(uint64_t earliest, FuClass fu, bool is_mem,
                           bool bypass_fu = false);
    uint64_t fuLatency(FuClass fu) const;

    /**
     * The per-instruction timing model: fetch, dispatch, ready, issue,
     * commit for exactly one committed instruction. @p pc_addr is the
     * instruction's byte address, @p next_pc the *index* of the
     * successor (address computed only for control flow), and
     * @p l1i_block / @p frontend are hoisted configuration loads.
     *
     * Forcibly inlined into each typed run loop: the body is past the
     * compiler's size heuristics, and an out-of-line call here costs
     * ~20% of detailed throughput.
     */
#if defined(__GNUC__) || defined(__clang__)
    [[gnu::always_inline]]
#endif
    inline void simulateOne(const Instruction &inst, uint64_t pc_addr,
                     uint64_t next_pc, uint64_t mem_addr, bool taken,
                     bool trivial_hint, uint32_t l1i_block,
                     uint64_t frontend);

    /** step()-driven loop; Source=final class => static dispatch. */
    template <typename Source>
    uint64_t runSteps(Source &src, uint64_t max_insts,
                      BbProfiler *profiler,
                      const CancelToken &cancel);

    /** Decoded-replay fast path over flat pre-decoded uop runs. */
    uint64_t runReplay(TraceReplayer &src, uint64_t max_insts,
                       BbProfiler *profiler,
                       const CancelToken &cancel);

    SimConfig cfg;
    MemoryHierarchy mem;
    CombinedPredictor bp;

    // --- Fetch state ---
    uint64_t fetchCycle = 0;
    uint32_t fetchSlotsLeft = 0;
    uint64_t lastFetchBlock = ~0ULL;
    uint64_t redirectCycle = 0;

    // --- In-order stages ---
    InOrderStage dispatchStage;
    InOrderStage commitStage;

    // --- Out-of-order resources ---
    SlotPool issueSlots;
    SlotPool memPorts;
    SlotPool intAluPool;
    SlotPool fpAluPool;
    SlotPool intMulPool;
    SlotPool fpMulPool;
    /** Per-unit next-free cycle for unpipelined dividers. */
    std::vector<uint64_t> intDivFree;
    std::vector<uint64_t> fpDivFree;

    // --- Occupancy rings ---
    HistoryRing robCommit;   // commit times, ROB-entry deep
    HistoryRing lsqCommit;   // commit times of memory ops, LSQ deep
    HistoryRing iqIssue;     // issue times, IQ deep
    HistoryRing fqDispatch;  // dispatch times, fetch-queue deep

    // --- Dependences ---
    std::vector<uint64_t> intRegReady;
    std::vector<uint64_t> fpRegReady;

    /** Direct-mapped store-forwarding table. */
    struct FwdEntry
    {
        uint64_t addr = ~0ULL;
        uint64_t doneCycle = 0;
    };
    static constexpr size_t fwdEntries = 4096;
    std::vector<FwdEntry> storeFwd;

    // --- Accounting ---
    uint64_t retired = 0;
    uint64_t lastCommitCycle = 0;
    uint64_t trivialOps = 0;
    uint64_t memStallCycles = 0;
    bool tcEnabled = false;
};

} // namespace yasim

#endif // YASIM_SIM_OOO_CORE_HH
