#include "sim/trivial.hh"

namespace yasim {

bool
isTrivialInt(Opcode op, int64_t a, int64_t b)
{
    switch (op) {
      case Opcode::Add:
        return a == 0 || b == 0;
      case Opcode::Sub:
        return b == 0 || a == b;
      case Opcode::Mul:
        return a == 0 || b == 0 || a == 1 || b == 1;
      case Opcode::Div:
        return b == 1 || a == 0 || a == b;
      case Opcode::Rem:
        return b == 1 || a == 0 || a == b;
      case Opcode::And:
        return a == 0 || b == 0 || a == -1 || b == -1 || a == b;
      case Opcode::Or:
        return a == 0 || b == 0 || a == -1 || b == -1 || a == b;
      case Opcode::Xor:
        return a == 0 || b == 0 || a == b;
      case Opcode::Shl:
      case Opcode::Shr:
        return b == 0 || a == 0;
      default:
        return false;
    }
}

bool
isTrivialFp(Opcode op, double a, double b)
{
    switch (op) {
      case Opcode::FAdd:
        return a == 0.0 || b == 0.0;
      case Opcode::FSub:
        return b == 0.0 || a == b;
      case Opcode::FMul:
        return a == 0.0 || b == 0.0 || a == 1.0 || b == 1.0;
      case Opcode::FDiv:
        return b == 1.0 || a == 0.0 || (a == b && b != 0.0);
      default:
        return false;
    }
}

} // namespace yasim
