#include "sim/checkpoint.hh"

#include <algorithm>

#include "support/logging.hh"

namespace yasim {

Checkpoint
Checkpoint::capture(const FunctionalSim &sim)
{
    Checkpoint cp;
    cp.pc = sim.curPc;
    cp.icount = sim.icount;
    cp.halted = sim.isHalted;
    cp.intRegs.assign(sim.intRegs, sim.intRegs + numIntRegs);
    cp.fpRegs.assign(sim.fpRegs, sim.fpRegs + numFpRegs);
    sim.mem.forEachWord([&](uint64_t addr, int64_t value) {
        cp.words.emplace_back(addr, value);
    });
    return cp;
}

void
Checkpoint::restore(FunctionalSim &sim) const
{
    sim.curPc = pc;
    sim.icount = icount;
    sim.isHalted = halted;
    std::copy(intRegs.begin(), intRegs.end(), sim.intRegs);
    std::copy(fpRegs.begin(), fpRegs.end(), sim.fpRegs);
    sim.mem.clear();
    for (const auto &[addr, value] : words)
        sim.mem.write(addr, value);
}

size_t
Checkpoint::footprintBytes() const
{
    return sizeof(*this) + intRegs.size() * sizeof(int64_t) +
           fpRegs.size() * sizeof(double) +
           words.size() * sizeof(words[0]);
}

uint64_t
CheckpointLibrary::build(const Program &program,
                         const std::vector<uint64_t> &positions)
{
    checkpoints.clear();
    FunctionalSim sim(program);
    for (size_t i = 0; i < positions.size(); ++i) {
        if (i > 0)
            YASIM_ASSERT(positions[i] >= positions[i - 1]);
        if (positions[i] > sim.instsExecuted())
            sim.fastForward(positions[i] - sim.instsExecuted());
        checkpoints.push_back(Checkpoint::capture(sim));
    }
    return sim.instsExecuted();
}

const Checkpoint *
CheckpointLibrary::latestAtOrBefore(uint64_t position) const
{
    const Checkpoint *best = nullptr;
    for (const Checkpoint &cp : checkpoints) {
        if (cp.instruction() <= position)
            best = &cp;
        else
            break;
    }
    return best;
}

size_t
CheckpointLibrary::footprintBytes() const
{
    size_t total = 0;
    for (const Checkpoint &cp : checkpoints)
        total += cp.footprintBytes();
    return total;
}

} // namespace yasim
