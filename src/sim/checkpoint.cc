#include "sim/checkpoint.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/functional.hh"
#include "support/artifact_io.hh"
#include "support/check.hh"
#include "support/logging.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/memory_hierarchy.hh"

namespace yasim {

namespace {

/** Inner frame magic for standalone checkpoint files. */
constexpr const char *kCheckpointMagic = "yasim-ckpt";

template <typename T>
void
putRaw(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
getRaw(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    return is.good();
}

} // namespace

Checkpoint
Checkpoint::capture(const FunctionalSim &sim)
{
    Checkpoint cp;
    cp.pc = sim.curPc;
    cp.icount = sim.icount;
    cp.halted = sim.isHalted;
    cp.intRegs.assign(sim.intRegs, sim.intRegs + numIntRegs);
    cp.fpRegs.assign(sim.fpRegs, sim.fpRegs + numFpRegs);
    sim.mem.forEachWord([&](uint64_t addr, int64_t value) {
        cp.words.emplace_back(addr, value);
    });
    return cp;
}

Checkpoint
Checkpoint::atPosition(uint64_t icount)
{
    Checkpoint cp;
    cp.icount = icount;
    return cp;
}

void
Checkpoint::attachUarch(const MemoryHierarchy &mem,
                        const CombinedPredictor &bp, const std::string &key)
{
    std::ostringstream os;
    mem.serializeWarmState(os);
    bp.serializeWarmState(os);
    warmBlob = os.str();
    warmKey = key;
}

bool
Checkpoint::restoreUarch(MemoryHierarchy &mem, CombinedPredictor &bp,
                         const std::string &key) const
{
    if (warmBlob.empty() || key != warmKey)
        return false;
    std::istringstream is(warmBlob);
    if (!mem.deserializeWarmState(is) || !bp.deserializeWarmState(is))
        return false;
    // Trailing bytes mean the blob was produced by a different layout
    // that happened to parse; refuse it.
    return is.peek() == std::istringstream::traits_type::eof();
}

void
Checkpoint::restore(FunctionalSim &sim) const
{
    YASIM_CHECK(hasArchState(),
                "restoring a carrier checkpoint with no architectural "
                "state (position %llu)",
                static_cast<unsigned long long>(icount));
    sim.curPc = pc;
    sim.icount = icount;
    sim.isHalted = halted;
    std::copy(intRegs.begin(), intRegs.end(), sim.intRegs);
    std::copy(fpRegs.begin(), fpRegs.end(), sim.fpRegs);
    sim.mem.clear();
    for (const auto &[addr, value] : words)
        sim.mem.write(addr, value);
}

// yasim-lint: serialized(checkpoint)
void
Checkpoint::writeBinary(std::ostream &os) const
{
    putRaw(os, kCheckpointFormatVersion);
    putRaw(os, pc);
    putRaw(os, icount);
    putRaw(os, static_cast<uint8_t>(halted ? 1 : 0));
    putRaw(os, static_cast<uint32_t>(intRegs.size()));
    for (int64_t r : intRegs)
        putRaw(os, r);
    putRaw(os, static_cast<uint32_t>(fpRegs.size()));
    for (double r : fpRegs)
        putRaw(os, r);
    putRaw(os, static_cast<uint64_t>(words.size()));
    for (const auto &[addr, value] : words) {
        putRaw(os, addr);
        putRaw(os, value);
    }
    // Version-3 trailer: the optional warmed-uarch summary.
    putRaw(os, static_cast<uint8_t>(hasUarch() ? 1 : 0));
    if (hasUarch()) {
        putRaw(os, static_cast<uint32_t>(warmKey.size()));
        os.write(warmKey.data(),
                 static_cast<std::streamsize>(warmKey.size()));
        putRaw(os, static_cast<uint64_t>(warmBlob.size()));
        os.write(warmBlob.data(),
                 static_cast<std::streamsize>(warmBlob.size()));
    }
}

// yasim-lint: serialized(checkpoint)
bool
Checkpoint::readBinary(std::istream &is, Checkpoint &out)
{
    uint32_t version = 0;
    uint8_t halted_byte = 0;
    uint32_t n_int = 0, n_fp = 0;
    uint64_t n_words = 0;
    if (!getRaw(is, version) || version != kCheckpointFormatVersion)
        return false;
    if (!getRaw(is, out.pc) || !getRaw(is, out.icount) ||
        !getRaw(is, halted_byte) || !getRaw(is, n_int)) {
        return false;
    }
    out.halted = halted_byte != 0;
    if (n_int > 4096)
        return false;
    out.intRegs.resize(n_int);
    for (int64_t &r : out.intRegs)
        if (!getRaw(is, r))
            return false;
    if (!getRaw(is, n_fp) || n_fp > 4096)
        return false;
    out.fpRegs.resize(n_fp);
    for (double &r : out.fpRegs)
        if (!getRaw(is, r))
            return false;
    if (!getRaw(is, n_words))
        return false;
    out.words.clear();
    out.words.reserve(n_words);
    for (uint64_t i = 0; i < n_words; ++i) {
        uint64_t addr;
        int64_t value;
        if (!getRaw(is, addr) || !getRaw(is, value))
            return false;
        out.words.emplace_back(addr, value);
    }
    uint8_t has_uarch = 0;
    if (!getRaw(is, has_uarch))
        return false;
    out.warmKey.clear();
    out.warmBlob.clear();
    if (has_uarch != 0) {
        uint32_t key_len = 0;
        uint64_t blob_len = 0;
        if (!getRaw(is, key_len) || key_len > 4096)
            return false;
        out.warmKey.resize(key_len);
        is.read(out.warmKey.data(),
                static_cast<std::streamsize>(key_len));
        if (!is.good())
            return false;
        // A warm summary is bounded by the largest configured tables;
        // 256 MB is orders of magnitude above any real geometry.
        if (!getRaw(is, blob_len) || blob_len > (256ULL << 20))
            return false;
        out.warmBlob.resize(blob_len);
        is.read(out.warmBlob.data(),
                static_cast<std::streamsize>(blob_len));
        if (!is.good())
            return false;
    }
    return true;
}

// yasim-lint: serialized(checkpoint)
bool
Checkpoint::saveFile(const std::string &path) const
{
    std::ostringstream payload;
    writeBinary(payload);
    ArtifactWriteResult wrote =
        writeArtifact(path, kCheckpointMagic, kCheckpointFormatVersion,
                      payload.str());
    if (!wrote.ok)
        warn("cannot write checkpoint file '%s': %s", path.c_str(),
             wrote.error.c_str());
    return wrote.ok;
}

// yasim-lint: serialized(checkpoint)
bool
Checkpoint::loadFile(const std::string &path, Checkpoint &out)
{
    ArtifactReadResult read =
        readArtifact(path, kCheckpointMagic, kCheckpointFormatVersion);
    if (read.status == ArtifactStatus::Missing)
        return false;
    if (read.status != ArtifactStatus::Ok) {
        warn("checkpoint file '%s' unusable (%s)", path.c_str(),
             read.error.c_str());
        return false;
    }
    std::istringstream payload(read.payload);
    if (!readBinary(payload, out) ||
        payload.peek() != std::istringstream::traits_type::eof()) {
        // Frame verified but the payload did not parse cleanly (or
        // carries trailing bytes): quarantine so the next lookup
        // regenerates instead of re-tripping here.
        quarantineArtifact(path);
        warn("checkpoint file '%s' failed payload verification; "
             "quarantined",
             path.c_str());
        return false;
    }
    return true;
}

size_t
Checkpoint::footprintBytes() const
{
    return sizeof(*this) + intRegs.size() * sizeof(int64_t) +
           fpRegs.size() * sizeof(double) +
           words.size() * sizeof(words[0]) + warmKey.size() +
           warmBlob.size();
}

uint64_t
CheckpointLibrary::build(const Program &program,
                         const std::vector<uint64_t> &positions)
{
    checkpoints.clear();
    FunctionalSim sim(program);
    for (size_t i = 0; i < positions.size(); ++i) {
        if (i > 0)
            YASIM_CHECK_GE(positions[i], positions[i - 1]);
        if (positions[i] > sim.instsExecuted())
            sim.fastForward(positions[i] - sim.instsExecuted());
        checkpoints.push_back(Checkpoint::capture(sim));
    }
    return sim.instsExecuted();
}

const Checkpoint *
CheckpointLibrary::latestAtOrBefore(uint64_t position) const
{
    const Checkpoint *best = nullptr;
    for (const Checkpoint &cp : checkpoints) {
        if (cp.instruction() <= position)
            best = &cp;
        else
            break;
    }
    return best;
}

size_t
CheckpointLibrary::footprintBytes() const
{
    size_t total = 0;
    for (const Checkpoint &cp : checkpoints)
        total += cp.footprintBytes();
    return total;
}

} // namespace yasim
