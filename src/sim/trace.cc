#include "sim/trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>

#include "sim/bb_profiler.hh"
#include "sim/functional.hh"
#include "support/check.hh"
#include "support/codec.hh"
#include "support/logging.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/memory_hierarchy.hh"

namespace yasim {

namespace {

constexpr char kTraceMagic[] = "yasim-trace";
/** Trailing sentinel guarding against truncated binary payloads. */
constexpr uint64_t kTraceEndMark = 0x59415349'4d454e44ULL;

template <typename T>
void
putRaw(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
getRaw(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    return is.good();
}

template <typename T>
void
putVec(std::ostream &os, const std::vector<T> &v)
{
    os.write(reinterpret_cast<const char *>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool
getVec(std::istream &is, std::vector<T> &v, size_t n)
{
    v.resize(n);
    is.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    return is.good();
}

// --- v4 chunk planes --------------------------------------------------------
//
// Each chunk serializes as three independently RLE'd byte planes, all
// chunk-local (delta state resets per chunk, so chunks decode
// independently):
//
//  pc plane:   varint(zigzag(pc[i] - pc[i-1] - 1)) — sequential
//              execution encodes as 0x00, so the RLE collapses the
//              overwhelmingly-common fall-through runs;
//  mem plane:  varint(zigzag(memAddr delta vs the previous memory
//              op)) for load/store records only — mem-ness is
//              derivable from the pc's static instruction, and
//              strided access patterns yield tiny repeated deltas;
//  flag plane: the raw taken/trivial bytes (values 0..3), RLE'd.

/** Write @p plane RLE-compressed with a u64 byte-length prefix. */
void
putPlane(std::ostream &os, const std::string &plane)
{
    std::string rle;
    rleEncode(plane, rle);
    putRaw(os, static_cast<uint64_t>(rle.size()));
    os.write(rle.data(), static_cast<std::streamsize>(rle.size()));
}

/**
 * Read one RLE'd plane back; @p max_out bounds the decoded size (the
 * caller's structural limit) and implies a bound on the stored size
 * (RLE expands a plane by at most 1.5x). Returns false on truncation,
 * malformed RLE, or a plane past the bound.
 */
bool
getPlane(std::istream &is, std::string &plane, size_t max_out)
{
    uint64_t stored = 0;
    if (!getRaw(is, stored) || stored > max_out + max_out / 2 + 16)
        return false;
    std::string rle(stored, '\0');
    is.read(rle.data(), static_cast<std::streamsize>(stored));
    if (!is.good())
        return false;
    plane.clear();
    return rleDecode(rle, plane, max_out);
}

/** Serialize one chunk's SoA columns as delta/byte planes. */
// yasim-lint: serialized(trace)
void
encodeChunkPlanes(const std::vector<uint32_t> &pcs,
                  const std::vector<uint64_t> &addrs,
                  const std::vector<uint8_t> &flags,
                  const Instruction *code, std::ostream &os)
{
    const size_t n = pcs.size();
    std::string pc_plane, mem_plane;
    pc_plane.reserve(n);
    uint64_t prev_pc = 0;
    uint64_t last_mem = 0;
    for (size_t i = 0; i < n; ++i) {
        const uint64_t pc = pcs[i];
        putVarint(pc_plane,
                  zigzagEncode(static_cast<int64_t>(pc) -
                               static_cast<int64_t>(prev_pc) - 1));
        prev_pc = pc;
        const Instruction &inst = code[pc];
        if (inst.isLoad() || inst.isStore()) {
            putVarint(mem_plane,
                      zigzagEncode(static_cast<int64_t>(addrs[i]) -
                                   static_cast<int64_t>(last_mem)));
            last_mem = addrs[i];
        } else {
            // Non-memory records carry memAddr 0 by the ExecRecord
            // contract; the decoder reconstructs the zeros for free.
            YASIM_DCHECK_EQ(addrs[i], uint64_t(0));
        }
    }
    const std::string flag_plane(
        reinterpret_cast<const char *>(flags.data()), n);
    putRaw(os, static_cast<uint64_t>(n));
    putPlane(os, pc_plane);
    putPlane(os, mem_plane);
    putPlane(os, flag_plane);
}

/**
 * Decode one chunk of @p n records into the SoA columns. Every
 * reconstructed pc is validated against @p prog_size before its static
 * instruction is consulted, and all three planes must be consumed
 * exactly. Returns false on any structural violation.
 */
// yasim-lint: serialized(trace)
bool
decodeChunkPlanes(std::istream &is, size_t n, const Instruction *code,
                  size_t prog_size, std::vector<uint32_t> &pcs,
                  std::vector<uint64_t> &addrs,
                  std::vector<uint8_t> &flags)
{
    std::string plane;
    if (!getPlane(is, plane, n * 10))
        return false;
    pcs.resize(n);
    size_t at = 0;
    uint64_t prev_pc = 0;
    for (size_t i = 0; i < n; ++i) {
        uint64_t z = 0;
        if (!getVarint(plane, at, z))
            return false;
        const uint64_t pc = static_cast<uint64_t>(
            static_cast<int64_t>(prev_pc) + 1 + zigzagDecode(z));
        if (pc >= prog_size)
            return false;
        pcs[i] = static_cast<uint32_t>(pc);
        prev_pc = pc;
    }
    if (at != plane.size())
        return false;

    std::string mem_plane;
    if (!getPlane(is, mem_plane, n * 10))
        return false;

    if (!getPlane(is, plane, n) || plane.size() != n)
        return false;
    flags.resize(n);
    for (size_t i = 0; i < n; ++i) {
        const uint8_t f = static_cast<uint8_t>(plane[i]);
        if (f > 3)
            return false;
        flags[i] = f;
    }

    addrs.resize(n);
    at = 0;
    uint64_t last_mem = 0;
    for (size_t i = 0; i < n; ++i) {
        const Instruction &inst = code[pcs[i]];
        if (inst.isLoad() || inst.isStore()) {
            uint64_t z = 0;
            if (!getVarint(mem_plane, at, z))
                return false;
            last_mem = static_cast<uint64_t>(
                static_cast<int64_t>(last_mem) + zigzagDecode(z));
            addrs[i] = last_mem;
        } else {
            addrs[i] = 0;
        }
    }
    return at == mem_plane.size();
}

} // namespace

// --- ExecTrace: recording ---------------------------------------------------

void
ExecTrace::appendBatch(const ExecRecord *recs, uint64_t n)
{
    uint64_t i = 0;
    while (i < n) {
        if ((total & chunkMask) == 0) {
            chunks.emplace_back();
            Chunk &fresh = chunks.back();
            fresh.pc.reserve(chunkInsts);
            fresh.memAddr.reserve(chunkInsts);
            fresh.flags.reserve(chunkInsts);
        }
        Chunk &c = chunks.back();
        const uint64_t run =
            std::min(n - i, chunkInsts - (total & chunkMask));
        for (uint64_t k = 0; k < run; ++k) {
            const ExecRecord &r = recs[i + k];
            c.pc.push_back(static_cast<uint32_t>(r.pc));
            c.memAddr.push_back(r.memAddr);
            c.flags.push_back(static_cast<uint8_t>(
                (r.taken ? 1 : 0) | (r.trivial ? 2 : 0)));
        }
        total += run;
        i += run;
    }
}

std::shared_ptr<const ExecTrace>
ExecTrace::record(const Program &program)
{
    return record(program, Options{});
}

std::shared_ptr<const ExecTrace>
ExecTrace::record(const Program &program, const Options &options)
{
    YASIM_CHECK(program.size() <= UINT32_MAX,
                "program too large to trace (%zu static instructions)",
                program.size());
    std::shared_ptr<ExecTrace> trace(new ExecTrace(program));

    const bool adaptive = options.checkpointSpacing == 0;
    uint64_t spacing =
        adaptive ? uint64_t(64) * 1024 : options.checkpointSpacing;

    FunctionalSim sim(trace->prog);
    BbProfiler profiler(trace->prog);
    // Batched recording: one interpreter span, one profiler pass, one
    // SoA append per batch. Batches never straddle a checkpoint rung,
    // so snapshots land at exactly the positions the per-step loop
    // captured.
    constexpr uint64_t kRecordBatch = 4096;
    std::vector<ExecRecord> batch(kRecordBatch);
    uint64_t next_ckpt = spacing;
    for (;;) {
        uint64_t want = kRecordBatch;
        const uint64_t pos = sim.instsExecuted();
        if (next_ckpt > pos)
            want = std::min(want, next_ckpt - pos);
        const uint64_t n = sim.stepBatch(batch.data(), want);
        if (n == 0)
            break;
        profiler.recordBatch(batch.data(), n);
        trace->appendBatch(batch.data(), n);
        if (sim.instsExecuted() == next_ckpt && !sim.halted()) {
            if (adaptive &&
                trace->checkpoints.size() == maxCheckpoints) {
                // Thin the ladder to every other snapshot and double
                // the spacing: at most maxCheckpoints are ever kept,
                // and at most 2x that are ever captured.
                std::vector<Checkpoint> kept;
                for (size_t i = 1; i < trace->checkpoints.size(); i += 2)
                    kept.push_back(std::move(trace->checkpoints[i]));
                trace->checkpoints.swap(kept);
                spacing *= 2;
                next_ckpt = trace->checkpoints.empty()
                                ? spacing
                                : trace->checkpoints.back().instruction() +
                                      spacing;
                if (sim.instsExecuted() != next_ckpt)
                    continue;
            }
            trace->checkpoints.push_back(Checkpoint::capture(sim));
            next_ckpt += spacing;
        }
    }
    trace->total = sim.instsExecuted();
    trace->spacing = spacing;
    trace->bbefCounts = profiler.bbef();
    trace->bbvCounts = profiler.bbv();
    // The closed form must track the incremental thinning exactly, or
    // shard plans would diverge between replay and live mode.
    if (adaptive)
        YASIM_DCHECK_EQ(trace->spacing, ladderSpacingFor(trace->total));
    return trace;
}

uint64_t
ExecTrace::ladderSpacingFor(uint64_t length)
{
    uint64_t spacing = uint64_t(64) * 1024;
    if (length == 0)
        return spacing;
    // floor((length-1)/spacing) counts the ladder rungs (multiples of
    // the spacing strictly before the halt); record() thins whenever a
    // rung past maxCheckpoints would be captured.
    while ((length - 1) / spacing > maxCheckpoints)
        spacing *= 2;
    return spacing;
}

size_t
ExecTrace::footprintBytes() const
{
    size_t bytes = sizeof(*this);
    for (const Chunk &c : chunks) {
        bytes += c.pc.capacity() * sizeof(uint32_t) +
                 c.memAddr.capacity() * sizeof(uint64_t) +
                 c.flags.capacity() * sizeof(uint8_t);
    }
    for (const Checkpoint &cp : checkpoints)
        bytes += cp.footprintBytes();
    bytes += (bbefCounts.capacity() + bbvCounts.capacity()) *
             sizeof(double);
    bytes += prog.size() * sizeof(Instruction);
    return bytes;
}

const Checkpoint *
ExecTrace::checkpointAtOrBefore(uint64_t position) const
{
    const Checkpoint *best = nullptr;
    for (const Checkpoint &cp : checkpoints) {
        if (cp.instruction() <= position)
            best = &cp;
        else
            break;
    }
    return best;
}

uint64_t
ExecTrace::restoreTo(FunctionalSim &sim, uint64_t position) const
{
    YASIM_CHECK_LE(position, total);
    const Checkpoint *cp = checkpointAtOrBefore(position);
    if (cp && cp->instruction() >= sim.instsExecuted())
        cp->restore(sim);
    YASIM_CHECK_LE(sim.instsExecuted(), position);
    return sim.fastForward(position - sim.instsExecuted());
}

// --- ExecTrace: serialization ----------------------------------------------

// yasim-lint: serialized(trace)
void
ExecTrace::write(std::ostream &os, const std::string &key_text) const
{
    os << kTraceMagic << " " << kTraceFormatVersion << "\n";
    os << "key " << key_text << "\n";
    os << "meta length=" << total << " spacing=" << spacing
       << " program=" << prog.size() << " blocks=" << prog.numBlocks()
       << " checkpoints=" << checkpoints.size() << "\n";
    for (const Chunk &c : chunks)
        encodeChunkPlanes(c.pc, c.memAddr, c.flags, prog.code(), os);
    for (const Checkpoint &cp : checkpoints)
        cp.writeBinary(os);
    putVec(os, bbefCounts);
    putVec(os, bbvCounts);
    putRaw(os, kTraceEndMark);
}

// yasim-lint: serialized(trace)
std::shared_ptr<const ExecTrace>
ExecTrace::read(std::istream &is, const std::string &key_text,
                const Program &program)
{
    std::string line;
    if (!std::getline(is, line) ||
        line != csprintf("%s %d", kTraceMagic, kTraceFormatVersion)) {
        return nullptr;
    }
    if (!std::getline(is, line) || line != "key " + key_text)
        return nullptr;
    uint64_t length = 0, spacing = 0, prog_size = 0, blocks = 0,
             n_ckpts = 0;
    if (!std::getline(is, line) ||
        std::sscanf(line.c_str(),
                    "meta length=%" SCNu64 " spacing=%" SCNu64
                    " program=%" SCNu64 " blocks=%" SCNu64
                    " checkpoints=%" SCNu64,
                    &length, &spacing, &prog_size, &blocks,
                    &n_ckpts) != 5) {
        return nullptr;
    }
    if (prog_size != program.size() || blocks != program.numBlocks() ||
        n_ckpts > length) {
        return nullptr;
    }

    std::shared_ptr<ExecTrace> trace(new ExecTrace(program));
    trace->total = length;
    trace->spacing = spacing;
    uint64_t remaining = length;
    while (remaining > 0) {
        // Chunk-at-a-time: each compressed chunk decodes straight into
        // the SoA buffers the replay kernels serve spans from.
        uint64_t n = 0;
        if (!getRaw(is, n) || n == 0 || n > chunkInsts || n > remaining)
            return nullptr;
        trace->chunks.emplace_back();
        Chunk &c = trace->chunks.back();
        if (!decodeChunkPlanes(is, n, program.code(), prog_size, c.pc,
                               c.memAddr, c.flags)) {
            return nullptr;
        }
        remaining -= n;
    }
    trace->checkpoints.reserve(n_ckpts);
    for (uint64_t i = 0; i < n_ckpts; ++i) {
        Checkpoint cp; // constructible here: ExecTrace is a friend
        if (!Checkpoint::readBinary(is, cp))
            return nullptr;
        trace->checkpoints.push_back(std::move(cp));
    }
    if (!getVec(is, trace->bbefCounts, blocks) ||
        !getVec(is, trace->bbvCounts, blocks)) {
        return nullptr;
    }
    uint64_t end_mark = 0;
    if (!getRaw(is, end_mark) || end_mark != kTraceEndMark)
        return nullptr;
    return trace;
}

// --- TraceReplayer ----------------------------------------------------------

TraceReplayer::TraceReplayer(std::shared_ptr<const ExecTrace> trace)
    : src(std::move(trace)), code(src->prog.code()), end(src->total)
{
}

bool
TraceReplayer::step(ExecRecord &record)
{
    if (cursor >= end)
        return false;
    YASIM_DCHECK_LT(cursor >> ExecTrace::chunkShift,
                    src->chunks.size());
    const ExecTrace::Chunk &chunk =
        src->chunks[cursor >> ExecTrace::chunkShift];
    const size_t off = cursor & ExecTrace::chunkMask;
    const uint64_t pc = chunk.pc[off];
    const uint8_t flags = chunk.flags[off];
    YASIM_DCHECK_LT(pc, src->prog.size());
    const Instruction &inst = code[pc];
    const bool taken = (flags & 1) != 0;
    record.inst = &inst;
    record.pc = pc;
    // Exactly FunctionalSim's definition: branch target or fall-through.
    record.nextPc = taken ? static_cast<uint64_t>(inst.imm) : pc + 1;
    record.memAddr = chunk.memAddr[off];
    record.taken = taken;
    record.trivial = (flags & 2) != 0;
    ++cursor;
    return true;
}

uint64_t
TraceReplayer::stepBatch(ExecRecord *out, uint64_t n)
{
    // Serve whole chunk-resident SoA spans: the chunk lookup, bounds
    // work, and pointer arithmetic are paid once per span instead of
    // once per record, and nothing in the span loop branches on data
    // (the nextPc select compiles to a conditional move — both arms
    // are always computable).
    uint64_t done = 0;
    while (done < n && cursor < end) {
        const ExecTrace::Chunk &chunk =
            src->chunks[cursor >> ExecTrace::chunkShift];
        const size_t off = cursor & ExecTrace::chunkMask;
        const uint64_t run =
            std::min({n - done, end - cursor,
                      static_cast<uint64_t>(chunk.pc.size() - off)});
        const uint32_t *pcs = chunk.pc.data() + off;
        const uint64_t *addrs = chunk.memAddr.data() + off;
        const uint8_t *flags = chunk.flags.data() + off;
        const size_t prog_size = src->prog.size();
        ExecRecord *recs = out + done;
        for (uint64_t i = 0; i < run; ++i) {
            const uint64_t pc = pcs[i];
            const uint8_t f = flags[i];
            YASIM_DCHECK_LT(pc, prog_size);
            const Instruction &inst = code[pc];
            const bool taken = (f & 1) != 0;
            ExecRecord &r = recs[i];
            r.inst = &inst;
            r.pc = pc;
            // Exactly FunctionalSim's successor definition.
            r.nextPc =
                taken ? static_cast<uint64_t>(inst.imm) : pc + 1;
            r.memAddr = addrs[i];
            r.taken = taken;
            r.trivial = (f & 2) != 0;
        }
        cursor += run;
        done += run;
    }
    return done;
}

uint64_t
TraceReplayer::fastForward(uint64_t count)
{
    // The whole point: skipping recorded instructions costs nothing.
    const uint64_t advanced = std::min(count, end - cursor);
    cursor += advanced;
    return advanced;
}

uint64_t
TraceReplayer::fastForwardWarm(uint64_t count, MemoryHierarchy *hierarchy,
                               CombinedPredictor *bp)
{
    // Must issue the exact warming call sequence of the live
    // interpreter (FunctionalSim::execOne<_, true>) so warmed caches
    // and predictors end up bit-identical. Processed as chunk-resident
    // spans: the chunk lookup and column pointers are hoisted out of
    // the per-record warming loop.
    uint64_t done = 0;
    while (done < count && cursor < end) {
        const ExecTrace::Chunk &chunk =
            src->chunks[cursor >> ExecTrace::chunkShift];
        const size_t off = cursor & ExecTrace::chunkMask;
        const uint64_t run =
            std::min({count - done, end - cursor,
                      static_cast<uint64_t>(chunk.pc.size() - off)});
        const uint32_t *pcs = chunk.pc.data() + off;
        const uint64_t *addrs = chunk.memAddr.data() + off;
        const uint8_t *flags = chunk.flags.data() + off;
        for (uint64_t i = 0; i < run; ++i) {
            const uint64_t pc = pcs[i];
            const Instruction &inst = code[pc];
            const bool taken = (flags[i] & 1) != 0;
            const uint64_t next_pc =
                taken ? static_cast<uint64_t>(inst.imm) : pc + 1;
            if (hierarchy) {
                hierarchy->warmInst(Program::pcAddress(pc));
                if (inst.isLoad() || inst.isStore())
                    hierarchy->warmData(addrs[i]);
            }
            if (bp && inst.isControl()) {
                bp->warmUpdate(Program::pcAddress(pc),
                               inst.isCondBranch(), taken,
                               Program::pcAddress(next_pc));
            }
        }
        cursor += run;
        done += run;
    }
    return done;
}

void
TraceReplayer::seek(uint64_t position)
{
    cursor = std::min(position, end);
}

const TraceReplayer::DecodedUop *
TraceReplayer::decodeRun(uint64_t max, uint64_t &count)
{
    if (cursor >= end || max == 0) {
        count = 0;
        return nullptr;
    }
    const ExecTrace::Chunk &chunk =
        src->chunks[cursor >> ExecTrace::chunkShift];
    const size_t off = cursor & ExecTrace::chunkMask;
    const uint64_t run =
        std::min({max, end - cursor,
                  static_cast<uint64_t>(chunk.pc.size() - off)});
    if (decoded.size() < run)
        decoded.resize(run);

    const uint32_t *pcs = chunk.pc.data() + off;
    const uint64_t *addrs = chunk.memAddr.data() + off;
    const uint8_t *flags = chunk.flags.data() + off;
    const size_t prog_size = src->prog.size();
    for (uint64_t i = 0; i < run; ++i) {
        const uint64_t pc = pcs[i];
        const uint8_t f = flags[i];
        YASIM_DCHECK_LT(pc, prog_size);
        const Instruction &inst = code[pc];
        const bool taken = (f & 1) != 0;
        DecodedUop &u = decoded[i];
        u.inst = &inst;
        u.memAddr = addrs[i];
        u.pc = pc;
        // Exactly FunctionalSim's definition of the successor.
        u.nextPc = taken ? static_cast<uint64_t>(inst.imm) : pc + 1;
        u.taken = taken;
        u.trivial = (f & 2) != 0;
    }
    count = run;
    return decoded.data();
}

void
TraceReplayer::advance(uint64_t n)
{
    YASIM_DCHECK_LE(n, end - cursor);
    cursor += n;
}

} // namespace yasim
