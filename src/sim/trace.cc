#include "sim/trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>

#include "sim/bb_profiler.hh"
#include "support/check.hh"
#include "support/logging.hh"

namespace yasim {

namespace {

constexpr char kTraceMagic[] = "yasim-trace";
/** Trailing sentinel guarding against truncated binary payloads. */
constexpr uint64_t kTraceEndMark = 0x59415349'4d454e44ULL;

template <typename T>
void
putRaw(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
getRaw(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    return is.good();
}

template <typename T>
void
putVec(std::ostream &os, const std::vector<T> &v)
{
    os.write(reinterpret_cast<const char *>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool
getVec(std::istream &is, std::vector<T> &v, size_t n)
{
    v.resize(n);
    is.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    return is.good();
}

} // namespace

// --- ExecTrace: recording ---------------------------------------------------

void
ExecTrace::append(uint64_t pc, uint64_t mem_addr, uint8_t flags)
{
    if ((total & chunkMask) == 0) {
        chunks.emplace_back();
        Chunk &c = chunks.back();
        c.pc.reserve(chunkInsts);
        c.memAddr.reserve(chunkInsts);
        c.flags.reserve(chunkInsts);
    }
    Chunk &c = chunks.back();
    c.pc.push_back(static_cast<uint32_t>(pc));
    c.memAddr.push_back(mem_addr);
    c.flags.push_back(flags);
    ++total;
}

std::shared_ptr<const ExecTrace>
ExecTrace::record(const Program &program)
{
    return record(program, Options{});
}

std::shared_ptr<const ExecTrace>
ExecTrace::record(const Program &program, const Options &options)
{
    YASIM_CHECK(program.size() <= UINT32_MAX,
                "program too large to trace (%zu static instructions)",
                program.size());
    std::shared_ptr<ExecTrace> trace(new ExecTrace(program));

    const bool adaptive = options.checkpointSpacing == 0;
    uint64_t spacing =
        adaptive ? uint64_t(64) * 1024 : options.checkpointSpacing;

    FunctionalSim sim(trace->prog);
    BbProfiler profiler(trace->prog);
    ExecRecord rec;
    uint64_t next_ckpt = spacing;
    while (sim.step(rec)) {
        profiler.record(rec.pc);
        trace->append(rec.pc, rec.memAddr,
                      static_cast<uint8_t>((rec.taken ? 1 : 0) |
                                           (rec.trivial ? 2 : 0)));
        if (sim.instsExecuted() == next_ckpt && !sim.halted()) {
            if (adaptive &&
                trace->checkpoints.size() == maxCheckpoints) {
                // Thin the ladder to every other snapshot and double
                // the spacing: at most maxCheckpoints are ever kept,
                // and at most 2x that are ever captured.
                std::vector<Checkpoint> kept;
                for (size_t i = 1; i < trace->checkpoints.size(); i += 2)
                    kept.push_back(std::move(trace->checkpoints[i]));
                trace->checkpoints.swap(kept);
                spacing *= 2;
                next_ckpt = trace->checkpoints.empty()
                                ? spacing
                                : trace->checkpoints.back().instruction() +
                                      spacing;
                if (sim.instsExecuted() != next_ckpt)
                    continue;
            }
            trace->checkpoints.push_back(Checkpoint::capture(sim));
            next_ckpt += spacing;
        }
    }
    trace->total = sim.instsExecuted();
    trace->spacing = spacing;
    trace->bbefCounts = profiler.bbef();
    trace->bbvCounts = profiler.bbv();
    // The closed form must track the incremental thinning exactly, or
    // shard plans would diverge between replay and live mode.
    if (adaptive)
        YASIM_DCHECK_EQ(trace->spacing, ladderSpacingFor(trace->total));
    return trace;
}

uint64_t
ExecTrace::ladderSpacingFor(uint64_t length)
{
    uint64_t spacing = uint64_t(64) * 1024;
    if (length == 0)
        return spacing;
    // floor((length-1)/spacing) counts the ladder rungs (multiples of
    // the spacing strictly before the halt); record() thins whenever a
    // rung past maxCheckpoints would be captured.
    while ((length - 1) / spacing > maxCheckpoints)
        spacing *= 2;
    return spacing;
}

size_t
ExecTrace::footprintBytes() const
{
    size_t bytes = sizeof(*this);
    for (const Chunk &c : chunks) {
        bytes += c.pc.capacity() * sizeof(uint32_t) +
                 c.memAddr.capacity() * sizeof(uint64_t) +
                 c.flags.capacity() * sizeof(uint8_t);
    }
    for (const Checkpoint &cp : checkpoints)
        bytes += cp.footprintBytes();
    bytes += (bbefCounts.capacity() + bbvCounts.capacity()) *
             sizeof(double);
    bytes += prog.size() * sizeof(Instruction);
    return bytes;
}

const Checkpoint *
ExecTrace::checkpointAtOrBefore(uint64_t position) const
{
    const Checkpoint *best = nullptr;
    for (const Checkpoint &cp : checkpoints) {
        if (cp.instruction() <= position)
            best = &cp;
        else
            break;
    }
    return best;
}

uint64_t
ExecTrace::restoreTo(FunctionalSim &sim, uint64_t position) const
{
    YASIM_CHECK_LE(position, total);
    const Checkpoint *cp = checkpointAtOrBefore(position);
    if (cp && cp->instruction() >= sim.instsExecuted())
        cp->restore(sim);
    YASIM_CHECK_LE(sim.instsExecuted(), position);
    return sim.fastForward(position - sim.instsExecuted());
}

// --- ExecTrace: serialization ----------------------------------------------

void
ExecTrace::write(std::ostream &os, const std::string &key_text) const
{
    os << kTraceMagic << " " << kTraceFormatVersion << "\n";
    os << "key " << key_text << "\n";
    os << "meta length=" << total << " spacing=" << spacing
       << " program=" << prog.size() << " blocks=" << prog.numBlocks()
       << " checkpoints=" << checkpoints.size() << "\n";
    for (const Chunk &c : chunks) {
        putRaw(os, static_cast<uint64_t>(c.pc.size()));
        putVec(os, c.pc);
        putVec(os, c.memAddr);
        putVec(os, c.flags);
    }
    for (const Checkpoint &cp : checkpoints)
        cp.writeBinary(os);
    putVec(os, bbefCounts);
    putVec(os, bbvCounts);
    putRaw(os, kTraceEndMark);
}

std::shared_ptr<const ExecTrace>
ExecTrace::read(std::istream &is, const std::string &key_text,
                const Program &program)
{
    std::string line;
    if (!std::getline(is, line) ||
        line != csprintf("%s %d", kTraceMagic, kTraceFormatVersion)) {
        return nullptr;
    }
    if (!std::getline(is, line) || line != "key " + key_text)
        return nullptr;
    uint64_t length = 0, spacing = 0, prog_size = 0, blocks = 0,
             n_ckpts = 0;
    if (!std::getline(is, line) ||
        std::sscanf(line.c_str(),
                    "meta length=%" SCNu64 " spacing=%" SCNu64
                    " program=%" SCNu64 " blocks=%" SCNu64
                    " checkpoints=%" SCNu64,
                    &length, &spacing, &prog_size, &blocks,
                    &n_ckpts) != 5) {
        return nullptr;
    }
    if (prog_size != program.size() || blocks != program.numBlocks() ||
        n_ckpts > length) {
        return nullptr;
    }

    std::shared_ptr<ExecTrace> trace(new ExecTrace(program));
    trace->total = length;
    trace->spacing = spacing;
    uint64_t remaining = length;
    while (remaining > 0) {
        uint64_t n = 0;
        if (!getRaw(is, n) || n == 0 || n > chunkInsts || n > remaining)
            return nullptr;
        trace->chunks.emplace_back();
        Chunk &c = trace->chunks.back();
        if (!getVec(is, c.pc, n) || !getVec(is, c.memAddr, n) ||
            !getVec(is, c.flags, n)) {
            return nullptr;
        }
        for (uint32_t pc : c.pc)
            if (pc >= prog_size)
                return nullptr;
        remaining -= n;
    }
    trace->checkpoints.reserve(n_ckpts);
    for (uint64_t i = 0; i < n_ckpts; ++i) {
        Checkpoint cp; // constructible here: ExecTrace is a friend
        if (!Checkpoint::readBinary(is, cp))
            return nullptr;
        trace->checkpoints.push_back(std::move(cp));
    }
    if (!getVec(is, trace->bbefCounts, blocks) ||
        !getVec(is, trace->bbvCounts, blocks)) {
        return nullptr;
    }
    uint64_t end_mark = 0;
    if (!getRaw(is, end_mark) || end_mark != kTraceEndMark)
        return nullptr;
    return trace;
}

// --- TraceReplayer ----------------------------------------------------------

TraceReplayer::TraceReplayer(std::shared_ptr<const ExecTrace> trace)
    : src(std::move(trace)), code(src->prog.code()), end(src->total)
{
}

bool
TraceReplayer::step(ExecRecord &record)
{
    if (cursor >= end)
        return false;
    YASIM_DCHECK_LT(cursor >> ExecTrace::chunkShift,
                    src->chunks.size());
    const ExecTrace::Chunk &chunk =
        src->chunks[cursor >> ExecTrace::chunkShift];
    const size_t off = cursor & ExecTrace::chunkMask;
    const uint64_t pc = chunk.pc[off];
    const uint8_t flags = chunk.flags[off];
    YASIM_DCHECK_LT(pc, src->prog.size());
    const Instruction &inst = code[pc];
    const bool taken = (flags & 1) != 0;
    record.inst = &inst;
    record.pc = pc;
    // Exactly FunctionalSim's definition: branch target or fall-through.
    record.nextPc = taken ? static_cast<uint64_t>(inst.imm) : pc + 1;
    record.memAddr = chunk.memAddr[off];
    record.taken = taken;
    record.trivial = (flags & 2) != 0;
    ++cursor;
    return true;
}

uint64_t
TraceReplayer::fastForward(uint64_t count)
{
    // The whole point: skipping recorded instructions costs nothing.
    const uint64_t advanced = std::min(count, end - cursor);
    cursor += advanced;
    return advanced;
}

uint64_t
TraceReplayer::fastForwardWarm(uint64_t count, MemoryHierarchy *hierarchy,
                               CombinedPredictor *bp)
{
    // Must issue the exact warming call sequence of the live
    // interpreter (FunctionalSim::execOne<_, true>) so warmed caches
    // and predictors end up bit-identical.
    uint64_t done = 0;
    while (done < count && cursor < end) {
        const ExecTrace::Chunk &chunk =
            src->chunks[cursor >> ExecTrace::chunkShift];
        const size_t off = cursor & ExecTrace::chunkMask;
        const uint64_t pc = chunk.pc[off];
        const uint8_t flags = chunk.flags[off];
        const Instruction &inst = code[pc];
        const bool taken = (flags & 1) != 0;
        const uint64_t next_pc =
            taken ? static_cast<uint64_t>(inst.imm) : pc + 1;
        if (hierarchy) {
            hierarchy->warmInst(Program::pcAddress(pc));
            if (inst.isLoad() || inst.isStore())
                hierarchy->warmData(chunk.memAddr[off]);
        }
        if (bp && inst.isControl()) {
            bp->warmUpdate(Program::pcAddress(pc), inst.isCondBranch(),
                           taken, Program::pcAddress(next_pc));
        }
        ++cursor;
        ++done;
    }
    return done;
}

void
TraceReplayer::seek(uint64_t position)
{
    cursor = std::min(position, end);
}

const TraceReplayer::DecodedUop *
TraceReplayer::decodeRun(uint64_t max, uint64_t &count)
{
    if (cursor >= end || max == 0) {
        count = 0;
        return nullptr;
    }
    const ExecTrace::Chunk &chunk =
        src->chunks[cursor >> ExecTrace::chunkShift];
    const size_t off = cursor & ExecTrace::chunkMask;
    const uint64_t run =
        std::min({max, end - cursor,
                  static_cast<uint64_t>(chunk.pc.size() - off)});
    if (decoded.size() < run)
        decoded.resize(run);

    const uint32_t *pcs = chunk.pc.data() + off;
    const uint64_t *addrs = chunk.memAddr.data() + off;
    const uint8_t *flags = chunk.flags.data() + off;
    const size_t prog_size = src->prog.size();
    for (uint64_t i = 0; i < run; ++i) {
        const uint64_t pc = pcs[i];
        const uint8_t f = flags[i];
        YASIM_DCHECK_LT(pc, prog_size);
        const Instruction &inst = code[pc];
        const bool taken = (f & 1) != 0;
        DecodedUop &u = decoded[i];
        u.inst = &inst;
        u.memAddr = addrs[i];
        u.pc = pc;
        // Exactly FunctionalSim's definition of the successor.
        u.nextPc = taken ? static_cast<uint64_t>(inst.imm) : pc + 1;
        u.taken = taken;
        u.trivial = (f & 2) != 0;
    }
    count = run;
    return decoded.data();
}

void
TraceReplayer::advance(uint64_t n)
{
    YASIM_DCHECK_LE(n, end - cursor);
    cursor += n;
}

} // namespace yasim
