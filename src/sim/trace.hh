/**
 * @file
 * Execution-trace record/replay: run the functional interpreter once,
 * replay its ExecRecord stream many times.
 *
 * The architectural instruction stream depends only on the program, not
 * on the machine configuration, yet every technique historically
 * re-interpreted from instruction zero per configuration. An ExecTrace
 * captures one full interpretation into a chunked structure-of-arrays
 * buffer — 13 bytes per dynamic instruction in memory (4 pc + 8
 * memAddr + 1 flags; nextPc is derivable, see below), delta/byte-plane
 * compressed to ~1-2 bytes per instruction on disk — together with the
 * program,
 * the full-run BBEF/BBV profile, and a ladder of embedded architectural
 * checkpoints. A TraceReplayer then implements StepSource over the
 * recording:
 *
 *  - step() is an array load instead of interpretation,
 *  - stepBatch() serves whole chunk-resident SoA spans with the flag
 *    unpacking and nextPc reconstruction kept branch-free and no
 *    per-record virtual call,
 *  - fastForward() is a cursor jump (O(1) instead of O(n)),
 *  - fastForwardWarm() replays the exact live warming call sequence,
 *
 * and every consumer of the stream (OooCore::run, the techniques, the
 * profilers) produces bit-identical results from replay and from live
 * stepping. nextPc is not stored: FunctionalSim defines it as
 * `taken ? inst.imm : pc + 1`, so the replayer recomputes it exactly.
 *
 * Traces are immutable once recorded (or deserialized), so one
 * shared_ptr<const ExecTrace> is safely shared by any number of worker
 * threads, each with its own TraceReplayer cursor. Sharing and disk
 * spill live one layer up in techniques/trace_store.hh.
 */

#ifndef YASIM_SIM_TRACE_HH
#define YASIM_SIM_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/step_source.hh"

namespace yasim {

class FunctionalSim;

/**
 * Bumped whenever the on-disk trace layout or the semantics of the
 * recorded stream change; stale spills then miss instead of replaying
 * a stream with different meaning. Version 4: chunks are serialized as
 * delta/byte-plane encoded streams (varint + RLE, see trace.cc) at
 * roughly 1-2 bytes per instruction instead of the raw 13-byte SoA
 * rows. Version 3: embedded checkpoints use the version-3 layout
 * (optional warmed-uarch summary trailer).
 */
// yasim-lint: version(trace)
constexpr int kTraceFormatVersion = 4;

/** An immutable recording of one program's full execution. */
class ExecTrace
{
  public:
    struct Options
    {
        /**
         * Embedded-checkpoint spacing in instructions. 0 = adaptive:
         * start at 64Ki and double (thinning the ladder) so at most
         * maxCheckpoints snapshots are kept regardless of run length.
         */
        uint64_t checkpointSpacing = 0;
    };

    /** Ladder bound for adaptive checkpoint spacing. */
    static constexpr size_t maxCheckpoints = 16;

    /**
     * Record @p program's complete execution (one functional
     * interpretation — the single pass a whole configuration sweep
     * amortizes). The program is copied into the trace.
     */
    static std::shared_ptr<const ExecTrace> record(const Program &program,
                                                   const Options &options);
    static std::shared_ptr<const ExecTrace> record(const Program &program);

    /** Dynamic length of the recording (Halt included). */
    uint64_t length() const { return total; }

    /** The recorded program (owned by the trace). */
    const Program &program() const { return prog; }

    /** Full-run block-entry profile (BbProfiler, weight 1.0). */
    const std::vector<double> &bbef() const { return bbefCounts; }

    /** Full-run basic-block vector (BbProfiler, weight 1.0). */
    const std::vector<double> &bbv() const { return bbvCounts; }

    /** Approximate in-memory footprint in bytes. */
    size_t footprintBytes() const;

    /** Number of embedded checkpoints. */
    size_t numCheckpoints() const { return checkpoints.size(); }

    /** Final checkpoint spacing (after adaptive doubling). */
    uint64_t checkpointSpacing() const { return spacing; }

    /**
     * The spacing the adaptive ladder (Options::checkpointSpacing == 0)
     * converges to for a run of @p length instructions: the smallest
     * 64Ki * 2^k whose rung count stays within maxCheckpoints. Shard
     * planning aligns boundaries to this canonical ladder in both
     * replay and live mode, so shard plans — and therefore sharded
     * results — are identical with and without a trace.
     */
    static uint64_t ladderSpacingFor(uint64_t length);

    /**
     * The latest embedded checkpoint at or before dynamic position
     * @p position, or nullptr when none qualifies.
     */
    const Checkpoint *checkpointAtOrBefore(uint64_t position) const;

    /**
     * Position a live simulator at @p position instructions executed,
     * restoring from the nearest embedded checkpoint and fast-
     * forwarding the remainder. @p sim must run this trace's program
     * (structurally) and must not already be past @p position.
     * @return instructions fast-forwarded (the residual cost).
     */
    uint64_t restoreTo(FunctionalSim &sim, uint64_t position) const;

    /**
     * Serialize to @p os: a text header carrying the format version
     * and @p key_text, then a native-endian binary payload. The spill
     * is a per-machine cache, not an interchange format.
     */
    void write(std::ostream &os, const std::string &key_text) const;

    /**
     * Deserialize a trace written by write(). Returns nullptr unless
     * the magic, version, and @p key_text all match and the payload is
     * structurally consistent with @p program.
     */
    static std::shared_ptr<const ExecTrace>
    read(std::istream &is, const std::string &key_text,
         const Program &program);

  private:
    friend class TraceReplayer;

    explicit ExecTrace(const Program &program) : prog(program) {}

    static constexpr uint32_t chunkShift = 16;
    static constexpr uint64_t chunkInsts = 1ULL << chunkShift;
    static constexpr uint64_t chunkMask = chunkInsts - 1;

    /** Structure-of-arrays storage for one run of chunkInsts records. */
    struct Chunk
    {
        std::vector<uint32_t> pc;
        std::vector<uint64_t> memAddr;
        /** bit 0 = taken, bit 1 = trivial. */
        std::vector<uint8_t> flags;
    };

    void appendBatch(const ExecRecord *recs, uint64_t n);

    Program prog;
    std::vector<Chunk> chunks;
    std::vector<Checkpoint> checkpoints;
    std::vector<double> bbefCounts;
    std::vector<double> bbvCounts;
    uint64_t total = 0;
    uint64_t spacing = 0;
};

/** StepSource over an ExecTrace: one cursor, any number per trace. */
class TraceReplayer final : public StepSource
{
  public:
    explicit TraceReplayer(std::shared_ptr<const ExecTrace> trace);

    bool step(ExecRecord &record) override;
    uint64_t stepBatch(ExecRecord *out, uint64_t n) override;
    uint64_t fastForward(uint64_t count) override;
    uint64_t fastForwardWarm(uint64_t count, MemoryHierarchy *mem,
                             CombinedPredictor *bp) override;
    bool halted() const override { return cursor >= end; }
    uint64_t instsExecuted() const override { return cursor; }

    /** Jump the cursor to absolute position @p position (clamped). */
    void seek(uint64_t position);

    /** The trace being replayed. */
    const ExecTrace &trace() const { return *src; }

    /**
     * One pre-decoded replay record: everything the timing model
     * consumes, with the per-step flag unpacking, nextPc computation,
     * and pc bounds check hoisted out of the hot loop.
     */
    struct DecodedUop
    {
        const Instruction *inst;
        uint64_t memAddr;
        uint64_t pc;
        uint64_t nextPc;
        bool taken;
        bool trivial;
    };

    /**
     * Decode up to @p max records starting at the cursor into a flat
     * internal buffer (bounded by the current SoA chunk, so at most
     * one decode pass per chunk). Does not move the cursor; pair with
     * advance(). @p count receives the run length; the return value is
     * null iff the run is empty (cursor at end).
     */
    const DecodedUop *decodeRun(uint64_t max, uint64_t &count);

    /** Consume @p n records previously returned by decodeRun. */
    void advance(uint64_t n);

  private:
    std::shared_ptr<const ExecTrace> src;
    /** src->prog's instruction array, hoisted out of the replay loop. */
    const Instruction *code;
    uint64_t cursor = 0;
    uint64_t end;
    /** decodeRun's buffer (lazily sized to one chunk). */
    std::vector<DecodedUop> decoded;
};

} // namespace yasim

#endif // YASIM_SIM_TRACE_HH
