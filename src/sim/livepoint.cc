#include "sim/livepoint.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <optional>
#include <sstream>
#include <system_error>
#include <unordered_set>

#include "sim/bb_profiler.hh"
#include "sim/functional.hh"
#include "sim/ooo_core.hh"
#include "sim/trace.hh"
#include "support/artifact_io.hh"
#include "support/check.hh"
#include "support/codec.hh"
#include "support/hash.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/memory_hierarchy.hh"
#include "uarch/warm_state.hh"

namespace yasim {

namespace {

/** Inner frame magic for standalone live-point files. */
constexpr const char *kLivePointMagic = "yasim-lvpt";

/** Instructions functionally warmed between cancellation polls. */
constexpr uint64_t kWarmCancelChunk = 1 << 20;

/** Structural bound on the captured word slice (2^27 words = 1 GB). */
constexpr uint64_t kMaxWords = 1ULL << 27;

/** Mix @p program's full content — the stream identity. */
void
hashProgram(Hasher &h, const Program &program)
{
    h.u64(program.size());
    const Instruction *code = program.code();
    for (uint64_t i = 0; i < program.size(); ++i) {
        const Instruction &inst = code[i];
        h.u32(static_cast<uint32_t>(inst.op));
        h.u32(static_cast<uint32_t>(inst.rd));
        h.u32(static_cast<uint32_t>(inst.rs1));
        h.u32(static_cast<uint32_t>(inst.rs2));
        h.u64(static_cast<uint64_t>(inst.imm));
    }
}

/**
 * Identity of one live-point library: the "livepoints{...}" cache-key
 * segment. Everything that shapes a point's bytes is in here — the
 * format versions, the program content, the sampling grid, and the
 * warm-relevant configuration. The warm stream is architectural, so
 * timing-only parameters (latencies, core sizing, bus width) are
 * deliberately excluded and a latency sweep over one machine shares
 * one library on disk.
 */
// yasim-lint: key(warm) covers CacheConfig(uarch/cache.hh)
// yasim-lint: key(warm) covers BranchPredictorConfig(uarch/branch_predictor.hh)
// yasim-lint: key(warm) covers MemoryConfig(uarch/memory_hierarchy.hh)
// yasim-lint: key(warm) covers SimConfig(sim/config.hh)
// yasim-lint: key(livepoint) covers SamplingPlan(sim/livepoint.hh)
std::string
livePointLibraryKey(const Program &program, const SamplingPlan &plan,
                    const SimConfig &config)
{
    Hasher h;
    h.u32(kLivePointFormatVersion);
    h.u32(kWarmStateFormatVersion);
    hashProgram(h, program);

    auto cache = [&h](const CacheConfig &c) {
        h.u32(c.sizeKb).u32(c.assoc).u32(c.blockBytes);
        h.u32(static_cast<uint32_t>(c.replacement));
    };
    cache(config.mem.l1i);
    cache(config.mem.l1d);
    cache(config.mem.l2);
    h.u32(config.mem.itlbEntries).u32(config.mem.dtlbEntries);
    h.b(config.mem.nextLinePrefetch);

    h.u32(static_cast<uint32_t>(config.bp.kind));
    h.u32(config.bp.bhtEntries).u32(config.bp.globalHistoryBits);
    h.u32(config.bp.btbEntries).u32(config.bp.btbAssoc);
    h.b(config.bp.speculativeUpdate);

    return csprintf(
        "livepoints{v=%u|u=%llu|w=%llu|len=%llu|p=%llu|n=%llu|id=%s}",
        kLivePointFormatVersion,
        static_cast<unsigned long long>(plan.unitInsts),
        static_cast<unsigned long long>(plan.warmupInsts),
        static_cast<unsigned long long>(plan.length),
        static_cast<unsigned long long>(plan.period),
        static_cast<unsigned long long>(plan.maxUnits),
        h.hex().c_str());
}

} // namespace

SamplingPlan
SamplingPlan::make(uint64_t unit_insts, uint64_t warmup_insts,
                   uint64_t length)
{
    YASIM_ASSERT(unit_insts >= 1);
    SamplingPlan plan;
    plan.unitInsts = unit_insts;
    // A warm-up longer than the whole run would swallow it; degrade to
    // the largest warm-up that still leaves room for at least one
    // measured unit (the historical SMARTS rule).
    if (unit_insts + warmup_insts >= length) {
        warmup_insts =
            length > 2 * unit_insts ? length - 2 * unit_insts : 0;
    }
    plan.warmupInsts = warmup_insts;
    plan.length = length;
    uint64_t span = plan.span();
    plan.maxUnits = std::max<uint64_t>(span > 0 ? length / span : 0, 1);
    plan.period = std::max<uint64_t>(length / plan.maxUnits, 1);
    return plan;
}

uint64_t
SamplingPlan::strideFor(uint64_t n) const
{
    uint64_t target = std::max<uint64_t>(std::min(n, maxUnits), 1);
    uint64_t stride = 1;
    // Largest power of two whose selection still reaches the target;
    // halving the stride always yields a superset of the selection.
    // Past maxUnits the selection is {0} no matter what, so stop
    // doubling there (a target of 1 would otherwise never converge).
    while (stride < maxUnits &&
           (maxUnits + stride * 2 - 1) / (stride * 2) >= target) {
        stride *= 2;
    }
    return stride;
}

std::vector<uint64_t>
SamplingPlan::indicesFor(uint64_t n) const
{
    uint64_t stride = strideFor(n);
    std::vector<uint64_t> indices;
    indices.reserve((maxUnits + stride - 1) / stride);
    for (uint64_t j = 0; j < maxUnits; j += stride)
        indices.push_back(j);
    return indices;
}

LivePoint
LivePoint::atPosition(uint64_t position)
{
    LivePoint p;
    p.icount = position;
    return p;
}

LivePoint
LivePoint::captureArch(const FunctionalSim &sim)
{
    LivePoint p;
    p.pc = sim.curPc;
    p.icount = sim.icount;
    p.halted = sim.isHalted;
    p.intRegs.assign(sim.intRegs, sim.intRegs + numIntRegs);
    p.fpRegs.assign(sim.fpRegs, sim.fpRegs + numFpRegs);
    return p;
}

void
LivePoint::noteWord(uint64_t addr, int64_t value)
{
    // A zero word is indistinguishable from untouched memory, and a
    // restore target starts zeroed — skip it.
    if (value != 0)
        words.emplace_back(addr, value);
}

void
LivePoint::restoreArch(FunctionalSim &sim) const
{
    YASIM_CHECK(hasArchState(),
                "restoring a warm-only live-point (position %llu) into "
                "a live simulator",
                static_cast<unsigned long long>(icount));
    sim.curPc = pc;
    sim.icount = icount;
    sim.isHalted = halted;
    std::copy(intRegs.begin(), intRegs.end(), sim.intRegs);
    std::copy(fpRegs.begin(), fpRegs.end(), sim.fpRegs);
    sim.mem.clear();
    for (const auto &[addr, value] : words)
        sim.mem.write(addr, value);
}

void
LivePoint::attachUarch(const MemoryHierarchy &mem,
                       const CombinedPredictor &bp, const std::string &key)
{
    std::ostringstream os;
    mem.serializeWarmState(os);
    bp.serializeWarmState(os);
    warmBlob = os.str();
    warmKey = key;
}

bool
LivePoint::restoreUarch(MemoryHierarchy &mem, CombinedPredictor &bp,
                        const std::string &key) const
{
    if (warmBlob.empty() || key != warmKey)
        return false;
    std::istringstream is(warmBlob);
    if (!mem.deserializeWarmState(is) || !bp.deserializeWarmState(is))
        return false;
    // Trailing bytes mean the blob was produced by a different layout
    // that happened to parse; refuse it.
    return is.peek() == std::istringstream::traits_type::eof();
}

bool
LivePoint::stepWarm(FunctionalSim &sim, ExecRecord &record,
                    MemoryHierarchy *mem, CombinedPredictor *bp)
{
    if (sim.isHalted)
        return false;
    sim.execOne<true, true>(&record, mem, bp);
    return true;
}

size_t
LivePoint::footprintBytes() const
{
    return sizeof(*this) + intRegs.size() * sizeof(int64_t) +
           fpRegs.size() * sizeof(double) +
           words.size() * sizeof(words[0]) + warmKey.size() +
           warmBlob.size();
}

// yasim-lint: serialized(livepoint)
std::string
LivePoint::encode() const
{
    std::string out;
    putVarint(out, icount);
    out.push_back(hasArchState() ? 1 : 0);
    if (hasArchState()) {
        putVarint(out, pc);
        out.push_back(halted ? 1 : 0);
        putVarint(out, intRegs.size());
        for (int64_t r : intRegs)
            putVarint(out, zigzagEncode(r));
        putVarint(out, fpRegs.size());
        for (double r : fpRegs) {
            char bits[sizeof(double)];
            std::memcpy(bits, &r, sizeof(double));
            out.append(bits, sizeof(double));
        }
        // Words delta-encode best in address order; capture order is
        // first-access order, so sort a copy (restore order is free).
        std::vector<std::pair<uint64_t, int64_t>> sorted(words);
        std::sort(sorted.begin(), sorted.end());
        putVarint(out, sorted.size());
        uint64_t prev = 0;
        for (const auto &[addr, value] : sorted) {
            putVarint(out, addr - prev);
            putVarint(out, zigzagEncode(value));
            prev = addr;
        }
    }
    out.push_back(hasUarch() ? 1 : 0);
    if (hasUarch()) {
        putVarint(out, warmKey.size());
        out.append(warmKey);
        // The warm blob is table-shaped (long zero and LRU runs) and
        // compresses well under the self-delimiting byte RLE.
        putVarint(out, warmBlob.size());
        std::string rle;
        rleEncode(warmBlob, rle);
        putVarint(out, rle.size());
        out.append(rle);
    }
    return out;
}

// yasim-lint: serialized(livepoint)
bool
LivePoint::decode(std::string_view payload, LivePoint &out)
{
    out = LivePoint();
    size_t at = 0;
    uint64_t v = 0;
    if (!getVarint(payload, at, v))
        return false;
    out.icount = v;
    if (at >= payload.size())
        return false;
    const bool has_arch = payload[at++] != 0;
    if (has_arch) {
        if (!getVarint(payload, at, out.pc) || at >= payload.size())
            return false;
        out.halted = payload[at++] != 0;
        uint64_t n_int = 0, n_fp = 0, n_words = 0;
        if (!getVarint(payload, at, n_int) || n_int > 4096)
            return false;
        out.intRegs.resize(n_int);
        for (int64_t &r : out.intRegs) {
            if (!getVarint(payload, at, v))
                return false;
            r = zigzagDecode(v);
        }
        if (!getVarint(payload, at, n_fp) || n_fp > 4096)
            return false;
        if (payload.size() - at < n_fp * sizeof(double))
            return false;
        out.fpRegs.resize(n_fp);
        for (double &r : out.fpRegs) {
            std::memcpy(&r, payload.data() + at, sizeof(double));
            at += sizeof(double);
        }
        if (!getVarint(payload, at, n_words) || n_words > kMaxWords)
            return false;
        out.words.reserve(n_words);
        uint64_t prev = 0, delta = 0;
        for (uint64_t i = 0; i < n_words; ++i) {
            if (!getVarint(payload, at, delta) ||
                !getVarint(payload, at, v)) {
                return false;
            }
            prev += delta;
            // A zero value or a repeated address cannot come from an
            // honest encode (zeros are skipped, addresses strictly
            // ascend after the first).
            if (zigzagDecode(v) == 0 || (i > 0 && delta == 0))
                return false;
            out.words.emplace_back(prev, zigzagDecode(v));
        }
    }
    if (at >= payload.size())
        return false;
    const bool has_warm = payload[at++] != 0;
    if (has_warm) {
        uint64_t key_len = 0, raw_len = 0, rle_len = 0;
        if (!getVarint(payload, at, key_len) || key_len > 4096 ||
            payload.size() - at < key_len) {
            return false;
        }
        out.warmKey.assign(payload.substr(at, key_len));
        at += key_len;
        // Bounded like the checkpoint trailer: orders of magnitude
        // above any real table geometry.
        if (!getVarint(payload, at, raw_len) ||
            raw_len > (256ULL << 20)) {
            return false;
        }
        if (!getVarint(payload, at, rle_len) ||
            payload.size() - at < rle_len) {
            return false;
        }
        out.warmBlob.reserve(raw_len);
        if (!rleDecode(payload.substr(at, rle_len), out.warmBlob,
                       raw_len) ||
            out.warmBlob.size() != raw_len) {
            return false;
        }
        at += rle_len;
        if (out.warmBlob.empty())
            return false;
    }
    return at == payload.size();
}

// yasim-lint: serialized(livepoint)
bool
LivePoint::saveFile(const std::string &path, LivePointCounters *ctr) const
{
    ArtifactWriteResult wrote = writeArtifact(
        path, kLivePointMagic, kLivePointFormatVersion, encode());
    if (ctr)
        ctr->ioRetries += wrote.retries;
    if (!wrote.ok) {
        warn("cannot write live-point file '%s': %s", path.c_str(),
             wrote.error.c_str());
        return false;
    }
    if (ctr)
        ++ctr->diskWrites;
    return true;
}

// yasim-lint: serialized(livepoint)
bool
LivePoint::loadFile(const std::string &path, LivePoint &out,
                    LivePointCounters *ctr)
{
    ArtifactReadResult read =
        readArtifact(path, kLivePointMagic, kLivePointFormatVersion);
    if (ctr) {
        ctr->ioRetries += read.retries;
        if (read.quarantined)
            ++ctr->quarantined;
        if (read.status == ArtifactStatus::VersionMismatch)
            ++ctr->versionMisses;
    }
    if (read.status == ArtifactStatus::Missing)
        return false;
    if (read.status != ArtifactStatus::Ok) {
        if (read.status != ArtifactStatus::VersionMismatch)
            warn("live-point file '%s' unusable (%s)", path.c_str(),
                 read.error.c_str());
        return false;
    }
    if (!decode(read.payload, out)) {
        // Frame verified but the payload did not parse cleanly:
        // quarantine so the next lookup rebuilds instead of re-tripping.
        quarantineArtifact(path);
        if (ctr)
            ++ctr->quarantined;
        warn("live-point file '%s' failed payload verification; "
             "quarantined",
             path.c_str());
        return false;
    }
    if (ctr)
        ++ctr->diskLoads;
    return true;
}

LivePointLibrary::LivePointLibrary(std::shared_ptr<const ExecTrace> trace_,
                                   const SamplingPlan &plan,
                                   const SimConfig &config,
                                   const LivePointOptions &options)
    : trace(std::move(trace_)), gridPlan(plan), cfg(config), opts(options)
{
    YASIM_CHECK(trace != nullptr, "replay live-point library needs a trace");
    key = livePointLibraryKey(trace->program(), gridPlan, cfg);
    fileDigest = Hasher().str(key).hex();
    if (!opts.dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.dir, ec);
    }
}

LivePointLibrary::LivePointLibrary(const Program &program,
                                   const SamplingPlan &plan,
                                   const SimConfig &config,
                                   const LivePointOptions &options)
    : prog(&program), gridPlan(plan), cfg(config), opts(options)
{
    key = livePointLibraryKey(program, gridPlan, cfg);
    fileDigest = Hasher().str(key).hex();
    if (!opts.dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.dir, ec);
    }
}

const Program &
LivePointLibrary::libraryProgram() const
{
    return trace ? trace->program() : *prog;
}

std::string
LivePointLibrary::pointKey(uint64_t index) const
{
    return key + "#" + std::to_string(gridPlan.warmStart(index));
}

std::string
LivePointLibrary::pointPath(uint64_t index) const
{
    if (opts.dir.empty())
        return "";
    return opts.dir + "/lp-" + fileDigest + "-" +
           std::to_string(index) + ".lvpt";
}

const LivePoint *
LivePointLibrary::at(uint64_t index) const
{
    auto it = points.find(index);
    return it == points.end() ? nullptr : &it->second;
}

bool
LivePointLibrary::loadPoint(uint64_t index)
{
    const std::string path = pointPath(index);
    LivePoint p;
    if (!LivePoint::loadFile(path, p, &ctr))
        return false;
    // A live-mode library needs the architectural slice; a warm-only
    // point (written by a replay-mode run sharing the cache) is simply
    // insufficient here — a miss, not rot.
    if (!trace && !p.hasArchState())
        return false;
    // Identity and shape: the path digest pins program/plan/config, so
    // a point that disagrees with its own position or warm identity is
    // damaged in a way the frame checksum could not see.
    if (p.position() > gridPlan.warmStart(index) || !p.hasUarch() ||
        p.uarchKey() != pointKey(index)) {
        quarantineArtifact(path);
        ++ctr.quarantined;
        warn("live-point file '%s' failed identity verification; "
             "quarantined",
             path.c_str());
        return false;
    }
    // Trial-restore the warm blob into scratch tables: a structurally
    // bad blob must surface here (heal by rebuild), never as a failed
    // CHECK inside a measurement worker.
    MemoryHierarchy scratch_mem(cfg.mem);
    CombinedPredictor scratch_bp(cfg.bp);
    if (!p.restoreUarch(scratch_mem, scratch_bp, pointKey(index))) {
        quarantineArtifact(path);
        ++ctr.quarantined;
        warn("live-point file '%s' failed warm-state verification; "
             "quarantined",
             path.c_str());
        return false;
    }
    points.emplace(index, std::move(p));
    return true;
}

void
LivePointLibrary::buildPoints(const std::vector<uint64_t> &missing,
                              const CancelToken &cancel)
{
    const Program &program = libraryProgram();
    MemoryHierarchy warm_mem(cfg.mem);
    CombinedPredictor warm_bp(cfg.bp);
    uint64_t warmed = 0;

    // Bounded-chunk warming with a cancellation poll per chunk; a
    // cancelled build throws with the honest partial warming count and
    // leaves no partial artifacts (writes are atomic, and only
    // completed points are written at all).
    auto warm_to = [&](auto &src, uint64_t target) {
        while (src.instsExecuted() < target && !src.halted()) {
            if (cancel.cancelled()) {
                CancelledError err;
                err.cause = cancel.cause();
                err.warmedInsts = warmed;
                throw err;
            }
            uint64_t step = std::min(target - src.instsExecuted(),
                                     kWarmCancelChunk);
            warmed += src.fastForwardWarm(step, &warm_mem, &warm_bp);
        }
    };

    auto publish = [&](uint64_t index, LivePoint &&p) {
        ++ctr.built;
        if (!opts.dir.empty())
            p.saveFile(pointPath(index), &ctr);
        points.emplace(index, std::move(p));
    };

    if (trace) {
        // Replay mode: architectural state lives in the trace, so the
        // pass is pure functional warming. Resume from the latest
        // resident point before the first missing position — warm
        // blobs round-trip losslessly, so the continued pass is
        // bit-identical to one long pass from zero.
        TraceReplayer cursor(trace);
        const LivePoint *resume = nullptr;
        for (const auto &[idx, p] : points) {
            if (p.position() <= gridPlan.warmStart(missing.front()) &&
                (!resume || p.position() > resume->position())) {
                resume = &p;
            }
        }
        if (resume) {
            YASIM_CHECK(resume->restoreUarch(warm_mem, warm_bp,
                                             resume->uarchKey()),
                        "resident live-point warm state failed to "
                        "restore");
            cursor.seek(resume->position());
        }
        for (uint64_t index : missing) {
            warm_to(cursor, gridPlan.warmStart(index));
            LivePoint p = LivePoint::atPosition(cursor.instsExecuted());
            p.attachUarch(warm_mem, warm_bp, pointKey(index));
            publish(index, std::move(p));
        }
        return;
    }

    // Live mode: the architectural slice a point carries covers only
    // its own unit span, so a resident point cannot re-seed a full
    // interpreter — the pass always starts at instruction zero. That
    // is wall-clock the disk library exists to save; modeled cost is
    // charged by ensure() identically in both modes.
    FunctionalSim cursor(program);
    for (uint64_t index : missing) {
        warm_to(cursor, gridPlan.warmStart(index));
        LivePoint p = LivePoint::captureArch(cursor);
        // The warm summary is the *entry* state: snapshot it before
        // the span walk below warms the unit's own footprint into the
        // tables (which would flatter the unit's miss rates).
        p.attachUarch(warm_mem, warm_bp, pointKey(index));
        // Walk the unit's span with warming still on, capturing the
        // pre-span value of every word the span loads before storing
        // — exactly the memory the restored unit can observe.
        std::unordered_set<uint64_t> seen;
        ExecRecord rec;
        uint64_t left = gridPlan.span();
        while (left > 0 &&
               LivePoint::stepWarm(cursor, rec, &warm_mem, &warm_bp)) {
            ++warmed;
            --left;
            if (rec.inst->isLoad() && seen.insert(rec.memAddr).second) {
                // First span access and it is a load: the value just
                // read is by construction the pre-span value.
                p.noteWord(rec.memAddr, cursor.memory().read(rec.memAddr));
            } else if (rec.inst->isStore()) {
                seen.insert(rec.memAddr);
            }
        }
        publish(index, std::move(p));
    }
}

uint64_t
LivePointLibrary::ensure(const std::vector<uint64_t> &indices,
                         const CancelToken &cancel)
{
    if (indices.empty())
        return 0;
    std::vector<uint64_t> missing;
    for (size_t i = 0; i < indices.size(); ++i) {
        YASIM_CHECK_LT(indices[i], gridPlan.maxUnits);
        if (i > 0)
            YASIM_CHECK_GT(indices[i], indices[i - 1]);
        if (points.count(indices[i])) {
            ++ctr.hits;
            continue;
        }
        if (!opts.dir.empty() && loadPoint(indices[i]))
            continue;
        missing.push_back(indices[i]);
    }
    if (!missing.empty())
        buildPoints(missing, cancel);

    // Modeled warming cost: the conceptual single pass extends through
    // the last ensured unit's span. Deliberately independent of how
    // many points memory or disk served — results and modeled cost
    // never depend on cache state.
    uint64_t target = std::min(
        gridPlan.length, gridPlan.warmStart(indices.back()) +
                             gridPlan.span());
    uint64_t charge = target > chargedTo ? target - chargedTo : 0;
    chargedTo = std::max(chargedTo, target);
    return charge;
}

std::vector<LivePointLibrary::UnitResult>
LivePointLibrary::measureUnits(const std::vector<uint64_t> &indices,
                               bool parallel,
                               const CancelToken &cancel) const
{
    const Program &program = libraryProgram();
    std::vector<UnitResult> results(indices.size());
    std::atomic<uint64_t> detailed_done{0};

    auto measure_one = [&](size_t slot) {
        const uint64_t index = indices[slot];
        UnitResult &out = results[slot];
        out.index = index;
        if (cancel.cancelled())
            return;
        const LivePoint *point = at(index);
        YASIM_CHECK(point != nullptr,
                    "measuring grid unit %llu without a resident "
                    "live-point (ensure() first)",
                    static_cast<unsigned long long>(index));
        OooCore core(cfg);
        // Points are validated on load and lossless when built, so a
        // restore failure here is a programming error, not rot.
        YASIM_CHECK(point->restoreUarch(core.memHierarchy(),
                                        core.predictor(),
                                        pointKey(index)),
                    "resident live-point warm state failed to restore");

        // Position a private stream at the warm-up start: an O(1)
        // replayer seek, or a fresh interpreter seeded from the
        // point's architectural slice.
        std::optional<TraceReplayer> replayer;
        std::optional<FunctionalSim> sim;
        StepSource *stream = nullptr;
        if (trace) {
            replayer.emplace(trace);
            replayer->seek(point->position());
            stream = &*replayer;
        } else {
            sim.emplace(program);
            point->restoreArch(*sim);
            stream = &*sim;
        }

        if (gridPlan.warmupInsts > 0)
            out.warmupDone = core.run(*stream, gridPlan.warmupInsts,
                                      nullptr, cancel);
        BbProfiler profiler(program);
        SimStats delta = core.runMeasured(*stream, gridPlan.unitInsts,
                                          &profiler, &out.unitDone,
                                          cancel);
        detailed_done.fetch_add(out.warmupDone + out.unitDone,
                                std::memory_order_relaxed);
        if (out.unitDone == 0)
            return; // the unit lies past program end
        out.measured = true;
        out.stats = delta;
        out.bbef = profiler.bbef();
        out.bbv = profiler.bbv();
    };

    if (parallel) {
        globalPool().parallelFor(indices.size(), measure_one, cancel);
    } else {
        for (size_t slot = 0; slot < indices.size(); ++slot) {
            if (cancel.cancelled())
                break;
            measure_one(slot);
        }
    }

    // A cancelled fan-out throws instead of returning: partially
    // measured units must never feed a CPI estimate.
    if (cancel.cancelled()) {
        CancelledError err;
        err.cause = cancel.cause();
        err.detailedInsts =
            detailed_done.load(std::memory_order_relaxed);
        throw err;
    }
    return results;
}

uint64_t
fastForwardDetailedRegion(StepSource &src, uint64_t count,
                          uint64_t span_insts,
                          const LivePointOptions &options,
                          LivePointCounters *ctr)
{
    (void)span_insts; // the snapshot is full, span-independent
    auto *sim = dynamic_cast<FunctionalSim *>(&src);
    if (!sim || !options.enabled || options.dir.empty() || count == 0 ||
        sim->instsExecuted() != 0) {
        // Replay streams seek in O(1) already; a mid-stream or
        // disabled jump takes the plain architectural path.
        return src.fastForward(count);
    }
    const Program &program = sim->program();

    // Configuration-independent identity: the jump is architectural,
    // so one point serves every machine configuration in a sweep.
    Hasher h;
    h.u32(kLivePointFormatVersion);
    hashProgram(h, program);
    h.u64(count);
    const std::string path =
        options.dir + "/ff-" + h.hex() + ".lvpt";

    LivePoint point;
    if (LivePoint::loadFile(path, point, ctr) && point.hasArchState() &&
        point.position() <= count && !point.hasUarch()) {
        point.restoreArch(*sim);
        return sim->instsExecuted();
    }

    const uint64_t done = sim->fastForward(count);
    // The fast-forward target is a full architectural snapshot (the
    // detailed region after it may touch any word), captured through
    // the live-point serializer: PinPoints-style region checkpoints.
    LivePoint captured = LivePoint::captureArch(*sim);
    sim->memory().forEachWord([&](uint64_t addr, int64_t value) {
        captured.noteWord(addr, value);
    });
    captured.saveFile(path, ctr);
    return done;
}

} // namespace yasim
