#include "sim/memory.hh"

#include <bit>

#include "support/logging.hh"

namespace yasim {

SparseMemory::SparseMemory() = default;

int64_t *
SparseMemory::wordPtr(uint64_t addr)
{
    YASIM_ASSERT((addr & 7) == 0);
    uint64_t page_id = addr / pageBytes;
    if (page_id != lastPageId) {
        auto &slot = pages[page_id];
        if (!slot)
            slot = std::make_unique<Page>(wordsPerPage, 0);
        lastPageId = page_id;
        lastPage = slot.get();
    }
    return &(*lastPage)[(addr % pageBytes) / 8];
}

int64_t
SparseMemory::read(uint64_t addr)
{
    return *wordPtr(addr);
}

void
SparseMemory::write(uint64_t addr, int64_t value)
{
    *wordPtr(addr) = value;
}

double
SparseMemory::readDouble(uint64_t addr)
{
    return std::bit_cast<double>(*wordPtr(addr));
}

void
SparseMemory::writeDouble(uint64_t addr, double value)
{
    *wordPtr(addr) = std::bit_cast<int64_t>(value);
}

void
SparseMemory::clear()
{
    pages.clear();
    lastPageId = ~0ULL;
    lastPage = nullptr;
}

} // namespace yasim
