#include "sim/sharded.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <optional>
#include <system_error>

#include "sim/bb_profiler.hh"
#include "sim/checkpoint.hh"
#include "sim/functional.hh"
#include "sim/ooo_core.hh"
#include "sim/trace.hh"
#include "support/check.hh"
#include "support/hash.hh"
#include "support/thread_pool.hh"
#include "uarch/warm_state.hh"

namespace yasim {

namespace {

/**
 * Identity of one shard's warmed-uarch state: everything that shapes
 * the post-warming tag arrays, TLB entries, and predictor tables. The
 * warm stream is architectural, so timing-only parameters (latencies,
 * core sizing, bus width) are deliberately excluded — a latency sweep
 * over one machine shares one set of warm summaries.
 */
// yasim-lint: key(warm) covers CacheConfig(uarch/cache.hh)
// yasim-lint: key(warm) covers BranchPredictorConfig(uarch/branch_predictor.hh)
// yasim-lint: key(warm) covers MemoryConfig(uarch/memory_hierarchy.hh)
// yasim-lint: key(warm) covers SimConfig(sim/config.hh)
std::string
warmSummaryKey(const Program &program, const ShardSlice &slice,
               const SimConfig &config)
{
    Hasher h;
    h.u32(kWarmStateFormatVersion);
    h.u32(kCheckpointFormatVersion);

    h.u64(program.size());
    const Instruction *code = program.code();
    for (uint64_t i = 0; i < program.size(); ++i) {
        const Instruction &inst = code[i];
        h.u32(static_cast<uint32_t>(inst.op));
        h.u32(static_cast<uint32_t>(inst.rd));
        h.u32(static_cast<uint32_t>(inst.rs1));
        h.u32(static_cast<uint32_t>(inst.rs2));
        h.u64(static_cast<uint64_t>(inst.imm));
    }

    h.u64(slice.warmStart);
    h.u64(slice.begin);

    auto cache = [&h](const CacheConfig &c) {
        h.u32(c.sizeKb).u32(c.assoc).u32(c.blockBytes);
        h.u32(static_cast<uint32_t>(c.replacement));
    };
    cache(config.mem.l1i);
    cache(config.mem.l1d);
    cache(config.mem.l2);
    h.u32(config.mem.itlbEntries).u32(config.mem.dtlbEntries);
    h.b(config.mem.nextLinePrefetch);

    h.u32(static_cast<uint32_t>(config.bp.kind));
    h.u32(config.bp.bhtEntries).u32(config.bp.globalHistoryBits);
    h.u32(config.bp.btbEntries).u32(config.bp.btbAssoc);
    h.b(config.bp.speculativeUpdate);

    return h.hex();
}

std::string
warmSummaryPath(const std::string &dir, const std::string &key)
{
    return dir + "/warm-" + key + ".ckpt";
}

/** Per-shard prepared warm state, resolved serially before the fan-out. */
struct ShardPrep
{
    std::string key;
    Checkpoint summary = Checkpoint::atPosition(0);
    bool haveSummary = false;
};

/**
 * Build a fresh core and apply @p prep's warmed-uarch summary if one
 * loaded. A summary that fails structural validation leaves the tables
 * partially mutated, so the core is rebuilt and the caller warms from
 * the stream instead. @p restored reports whether the summary took.
 */
void
makeCore(std::optional<OooCore> &core, const SimConfig &config,
         const ShardPrep &prep, bool &restored)
{
    core.emplace(config);
    restored = prep.haveSummary &&
               prep.summary.restoreUarch(core->memHierarchy(),
                                         core->predictor(), prep.key);
    if (prep.haveSummary && !restored)
        core.emplace(config);
}

/**
 * Serially resolve each warmed shard's summary key and try to load a
 * persisted summary for it. Runs before the parallel fan-out so the
 * workers touch the warm directory only to publish new summaries.
 */
std::vector<ShardPrep>
prepareShards(const Program &program, const std::vector<ShardSlice> &plan,
              const SimConfig &config, const ShardOptions &opts)
{
    std::vector<ShardPrep> prep(plan.size());
    if (!opts.warmDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.warmDir, ec);
    }
    for (size_t k = 1; k < plan.size(); ++k) {
        prep[k].key = warmSummaryKey(program, plan[k], config);
        if (opts.warmDir.empty())
            continue;
        Checkpoint loaded = Checkpoint::atPosition(0);
        if (Checkpoint::loadFile(warmSummaryPath(opts.warmDir, prep[k].key),
                                 loaded) &&
            loaded.instruction() == plan[k].begin &&
            loaded.hasUarch() && loaded.uarchKey() == prep[k].key) {
            prep[k].summary = loaded;
            prep[k].haveSummary = true;
        }
    }
    return prep;
}

/** Plan-based modeled cost, independent of warm-summary hits. */
void
chargePlan(const std::vector<ShardSlice> &plan, ShardedRunResult &result)
{
    for (const ShardSlice &s : plan) {
        result.detailedInsts += s.end - s.begin;
        result.warmedInsts += s.begin - s.warmStart;
    }
}

/** Instructions functionally warmed between cancellation polls. */
constexpr uint64_t kWarmCancelChunk = 1 << 20;

/**
 * Functionally warm @p n instructions from @p src in bounded chunks,
 * polling @p cancel between chunks (warming a full prefix can be the
 * longest phase of a shard). Completed chunks accumulate into
 * @p warmed_done for honest partial-cost accounting. False = cancelled
 * mid-warm.
 */
template <typename Src>
bool
warmChunked(Src &src, uint64_t n, OooCore &core,
            const CancelToken &cancel, std::atomic<uint64_t> &warmed_done)
{
    while (n > 0) {
        if (cancel.cancelled())
            return false;
        uint64_t step = std::min(n, kWarmCancelChunk);
        src.fastForwardWarm(step, &core.memHierarchy(),
                            &core.predictor());
        warmed_done.fetch_add(step, std::memory_order_relaxed);
        n -= step;
    }
    return true;
}

/**
 * The post-fan-out cancellation gate: a cancelled sharded run throws
 * instead of stitching, carrying the raw partial progress so the
 * technique layer can convert it to work units.
 */
void
refuseStitchIfCancelled(const CancelToken &cancel,
                        const std::atomic<uint64_t> &detailed_done,
                        const std::atomic<uint64_t> &warmed_done)
{
    if (!cancel.cancelled())
        return;
    CancelledError err;
    err.cause = cancel.cause();
    err.detailedInsts = detailed_done.load(std::memory_order_relaxed);
    err.warmedInsts = warmed_done.load(std::memory_order_relaxed);
    throw err;
}

} // namespace

const char *
stitchModeName(StitchMode mode)
{
    switch (mode) {
      case StitchMode::Drain:
        return "drain";
    }
    return "unknown";
}

std::vector<ShardSlice>
planShards(uint64_t length, uint32_t shards, uint64_t warmup)
{
    if (shards == 0)
        shards = 1;
    const uint64_t spacing = ExecTrace::ladderSpacingFor(length);

    // Interior boundaries at the ladder rung nearest each ideal split;
    // rungs can collide for short runs, in which case shards merge.
    std::vector<uint64_t> bounds;
    bounds.push_back(0);
    for (uint32_t k = 1; k < shards; ++k) {
        uint64_t ideal = length * k / shards;
        uint64_t rung = (ideal + spacing / 2) / spacing * spacing;
        if (rung == 0 || rung >= length)
            continue;
        if (rung != bounds.back())
            bounds.push_back(rung);
    }
    bounds.push_back(length);

    std::vector<ShardSlice> plan;
    plan.reserve(bounds.size() - 1);
    for (size_t k = 0; k + 1 < bounds.size(); ++k) {
        ShardSlice s;
        s.begin = bounds[k];
        s.end = bounds[k + 1];
        // Shard 0 starts cold like the sequential run; later shards
        // warm their lead-in, the full prefix when unbounded.
        if (s.begin == 0 || warmup == 0 || warmup >= s.begin)
            s.warmStart = 0;
        else
            s.warmStart = s.begin - warmup;
        plan.push_back(s);
    }
    return plan;
}

ShardedRunResult
runShardedReference(const std::shared_ptr<const ExecTrace> &trace,
                    const SimConfig &config, const ShardOptions &opts,
                    const CancelToken &cancel)
{
    YASIM_CHECK(trace != nullptr, "sharded replay requires a trace");
    const uint64_t length = trace->length();
    const std::vector<ShardSlice> plan =
        planShards(length, opts.exact ? 1 : opts.shards, opts.warmupInsts);
    std::vector<ShardPrep> prep =
        prepareShards(trace->program(), plan, config, opts);

    ShardedRunResult result;
    result.perShard.resize(plan.size());
    chargePlan(plan, result);

    std::atomic<uint32_t> restores{0};
    std::atomic<uint32_t> saves{0};
    std::atomic<uint64_t> detailedDone{0};
    std::atomic<uint64_t> warmedDone{0};

    globalPool().parallelFor(plan.size(), [&](size_t k) {
        const ShardSlice &slice = plan[k];
        TraceReplayer replayer(trace);
        std::optional<OooCore> coreSlot;
        bool warmed = false;
        makeCore(coreSlot, config, prep[k], warmed);
        OooCore &core = *coreSlot;
        if (warmed) {
            restores.fetch_add(1, std::memory_order_relaxed);
            // Restored lead-ins charge like executed ones so partial
            // cost never depends on warm-dir state (same rule as
            // chargePlan).
            warmedDone.fetch_add(slice.begin - slice.warmStart,
                                 std::memory_order_relaxed);
        }

        if (!warmed && slice.begin > 0) {
            replayer.seek(slice.warmStart);
            if (!warmChunked(replayer, slice.begin - slice.warmStart,
                             core, cancel, warmedDone))
                return; // cancelled mid-warm: publish no summary
            if (!opts.warmDir.empty()) {
                Checkpoint summary = Checkpoint::atPosition(slice.begin);
                summary.attachUarch(core.memHierarchy(), core.predictor(),
                                    prep[k].key);
                if (summary.saveFile(
                        warmSummaryPath(opts.warmDir, prep[k].key)))
                    saves.fetch_add(1, std::memory_order_relaxed);
            }
        }

        if (cancel.cancelled())
            return;
        replayer.seek(slice.begin);
        uint64_t done = 0;
        result.perShard[k] = core.runMeasured(
            replayer, slice.end - slice.begin, nullptr, &done, cancel);
        detailedDone.fetch_add(done, std::memory_order_relaxed);
    }, cancel);

    refuseStitchIfCancelled(cancel, detailedDone, warmedDone);
    result.stats = stitchStats(result.perShard);
    result.warmRestores = restores.load();
    result.warmSaves = saves.load();
    return result;
}

ShardedRunResult
runShardedReference(const Program &program, uint64_t length,
                    const SimConfig &config, const ShardOptions &opts,
                    const CancelToken &cancel)
{
    const std::vector<ShardSlice> plan =
        planShards(length, opts.exact ? 1 : opts.shards, opts.warmupInsts);
    std::vector<ShardPrep> prep = prepareShards(program, plan, config, opts);

    // Architectural entry points for every bounded-warm-up shard, built
    // in one functional pass. Built from the plan (not from summary
    // availability) so the modeled checkpoint cost is deterministic,
    // and so a corrupt summary always has a live fallback.
    CheckpointLibrary library;
    ShardedRunResult result;
    {
        std::vector<uint64_t> positions;
        for (const ShardSlice &s : plan)
            if (s.warmStart > 0)
                positions.push_back(s.warmStart);
        std::sort(positions.begin(), positions.end());
        positions.erase(std::unique(positions.begin(), positions.end()),
                        positions.end());
        if (!positions.empty())
            result.checkpointInsts = library.build(program, positions);
    }

    result.perShard.resize(plan.size());
    chargePlan(plan, result);

    std::atomic<uint32_t> restores{0};
    std::atomic<uint32_t> saves{0};
    std::atomic<uint64_t> detailedDone{0};
    std::atomic<uint64_t> warmedDone{0};
    std::vector<std::vector<double>> bbefShard(plan.size());
    std::vector<std::vector<double>> bbvShard(plan.size());

    globalPool().parallelFor(plan.size(), [&](size_t k) {
        const ShardSlice &slice = plan[k];
        FunctionalSim sim(program);
        std::optional<OooCore> coreSlot;
        bool warmed = false;
        makeCore(coreSlot, config, prep[k], warmed);
        OooCore &core = *coreSlot;
        if (warmed) {
            restores.fetch_add(1, std::memory_order_relaxed);
            warmedDone.fetch_add(slice.begin - slice.warmStart,
                                 std::memory_order_relaxed);
        }

        if (warmed && prep[k].summary.hasArchState()) {
            // A live-saved summary carries the architectural state at
            // the shard boundary too: one restore and we're measuring.
            prep[k].summary.restore(sim);
        } else {
            if (slice.warmStart > 0) {
                const Checkpoint *entry =
                    library.latestAtOrBefore(slice.warmStart);
                YASIM_CHECK(entry != nullptr,
                            "missing shard entry checkpoint");
                entry->restore(sim);
            }
            uint64_t lead = slice.begin - sim.instsExecuted();
            if (warmed) {
                // Replay-saved summary: warm tables came from the blob;
                // only the architectural position must still advance.
                sim.fastForward(lead);
            } else if (lead > 0) {
                if (!warmChunked(sim, lead, core, cancel, warmedDone))
                    return; // cancelled mid-warm
                if (!opts.warmDir.empty()) {
                    Checkpoint summary = Checkpoint::capture(sim);
                    summary.attachUarch(core.memHierarchy(),
                                        core.predictor(), prep[k].key);
                    if (summary.saveFile(
                            warmSummaryPath(opts.warmDir, prep[k].key)))
                        saves.fetch_add(1, std::memory_order_relaxed);
                }
            }
        }
        YASIM_DCHECK_EQ(sim.instsExecuted(), slice.begin);

        if (cancel.cancelled())
            return;
        BbProfiler profiler(program);
        uint64_t done = 0;
        result.perShard[k] = core.runMeasured(
            sim, slice.end - slice.begin, &profiler, &done, cancel);
        detailedDone.fetch_add(done, std::memory_order_relaxed);
        bbefShard[k] = profiler.bbef();
        bbvShard[k] = profiler.bbv();
    }, cancel);

    refuseStitchIfCancelled(cancel, detailedDone, warmedDone);

    // Stitch the profile in shard-index order. Every count is an
    // integral double (weight 1.0), so the sum is exact and matches
    // the sequential whole-run profile bit for bit.
    result.bbef.assign(program.numBlocks(), 0.0);
    result.bbv.assign(program.numBlocks(), 0.0);
    for (size_t k = 0; k < plan.size(); ++k) {
        for (size_t i = 0; i < result.bbef.size(); ++i) {
            result.bbef[i] += bbefShard[k][i];
            result.bbv[i] += bbvShard[k][i];
        }
    }

    result.stats = stitchStats(result.perShard);
    result.warmRestores = restores.load();
    result.warmSaves = saves.load();
    return result;
}

} // namespace yasim
