/**
 * @file
 * The StepSource seam: the in-order dynamic instruction stream.
 *
 * This header is the boundary between the functional layer and every
 * consumer of its output. The architectural stream is
 * machine-configuration-independent, so a recorded trace
 * (sim/trace.hh) can stand in for the interpreter: OooCore::run, the
 * techniques, and the profilers all program against StepSource and
 * cannot tell a TraceReplayer from a live FunctionalSim. Code above
 * the functional layer includes this header (or obtains a StepSource
 * through techniques/trace_store.hh); only the simulator's own layer
 * includes sim/functional.hh.
 *
 * Three execution modes cover every technique in the paper:
 *
 *  - step():            full record production, feeds detailed simulation
 *  - fastForward():     architectural state only (FF X in the truncated
 *                       techniques; skipped portions of SimPoint)
 *  - fastForwardWarm(): architectural state plus functional warming of the
 *                       caches and branch predictor (SMARTS)
 */

#ifndef YASIM_SIM_STEP_SOURCE_HH
#define YASIM_SIM_STEP_SOURCE_HH

#include <cstdint>

#include "isa/program.hh"

namespace yasim {

class MemoryHierarchy;
class CombinedPredictor;

/** Everything the timing model needs about one dynamic instruction. */
struct ExecRecord
{
    /** Static instruction (owned by the Program). */
    const Instruction *inst = nullptr;
    /** Instruction index of this dynamic instance. */
    uint64_t pc = 0;
    /** Instruction index executed next (branch fall-through or target). */
    uint64_t nextPc = 0;
    /** Effective byte address for loads/stores, else 0. */
    uint64_t memAddr = 0;
    /** Resolved direction for control instructions. */
    bool taken = false;
    /** Operand values make this a trivial computation (TC enhancement). */
    bool trivial = false;
};

/**
 * Producer of an in-order dynamic instruction stream. Implemented live
 * by FunctionalSim and from a recording by TraceReplayer; both must
 * produce bit-identical streams and warming call sequences for the same
 * program.
 */
class StepSource
{
  public:
    virtual ~StepSource() = default;

    /**
     * Produce one instruction into @p record.
     * @return false when the stream was already exhausted (Halt done).
     */
    virtual bool step(ExecRecord &record) = 0;

    /**
     * Produce up to @p n instructions into @p out — the batch face of
     * step(), paying one virtual call per span instead of one per
     * record. The records delivered are exactly the next n step()
     * results (bit-identical; the hot consumers are tested both ways).
     * @return the number produced; 0 iff the stream is exhausted or
     * @p n is 0.
     */
    virtual uint64_t stepBatch(ExecRecord *out, uint64_t n);

    /**
     * Advance up to @p count instructions with no record production.
     * @return the number actually advanced (less than count at Halt).
     */
    virtual uint64_t fastForward(uint64_t count) = 0;

    /**
     * Advance up to @p count instructions while functionally warming
     * @p mem (I and D sides) and @p bp (may each be null).
     * @return the number actually advanced.
     */
    virtual uint64_t fastForwardWarm(uint64_t count, MemoryHierarchy *mem,
                                     CombinedPredictor *bp) = 0;

    /** True once the stream has delivered its Halt. */
    virtual bool halted() const = 0;

    /** Dynamic instructions delivered so far (Halt included). */
    virtual uint64_t instsExecuted() const = 0;
};

} // namespace yasim

#endif // YASIM_SIM_STEP_SOURCE_HH
