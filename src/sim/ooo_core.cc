#include "sim/ooo_core.hh"

#include <algorithm>
#include <cstring>

#include "sim/functional.hh"
#include "sim/trace.hh"
#include "support/check.hh"

namespace yasim {

// --- ZeroedArray / SlotPool -------------------------------------------------

template <typename T>
void
OooCore::ZeroedArray<T>::alloc(size_t n)
{
    std::free(p);
    p = static_cast<T *>(std::calloc(n, sizeof(T)));
    YASIM_CHECK(p != nullptr,
                "out of memory allocating %zu pipeline slots", n);
}

template <typename T>
void
OooCore::ZeroedArray<T>::clear(size_t n)
{
    std::memset(p, 0, n * sizeof(T));
}

void
OooCore::SlotPool::init(uint32_t w)
{
    width = std::max<uint32_t>(w, 1);
    gen = 1;
    if (!used) {
        used.alloc(window);
        stampGen.alloc(window);
        stampCycle.alloc(window);
    } else {
        stampGen.clear(window);
    }
}

uint64_t
OooCore::SlotPool::findFree(uint64_t earliest) const
{
    uint64_t c = earliest;
    for (;;) {
        uint64_t idx = c & mask;
        if (!valid(idx, c)) {
            claim(idx, c);
            return c;
        }
        if (used[idx] < width)
            return c;
        ++c;
    }
}

void
OooCore::SlotPool::consume(uint64_t cycle)
{
    uint64_t idx = cycle & mask;
    if (!valid(idx, cycle))
        claim(idx, cycle);
    ++used[idx];
}

void
OooCore::SlotPool::reset()
{
    if (++gen == 0) {
        // One wrap every 2^32 resets: invalidate the hard way so a
        // stale generation-1 stamp can never be mistaken for live.
        stampGen.clear(window);
        gen = 1;
    }
}

// --- InOrderStage ----------------------------------------------------------

uint64_t
OooCore::InOrderStage::schedule(uint64_t earliest)
{
    if (earliest > cycle) {
        cycle = earliest;
        usedThisCycle = 0;
    } else if (usedThisCycle >= width) {
        ++cycle;
        usedThisCycle = 0;
    }
    ++usedThisCycle;
    return cycle;
}

void
OooCore::InOrderStage::reset(uint64_t at)
{
    cycle = at;
    usedThisCycle = 0;
}

// --- HistoryRing -----------------------------------------------------------

void
OooCore::HistoryRing::init(size_t entries)
{
    times.assign(std::max<size_t>(entries, 1), 0);
    count = 0;
}

uint64_t
OooCore::HistoryRing::back() const
{
    if (count < times.size())
        return 0;
    return times[count % times.size()];
}

void
OooCore::HistoryRing::push(uint64_t t)
{
    times[count % times.size()] = t;
    ++count;
}

void
OooCore::HistoryRing::reset(uint64_t fill)
{
    std::fill(times.begin(), times.end(), fill);
    count = 0;
}

// --- OooCore ---------------------------------------------------------------

OooCore::OooCore(const SimConfig &config)
    : cfg(config), mem(config.mem), bp(config.bp)
{
    issueSlots.init(cfg.core.issueWidth);
    memPorts.init(cfg.core.memPorts);
    intAluPool.init(cfg.core.intAlus);
    fpAluPool.init(cfg.core.fpAlus);
    intMulPool.init(cfg.core.intMultDivUnits);
    fpMulPool.init(cfg.core.fpMultDivUnits);
    intDivFree.assign(cfg.core.intMultDivUnits, 0);
    fpDivFree.assign(cfg.core.fpMultDivUnits, 0);

    dispatchStage.width = cfg.core.decodeWidth;
    commitStage.width = cfg.core.commitWidth;

    robCommit.init(cfg.core.robEntries);
    lsqCommit.init(cfg.core.lsqEntries);
    iqIssue.init(cfg.core.iqEntries);
    fqDispatch.init(cfg.core.fetchQueueEntries);

    intRegReady.assign(numIntRegs, 0);
    fpRegReady.assign(numFpRegs, 0);
    storeFwd.assign(fwdEntries, FwdEntry());

    fetchSlotsLeft = cfg.core.fetchWidth;
    tcEnabled = cfg.core.trivialComputation;
}

uint64_t
OooCore::fuLatency(FuClass fu) const
{
    switch (fu) {
      case FuClass::IntAlu:
      case FuClass::Branch:
        return cfg.core.intAluLatency;
      case FuClass::IntMult:
        return cfg.core.intMulLatency;
      case FuClass::IntDiv:
        return cfg.core.intDivLatency;
      case FuClass::FpAlu:
        return cfg.core.fpAluLatency;
      case FuClass::FpMult:
        return cfg.core.fpMulLatency;
      case FuClass::FpDiv:
        return cfg.core.fpDivLatency;
      case FuClass::MemRead:
      case FuClass::MemWrite:
        return 1; // address generation; cache latency added separately
      case FuClass::None:
        return 1;
    }
    return 1;
}

uint64_t
OooCore::scheduleIssue(uint64_t earliest, FuClass fu, bool is_mem,
                       bool bypass_fu)
{
    // Unpipelined dividers are tracked per unit.
    const bool div = !bypass_fu && !cfg.core.divPipelined &&
                     (fu == FuClass::IntDiv || fu == FuClass::FpDiv);
    std::vector<uint64_t> *div_units =
        fu == FuClass::IntDiv ? &intDivFree : &fpDivFree;

    SlotPool *pool = nullptr;
    switch (fu) {
      case FuClass::IntAlu:
      case FuClass::Branch:
      case FuClass::None:
        pool = &intAluPool;
        break;
      case FuClass::IntMult:
        pool = &intMulPool;
        break;
      case FuClass::FpAlu:
        pool = &fpAluPool;
        break;
      case FuClass::FpMult:
        pool = &fpMulPool;
        break;
      case FuClass::IntDiv:
        pool = div ? nullptr : &intMulPool; // pipelined div shares mult pool
        break;
      case FuClass::FpDiv:
        pool = div ? nullptr : &fpMulPool;
        break;
      case FuClass::MemRead:
      case FuClass::MemWrite:
        pool = nullptr; // memory port is the structural resource
        break;
    }
    if (bypass_fu)
        pool = nullptr;

    uint64_t c = earliest;
    for (;;) {
        c = issueSlots.findFree(c);
        if (pool) {
            uint64_t c2 = pool->findFree(c);
            if (c2 != c) {
                c = c2;
                continue;
            }
        }
        if (div) {
            uint64_t best = ~0ULL;
            for (uint64_t f : *div_units)
                best = std::min(best, f);
            if (best > c) {
                c = best;
                continue;
            }
        }
        if (is_mem) {
            uint64_t c3 = memPorts.findFree(c);
            if (c3 != c) {
                c = c3;
                continue;
            }
        }
        break;
    }

    issueSlots.consume(c);
    if (pool)
        pool->consume(c);
    if (div) {
        // Occupy the earliest-free divider for the full operation.
        size_t best_u = 0;
        for (size_t u = 1; u < div_units->size(); ++u)
            if ((*div_units)[u] < (*div_units)[best_u])
                best_u = u;
        (*div_units)[best_u] = c + fuLatency(fu);
    }
    if (is_mem)
        memPorts.consume(c);
    return c;
}

uint64_t
OooCore::run(StepSource &src, uint64_t max_insts, BbProfiler *profiler,
             const CancelToken &cancel)
{
    // One dynamic-type resolution per run() call instead of one virtual
    // step() per instruction. The concrete sources are final, so the
    // typed loops devirtualize; unknown StepSource subclasses (tests)
    // take the generic virtual loop. All paths are bit-identical.
    if (auto *replay = dynamic_cast<TraceReplayer *>(&src))
        return runReplay(*replay, max_insts, profiler, cancel);
    if (auto *live = dynamic_cast<FunctionalSim *>(&src))
        return runSteps(*live, max_insts, profiler, cancel);
    return runSteps(src, max_insts, profiler, cancel);
}

SimStats
OooCore::runMeasured(StepSource &src, uint64_t max_insts,
                     BbProfiler *profiler, uint64_t *insts_done,
                     const CancelToken &cancel)
{
    SimStats before = snapshot();
    uint64_t done = run(src, max_insts, profiler, cancel);
    if (insts_done)
        *insts_done = done;
    return snapshot() - before;
}

template <typename Source>
uint64_t
OooCore::runSteps(Source &src, uint64_t max_insts, BbProfiler *profiler,
                  const CancelToken &cancel)
{
    const uint32_t l1i_block = cfg.mem.l1i.blockBytes;
    const uint64_t frontend = cfg.core.frontendDepth;

    // Pull batches through the source's stepBatch kernel: one (possibly
    // devirtualized) call per span instead of one per instruction. The
    // buffer is small enough to live on the stack.
    constexpr uint64_t kFetchBatch = 256;
    ExecRecord recs[kFetchBatch];

    uint64_t done = 0;
    uint64_t next_poll = kCancelCheckInsts;
    while (done < max_insts) {
        // Batch-boundary cancellation poll, once per quantum so the
        // loop stays branch-predictable (free for an invalid token).
        if (done >= next_poll) {
            if (cancel.cancelled())
                break;
            next_poll = done + kCancelCheckInsts;
        }
        const uint64_t want = std::min(max_insts - done, kFetchBatch);
        const uint64_t n = src.stepBatch(recs, want);
        if (n == 0)
            break;
        for (uint64_t i = 0; i < n; ++i) {
            const ExecRecord &rec = recs[i];
            // Replayed and live streams must satisfy the same contract.
            YASIM_DCHECK(rec.inst != nullptr);
            if (profiler)
                profiler->record(rec.pc);
            simulateOne(*rec.inst, Program::pcAddress(rec.pc), rec.nextPc,
                        rec.memAddr, rec.taken, rec.trivial, l1i_block,
                        frontend);
        }
        done += n;
    }
    return done;
}

uint64_t
OooCore::runReplay(TraceReplayer &src, uint64_t max_insts,
                   BbProfiler *profiler, const CancelToken &cancel)
{
    const uint32_t l1i_block = cfg.mem.l1i.blockBytes;
    const uint64_t frontend = cfg.core.frontendDepth;

    uint64_t done = 0;
    uint64_t next_poll = kCancelCheckInsts;
    while (done < max_insts) {
        // Same quantum'd poll as runSteps: a decoded run can span many
        // batches, so the bound is one quantum + one decoded run.
        if (done >= next_poll) {
            if (cancel.cancelled())
                break;
            next_poll = done + kCancelCheckInsts;
        }
        uint64_t n = 0;
        const TraceReplayer::DecodedUop *uops =
            src.decodeRun(max_insts - done, n);
        if (n == 0)
            break;
        for (uint64_t i = 0; i < n; ++i) {
            const TraceReplayer::DecodedUop &u = uops[i];
            if (profiler)
                profiler->record(u.pc);
            simulateOne(*u.inst, Program::pcAddress(u.pc), u.nextPc,
                        u.memAddr, u.taken, u.trivial, l1i_block,
                        frontend);
        }
        src.advance(n);
        done += n;
    }
    return done;
}

void
OooCore::simulateOne(const Instruction &inst, uint64_t pc_addr,
                     uint64_t next_pc, uint64_t mem_addr, bool taken,
                     bool trivial_hint, uint32_t l1i_block,
                     uint64_t frontend)
{
    // ---- Fetch ----
    if (redirectCycle > fetchCycle) {
        fetchCycle = redirectCycle;
        fetchSlotsLeft = cfg.core.fetchWidth;
        lastFetchBlock = ~0ULL;
    }
    if (fetchSlotsLeft == 0) {
        ++fetchCycle;
        fetchSlotsLeft = cfg.core.fetchWidth;
    }
    uint64_t block = pc_addr / l1i_block;
    if (block != lastFetchBlock) {
        uint32_t lat = mem.instAccess(pc_addr);
        if (lat > cfg.mem.l1iLatency)
            fetchCycle += lat - cfg.mem.l1iLatency;
        lastFetchBlock = block;
    }
    // Fetch-queue backpressure: a slot frees when an older
    // instruction dispatches.
    uint64_t fq_free = fqDispatch.back();
    if (fq_free > fetchCycle) {
        fetchCycle = fq_free;
        fetchSlotsLeft = cfg.core.fetchWidth;
    }
    uint64_t fetch_time = fetchCycle;
    --fetchSlotsLeft;

    bool mispredicted = false;
    if (inst.isControl()) {
        mispredicted =
            bp.update(pc_addr, inst.isCondBranch(), taken,
                      Program::pcAddress(next_pc));
        if (taken)
            fetchSlotsLeft = 0; // taken branch ends the fetch group
    }

    // ---- Dispatch ----
    uint64_t disp_earliest = fetch_time + frontend;
    uint64_t rob_free = robCommit.back();
    if (rob_free + 1 > disp_earliest)
        disp_earliest = rob_free + 1;
    uint64_t iq_free = iqIssue.back();
    if (iq_free + 1 > disp_earliest)
        disp_earliest = iq_free + 1;
    const bool is_mem = inst.isLoad() || inst.isStore();
    if (is_mem) {
        uint64_t lsq_free = lsqCommit.back();
        if (lsq_free + 1 > disp_earliest)
            disp_earliest = lsq_free + 1;
    }
    uint64_t dispatch_time = dispatchStage.schedule(disp_earliest);
    fqDispatch.push(dispatch_time);

    // ---- Ready (register and memory dependences) ----
    uint64_t ready = dispatch_time + 1;
    const bool fp = inst.isFp();
    auto src_ready = [&](int reg, bool fp_file) {
        if (reg == noReg)
            return;
        uint64_t t = fp_file ? fpRegReady[reg] : intRegReady[reg];
        if (t > ready)
            ready = t;
    };
    switch (inst.op) {
      case Opcode::FCvt:
        src_ready(inst.rs1, false);
        break;
      case Opcode::Ld:
      case Opcode::FLd:
        src_ready(inst.rs1, false); // address base
        break;
      case Opcode::St:
        src_ready(inst.rs1, false);
        src_ready(inst.rs2, false);
        break;
      case Opcode::FSt:
        src_ready(inst.rs1, false);
        src_ready(inst.rs2, true);
        break;
      default:
        src_ready(inst.rs1, fp);
        src_ready(inst.rs2, fp);
        break;
    }
    if (inst.isLoad()) {
        // Store-to-load forwarding: an earlier in-flight store to the
        // same word defines the earliest load completion.
        const FwdEntry &e = storeFwd[(mem_addr >> 3) % fwdEntries];
        if (e.addr == mem_addr && e.doneCycle > ready)
            ready = e.doneCycle;
    }

    // ---- Issue and execute ----
    FuClass fu = inst.fuClass();
    bool trivial = tcEnabled && trivial_hint;
    if (trivial)
        ++trivialOps; // eliminated: no functional unit needed
    uint64_t issue_time =
        scheduleIssue(ready, fu, is_mem, trivial);
    iqIssue.push(issue_time);

    uint64_t exec_done;
    uint32_t load_extra_lat = 0;
    if (inst.isLoad()) {
        uint32_t dlat = mem.dataAccess(mem_addr, false);
        if (dlat > cfg.mem.l1dLatency)
            load_extra_lat = dlat - cfg.mem.l1dLatency;
        exec_done = issue_time + 1 + dlat;
    } else if (inst.isStore()) {
        mem.dataAccess(mem_addr, true);
        storeFwd[(mem_addr >> 3) % fwdEntries] =
            FwdEntry{mem_addr, issue_time + 1};
        exec_done = issue_time + 1; // retires via the store buffer
    } else {
        // Eliminated trivial ops complete in a single cycle.
        exec_done = issue_time + (trivial ? 1 : fuLatency(fu));
    }

    if (inst.rd != noReg) {
        if (inst.writesFpReg())
            fpRegReady[inst.rd] = exec_done;
        else if (inst.rd != 0)
            intRegReady[inst.rd] = exec_done;
    }

    if (mispredicted) {
        uint64_t redirect =
            exec_done + cfg.core.mispredictPenalty;
        if (redirect > redirectCycle)
            redirectCycle = redirect;
    }

    // ---- Commit ----
    uint64_t commit_time = commitStage.schedule(exec_done + 1);
    if (load_extra_lat > 0 && commit_time > lastCommitCycle) {
        // Attribute the commit-front advance to this load's extra
        // memory latency, bounded by that latency (overlapped
        // misses split the credit naturally).
        uint64_t advance = commit_time - lastCommitCycle;
        memStallCycles +=
            std::min<uint64_t>(advance, load_extra_lat);
    }
    // Commit can never precede dispatch or run backwards; a
    // violation means a pipeline resource clock regressed.
    YASIM_DCHECK_GE(commit_time, dispatch_time);
    YASIM_DCHECK_GE(commit_time, lastCommitCycle);
    robCommit.push(commit_time);
    if (is_mem)
        lsqCommit.push(commit_time);
    lastCommitCycle = commit_time;

    ++retired;
}

void
OooCore::resetPipeline()
{
    uint64_t now = lastCommitCycle;
    fetchCycle = now;
    fetchSlotsLeft = cfg.core.fetchWidth;
    lastFetchBlock = ~0ULL;
    redirectCycle = now;
    dispatchStage.reset(now);
    commitStage.reset(now);
    issueSlots.reset();
    memPorts.reset();
    intAluPool.reset();
    fpAluPool.reset();
    intMulPool.reset();
    fpMulPool.reset();
    std::fill(intDivFree.begin(), intDivFree.end(), now);
    std::fill(fpDivFree.begin(), fpDivFree.end(), now);
    robCommit.reset(now);
    lsqCommit.reset(now);
    iqIssue.reset(now);
    fqDispatch.reset(now);
    std::fill(intRegReady.begin(), intRegReady.end(), now);
    std::fill(fpRegReady.begin(), fpRegReady.end(), now);
    storeFwd.assign(fwdEntries, FwdEntry());
}

SimStats
OooCore::snapshot() const
{
    SimStats s;
    s.instructions = retired;
    s.cycles = lastCommitCycle;
    s.condBranches = bp.stats().condBranches;
    s.condMispredicts = bp.stats().condMispredicts;
    s.l1iAccesses = mem.l1iStats().accesses;
    s.l1iMisses = mem.l1iStats().misses;
    s.l1dAccesses = mem.l1dStats().accesses;
    s.l1dMisses = mem.l1dStats().misses;
    s.l2Accesses = mem.l2Stats().accesses;
    s.l2Misses = mem.l2Stats().misses;
    s.trivialOps = trivialOps;
    s.prefetchesIssued = mem.prefetchStats().issued;
    s.memStallCycles = memStallCycles;
    return s;
}

} // namespace yasim
