#include "sim/stats.hh"

namespace yasim {

namespace {

double
ratio(uint64_t num, uint64_t den, double if_empty)
{
    if (den == 0)
        return if_empty;
    return static_cast<double>(num) / static_cast<double>(den);
}

} // namespace

double
SimStats::cpi() const
{
    return ratio(cycles, instructions, 0.0);
}

double
SimStats::ipc() const
{
    return ratio(instructions, cycles, 0.0);
}

double
SimStats::branchAccuracy() const
{
    return 1.0 - ratio(condMispredicts, condBranches, 0.0);
}

double
SimStats::l1iHitRate() const
{
    return 1.0 - ratio(l1iMisses, l1iAccesses, 0.0);
}

double
SimStats::l1dHitRate() const
{
    return 1.0 - ratio(l1dMisses, l1dAccesses, 0.0);
}

double
SimStats::l2HitRate() const
{
    return 1.0 - ratio(l2Misses, l2Accesses, 0.0);
}

double
SimStats::memStallFraction() const
{
    return ratio(memStallCycles, cycles, 0.0);
}

std::vector<double>
SimStats::metricVector() const
{
    return {ipc(), branchAccuracy(), l1dHitRate(), l2HitRate()};
}

SimStats
SimStats::operator-(const SimStats &earlier) const
{
    SimStats d;
    d.instructions = instructions - earlier.instructions;
    d.cycles = cycles - earlier.cycles;
    d.condBranches = condBranches - earlier.condBranches;
    d.condMispredicts = condMispredicts - earlier.condMispredicts;
    d.l1iAccesses = l1iAccesses - earlier.l1iAccesses;
    d.l1iMisses = l1iMisses - earlier.l1iMisses;
    d.l1dAccesses = l1dAccesses - earlier.l1dAccesses;
    d.l1dMisses = l1dMisses - earlier.l1dMisses;
    d.l2Accesses = l2Accesses - earlier.l2Accesses;
    d.l2Misses = l2Misses - earlier.l2Misses;
    d.trivialOps = trivialOps - earlier.trivialOps;
    d.prefetchesIssued = prefetchesIssued - earlier.prefetchesIssued;
    d.memStallCycles = memStallCycles - earlier.memStallCycles;
    return d;
}

SimStats &
SimStats::operator+=(const SimStats &other)
{
    instructions += other.instructions;
    cycles += other.cycles;
    condBranches += other.condBranches;
    condMispredicts += other.condMispredicts;
    l1iAccesses += other.l1iAccesses;
    l1iMisses += other.l1iMisses;
    l1dAccesses += other.l1dAccesses;
    l1dMisses += other.l1dMisses;
    l2Accesses += other.l2Accesses;
    l2Misses += other.l2Misses;
    trivialOps += other.trivialOps;
    prefetchesIssued += other.prefetchesIssued;
    memStallCycles += other.memStallCycles;
    return *this;
}

SimStats
stitchStats(const std::vector<SimStats> &shards)
{
    SimStats total;
    for (const SimStats &s : shards)
        total += s;
    return total;
}

} // namespace yasim
