/**
 * @file
 * Trivial-computation detection for the TC enhancement [Yi02].
 *
 * A computation is trivial when its result is determined by one operand
 * alone (x + 0, x * 1, x / x, x ^ x, ...). The enhancement simplifies or
 * eliminates such operations at execute time: a detected-trivial
 * instruction bypasses its normal functional unit and completes with
 * single-cycle latency, which mainly rescues long-latency multiplies and
 * divides. Detection needs operand *values*, so it lives on the
 * functional path and is recorded per dynamic instruction.
 */

#ifndef YASIM_SIM_TRIVIAL_HH
#define YASIM_SIM_TRIVIAL_HH

#include <cstdint>

#include "isa/instruction.hh"

namespace yasim {

/** Integer-operation trivial test given both operand values. */
bool isTrivialInt(Opcode op, int64_t a, int64_t b);

/** FP-operation trivial test given both operand values. */
bool isTrivialFp(Opcode op, double a, double b);

} // namespace yasim

#endif // YASIM_SIM_TRIVIAL_HH
