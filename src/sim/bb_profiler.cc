#include "sim/bb_profiler.hh"

namespace yasim {

BbProfiler::BbProfiler(const Program &program)
    : prog(program),
      bbefCounts(program.numBlocks(), 0.0),
      bbvCounts(program.numBlocks(), 0.0)
{
}

void
BbProfiler::clear()
{
    bbefCounts.assign(prog.numBlocks(), 0.0);
    bbvCounts.assign(prog.numBlocks(), 0.0);
}

} // namespace yasim
