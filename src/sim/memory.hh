/**
 * @file
 * Sparse paged data memory for the functional simulator.
 *
 * Workloads address tens of megabytes out of a large virtual space, so
 * backing storage is allocated in 64 KB pages on first touch. All values
 * are 64-bit words at 8-byte-aligned addresses; doubles are stored
 * bit-cast. Reads of untouched memory return zero, matching a
 * zero-initialized heap.
 */

#ifndef YASIM_SIM_MEMORY_HH
#define YASIM_SIM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "support/ordered.hh"

namespace yasim {

/** Base virtual address workloads use for heap data. */
constexpr uint64_t heapBase = 0x20000000;

/** Sparse 64-bit-word memory. */
class SparseMemory
{
  public:
    SparseMemory();

    /** Read the word at @p addr (8-byte aligned). */
    int64_t read(uint64_t addr);

    /** Write the word at @p addr (8-byte aligned). */
    void write(uint64_t addr, int64_t value);

    /** Read a double (bit-cast of the stored word). */
    double readDouble(uint64_t addr);

    /** Write a double (stored bit-cast). */
    void writeDouble(uint64_t addr, double value);

    /** Number of distinct pages touched so far. */
    size_t pagesTouched() const { return pages.size(); }

    /** Drop all contents (fresh zeroed memory). */
    void clear();

    /**
     * Invoke @p fn(addr, value) for every *non-zero* word currently
     * stored (zero words are indistinguishable from untouched memory),
     * in ascending address order. Checkpoint capture serializes this
     * stream, so determinism here is what keeps checkpoint and trace
     * artifacts byte-stable across runs and standard libraries.
     */
    template <typename Fn>
    void
    forEachWord(Fn &&fn) const
    {
        for (const auto *kv : orderedView(pages)) {
            const auto &page = kv->second;
            if (!page)
                continue;
            uint64_t base = kv->first * pageBytes;
            for (uint64_t i = 0; i < wordsPerPage; ++i) {
                if ((*page)[i] != 0)
                    fn(base + i * 8, (*page)[i]);
            }
        }
    }

  private:
    static constexpr uint64_t pageBytes = 1ULL << 16;
    static constexpr uint64_t wordsPerPage = pageBytes / 8;

    using Page = std::vector<int64_t>;

    int64_t *wordPtr(uint64_t addr);

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages;
    /** One-entry translation cache: most accesses stay on one page. */
    uint64_t lastPageId = ~0ULL;
    Page *lastPage = nullptr;
};

} // namespace yasim

#endif // YASIM_SIM_MEMORY_HH
