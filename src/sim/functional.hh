/**
 * @file
 * Functional (architectural) simulator: the live StepSource.
 *
 * Executes programs at architectural level only; the cycle-level core is
 * trace-driven from the ExecRecord stream this simulator produces. The
 * interface it implements — step / fastForward / fastForwardWarm — is
 * the StepSource seam (sim/step_source.hh); consumers above the
 * functional layer include that header, not this one, so a recorded
 * trace can stand in for the interpreter.
 */

#ifndef YASIM_SIM_FUNCTIONAL_HH
#define YASIM_SIM_FUNCTIONAL_HH

#include <cstdint>

#include "isa/program.hh"
#include "sim/memory.hh"
#include "sim/step_source.hh"

namespace yasim {

/** Architectural simulator for one program run. */
class FunctionalSim final : public StepSource
{
  public:
    /**
     * Begin executing @p program from its entry point with zeroed
     * state. The program must outlive the simulator (only a reference
     * is kept); binding a temporary is a compile error.
     */
    explicit FunctionalSim(const Program &program);
    explicit FunctionalSim(Program &&) = delete;

    /** True once a Halt has executed. */
    bool halted() const override { return isHalted; }

    /** Dynamic instructions executed so far (Halt included). */
    uint64_t instsExecuted() const override { return icount; }

    /** Current instruction index. */
    uint64_t pc() const { return curPc; }

    /**
     * Execute one instruction and describe it in @p record.
     * @return false when the machine was already halted.
     */
    bool step(ExecRecord &record) override;

    /**
     * Execute up to @p n instructions, describing each in @p out — a
     * tight interpreter loop with the virtual dispatch hoisted out.
     */
    uint64_t stepBatch(ExecRecord *out, uint64_t n) override;

    /**
     * Execute up to @p count instructions with no record production.
     * @return the number actually executed (less than count at Halt).
     */
    uint64_t fastForward(uint64_t count) override;

    /**
     * Execute up to @p count instructions while functionally warming
     * @p mem (I and D sides) and @p bp (may each be null).
     * @return the number actually executed.
     */
    uint64_t fastForwardWarm(uint64_t count, MemoryHierarchy *mem,
                             CombinedPredictor *bp) override;

    /** Read an integer register (r0 reads zero). */
    int64_t intReg(int idx) const { return intRegs[idx]; }

    /** Read an FP register. */
    double fpReg(int idx) const { return fpRegs[idx]; }

    /** The program's data memory. */
    SparseMemory &memory() { return mem; }

    /** The program being executed. */
    const Program &program() const { return prog; }

  private:
    friend class Checkpoint; // captures/restores architectural state
    friend class LivePoint;  // partial capture + record-producing warm step

    /** Execute one instruction; the caller has checked !isHalted. */
    template <bool MakeRecord, bool Warm>
    void execOne(ExecRecord *record, MemoryHierarchy *hierarchy,
                 CombinedPredictor *bp);

    const Program &prog;
    /** prog's instruction array, hoisted out of the interpreter loop. */
    const Instruction *code;
    SparseMemory mem;
    int64_t intRegs[numIntRegs] = {};
    double fpRegs[numFpRegs] = {};
    uint64_t curPc = 0;
    uint64_t icount = 0;
    bool isHalted = false;
};

} // namespace yasim

#endif // YASIM_SIM_FUNCTIONAL_HH
