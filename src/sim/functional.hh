/**
 * @file
 * Functional (architectural) simulator and the StepSource seam.
 *
 * Executes programs at architectural level only; the cycle-level core is
 * trace-driven from the ExecRecord stream this simulator produces. Three
 * execution modes cover every technique in the paper:
 *
 *  - step():            full record production, feeds detailed simulation
 *  - fastForward():     architectural state only (FF X in the truncated
 *                       techniques; skipped portions of SimPoint)
 *  - fastForwardWarm(): architectural state plus functional warming of the
 *                       caches and branch predictor (SMARTS)
 *
 * The three modes together form the StepSource interface. The
 * architectural stream is machine-configuration-independent, so a
 * recorded trace (sim/trace.hh) can stand in for the interpreter: every
 * consumer — OooCore::run, the techniques, the profilers — programs
 * against StepSource and cannot tell a TraceReplayer from a live
 * FunctionalSim.
 */

#ifndef YASIM_SIM_FUNCTIONAL_HH
#define YASIM_SIM_FUNCTIONAL_HH

#include <cstdint>

#include "isa/program.hh"
#include "sim/memory.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/memory_hierarchy.hh"

namespace yasim {

/** Everything the timing model needs about one dynamic instruction. */
struct ExecRecord
{
    /** Static instruction (owned by the Program). */
    const Instruction *inst = nullptr;
    /** Instruction index of this dynamic instance. */
    uint64_t pc = 0;
    /** Instruction index executed next (branch fall-through or target). */
    uint64_t nextPc = 0;
    /** Effective byte address for loads/stores, else 0. */
    uint64_t memAddr = 0;
    /** Resolved direction for control instructions. */
    bool taken = false;
    /** Operand values make this a trivial computation (TC enhancement). */
    bool trivial = false;
};

/**
 * Producer of an in-order dynamic instruction stream. Implemented live
 * by FunctionalSim and from a recording by TraceReplayer; both must
 * produce bit-identical streams and warming call sequences for the same
 * program.
 */
class StepSource
{
  public:
    virtual ~StepSource() = default;

    /**
     * Produce one instruction into @p record.
     * @return false when the stream was already exhausted (Halt done).
     */
    virtual bool step(ExecRecord &record) = 0;

    /**
     * Produce up to @p n instructions into @p out — the batch face of
     * step(), paying one virtual call per span instead of one per
     * record. The records delivered are exactly the next n step()
     * results (bit-identical; the hot consumers are tested both ways).
     * @return the number produced; 0 iff the stream is exhausted or
     * @p n is 0.
     */
    virtual uint64_t stepBatch(ExecRecord *out, uint64_t n);

    /**
     * Advance up to @p count instructions with no record production.
     * @return the number actually advanced (less than count at Halt).
     */
    virtual uint64_t fastForward(uint64_t count) = 0;

    /**
     * Advance up to @p count instructions while functionally warming
     * @p mem (I and D sides) and @p bp (may each be null).
     * @return the number actually advanced.
     */
    virtual uint64_t fastForwardWarm(uint64_t count, MemoryHierarchy *mem,
                                     CombinedPredictor *bp) = 0;

    /** True once the stream has delivered its Halt. */
    virtual bool halted() const = 0;

    /** Dynamic instructions delivered so far (Halt included). */
    virtual uint64_t instsExecuted() const = 0;
};

/** Architectural simulator for one program run. */
class FunctionalSim final : public StepSource
{
  public:
    /**
     * Begin executing @p program from its entry point with zeroed
     * state. The program must outlive the simulator (only a reference
     * is kept); binding a temporary is a compile error.
     */
    explicit FunctionalSim(const Program &program);
    explicit FunctionalSim(Program &&) = delete;

    /** True once a Halt has executed. */
    bool halted() const override { return isHalted; }

    /** Dynamic instructions executed so far (Halt included). */
    uint64_t instsExecuted() const override { return icount; }

    /** Current instruction index. */
    uint64_t pc() const { return curPc; }

    /**
     * Execute one instruction and describe it in @p record.
     * @return false when the machine was already halted.
     */
    bool step(ExecRecord &record) override;

    /**
     * Execute up to @p n instructions, describing each in @p out — a
     * tight interpreter loop with the virtual dispatch hoisted out.
     */
    uint64_t stepBatch(ExecRecord *out, uint64_t n) override;

    /**
     * Execute up to @p count instructions with no record production.
     * @return the number actually executed (less than count at Halt).
     */
    uint64_t fastForward(uint64_t count) override;

    /**
     * Execute up to @p count instructions while functionally warming
     * @p mem (I and D sides) and @p bp (may each be null).
     * @return the number actually executed.
     */
    uint64_t fastForwardWarm(uint64_t count, MemoryHierarchy *mem,
                             CombinedPredictor *bp) override;

    /** Read an integer register (r0 reads zero). */
    int64_t intReg(int idx) const { return intRegs[idx]; }

    /** Read an FP register. */
    double fpReg(int idx) const { return fpRegs[idx]; }

    /** The program's data memory. */
    SparseMemory &memory() { return mem; }

    /** The program being executed. */
    const Program &program() const { return prog; }

  private:
    friend class Checkpoint; // captures/restores architectural state

    /** Execute one instruction; the caller has checked !isHalted. */
    template <bool MakeRecord, bool Warm>
    void execOne(ExecRecord *record, MemoryHierarchy *hierarchy,
                 CombinedPredictor *bp);

    const Program &prog;
    /** prog's instruction array, hoisted out of the interpreter loop. */
    const Instruction *code;
    SparseMemory mem;
    int64_t intRegs[numIntRegs] = {};
    double fpRegs[numFpRegs] = {};
    uint64_t curPc = 0;
    uint64_t icount = 0;
    bool isHalted = false;
};

} // namespace yasim

#endif // YASIM_SIM_FUNCTIONAL_HH
