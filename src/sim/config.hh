/**
 * @file
 * Full simulator configuration: the 43-parameter Plackett-Burman factor
 * space, the paper's Table-3 architecture-level presets, and helpers to
 * enumerate envelope-of-the-hypercube configurations.
 *
 * Every PB factor carries a low and a high setting chosen, as in the
 * paper, to bracket the range found in contemporary commercial processors
 * (values follow [Yi03]). Applying a PB design row to the default
 * configuration yields one corner configuration of the design hypercube.
 */

#ifndef YASIM_SIM_CONFIG_HH
#define YASIM_SIM_CONFIG_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "uarch/branch_predictor.hh"
#include "uarch/memory_hierarchy.hh"

namespace yasim {

/** Out-of-order core sizing and latencies. */
struct CoreConfig
{
    uint32_t fetchWidth = 4;
    uint32_t decodeWidth = 4;
    uint32_t issueWidth = 4;
    uint32_t commitWidth = 4;
    uint32_t fetchQueueEntries = 16;
    uint32_t robEntries = 64;
    uint32_t lsqEntries = 32;
    uint32_t iqEntries = 32;

    uint32_t intAlus = 4;
    uint32_t intMultDivUnits = 2;
    uint32_t fpAlus = 2;
    uint32_t fpMultDivUnits = 1;
    uint32_t memPorts = 2;

    uint32_t intAluLatency = 1;
    uint32_t intMulLatency = 3;
    uint32_t intDivLatency = 20;
    uint32_t fpAluLatency = 2;
    uint32_t fpMulLatency = 4;
    uint32_t fpDivLatency = 12;
    /** Dividers are typically unpipelined; ALUs/multipliers pipelined. */
    bool divPipelined = false;

    /** Decode-to-issue pipeline depth in cycles. */
    uint32_t frontendDepth = 4;
    /** Extra redirect cycles charged after a mispredicted branch resolves. */
    uint32_t mispredictPenalty = 3;

    /**
     * Enable the trivial-computation enhancement [Yi02]: operations whose
     * result is determined by one operand complete on an ALU in one pass.
     */
    bool trivialComputation = false;
};

/** Complete simulated-machine configuration. */
struct SimConfig
{
    // yasim-lint: key-exempt(result, warm: descriptive label only)
    // The name is never read by the simulator and never serialized
    // into results, so two configs differing only by name may share
    // cached results.
    std::string name = "default";
    // Core sizing is timing-only: it cannot change which lines the
    // architectural warm stream touches, so warm summaries are shared
    // across core sweeps.
    CoreConfig core; // yasim-lint: key-exempt(warm: timing-only)
    BranchPredictorConfig bp;
    MemoryConfig mem;
};

/** One Plackett-Burman factor: a named low/high toggle on SimConfig. */
struct PbFactor
{
    std::string name;
    /** Apply the low (false) or high (true) level to @p config. */
    std::function<void(SimConfig &config, bool high)> apply;
};

/**
 * The 43 PB factors of the processor-bottleneck characterization, in a
 * fixed canonical order (the rank-vector coordinate order).
 */
const std::vector<PbFactor> &pbFactors();

/** Number of PB factors (43, matching the paper's rank vectors). */
size_t numPbFactors();

/**
 * Build the corner configuration for one PB design row: factor @p j is
 * set high where levels[j] > 0 and low otherwise.
 *
 * @pre levels.size() == numPbFactors()
 */
SimConfig applyPbRow(const std::vector<int> &levels,
                     const std::string &name);

/** The paper's Table-3 architecture-level configurations (#1..#4). */
std::vector<SimConfig> architecturalConfigs();

/** Table-3 configuration @p index (1-based, 1..4). */
SimConfig architecturalConfig(int index);

/**
 * Envelope-of-the-hypercube configuration set used by the
 * configuration-dependence analysis: the rows of the (un-folded) PB
 * design plus the four Table-3 presets (48 configurations).
 */
std::vector<SimConfig> envelopeConfigs();

} // namespace yasim

#endif // YASIM_SIM_CONFIG_HH
