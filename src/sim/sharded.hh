/**
 * @file
 * Checkpoint-sharded parallel detailed simulation.
 *
 * The full-reference detailed run is the slowest serial artifact in the
 * repo: every figure anchors to it, yet it occupies one core while the
 * engine's pool parallelizes only across configurations. Sharding
 * splits the measured region at the canonical checkpoint ladder into N
 * slices; each worker positions an independent core at its slice —
 * seeking a TraceReplayer, or restoring the nearest architectural
 * Checkpoint live — functionally warms caches and predictor through
 * its lead-in (the SMARTS warming path), detail-simulates the slice on
 * a drained pipeline, and the per-shard SimStats are stitched in
 * shard-index order into whole-run statistics.
 *
 * Exactness contract (docs/perf.md): instruction, conditional-branch,
 * data-reference, and trivial-op counters are bit-identical to the
 * sequential run; cycle and miss counters carry a small boundary error
 * (warmed-not-simulated lead-ins), empirically well under the 0.5%
 * CPI tolerance the SMARTS literature predicts. `exact` (or a single
 * shard) takes the sequential path and is byte-identical to it.
 *
 * Warmed-uarch summaries: when ShardOptions::warmDir is set, each
 * shard's post-warming cache/TLB/predictor state is persisted as a
 * Checkpoint summary (sim/checkpoint.hh) keyed by the warm identity —
 * program content, slice, warm-relevant configuration, and format
 * versions — so repeated runs (config sweeps varying only latencies
 * included) restore instead of re-warming. Summaries affect wall-clock
 * only, never results or modeled cost.
 */

#ifndef YASIM_SIM_SHARDED_HH
#define YASIM_SIM_SHARDED_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "support/cancel.hh"

namespace yasim {

class ExecTrace;
class Program;

/** How per-shard statistics combine into whole-run statistics. */
enum class StitchMode
{
    /**
     * Each shard starts on a drained (empty) pipeline and counters
     * sum in shard-index order. The only mode; named so the cache key
     * can record it and any future mode invalidates cleanly.
     */
    Drain,
};

/** Printable stitch-mode name (used by the result cache key). */
const char *stitchModeName(StitchMode mode);

/** Sharding knobs, carried from the driver down to the techniques. */
struct ShardOptions
{
    /** Worker slices for the reference detailed run (1 = sequential). */
    uint32_t shards = 1;
    /**
     * Functional-warming lead-in per shard in instructions; 0 warms
     * the full prefix (most accurate, most redundant work). Bounded
     * warm-ups below one ladder spacing still warm from the aligned
     * shard boundary minus the bound.
     */
    uint64_t warmupInsts = 0;
    /** Force the sequential path regardless of `shards` (--exact). */
    // yasim-lint: key-exempt(result: exact disables the shard segment)
    // When exact is set, enabled() is false and the key reverts to the
    // historical shards-absent layout — the sequential result is by
    // construction the one that key already names.
    bool exact = false;
    /**
     * Directory for persisted warmed-uarch summaries; "" disables
     * persistence (warming then always runs in-process).
     */
    // yasim-lint: key-exempt(result: changes wall-clock only)
    // Persisted summaries are themselves keyed (warmSummaryKey), so
    // where they live cannot change any stitched statistic.
    std::string warmDir;
    /** Stitching discipline (part of the result cache key). */
    StitchMode stitch = StitchMode::Drain;

    /** True when the sharded path is active. */
    bool enabled() const { return !exact && shards > 1; }
};

/** One shard: functionally warm [warmStart, begin), measure [begin, end). */
struct ShardSlice
{
    uint64_t warmStart = 0;
    uint64_t begin = 0;
    uint64_t end = 0;
};

/**
 * Split [0, length) into at most @p shards slices with boundaries
 * aligned to the nearest rung of the canonical checkpoint ladder
 * (ExecTrace::ladderSpacingFor). Boundaries that collide after
 * alignment merge, so short runs may yield fewer slices. Shard 0 is
 * never warmed (it starts cold, exactly like the sequential run);
 * later shards warm from `begin - warmup` (full prefix when
 * @p warmup == 0 or the bound reaches position zero).
 */
std::vector<ShardSlice> planShards(uint64_t length, uint32_t shards,
                                   uint64_t warmup);

/** Everything a sharded reference run produces. */
struct ShardedRunResult
{
    /** Whole-run statistics, stitched in shard-index order. */
    SimStats stats;
    /** Per-shard region statistics (diagnostics and tests). */
    std::vector<SimStats> perShard;
    /** Whole-run BBEF/BBV profile (live mode only; empty in replay
     *  mode, where the trace already carries the full profile). */
    std::vector<double> bbef;
    std::vector<double> bbv;
    /** Instructions detail-simulated (== run length). */
    uint64_t detailedInsts = 0;
    /**
     * Modeled functional-warming instructions, summed from the *plan*
     * — deliberately independent of how many shards restored persisted
     * summaries, so modeled cost (and cached results) never depend on
     * warm-dir state.
     */
    uint64_t warmedInsts = 0;
    /** Modeled checkpoint-generation instructions (live mode only). */
    uint64_t checkpointInsts = 0;
    /** Shards warmed from a persisted summary (wall-clock savings). */
    uint32_t warmRestores = 0;
    /** Summaries persisted by this run. */
    uint32_t warmSaves = 0;
};

/**
 * Run the reference detailed simulation sharded over @p trace.
 * Workers replay independent cursors of the shared immutable trace;
 * parallelism comes from the global pool (nested invocations simply
 * run inline). @p opts.shards of 1 degrades to the sequential loop.
 *
 * A valid @p cancel token stops the fan-out cooperatively: unstarted
 * shards are skipped, running ones return at their next batch-boundary
 * poll, and the call throws CancelledError (carrying the partial
 * detailed/warmed instruction counts) *instead of stitching* — a
 * partially-simulated run must never masquerade as whole-run
 * statistics.
 */
ShardedRunResult runShardedReference(
    const std::shared_ptr<const ExecTrace> &trace, const SimConfig &config,
    const ShardOptions &opts,
    const CancelToken &cancel = CancelToken());

/**
 * Live-mode overload: no trace, so shard lead-ins are reached through
 * an architectural CheckpointLibrary built in one functional pass
 * (charged as checkpointInsts) and the whole-run BBEF/BBV profile is
 * accumulated per shard and summed. Bit-identical to the trace
 * overload for the same @p length and @p config. Same cancellation
 * contract as the trace overload (the checkpoint-library pass itself
 * is not cancellable; it is bounded functional-mode work).
 */
ShardedRunResult runShardedReference(const Program &program,
                                     uint64_t length,
                                     const SimConfig &config,
                                     const ShardOptions &opts,
                                     const CancelToken &cancel =
                                         CancelToken());

} // namespace yasim

#endif // YASIM_SIM_SHARDED_HH
