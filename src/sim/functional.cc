#include "sim/functional.hh"

#include "sim/trivial.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/memory_hierarchy.hh"

namespace yasim {

uint64_t
StepSource::stepBatch(ExecRecord *out, uint64_t n)
{
    // Generic fallback for sources without a native batch kernel: the
    // per-record virtual cost is unchanged, only the call site shrinks.
    uint64_t done = 0;
    while (done < n && step(out[done]))
        ++done;
    return done;
}

FunctionalSim::FunctionalSim(const Program &program)
    : prog(program), code(program.code())
{
}

template <bool MakeRecord, bool Warm>
void
FunctionalSim::execOne(ExecRecord *record, MemoryHierarchy *hierarchy,
                       CombinedPredictor *bp)
{
    const uint64_t pc = curPc;
    const Instruction &inst = code[pc];
    uint64_t next_pc = pc + 1;
    uint64_t mem_addr = 0;
    bool taken = false;
    bool trivial = false;

    auto write_int = [&](int rd, int64_t v) {
        if (rd != 0) // r0 is hardwired to zero
            intRegs[rd] = v;
    };

    const int64_t a = inst.rs1 != noReg ? intRegs[inst.rs1] : 0;
    const int64_t b = inst.rs2 != noReg ? intRegs[inst.rs2] : 0;
    // The simulated ISA is two's-complement with wraparound semantics;
    // add/sub/mul go through uint64_t so the wrap is defined behavior.
    const uint64_t ua = static_cast<uint64_t>(a);
    const uint64_t ub = static_cast<uint64_t>(b);

    switch (inst.op) {
      case Opcode::Add:
        trivial = isTrivialInt(inst.op, a, b);
        write_int(inst.rd, static_cast<int64_t>(ua + ub));
        break;
      case Opcode::Sub:
        trivial = isTrivialInt(inst.op, a, b);
        write_int(inst.rd, static_cast<int64_t>(ua - ub));
        break;
      case Opcode::And:
        trivial = isTrivialInt(inst.op, a, b);
        write_int(inst.rd, a & b);
        break;
      case Opcode::Or:
        trivial = isTrivialInt(inst.op, a, b);
        write_int(inst.rd, a | b);
        break;
      case Opcode::Xor:
        trivial = isTrivialInt(inst.op, a, b);
        write_int(inst.rd, a ^ b);
        break;
      case Opcode::Shl:
        trivial = isTrivialInt(inst.op, a, b);
        write_int(inst.rd, a << (b & 63));
        break;
      case Opcode::Shr:
        trivial = isTrivialInt(inst.op, a, b);
        write_int(inst.rd,
                  static_cast<int64_t>(static_cast<uint64_t>(a) >> (b & 63)));
        break;
      case Opcode::Slt:
        write_int(inst.rd, a < b ? 1 : 0);
        break;
      case Opcode::AddI:
        write_int(inst.rd, static_cast<int64_t>(
                               ua + static_cast<uint64_t>(inst.imm)));
        break;
      case Opcode::AndI:
        write_int(inst.rd, a & inst.imm);
        break;
      case Opcode::OrI:
        write_int(inst.rd, a | inst.imm);
        break;
      case Opcode::XorI:
        write_int(inst.rd, a ^ inst.imm);
        break;
      case Opcode::ShlI:
        write_int(inst.rd, a << (inst.imm & 63));
        break;
      case Opcode::ShrI:
        write_int(inst.rd, static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                                (inst.imm & 63)));
        break;
      case Opcode::SltI:
        write_int(inst.rd, a < inst.imm ? 1 : 0);
        break;
      case Opcode::MovI:
        write_int(inst.rd, inst.imm);
        break;
      case Opcode::Mul:
        trivial = isTrivialInt(inst.op, a, b);
        write_int(inst.rd, static_cast<int64_t>(ua * ub));
        break;
      case Opcode::Div:
        // b == -1 wraps (INT64_MIN / -1 overflows); negate via the
        // unsigned domain instead of dividing.
        trivial = isTrivialInt(inst.op, a, b);
        write_int(inst.rd, b == 0    ? 0
                           : b == -1 ? static_cast<int64_t>(0 - ua)
                                     : a / b);
        break;
      case Opcode::Rem:
        trivial = isTrivialInt(inst.op, a, b);
        write_int(inst.rd, b == 0 ? 0 : b == -1 ? 0 : a % b);
        break;

      case Opcode::FAdd: {
        double x = fpRegs[inst.rs1], y = fpRegs[inst.rs2];
        trivial = isTrivialFp(inst.op, x, y);
        fpRegs[inst.rd] = x + y;
        break;
      }
      case Opcode::FSub: {
        double x = fpRegs[inst.rs1], y = fpRegs[inst.rs2];
        trivial = isTrivialFp(inst.op, x, y);
        fpRegs[inst.rd] = x - y;
        break;
      }
      case Opcode::FMul: {
        double x = fpRegs[inst.rs1], y = fpRegs[inst.rs2];
        trivial = isTrivialFp(inst.op, x, y);
        fpRegs[inst.rd] = x * y;
        break;
      }
      case Opcode::FDiv: {
        double x = fpRegs[inst.rs1], y = fpRegs[inst.rs2];
        trivial = isTrivialFp(inst.op, x, y);
        fpRegs[inst.rd] = y == 0.0 ? 0.0 : x / y;
        break;
      }
      case Opcode::FCvt:
        fpRegs[inst.rd] = static_cast<double>(a);
        break;
      case Opcode::FMov:
        fpRegs[inst.rd] = fpRegs[inst.rs1];
        break;

      case Opcode::Ld:
        mem_addr = ua + static_cast<uint64_t>(inst.imm);
        write_int(inst.rd, mem.read(mem_addr));
        break;
      case Opcode::St:
        mem_addr = ua + static_cast<uint64_t>(inst.imm);
        mem.write(mem_addr, b);
        break;
      case Opcode::FLd:
        mem_addr = ua + static_cast<uint64_t>(inst.imm);
        fpRegs[inst.rd] = mem.readDouble(mem_addr);
        break;
      case Opcode::FSt:
        mem_addr = ua + static_cast<uint64_t>(inst.imm);
        mem.writeDouble(mem_addr, fpRegs[inst.rs2]);
        break;

      case Opcode::Beq:
        taken = a == b;
        break;
      case Opcode::Bne:
        taken = a != b;
        break;
      case Opcode::Blt:
        taken = a < b;
        break;
      case Opcode::Bge:
        taken = a >= b;
        break;
      case Opcode::Jmp:
        taken = true;
        break;

      case Opcode::Nop:
        break;
      case Opcode::Halt:
        isHalted = true;
        break;
    }

    if (taken)
        next_pc = static_cast<uint64_t>(inst.imm);

    if constexpr (Warm) {
        if (hierarchy) {
            hierarchy->warmInst(Program::pcAddress(pc));
            if (inst.isLoad() || inst.isStore())
                hierarchy->warmData(mem_addr);
        }
        if (bp && inst.isControl()) {
            bp->warmUpdate(Program::pcAddress(pc), inst.isCondBranch(),
                           taken, Program::pcAddress(next_pc));
        }
    }

    if constexpr (MakeRecord) {
        record->inst = &inst;
        record->pc = pc;
        record->nextPc = next_pc;
        record->memAddr = mem_addr;
        record->taken = taken;
        record->trivial = trivial;
    }

    curPc = next_pc;
    ++icount;
}

bool
FunctionalSim::step(ExecRecord &record)
{
    if (isHalted)
        return false;
    execOne<true, false>(&record, nullptr, nullptr);
    return true;
}

uint64_t
FunctionalSim::stepBatch(ExecRecord *out, uint64_t n)
{
    uint64_t done = 0;
    while (done < n && !isHalted) {
        execOne<true, false>(&out[done], nullptr, nullptr);
        ++done;
    }
    return done;
}

uint64_t
FunctionalSim::fastForward(uint64_t count)
{
    // The halt flag only changes inside execOne, so the batch loop
    // needs no per-instruction re-entry check beyond it.
    uint64_t done = 0;
    while (done < count && !isHalted) {
        execOne<false, false>(nullptr, nullptr, nullptr);
        ++done;
    }
    return done;
}

uint64_t
FunctionalSim::fastForwardWarm(uint64_t count, MemoryHierarchy *hierarchy,
                               CombinedPredictor *bp)
{
    uint64_t done = 0;
    while (done < count && !isHalted) {
        execOne<false, true>(nullptr, hierarchy, bp);
        ++done;
    }
    return done;
}

// The record-producing warming mode has no public wrapper here: its
// only consumer is LivePoint::stepWarm (sim/livepoint.cc), which
// reaches it through friendship and needs the instantiation emitted.
template void FunctionalSim::execOne<true, true>(ExecRecord *,
                                                 MemoryHierarchy *,
                                                 CombinedPredictor *);

} // namespace yasim
