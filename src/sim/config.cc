#include "sim/config.hh"

#include "stats/plackett_burman.hh"
#include "support/logging.hh"

namespace yasim {

namespace {

std::vector<PbFactor>
buildPbFactors()
{
    std::vector<PbFactor> f;
    auto add = [&](const char *name, auto &&fn) {
        f.push_back(PbFactor{name, std::forward<decltype(fn)>(fn)});
    };

    // --- Core widths and queues (8) ---
    add("fetch width", [](SimConfig &c, bool h) {
        c.core.fetchWidth = h ? 8 : 2;
    });
    add("decode width", [](SimConfig &c, bool h) {
        c.core.decodeWidth = h ? 8 : 2;
    });
    add("issue width", [](SimConfig &c, bool h) {
        c.core.issueWidth = h ? 8 : 2;
    });
    add("commit width", [](SimConfig &c, bool h) {
        c.core.commitWidth = h ? 8 : 2;
    });
    add("fetch queue entries", [](SimConfig &c, bool h) {
        c.core.fetchQueueEntries = h ? 32 : 4;
    });
    add("ROB entries", [](SimConfig &c, bool h) {
        c.core.robEntries = h ? 256 : 16;
    });
    add("LSQ entries", [](SimConfig &c, bool h) {
        c.core.lsqEntries = h ? 128 : 8;
    });
    add("IQ entries", [](SimConfig &c, bool h) {
        c.core.iqEntries = h ? 128 : 8;
    });

    // --- Functional units (5) ---
    add("int ALUs", [](SimConfig &c, bool h) {
        c.core.intAlus = h ? 8 : 1;
    });
    add("int mult/div units", [](SimConfig &c, bool h) {
        c.core.intMultDivUnits = h ? 8 : 1;
    });
    add("FP ALUs", [](SimConfig &c, bool h) {
        c.core.fpAlus = h ? 8 : 1;
    });
    add("FP mult/div units", [](SimConfig &c, bool h) {
        c.core.fpMultDivUnits = h ? 8 : 1;
    });
    add("memory ports", [](SimConfig &c, bool h) {
        c.core.memPorts = h ? 4 : 1;
    });

    // --- Instruction latencies (6) ---
    add("int ALU latency", [](SimConfig &c, bool h) {
        c.core.intAluLatency = h ? 2 : 1;
    });
    add("int multiply latency", [](SimConfig &c, bool h) {
        c.core.intMulLatency = h ? 10 : 2;
    });
    add("int divide latency", [](SimConfig &c, bool h) {
        c.core.intDivLatency = h ? 40 : 10;
    });
    add("FP ALU latency", [](SimConfig &c, bool h) {
        c.core.fpAluLatency = h ? 5 : 1;
    });
    add("FP multiply latency", [](SimConfig &c, bool h) {
        c.core.fpMulLatency = h ? 8 : 2;
    });
    add("FP divide latency", [](SimConfig &c, bool h) {
        c.core.fpDivLatency = h ? 40 : 8;
    });

    // --- Pipeline shape (2) ---
    add("frontend depth", [](SimConfig &c, bool h) {
        c.core.frontendDepth = h ? 8 : 2;
    });
    add("mispredict penalty", [](SimConfig &c, bool h) {
        c.core.mispredictPenalty = h ? 10 : 1;
    });

    // --- Branch predictor (5) ---
    add("BHT entries", [](SimConfig &c, bool h) {
        c.bp.bhtEntries = h ? 32768 : 512;
    });
    add("global history bits", [](SimConfig &c, bool h) {
        c.bp.globalHistoryBits = h ? 16 : 4;
    });
    add("BTB entries", [](SimConfig &c, bool h) {
        c.bp.btbEntries = h ? 8192 : 256;
    });
    add("BTB associativity", [](SimConfig &c, bool h) {
        c.bp.btbAssoc = h ? 8 : 1;
    });
    add("speculative history update", [](SimConfig &c, bool h) {
        c.bp.speculativeUpdate = h;
    });

    // --- L1 I-cache (4) ---
    add("L1 I-cache size", [](SimConfig &c, bool h) {
        c.mem.l1i.sizeKb = h ? 128 : 8;
    });
    add("L1 I-cache associativity", [](SimConfig &c, bool h) {
        c.mem.l1i.assoc = h ? 8 : 1;
    });
    add("L1 I-cache block size", [](SimConfig &c, bool h) {
        c.mem.l1i.blockBytes = h ? 128 : 16;
    });
    add("L1 I-cache latency", [](SimConfig &c, bool h) {
        c.mem.l1iLatency = h ? 3 : 1;
    });

    // --- L1 D-cache (4) ---
    add("L1 D-cache size", [](SimConfig &c, bool h) {
        c.mem.l1d.sizeKb = h ? 256 : 8;
    });
    add("L1 D-cache associativity", [](SimConfig &c, bool h) {
        c.mem.l1d.assoc = h ? 8 : 1;
    });
    add("L1 D-cache block size", [](SimConfig &c, bool h) {
        c.mem.l1d.blockBytes = h ? 128 : 16;
    });
    add("L1 D-cache latency", [](SimConfig &c, bool h) {
        c.mem.l1dLatency = h ? 4 : 1;
    });

    // --- L2 cache (4) ---
    add("L2 cache size", [](SimConfig &c, bool h) {
        c.mem.l2.sizeKb = h ? 2048 : 128;
    });
    add("L2 cache associativity", [](SimConfig &c, bool h) {
        c.mem.l2.assoc = h ? 8 : 1;
    });
    add("L2 cache block size", [](SimConfig &c, bool h) {
        c.mem.l2.blockBytes = h ? 256 : 64;
    });
    add("L2 cache latency", [](SimConfig &c, bool h) {
        c.mem.l2Latency = h ? 20 : 5;
    });

    // --- Memory and TLBs (5) ---
    add("memory latency (first)", [](SimConfig &c, bool h) {
        c.mem.memLatencyFirst = h ? 400 : 50;
    });
    add("memory latency (following)", [](SimConfig &c, bool h) {
        c.mem.memLatencyNext = h ? 10 : 1;
    });
    add("memory bus width", [](SimConfig &c, bool h) {
        c.mem.memBusBytes = h ? 32 : 4;
    });
    add("I-TLB entries", [](SimConfig &c, bool h) {
        c.mem.itlbEntries = h ? 256 : 16;
    });
    add("D-TLB entries", [](SimConfig &c, bool h) {
        c.mem.dtlbEntries = h ? 256 : 16;
    });

    if (f.size() != 43)
        panic("expected 43 PB factors, built %zu", f.size());
    return f;
}

} // namespace

const std::vector<PbFactor> &
pbFactors()
{
    static const std::vector<PbFactor> factors = buildPbFactors();
    return factors;
}

size_t
numPbFactors()
{
    return pbFactors().size();
}

SimConfig
applyPbRow(const std::vector<int> &levels, const std::string &name)
{
    const auto &factors = pbFactors();
    YASIM_ASSERT(levels.size() >= factors.size());
    SimConfig config;
    config.name = name;
    for (size_t j = 0; j < factors.size(); ++j)
        factors[j].apply(config, levels[j] > 0);
    return config;
}

std::vector<SimConfig>
architecturalConfigs()
{
    std::vector<SimConfig> configs;

    { // Config #1: narrow 4-way machine, small predictor, slow memory.
        SimConfig c;
        c.name = "config1";
        c.core.fetchWidth = c.core.decodeWidth = 4;
        c.core.issueWidth = c.core.commitWidth = 4;
        c.bp.bhtEntries = 4096;
        c.core.robEntries = 32;
        c.core.lsqEntries = 16;
        c.core.iqEntries = 16;
        c.core.intAlus = 2;
        c.core.fpAlus = 2;
        c.core.intMultDivUnits = 1;
        c.core.fpMultDivUnits = 1;
        c.mem.l1d = CacheConfig{32, 2, 64};
        c.mem.l1i = CacheConfig{32, 2, 64};
        c.mem.l1dLatency = 1;
        c.mem.l2 = CacheConfig{256, 4, 128};
        c.mem.l2Latency = 8;
        c.mem.memLatencyFirst = 150;
        c.mem.memLatencyNext = 10;
        configs.push_back(c);
    }
    { // Config #2: 4-way, larger structures, 200/5 memory.
        SimConfig c;
        c.name = "config2";
        c.core.fetchWidth = c.core.decodeWidth = 4;
        c.core.issueWidth = c.core.commitWidth = 4;
        c.bp.bhtEntries = 8192;
        c.core.robEntries = 64;
        c.core.lsqEntries = 32;
        c.core.iqEntries = 32;
        c.core.intAlus = 4;
        c.core.fpAlus = 4;
        c.core.intMultDivUnits = 4;
        c.core.fpMultDivUnits = 4;
        c.mem.l1d = CacheConfig{64, 4, 64};
        c.mem.l1i = CacheConfig{64, 4, 64};
        c.mem.l1dLatency = 1;
        c.mem.l2 = CacheConfig{512, 8, 128};
        c.mem.l2Latency = 8;
        c.mem.memLatencyFirst = 200;
        c.mem.memLatencyNext = 5;
        configs.push_back(c);
    }
    { // Config #3: 8-way, 128-entry ROB, big L2.
        SimConfig c;
        c.name = "config3";
        c.core.fetchWidth = c.core.decodeWidth = 8;
        c.core.issueWidth = c.core.commitWidth = 8;
        c.bp.bhtEntries = 16384;
        c.core.robEntries = 128;
        c.core.lsqEntries = 64;
        c.core.iqEntries = 64;
        c.core.intAlus = 6;
        c.core.fpAlus = 6;
        c.core.intMultDivUnits = 4;
        c.core.fpMultDivUnits = 4;
        c.mem.l1d = CacheConfig{128, 2, 64};
        c.mem.l1i = CacheConfig{128, 2, 64};
        c.mem.l1dLatency = 1;
        c.mem.l2 = CacheConfig{1024, 4, 128};
        c.mem.l2Latency = 12;
        c.mem.memLatencyFirst = 300;
        c.mem.memLatencyNext = 5;
        configs.push_back(c);
    }
    { // Config #4: aggressive 8-way machine, 350/5 memory.
        SimConfig c;
        c.name = "config4";
        c.core.fetchWidth = c.core.decodeWidth = 8;
        c.core.issueWidth = c.core.commitWidth = 8;
        c.bp.bhtEntries = 32768;
        c.core.robEntries = 256;
        c.core.lsqEntries = 128;
        c.core.iqEntries = 128;
        c.core.intAlus = 8;
        c.core.fpAlus = 8;
        c.core.intMultDivUnits = 8;
        c.core.fpMultDivUnits = 8;
        c.mem.l1d = CacheConfig{256, 4, 64};
        c.mem.l1i = CacheConfig{256, 4, 64};
        c.mem.l1dLatency = 1;
        c.mem.l2 = CacheConfig{2048, 8, 128};
        c.mem.l2Latency = 12;
        c.mem.memLatencyFirst = 350;
        c.mem.memLatencyNext = 5;
        configs.push_back(c);
    }
    return configs;
}

SimConfig
architecturalConfig(int index)
{
    auto configs = architecturalConfigs();
    if (index < 1 || static_cast<size_t>(index) > configs.size())
        fatal("architectural config index %d out of range 1..4", index);
    return configs[static_cast<size_t>(index - 1)];
}

std::vector<SimConfig>
envelopeConfigs()
{
    std::vector<SimConfig> configs;
    PbDesign design = PbDesign::forFactors(numPbFactors(),
                                           /*foldover=*/false);
    for (size_t run = 0; run < design.numRuns(); ++run) {
        std::vector<int> levels(design.numFactors());
        for (size_t j = 0; j < design.numFactors(); ++j)
            levels[j] = design.level(run, j);
        configs.push_back(
            applyPbRow(levels, "corner" + std::to_string(run)));
    }
    for (auto &c : architecturalConfigs())
        configs.push_back(std::move(c));
    return configs;
}

} // namespace yasim
