/**
 * @file
 * Basic-block execution profiler.
 *
 * Accumulates the two execution-profile distributions of the paper's
 * characterization B: BBEF (times each static basic block was entered)
 * and BBV (dynamic instructions attributed to each block, SimPoint's
 * "basic block vector"). Counts can be weighted, which lets SimPoint
 * scale each simulation point's profile by its cluster weight so the
 * aggregate is comparable to a full-run profile.
 */

#ifndef YASIM_SIM_BB_PROFILER_HH
#define YASIM_SIM_BB_PROFILER_HH

#include <vector>

#include "isa/program.hh"
#include "sim/step_source.hh"

namespace yasim {

/** Weighted BBEF/BBV accumulator for one program. */
class BbProfiler
{
  public:
    /** The program must outlive the profiler (a reference is kept). */
    explicit BbProfiler(const Program &program);
    explicit BbProfiler(Program &&) = delete;

    /** Attribute one dynamic instruction at @p pc. */
    void record(uint64_t pc)
    {
        uint32_t block = prog.blockOf(pc);
        bbvCounts[block] += weight;
        if (pc == prog.basicBlocks()[block].first)
            bbefCounts[block] += weight;
    }

    /** Attribute a batch of records (the batch face of record()). */
    void recordBatch(const ExecRecord *recs, uint64_t n)
    {
        for (uint64_t i = 0; i < n; ++i)
            record(recs[i].pc);
    }

    /** Scale subsequent records (SimPoint cluster weighting). */
    void setWeight(double w) { weight = w; }

    /** Execution count per static basic block. */
    const std::vector<double> &bbef() const { return bbefCounts; }

    /** Instruction count per static basic block. */
    const std::vector<double> &bbv() const { return bbvCounts; }

    /** Zero both distributions. */
    void clear();

  private:
    const Program &prog;
    std::vector<double> bbefCounts;
    std::vector<double> bbvCounts;
    double weight = 1.0;
};

} // namespace yasim

#endif // YASIM_SIM_BB_PROFILER_HH
