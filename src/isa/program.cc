#include "isa/program.hh"

#include <algorithm>

#include "support/logging.hh"

namespace yasim {

Program::Program(std::vector<Instruction> instructions, std::string name)
    : progName(std::move(name)), insts(std::move(instructions))
{
    YASIM_ASSERT(!insts.empty());
    discoverBlocks();
}

void
Program::discoverBlocks()
{
    std::vector<bool> leader(insts.size(), false);
    leader[0] = true;
    for (uint64_t pc = 0; pc < insts.size(); ++pc) {
        const Instruction &inst = insts[pc];
        if (!inst.isControl())
            continue;
        auto target = static_cast<uint64_t>(inst.imm);
        if (target < insts.size())
            leader[target] = true;
        if (pc + 1 < insts.size())
            leader[pc + 1] = true;
    }

    blocks.clear();
    pcToBlock.assign(insts.size(), 0);
    for (uint64_t pc = 0; pc < insts.size(); ++pc) {
        if (leader[pc]) {
            if (!blocks.empty())
                blocks.back().last = pc - 1;
            blocks.push_back(BasicBlock{pc, pc});
        }
        pcToBlock[pc] = static_cast<uint32_t>(blocks.size() - 1);
    }
    blocks.back().last = insts.size() - 1;
}

void
Program::validate() const
{
    bool has_halt = false;
    for (uint64_t pc = 0; pc < insts.size(); ++pc) {
        const Instruction &inst = insts[pc];
        if (inst.op == Opcode::Halt)
            has_halt = true;
        if (inst.isControl()) {
            auto target = static_cast<uint64_t>(inst.imm);
            if (target >= insts.size()) {
                fatal("%s: control at pc %llu targets out-of-range %lld",
                      progName.c_str(),
                      static_cast<unsigned long long>(pc),
                      static_cast<long long>(inst.imm));
            }
        }
        auto check_reg = [&](int r, int limit) {
            if (r != noReg && (r < 0 || r >= limit)) {
                fatal("%s: pc %llu has bad register %d", progName.c_str(),
                      static_cast<unsigned long long>(pc), r);
            }
        };
        int limit = inst.isFp() ? numFpRegs : numIntRegs;
        check_reg(inst.rd, limit);
        check_reg(inst.rs1, inst.op == Opcode::FCvt ? numIntRegs : limit);
        check_reg(inst.rs2, limit);
    }
    if (!has_halt)
        fatal("%s: program has no Halt instruction", progName.c_str());
}

} // namespace yasim
