#include "isa/instruction.hh"

#include "support/logging.hh"

namespace yasim {

bool
Instruction::isControl() const
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isCondBranch() const
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isLoad() const
{
    return op == Opcode::Ld || op == Opcode::FLd;
}

bool
Instruction::isStore() const
{
    return op == Opcode::St || op == Opcode::FSt;
}

bool
Instruction::isFp() const
{
    switch (op) {
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FCvt:
      case Opcode::FMov:
      case Opcode::FLd:
      case Opcode::FSt:
        return true;
      default:
        return false;
    }
}

bool
Instruction::writesFpReg() const
{
    switch (op) {
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FCvt:
      case Opcode::FMov:
      case Opcode::FLd:
        return rd != noReg;
      default:
        return false;
    }
}

FuClass
Instruction::fuClass() const
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Slt:
      case Opcode::AddI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::ShlI:
      case Opcode::ShrI:
      case Opcode::SltI:
      case Opcode::MovI:
        return FuClass::IntAlu;
      case Opcode::Mul:
        return FuClass::IntMult;
      case Opcode::Div:
      case Opcode::Rem:
        return FuClass::IntDiv;
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FCvt:
      case Opcode::FMov:
        return FuClass::FpAlu;
      case Opcode::FMul:
        return FuClass::FpMult;
      case Opcode::FDiv:
        return FuClass::FpDiv;
      case Opcode::Ld:
      case Opcode::FLd:
        return FuClass::MemRead;
      case Opcode::St:
      case Opcode::FSt:
        return FuClass::MemWrite;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
        return FuClass::Branch;
      case Opcode::Nop:
      case Opcode::Halt:
        return FuClass::None;
    }
    panic("unreachable opcode %d", static_cast<int>(op));
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Slt: return "slt";
      case Opcode::AddI: return "addi";
      case Opcode::AndI: return "andi";
      case Opcode::OrI: return "ori";
      case Opcode::XorI: return "xori";
      case Opcode::ShlI: return "shli";
      case Opcode::ShrI: return "shri";
      case Opcode::SltI: return "slti";
      case Opcode::MovI: return "movi";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::FCvt: return "fcvt";
      case Opcode::FMov: return "fmov";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::FLd: return "fld";
      case Opcode::FSt: return "fst";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jmp: return "jmp";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
    }
    return "???";
}

std::string
Instruction::toString() const
{
    std::string s = opcodeName(op);
    auto reg = [&](int r) {
        return (isFp() && op != Opcode::FCvt) ? "f" + std::to_string(r)
                                              : "r" + std::to_string(r);
    };
    if (rd != noReg)
        s += " " + reg(rd);
    if (rs1 != noReg)
        s += (rd != noReg ? ", " : " ") + reg(rs1);
    if (rs2 != noReg)
        s += ", " + reg(rs2);
    if (isControl() || imm != 0 || op == Opcode::MovI ||
        op == Opcode::AddI || isLoad() || isStore()) {
        s += ", " + std::to_string(imm);
    }
    return s;
}

} // namespace yasim
