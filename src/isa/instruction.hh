/**
 * @file
 * The yasim RISC instruction set.
 *
 * A small load/store architecture in the SimpleScalar/MIPS mould: 32
 * integer registers (r0 hardwired to zero), 32 floating-point registers,
 * 64-bit integer and double-precision FP data paths, byte-addressed
 * memory accessed through 8-byte loads and stores, and compare-and-branch
 * conditional control flow. It is deliberately minimal — just rich enough
 * that synthetic workloads exercise every functional-unit class, every
 * branch-predictor structure, and the trivial-computation patterns the
 * TC enhancement targets.
 */

#ifndef YASIM_ISA_INSTRUCTION_HH
#define YASIM_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

namespace yasim {

/** Number of architected integer registers (r0 reads as zero). */
constexpr int numIntRegs = 32;
/** Number of architected floating-point registers. */
constexpr int numFpRegs = 32;
/** Sentinel for "no register operand". */
constexpr int noReg = -1;
/** Bytes per instruction for I-cache/BTB addressing purposes. */
constexpr uint64_t instBytes = 4;
/** Base virtual address of the text segment. */
constexpr uint64_t textBase = 0x10000;

/** Operation codes. */
enum class Opcode : uint8_t
{
    // Integer ALU
    Add, Sub, And, Or, Xor, Shl, Shr, Slt,
    AddI, AndI, OrI, XorI, ShlI, ShrI, SltI, MovI,
    // Integer multiply/divide
    Mul, Div, Rem,
    // Floating point
    FAdd, FSub, FMul, FDiv, FCvt /* int reg -> fp reg */, FMov,
    // Memory
    Ld, St, FLd, FSt,
    // Control
    Beq, Bne, Blt, Bge, Jmp,
    // Misc
    Nop, Halt,
};

/** Functional-unit class an instruction executes on. */
enum class FuClass : uint8_t
{
    IntAlu,
    IntMult,
    IntDiv,
    FpAlu,
    FpMult,
    FpDiv,
    MemRead,
    MemWrite,
    Branch,
    None, // Nop/Halt
};

/**
 * One decoded instruction. Register fields index the integer file except
 * where the opcode dictates the FP file (FAdd..FMov use FP for all
 * register operands except FCvt's source and FLd/FSt's address base).
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    /** Destination register or noReg. */
    int rd = noReg;
    /** First source register or noReg. */
    int rs1 = noReg;
    /** Second source register or noReg. */
    int rs2 = noReg;
    /** Immediate: ALU constant, memory displacement, or branch target
     *  (absolute instruction index for branches and jumps). */
    int64_t imm = 0;

    /** True for conditional branches and unconditional jumps. */
    bool isControl() const;
    /** True for Beq/Bne/Blt/Bge only. */
    bool isCondBranch() const;
    /** True for Ld/FLd. */
    bool isLoad() const;
    /** True for St/FSt. */
    bool isStore() const;
    /** True when any register operand lives in the FP file. */
    bool isFp() const;
    /** True when rd names an FP register rather than an integer one. */
    bool writesFpReg() const;
    /** Functional-unit class for the timing model. */
    FuClass fuClass() const;
    /** Disassemble for debugging and traces. */
    std::string toString() const;
};

/** Printable opcode mnemonic. */
const char *opcodeName(Opcode op);

} // namespace yasim

#endif // YASIM_ISA_INSTRUCTION_HH
