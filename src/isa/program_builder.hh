/**
 * @file
 * Assembler-style builder for yasim programs.
 *
 * The workload generators construct their benchmarks through this API:
 * one method per opcode, forward-referencing labels, and a finish() that
 * resolves labels and returns a validated Program. Operand conventions:
 *
 *  - loads:   ld(rd, base, disp)        rd <- mem[int(base) + disp]
 *  - stores:  st(base, src, disp)       mem[int(base) + disp] <- src
 *  - branches compare rs1 with rs2 and jump to an absolute label
 *  - fcvt moves an *integer* register into the FP file as a double
 */

#ifndef YASIM_ISA_PROGRAM_BUILDER_HH
#define YASIM_ISA_PROGRAM_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace yasim {

/** A forward-referenceable code label. */
struct Label
{
    int id = -1;
};

/** Incremental program assembler. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name = "program");

    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the next emitted instruction. */
    void bind(Label label);

    /** Index the next instruction will occupy. */
    uint64_t here() const { return insts.size(); }

    // Integer ALU, register forms.
    void add(int rd, int rs1, int rs2) { emit3(Opcode::Add, rd, rs1, rs2); }
    void sub(int rd, int rs1, int rs2) { emit3(Opcode::Sub, rd, rs1, rs2); }
    void and_(int rd, int rs1, int rs2) { emit3(Opcode::And, rd, rs1, rs2); }
    void or_(int rd, int rs1, int rs2) { emit3(Opcode::Or, rd, rs1, rs2); }
    void xor_(int rd, int rs1, int rs2) { emit3(Opcode::Xor, rd, rs1, rs2); }
    void shl(int rd, int rs1, int rs2) { emit3(Opcode::Shl, rd, rs1, rs2); }
    void shr(int rd, int rs1, int rs2) { emit3(Opcode::Shr, rd, rs1, rs2); }
    void slt(int rd, int rs1, int rs2) { emit3(Opcode::Slt, rd, rs1, rs2); }

    // Integer ALU, immediate forms.
    void addi(int rd, int rs1, int64_t imm) { emitI(Opcode::AddI, rd, rs1, imm); }
    void andi(int rd, int rs1, int64_t imm) { emitI(Opcode::AndI, rd, rs1, imm); }
    void ori(int rd, int rs1, int64_t imm) { emitI(Opcode::OrI, rd, rs1, imm); }
    void xori(int rd, int rs1, int64_t imm) { emitI(Opcode::XorI, rd, rs1, imm); }
    void shli(int rd, int rs1, int64_t imm) { emitI(Opcode::ShlI, rd, rs1, imm); }
    void shri(int rd, int rs1, int64_t imm) { emitI(Opcode::ShrI, rd, rs1, imm); }
    void slti(int rd, int rs1, int64_t imm) { emitI(Opcode::SltI, rd, rs1, imm); }
    void movi(int rd, int64_t imm) { emitI(Opcode::MovI, rd, noReg, imm); }

    // Multiply / divide.
    void mul(int rd, int rs1, int rs2) { emit3(Opcode::Mul, rd, rs1, rs2); }
    void div(int rd, int rs1, int rs2) { emit3(Opcode::Div, rd, rs1, rs2); }
    void rem(int rd, int rs1, int rs2) { emit3(Opcode::Rem, rd, rs1, rs2); }

    // Floating point (register indices name the FP file).
    void fadd(int rd, int rs1, int rs2) { emit3(Opcode::FAdd, rd, rs1, rs2); }
    void fsub(int rd, int rs1, int rs2) { emit3(Opcode::FSub, rd, rs1, rs2); }
    void fmul(int rd, int rs1, int rs2) { emit3(Opcode::FMul, rd, rs1, rs2); }
    void fdiv(int rd, int rs1, int rs2) { emit3(Opcode::FDiv, rd, rs1, rs2); }
    void fcvt(int fd, int rs1) { emitI(Opcode::FCvt, fd, rs1, 0); }
    void fmov(int fd, int fs) { emitI(Opcode::FMov, fd, fs, 0); }

    // Memory.
    void ld(int rd, int base, int64_t disp) { emitI(Opcode::Ld, rd, base, disp); }
    void st(int base, int src, int64_t disp) { emitMem(Opcode::St, base, src, disp); }
    void fld(int fd, int base, int64_t disp) { emitI(Opcode::FLd, fd, base, disp); }
    void fst(int base, int fsrc, int64_t disp) { emitMem(Opcode::FSt, base, fsrc, disp); }

    // Control.
    void beq(int rs1, int rs2, Label target) { emitBranch(Opcode::Beq, rs1, rs2, target); }
    void bne(int rs1, int rs2, Label target) { emitBranch(Opcode::Bne, rs1, rs2, target); }
    void blt(int rs1, int rs2, Label target) { emitBranch(Opcode::Blt, rs1, rs2, target); }
    void bge(int rs1, int rs2, Label target) { emitBranch(Opcode::Bge, rs1, rs2, target); }
    void jmp(Label target) { emitBranch(Opcode::Jmp, noReg, noReg, target); }

    // Misc.
    void nop() { emitI(Opcode::Nop, noReg, noReg, 0); }
    void halt() { emitI(Opcode::Halt, noReg, noReg, 0); }

    /** Resolve labels, validate, and hand over the program. */
    Program finish();

  private:
    void emit3(Opcode op, int rd, int rs1, int rs2);
    void emitI(Opcode op, int rd, int rs1, int64_t imm);
    void emitMem(Opcode op, int base, int src, int64_t disp);
    void emitBranch(Opcode op, int rs1, int rs2, Label target);

    std::string name;
    std::vector<Instruction> insts;
    /** Bound address per label id; UINT64_MAX while unbound. */
    std::vector<uint64_t> labelAddr;
    /** (instruction index, label id) pairs awaiting resolution. */
    std::vector<std::pair<uint64_t, int>> fixups;
};

} // namespace yasim

#endif // YASIM_ISA_PROGRAM_BUILDER_HH
