#include "isa/program_builder.hh"

#include <limits>

#include "support/logging.hh"

namespace yasim {

namespace {
constexpr uint64_t unbound = std::numeric_limits<uint64_t>::max();
} // namespace

ProgramBuilder::ProgramBuilder(std::string name) : name(std::move(name))
{
}

Label
ProgramBuilder::newLabel()
{
    labelAddr.push_back(unbound);
    return Label{static_cast<int>(labelAddr.size()) - 1};
}

void
ProgramBuilder::bind(Label label)
{
    YASIM_ASSERT(label.id >= 0 &&
                 static_cast<size_t>(label.id) < labelAddr.size());
    YASIM_ASSERT(labelAddr[static_cast<size_t>(label.id)] == unbound);
    labelAddr[static_cast<size_t>(label.id)] = insts.size();
}

void
ProgramBuilder::emit3(Opcode op, int rd, int rs1, int rs2)
{
    insts.push_back(Instruction{op, rd, rs1, rs2, 0});
}

void
ProgramBuilder::emitI(Opcode op, int rd, int rs1, int64_t imm)
{
    insts.push_back(Instruction{op, rd, rs1, noReg, imm});
}

void
ProgramBuilder::emitMem(Opcode op, int base, int src, int64_t disp)
{
    // Stores carry the address base in rs1 and the stored value in rs2.
    insts.push_back(Instruction{op, noReg, base, src, disp});
}

void
ProgramBuilder::emitBranch(Opcode op, int rs1, int rs2, Label target)
{
    YASIM_ASSERT(target.id >= 0 &&
                 static_cast<size_t>(target.id) < labelAddr.size());
    fixups.emplace_back(insts.size(), target.id);
    insts.push_back(Instruction{op, noReg, rs1, rs2, 0});
}

Program
ProgramBuilder::finish()
{
    for (const auto &[pc, label_id] : fixups) {
        uint64_t addr = labelAddr[static_cast<size_t>(label_id)];
        if (addr == unbound)
            fatal("%s: branch at %llu references unbound label %d",
                  name.c_str(), static_cast<unsigned long long>(pc),
                  label_id);
        insts[pc].imm = static_cast<int64_t>(addr);
    }
    Program prog(std::move(insts), name);
    prog.validate();
    return prog;
}

} // namespace yasim
