/**
 * @file
 * Program container and static basic-block structure.
 *
 * A Program is a flat vector of instructions with a single entry at index
 * 0 and termination at a Halt. Basic blocks are discovered statically:
 * a leader is the entry point, any branch/jump target, or the instruction
 * following a control instruction. The per-instruction block index is the
 * substrate for the BBEF/BBV execution-profile characterization and for
 * SimPoint's interval vectors.
 */

#ifndef YASIM_ISA_PROGRAM_HH
#define YASIM_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace yasim {

/** A static basic block: [first, last] instruction indices. */
struct BasicBlock
{
    uint64_t first = 0;
    uint64_t last = 0;

    uint64_t size() const { return last - first + 1; }
};

/** An executable program for the yasim ISA. */
class Program
{
  public:
    /** Construct from an instruction vector; discovers basic blocks. */
    explicit Program(std::vector<Instruction> insts,
                     std::string name = "program");

    /** Program name (for reports). */
    const std::string &name() const { return progName; }

    /** Number of static instructions. */
    uint64_t size() const { return insts.size(); }

    /** Instruction at index @p pc. */
    const Instruction &at(uint64_t pc) const { return insts[pc]; }

    /**
     * Raw instruction array (size() entries). Hot loops hoist this once
     * instead of re-resolving the vector through at() per instruction.
     */
    const Instruction *code() const { return insts.data(); }

    /** Virtual text address of instruction @p pc (for I-cache/BTB). */
    static uint64_t pcAddress(uint64_t pc) { return textBase + pc * instBytes; }

    /** All static basic blocks in program order. */
    const std::vector<BasicBlock> &basicBlocks() const { return blocks; }

    /** Index of the basic block containing instruction @p pc. */
    uint32_t blockOf(uint64_t pc) const { return pcToBlock[pc]; }

    /** Number of static basic blocks. */
    size_t numBlocks() const { return blocks.size(); }

    /** Validate structure: targets in range, ends with reachable Halt. */
    void validate() const;

  private:
    std::string progName;
    std::vector<Instruction> insts;
    std::vector<BasicBlock> blocks;
    std::vector<uint32_t> pcToBlock;

    void discoverBlocks();
};

} // namespace yasim

#endif // YASIM_ISA_PROGRAM_HH
