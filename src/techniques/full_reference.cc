#include "techniques/full_reference.hh"

#include "sim/bb_profiler.hh"
#include "sim/ooo_core.hh"
#include "techniques/trace_store.hh"

namespace yasim {

TechniqueResult
FullReference::run(const TechniqueContext &ctx,
                   const SimConfig &config) const
{
    StepSourceHandle src = openStepSource(ctx, InputSet::Reference);
    OooCore core(config);

    TechniqueResult result;
    if (src.replay()) {
        // The trace already carries the full-run profile (recorded with
        // weight 1.0, exactly what a full detailed pass accumulates),
        // so detailed simulation needs no profiler attached.
        core.run(*src.source, ~0ULL);
        result.bbef = src.trace->bbef();
        result.bbv = src.trace->bbv();
    } else {
        BbProfiler profiler(src.program());
        core.run(*src.source, ~0ULL, &profiler);
        result.bbef = profiler.bbef();
        result.bbv = profiler.bbv();
    }

    result.technique = name();
    result.permutation = permutation();
    result.detailed = core.snapshot();
    result.cpi = result.detailed.cpi();
    result.metrics = result.detailed.metricVector();
    result.detailedInsts = result.detailed.instructions;
    result.workUnits = ctx.cost.detailedPerInst *
                       static_cast<double>(result.detailedInsts);
    return result;
}

} // namespace yasim
