#include "techniques/full_reference.hh"

#include "sim/bb_profiler.hh"
#include "sim/ooo_core.hh"
#include "sim/sharded.hh"
#include "techniques/trace_store.hh"

namespace yasim {

namespace {

/**
 * The checkpoint-sharded reference path (sim/sharded.hh). Statistics
 * are stitched from per-shard measured regions; the modeled cost
 * charges every instruction at the detailed rate plus the planned
 * functional-warming lead-ins and the live checkpoint pass, so sharded
 * results report *more* work than sequential ones — parallelism buys
 * wall-clock, never work units.
 */
TechniqueResult
runSharded(const TechniqueContext &ctx, const SimConfig &config)
{
    ShardedRunResult run;
    try {
        if (ctx.traces) {
            auto trace = ctx.traces->get(ctx.benchmark,
                                         InputSet::Reference, ctx.suite);
            run = runShardedReference(trace, config, ctx.shards,
                                      ctx.cancel);
            run.bbef = trace->bbef();
            run.bbv = trace->bbv();
        } else {
            StepSourceHandle src =
                openStepSource(ctx, InputSet::Reference);
            run = runShardedReference(src.program(), ctx.referenceLength,
                                      config, ctx.shards, ctx.cancel);
        }
    } catch (CancelledError &cancelled) {
        // Convert raw partial progress to work units here, where the
        // cost model lives, so the engine can charge honestly.
        cancelled.partialWorkUnits =
            ctx.cost.detailedPerInst *
                static_cast<double>(cancelled.detailedInsts) +
            ctx.cost.functionalWarmPerInst *
                static_cast<double>(cancelled.warmedInsts);
        throw;
    }

    TechniqueResult result;
    result.detailed = run.stats;
    result.bbef = std::move(run.bbef);
    result.bbv = std::move(run.bbv);
    result.cpi = result.detailed.cpi();
    result.metrics = result.detailed.metricVector();
    result.detailedInsts = run.detailedInsts;
    result.workUnits =
        ctx.cost.detailedPerInst * static_cast<double>(run.detailedInsts) +
        ctx.cost.functionalWarmPerInst *
            static_cast<double>(run.warmedInsts) +
        ctx.cost.checkpointPerInst *
            static_cast<double>(run.checkpointInsts);
    return result;
}

} // namespace

TechniqueResult
FullReference::run(const TechniqueContext &ctx,
                   const SimConfig &config) const
{
    if (ctx.shards.enabled()) {
        TechniqueResult result = runSharded(ctx, config);
        result.technique = name();
        result.permutation = permutation();
        return result;
    }

    StepSourceHandle src = openStepSource(ctx, InputSet::Reference);
    OooCore core(config);

    // Bail out of a cancelled sequential run at the core's next
    // batch-boundary poll, charging the instructions actually
    // detail-simulated.
    auto throwIfCancelled = [&ctx, &core] {
        if (!ctx.cancel.cancelled())
            return;
        CancelledError err;
        err.cause = ctx.cancel.cause();
        err.detailedInsts = core.instsRetired();
        err.partialWorkUnits =
            ctx.cost.detailedPerInst *
            static_cast<double>(err.detailedInsts);
        throw err;
    };

    TechniqueResult result;
    if (src.replay()) {
        // The trace already carries the full-run profile (recorded with
        // weight 1.0, exactly what a full detailed pass accumulates),
        // so detailed simulation needs no profiler attached.
        core.run(*src.source, ~0ULL, nullptr, ctx.cancel);
        throwIfCancelled();
        result.bbef = src.trace->bbef();
        result.bbv = src.trace->bbv();
    } else {
        BbProfiler profiler(src.program());
        core.run(*src.source, ~0ULL, &profiler, ctx.cancel);
        throwIfCancelled();
        result.bbef = profiler.bbef();
        result.bbv = profiler.bbv();
    }

    result.technique = name();
    result.permutation = permutation();
    result.detailed = core.snapshot();
    result.cpi = result.detailed.cpi();
    result.metrics = result.detailed.metricVector();
    result.detailedInsts = result.detailed.instructions;
    result.workUnits = ctx.cost.detailedPerInst *
                       static_cast<double>(result.detailedInsts);
    return result;
}

} // namespace yasim
