#include "techniques/full_reference.hh"

#include "sim/bb_profiler.hh"
#include "sim/functional.hh"
#include "sim/ooo_core.hh"

namespace yasim {

TechniqueResult
FullReference::run(const TechniqueContext &ctx,
                   const SimConfig &config) const
{
    Workload workload =
        buildWorkload(ctx.benchmark, InputSet::Reference, ctx.suite);
    FunctionalSim fsim(workload.program);
    OooCore core(config);
    BbProfiler profiler(workload.program);

    core.run(fsim, ~0ULL, &profiler);

    TechniqueResult result;
    result.technique = name();
    result.permutation = permutation();
    result.detailed = core.snapshot();
    result.cpi = result.detailed.cpi();
    result.metrics = result.detailed.metricVector();
    result.bbef = profiler.bbef();
    result.bbv = profiler.bbv();
    result.detailedInsts = result.detailed.instructions;
    result.workUnits = ctx.cost.detailedPerInst *
                       static_cast<double>(result.detailedInsts);
    return result;
}

} // namespace yasim
