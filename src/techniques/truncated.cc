#include "techniques/truncated.hh"

#include "sim/bb_profiler.hh"
#include "sim/livepoint.hh"
#include "sim/ooo_core.hh"
#include "support/logging.hh"
#include "techniques/trace_store.hh"

namespace yasim {

namespace {

std::string
mLabel(double m)
{
    char buf[32];
    if (m == static_cast<double>(static_cast<long long>(m)))
        std::snprintf(buf, sizeof(buf), "%lldM", static_cast<long long>(m));
    else
        std::snprintf(buf, sizeof(buf), "%.1fM", m);
    return buf;
}

} // namespace

std::string
RunZ::permutation() const
{
    return "Z=" + mLabel(runM);
}

std::string
FfRunZ::permutation() const
{
    return "X=" + mLabel(ffM) + " Z=" + mLabel(runM);
}

std::string
FfWuRunZ::permutation() const
{
    return "X=" + mLabel(ffM) + " Y=" + mLabel(warmM) +
           " Z=" + mLabel(runM);
}

TechniqueResult
TruncatedExecution::run(const TechniqueContext &ctx,
                        const SimConfig &config) const
{
    StepSourceHandle src = openStepSource(ctx, InputSet::Reference);
    OooCore core(config);
    BbProfiler profiler(src.program());

    const uint64_t ff_insts = ffM > 0 ? ctx.scaledM(ffM) : 0;
    const uint64_t warm_insts = warmM > 0 ? ctx.scaledM(warmM) : 0;
    const uint64_t run_insts = ctx.scaledM(runM);

    // The fast-forward prefix is the PinPoints-style region-checkpoint
    // case: one persisted architectural live-point replaces the whole
    // architectural jump on every later run of any configuration. The
    // returned count and the stream afterwards are bit-identical to a
    // plain fastForward, and the modeled cost below charges the jump
    // either way (disk state buys wall-clock, never work units).
    uint64_t ff_done = 0;
    if (ff_insts > 0) {
        ff_done = fastForwardDetailedRegion(
            *src.source, ff_insts, warm_insts + run_insts,
            ctx.livepoints);
    }

    // Warm-up: detailed simulation whose statistics are discarded.
    uint64_t warm_done = 0;
    if (warm_insts > 0)
        warm_done = core.run(*src.source, warm_insts);

    SimStats before = core.snapshot();
    uint64_t run_done = core.run(*src.source, run_insts, &profiler);
    SimStats measured = core.snapshot() - before;

    if (run_done == 0) {
        warn("%s/%s: window beyond program end (ff %llu of %llu)",
             name().c_str(), permutation().c_str(),
             static_cast<unsigned long long>(ff_done),
             static_cast<unsigned long long>(ff_insts));
    }

    TechniqueResult result;
    result.technique = name();
    result.permutation = permutation();
    result.detailed = measured;
    result.cpi = measured.cpi();
    result.metrics = measured.metricVector();
    result.bbef = profiler.bbef();
    result.bbv = profiler.bbv();
    result.detailedInsts = run_done;
    result.workUnits =
        ctx.cost.fastForwardPerInst * static_cast<double>(ff_done) +
        ctx.cost.detailedPerInst * static_cast<double>(warm_done) +
        ctx.cost.detailedPerInst * static_cast<double>(run_done) +
        ctx.cost.checkpointPerInst * static_cast<double>(ff_done);
    return result;
}

} // namespace yasim
