/**
 * @file
 * The truncated-execution techniques: Run Z, FF X + Run Z, and
 * FF X + WU Y + Run Z.
 *
 * All three presume that a fixed window of the dynamic instruction
 * stream is representative of the whole program. Run Z measures the
 * first Z M instructions (initialization included); FF X + Run Z skips
 * X M architecturally first (leaving the caches and predictor cold);
 * FF X + WU Y + Run Z additionally runs Y M in detail before the
 * measured window to warm the machine, tracking statistics only for the
 * final Z M. X, Y, Z are in the paper's scaled M-instructions
 * (X + Y is always a multiple of 100M, as in Table 1).
 */

#ifndef YASIM_TECHNIQUES_TRUNCATED_HH
#define YASIM_TECHNIQUES_TRUNCATED_HH

#include "techniques/technique.hh"

namespace yasim {

/**
 * Shared implementation: fast-forward @p ff M, warm up @p warm M in
 * detail, measure @p run M in detail.
 */
class TruncatedExecution : public Technique
{
  public:
    TechniqueResult run(const TechniqueContext &ctx,
                        const SimConfig &config) const override;

  protected:
    TruncatedExecution(double ff_m, double warm_m, double run_m)
        : ffM(ff_m), warmM(warm_m), runM(run_m)
    {
    }

    double ffM;
    double warmM;
    double runM;
};

/** Simulate only the first Z M instructions. */
class RunZ : public TruncatedExecution
{
  public:
    explicit RunZ(double z_m) : TruncatedExecution(0, 0, z_m) {}

    std::string name() const override { return "Run Z"; }
    std::string permutation() const override;
};

/** Fast-forward X M, then simulate Z M with a cold machine. */
class FfRunZ : public TruncatedExecution
{
  public:
    FfRunZ(double x_m, double z_m) : TruncatedExecution(x_m, 0, z_m) {}

    std::string name() const override { return "FF+Run"; }
    std::string permutation() const override;
};

/** Fast-forward X M, warm up Y M in detail, measure Z M. */
class FfWuRunZ : public TruncatedExecution
{
  public:
    FfWuRunZ(double x_m, double y_m, double z_m)
        : TruncatedExecution(x_m, y_m, z_m)
    {
    }

    std::string name() const override { return "FF+WU+Run"; }
    std::string permutation() const override;
};

} // namespace yasim

#endif // YASIM_TECHNIQUES_TRUNCATED_HH
