#include "techniques/random_sampling.hh"

#include <algorithm>

#include "sim/bb_profiler.hh"
#include "sim/ooo_core.hh"
#include "stats/summary.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "techniques/trace_store.hh"

namespace yasim {

RandomSampling::RandomSampling(uint64_t num_samples, uint64_t unit_insts,
                               uint64_t warmup_insts, uint64_t seed)
    : numSamples(num_samples),
      unitInsts(unit_insts),
      warmupInsts(warmup_insts),
      seed(seed)
{
    YASIM_ASSERT(num_samples >= 1 && unit_insts >= 1);
}

std::string
RandomSampling::permutation() const
{
    return "N=" + std::to_string(numSamples) +
           " U=" + std::to_string(unitInsts) +
           " W=" + std::to_string(warmupInsts);
}

// yasim-lint: key(tech) covers RandomSampling(techniques/random_sampling.hh)
std::string
RandomSampling::cacheKey() const
{
    return csprintf("random|n=%llu|u=%llu|w=%llu|seed=%llu",
                    static_cast<unsigned long long>(numSamples),
                    static_cast<unsigned long long>(unitInsts),
                    static_cast<unsigned long long>(warmupInsts),
                    static_cast<unsigned long long>(seed));
}

std::vector<uint64_t>
RandomSampling::samplePositions(const TechniqueContext &ctx) const
{
    // Uniformly random, then sorted so one forward pass visits all.
    Rng rng(seed ^ ctx.suite.seed);
    uint64_t span = unitInsts + warmupInsts;
    uint64_t usable =
        ctx.referenceLength > span ? ctx.referenceLength - span : 1;
    std::vector<uint64_t> positions;
    positions.reserve(numSamples);
    for (uint64_t i = 0; i < numSamples; ++i)
        positions.push_back(warmupInsts + rng.nextBelow(usable));
    std::sort(positions.begin(), positions.end());
    return positions;
}

TechniqueResult
RandomSampling::run(const TechniqueContext &ctx,
                    const SimConfig &config) const
{
    StepSourceHandle src = openStepSource(ctx, InputSet::Reference);
    StepSource &stream = *src.source;
    OooCore core(config);
    BbProfiler profiler(src.program());

    std::vector<uint64_t> positions = samplePositions(ctx);

    std::vector<double> unit_cpis;
    SimStats measured;
    uint64_t detailed = 0, skipped = 0;

    for (uint64_t start : positions) {
        uint64_t warm_start =
            start >= warmupInsts ? start - warmupInsts : 0;
        if (stream.instsExecuted() >= warm_start + warmupInsts)
            continue; // overlapping samples collapse into one
        if (stream.instsExecuted() < warm_start) {
            uint64_t gap = warm_start - stream.instsExecuted();
            skipped += stream.fastForward(gap); // NO warming: stale state
        }
        core.resetPipeline();
        if (warmupInsts > 0)
            core.run(stream, warmupInsts);
        SimStats before = core.snapshot();
        uint64_t done = core.run(stream, unitInsts, &profiler);
        if (done == 0)
            break;
        SimStats delta = core.snapshot() - before;
        unit_cpis.push_back(delta.cpi());
        measured += delta;
        detailed += warmupInsts + done;
    }
    YASIM_ASSERT(!unit_cpis.empty());

    TechniqueResult result;
    result.technique = name();
    result.permutation = permutation();
    result.cpi = mean(unit_cpis);
    result.metrics = measured.metricVector();
    result.detailed = measured;
    result.bbef = profiler.bbef();
    result.bbv = profiler.bbv();
    result.detailedInsts = detailed;
    result.workUnits =
        ctx.cost.fastForwardPerInst * static_cast<double>(skipped) +
        ctx.cost.detailedPerInst * static_cast<double>(detailed);
    return result;
}

} // namespace yasim
