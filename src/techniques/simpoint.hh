/**
 * @file
 * SimPoint [Sherwood02]: representative sampling via basic-block-vector
 * clustering.
 *
 * Phase 1 profiles the reference run functionally, recording one
 * basic-block vector per fixed-length interval. Phase 2 L1-normalizes
 * the vectors, reduces them to 15 dimensions with a random projection,
 * clusters with k-means across k = 1..max_k, and picks the smallest k
 * whose BIC score is within 90% of the best (the SimPoint 1.0 recipe).
 * Phase 3 simulates in detail only the interval closest to each cluster
 * centroid and combines the per-point results weighted by cluster
 * population.
 *
 * The paper's three permutations map to: single 100M (one point of 100
 * scaled-M), multiple 10M (10-scaled-M intervals, max_k 100, 1 scaled-M
 * detailed warm-up per point), and multiple 100M (100-scaled-M
 * intervals, max_k 10, no warm-up) — exactly Table 1. The cost model
 * charges the profiling pass, checkpoint generation up to the last
 * simulation point, and the detailed interval simulations.
 */

#ifndef YASIM_TECHNIQUES_SIMPOINT_HH
#define YASIM_TECHNIQUES_SIMPOINT_HH

#include "techniques/technique.hh"

namespace yasim {

/** A chosen simulation point (exposed for tests and inspection). */
struct SimulationPoint
{
    /** Interval index within the profiled run. */
    uint64_t interval = 0;
    /** First dynamic instruction of the interval. */
    uint64_t startInst = 0;
    /** Cluster weight in [0, 1]. */
    double weight = 0.0;
};

/** The SimPoint technique. */
class SimPoint : public Technique
{
  public:
    /**
     * @param interval_m  interval length in scaled M-instructions
     * @param max_k       maximum cluster count
     * @param warmup_m    detailed warm-up before each point (scaled M)
     * @param label       permutation label ("multiple 10M", ...)
     * @param proj_dim    projected BBV dimensionality (SimPoint uses 15)
     * @param seed        clustering/projection random seed
     * @param restarts    k-means random-seed restarts per k (Table 1
     *                    runs the tool with 7 seeds; 3 is our default)
     * @param early       pick *early* simulation points [Perelman03]:
     *                    per cluster, the earliest interval whose
     *                    distance to the centroid is within
     *                    early_tolerance of the closest one — trades a
     *                    sliver of representativeness for much cheaper
     *                    checkpoint generation
     */
    SimPoint(double interval_m, int max_k, double warmup_m,
             std::string label, size_t proj_dim = 15, uint64_t seed = 42,
             int restarts = 3, bool early = false,
             double early_tolerance = 0.3);

    std::string name() const override { return "SimPoint"; }
    std::string permutation() const override { return label; }

    /** The label is free text, so the key spells out every knob. */
    std::string cacheKey() const override;

    TechniqueResult run(const TechniqueContext &ctx,
                        const SimConfig &config) const override;

    /**
     * Phase 1+2 only: profile and cluster, returning the chosen points
     * (ordered by start). Useful for tests and the ablation benches.
     */
    std::vector<SimulationPoint>
    choosePoints(const TechniqueContext &ctx) const;

  private:
    /** Interval length in instructions (scaled, with a noise floor). */
    uint64_t intervalInsts(const TechniqueContext &ctx) const;

    double intervalM;
    int maxK;
    double warmupM;
    // Display-only: two SimPoints differing only by label are the same
    // experiment and must share a cache entry; the engine restamps
    // name/permutation onto results served from a shared key
    // (Engine.RestampsDisplayLabelsOnSharedKeys pins this).
    std::string label; // yasim-lint: key-exempt(tech: display-only, engine restamps it)
    size_t projDim;
    uint64_t seed;
    int restarts;
    bool early;
    double earlyTolerance;
};

} // namespace yasim

#endif // YASIM_TECHNIQUES_SIMPOINT_HH
