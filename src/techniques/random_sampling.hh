/**
 * @file
 * Random sampling [Conte96] — the seventh technique.
 *
 * The paper describes random sampling (N randomly chosen and
 * distributed intervals combined into one estimate) but excludes it
 * from the main study because its use had become rare. It is
 * implemented here as an extension: it completes the technique
 * taxonomy and lets the ablation bench reproduce Conte et al.'s
 * finding that accuracy improves with more per-sample warm-up and/or
 * more samples — and show why SMARTS's functional warming between
 * samples dominates plain random sampling, whose skipped regions leave
 * the caches and predictor stale.
 */

#ifndef YASIM_TECHNIQUES_RANDOM_SAMPLING_HH
#define YASIM_TECHNIQUES_RANDOM_SAMPLING_HH

#include "techniques/technique.hh"

namespace yasim {

/** N random detailed windows with detailed (cold-start) warm-up. */
class RandomSampling : public Technique
{
  public:
    /**
     * @param num_samples  number of random measurement units
     * @param unit_insts   detailed measurement unit length
     * @param warmup_insts detailed warm-up before each unit
     * @param seed         sample-placement seed
     */
    RandomSampling(uint64_t num_samples, uint64_t unit_insts,
                   uint64_t warmup_insts, uint64_t seed = 7);

    std::string name() const override { return "random"; }
    std::string permutation() const override;

    /** The N=/U=/W= label omits the sample-placement seed. */
    std::string cacheKey() const override;

    TechniqueResult run(const TechniqueContext &ctx,
                        const SimConfig &config) const override;

    /** Sample start positions for @p ctx (exposed for tests). */
    std::vector<uint64_t>
    samplePositions(const TechniqueContext &ctx) const;

  private:
    uint64_t numSamples;
    uint64_t unitInsts;
    uint64_t warmupInsts;
    uint64_t seed;
};

} // namespace yasim

#endif // YASIM_TECHNIQUES_RANDOM_SAMPLING_HH
