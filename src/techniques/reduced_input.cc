#include "techniques/reduced_input.hh"

#include "sim/bb_profiler.hh"
#include "sim/functional.hh"
#include "sim/ooo_core.hh"
#include "support/logging.hh"

namespace yasim {

ReducedInput::ReducedInput(InputSet input) : inputSet(input)
{
    YASIM_ASSERT(input != InputSet::Reference);
}

std::string
ReducedInput::permutation() const
{
    return inputSetName(inputSet);
}

TechniqueResult
ReducedInput::run(const TechniqueContext &ctx,
                  const SimConfig &config) const
{
    Workload workload = buildWorkload(ctx.benchmark, inputSet, ctx.suite);
    FunctionalSim fsim(workload.program);
    OooCore core(config);
    BbProfiler profiler(workload.program);

    core.run(fsim, ~0ULL, &profiler);

    TechniqueResult result;
    result.technique = name();
    result.permutation = permutation();
    result.detailed = core.snapshot();
    result.cpi = result.detailed.cpi();
    result.metrics = result.detailed.metricVector();
    result.bbef = profiler.bbef();
    result.bbv = profiler.bbv();
    result.detailedInsts = result.detailed.instructions;
    result.workUnits = ctx.cost.detailedPerInst *
                       static_cast<double>(result.detailedInsts);
    return result;
}

} // namespace yasim
