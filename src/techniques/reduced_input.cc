#include "techniques/reduced_input.hh"

#include "sim/bb_profiler.hh"
#include "sim/ooo_core.hh"
#include "support/logging.hh"
#include "techniques/trace_store.hh"

namespace yasim {

ReducedInput::ReducedInput(InputSet input) : inputSet(input)
{
    YASIM_ASSERT(input != InputSet::Reference);
}

std::string
ReducedInput::permutation() const
{
    return inputSetName(inputSet);
}

TechniqueResult
ReducedInput::run(const TechniqueContext &ctx,
                  const SimConfig &config) const
{
    StepSourceHandle src = openStepSource(ctx, inputSet);
    OooCore core(config);

    TechniqueResult result;
    if (src.replay()) {
        core.run(*src.source, ~0ULL);
        result.bbef = src.trace->bbef();
        result.bbv = src.trace->bbv();
    } else {
        BbProfiler profiler(src.program());
        core.run(*src.source, ~0ULL, &profiler);
        result.bbef = profiler.bbef();
        result.bbv = profiler.bbv();
    }

    result.technique = name();
    result.permutation = permutation();
    result.detailed = core.snapshot();
    result.cpi = result.detailed.cpi();
    result.metrics = result.detailed.metricVector();
    result.detailedInsts = result.detailed.instructions;
    result.workUnits = ctx.cost.detailedPerInst *
                       static_cast<double>(result.detailedInsts);
    return result;
}

} // namespace yasim
