#include "techniques/smarts.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "stats/summary.hh"
#include "support/logging.hh"
#include "techniques/trace_store.hh"

namespace yasim {

Smarts::Smarts(uint64_t unit_insts, uint64_t warmup_insts,
               double confidence, double interval, uint64_t initial_n)
    : unitInsts(unit_insts),
      warmupInsts(warmup_insts),
      confidence(confidence),
      interval(interval),
      initialN(initial_n)
{
    YASIM_ASSERT(unit_insts >= 1);
}

std::string
Smarts::permutation() const
{
    return "U=" + std::to_string(unitInsts) +
           " W=" + std::to_string(warmupInsts);
}

// The plan=grid marker separates grid-scheduled results from the
// legacy free-running pass, whose unit positions differed slightly.
// yasim-lint: key(tech) covers Smarts(techniques/smarts.hh)
std::string
Smarts::cacheKey() const
{
    return csprintf(
        "SMARTS|plan=grid|u=%llu|w=%llu|conf=%.17g|int=%.17g|n0=%llu",
        static_cast<unsigned long long>(unitInsts),
        static_cast<unsigned long long>(warmupInsts), confidence,
        interval, static_cast<unsigned long long>(initialN));
}

TechniqueResult
Smarts::run(const TechniqueContext &ctx, const SimConfig &config) const
{
    const SamplingPlan plan =
        SamplingPlan::make(unitInsts, warmupInsts, ctx.referenceLength);

    // Initial n: the paper's 10,000 scaled by our instruction budget
    // (DESIGN.md section 5), bounded to stay meaningful.
    uint64_t n = initialN;
    if (n == 0) {
        n = ctx.referenceLength / std::max<uint64_t>(plan.span() * 5, 1);
        n = std::clamp<uint64_t>(n, 50, 3000);
    }

    // The handle anchors the trace (replay) or the workload's program
    // (live) for the library's whole lifetime.
    StepSourceHandle src = openStepSource(ctx, InputSet::Reference);
    const bool parallel = ctx.livepoints.enabled;
    LivePointOptions lp_opts = ctx.livepoints;
    if (!lp_opts.enabled)
        lp_opts.dir.clear(); // sequential fallback: in-memory only

    std::optional<LivePointLibrary> library;
    if (src.replay())
        library.emplace(src.trace, plan, config, lp_opts);
    else
        library.emplace(src.program(), plan, config, lp_opts);

    TechniqueResult result;
    result.technique = name();
    result.permutation = permutation();

    // Units measured so far, by grid index. Escalation selections are
    // supersets, so nothing here is ever measured twice — re-runs pay
    // only for the *additional* units (and the warming extension).
    std::map<uint64_t, LivePointLibrary::UnitResult> units;
    uint64_t warm_charged = 0;
    uint64_t detailed_done = 0;
    std::vector<uint64_t> indices;

    try {
        for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
            indices = plan.indicesFor(n);
            warm_charged += library->ensure(indices, ctx.cancel);

            std::vector<uint64_t> missing;
            for (uint64_t j : indices) {
                if (!units.count(j))
                    missing.push_back(j);
            }
            for (auto &unit :
                 library->measureUnits(missing, parallel, ctx.cancel)) {
                detailed_done += unit.warmupDone + unit.unitDone;
                units.emplace(unit.index, std::move(unit));
            }

            std::vector<double> cpis;
            for (uint64_t j : indices) {
                const auto &unit = units.at(j);
                if (unit.measured)
                    cpis.push_back(unit.stats.cpi());
            }
            if (cpis.size() < 2)
                break;
            double cv = coefficientOfVariation(cpis);
            size_t needed = requiredSamples(cv, confidence, interval);
            if (needed <= cpis.size())
                break; // CI satisfied
            // Even back-to-back units (the full grid) could not reach
            // the interval: the scaled budget simply cannot support
            // it, so keep the estimate rather than degenerate into a
            // full detailed run.
            if (needed > plan.maxUnits)
                break;
            if (plan.strideFor(needed) >= plan.strideFor(n))
                break; // already sampling as densely as possible
            n = needed;
        }
    } catch (CancelledError &cancelled) {
        // ensure()/measureUnits() report only their own partial pass;
        // add the completed attempts, then convert to work units here,
        // where the cost model lives.
        cancelled.warmedInsts += warm_charged;
        cancelled.detailedInsts += detailed_done;
        cancelled.partialWorkUnits =
            ctx.cost.functionalWarmPerInst *
                static_cast<double>(cancelled.warmedInsts) +
            ctx.cost.detailedPerInst *
                static_cast<double>(cancelled.detailedInsts);
        throw;
    }

    // Stitch in ascending grid order, always — the fan-out's
    // completion order must never reach the arithmetic, so parallel
    // and sequential runs produce byte-identical sums.
    std::vector<double> unit_cpis;
    SimStats measured;
    std::vector<double> bbef;
    std::vector<double> bbv;
    uint64_t detailed_insts = 0;
    for (uint64_t j : indices) {
        const auto &unit = units.at(j);
        if (!unit.measured)
            continue;
        unit_cpis.push_back(unit.stats.cpi());
        measured += unit.stats;
        detailed_insts += unit.warmupDone + unit.unitDone;
        if (bbef.empty()) {
            bbef = unit.bbef;
            bbv = unit.bbv;
        } else {
            for (size_t b = 0; b < bbef.size(); ++b) {
                bbef[b] += unit.bbef[b];
                bbv[b] += unit.bbv[b];
            }
        }
    }

    YASIM_ASSERT(!unit_cpis.empty());
    result.cpi = mean(unit_cpis);
    result.metrics = measured.metricVector();
    result.detailed = measured;
    result.bbef = std::move(bbef);
    result.bbv = std::move(bbv);
    result.detailedInsts = detailed_insts;
    result.workUnits =
        ctx.cost.functionalWarmPerInst *
            static_cast<double>(warm_charged) +
        ctx.cost.detailedPerInst * static_cast<double>(detailed_done);
    return result;
}

} // namespace yasim
