#include "techniques/smarts.hh"

#include <algorithm>

#include "sim/bb_profiler.hh"
#include "sim/ooo_core.hh"
#include "stats/summary.hh"
#include "support/logging.hh"
#include "techniques/trace_store.hh"

namespace yasim {

Smarts::Smarts(uint64_t unit_insts, uint64_t warmup_insts,
               double confidence, double interval, uint64_t initial_n)
    : unitInsts(unit_insts),
      warmupInsts(warmup_insts),
      confidence(confidence),
      interval(interval),
      initialN(initial_n)
{
    YASIM_ASSERT(unit_insts >= 1);
}

std::string
Smarts::permutation() const
{
    return "U=" + std::to_string(unitInsts) +
           " W=" + std::to_string(warmupInsts);
}

// yasim-lint: key(tech) covers Smarts(techniques/smarts.hh)
std::string
Smarts::cacheKey() const
{
    return csprintf("SMARTS|u=%llu|w=%llu|conf=%.17g|int=%.17g|n0=%llu",
                    static_cast<unsigned long long>(unitInsts),
                    static_cast<unsigned long long>(warmupInsts),
                    confidence, interval,
                    static_cast<unsigned long long>(initialN));
}

Smarts::PassResult
Smarts::samplePass(const TechniqueContext &ctx, const SimConfig &config,
                   uint64_t n) const
{
    StepSourceHandle src = openStepSource(ctx, InputSet::Reference);
    StepSource &stream = *src.source;
    OooCore core(config);
    BbProfiler profiler(src.program());

    // A warm-up longer than the whole (scaled) run would swallow it;
    // degrade to the largest warm-up that still leaves room for at
    // least one measured unit.
    uint64_t warmup = warmupInsts;
    if (unitInsts + warmup >= ctx.referenceLength) {
        warmup = ctx.referenceLength > 2 * unitInsts
                     ? ctx.referenceLength - 2 * unitInsts
                     : 0;
    }
    const uint64_t span = unitInsts + warmup;
    uint64_t period = ctx.referenceLength / std::max<uint64_t>(n, 1);
    if (period < span)
        period = span; // degenerate: back-to-back sampling

    PassResult pass;
    uint64_t warmed = 0;
    while (!stream.halted()) {
        // Functional warming up to the next sample's warm-up start.
        uint64_t gap = period - span;
        if (gap > 0) {
            warmed += stream.fastForwardWarm(gap, &core.memHierarchy(),
                                             &core.predictor());
            if (stream.halted())
                break;
        }
        // Detailed warm-up (discarded) then the measured unit.
        core.resetPipeline();
        if (warmup > 0)
            core.run(stream, warmup);
        uint64_t done = 0;
        SimStats delta =
            core.runMeasured(stream, unitInsts, &profiler, &done);
        if (done == 0)
            break;
        pass.unitCpis.push_back(delta.cpi());
        pass.measured += delta;
        pass.detailedInsts += warmup + done;
    }

    pass.bbef = profiler.bbef();
    pass.bbv = profiler.bbv();
    pass.workUnits =
        ctx.cost.functionalWarmPerInst * static_cast<double>(warmed) +
        ctx.cost.detailedPerInst *
            static_cast<double>(pass.detailedInsts);
    return pass;
}

TechniqueResult
Smarts::run(const TechniqueContext &ctx, const SimConfig &config) const
{
    // Initial n: the paper's 10,000 scaled by our instruction budget
    // (DESIGN.md section 5), bounded to stay meaningful.
    uint64_t n = initialN;
    if (n == 0) {
        uint64_t span = unitInsts + warmupInsts;
        n = ctx.referenceLength / std::max<uint64_t>(span * 5, 1);
        n = std::clamp<uint64_t>(n, 50, 3000);
    }

    TechniqueResult result;
    result.technique = name();
    result.permutation = permutation();

    double total_work = 0.0;
    PassResult pass;
    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
        pass = samplePass(ctx, config, n);
        total_work += pass.workUnits;
        if (pass.unitCpis.size() < 2)
            break;
        double cv = coefficientOfVariation(pass.unitCpis);
        size_t needed = requiredSamples(cv, confidence, interval);
        if (needed <= pass.unitCpis.size())
            break; // CI satisfied
        uint64_t next_n = static_cast<uint64_t>(needed);
        // A higher sampling frequency can't exceed back-to-back units;
        // when even that could not reach the interval the scaled budget
        // simply cannot support it, so keep the estimate rather than
        // degenerate into a full detailed run.
        uint64_t max_n =
            ctx.referenceLength /
            std::max<uint64_t>(unitInsts + warmupInsts, 1);
        if (next_n > max_n)
            break;
        if (next_n <= n)
            break; // already sampling as densely as possible
        n = next_n;
    }

    YASIM_ASSERT(!pass.unitCpis.empty());
    result.cpi = mean(pass.unitCpis);
    result.metrics = pass.measured.metricVector();
    result.detailed = pass.measured;
    result.bbef = std::move(pass.bbef);
    result.bbv = std::move(pass.bbv);
    result.detailedInsts = pass.detailedInsts;
    result.workUnits = total_work;
    return result;
}

} // namespace yasim
