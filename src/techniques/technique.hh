/**
 * @file
 * The simulation-technique abstraction — the heart of the paper.
 *
 * A Technique answers the question "estimate this benchmark's behaviour
 * on this machine configuration without paying for a full detailed
 * reference simulation". Every technique returns the same bundle: its
 * CPI estimate, its architecture-level metric estimates, the BBEF/BBV
 * execution profile of the code it actually simulated in detail, and a
 * deterministic *work-unit* cost used by the speed-vs-accuracy analysis.
 *
 * Costs are modeled in work units rather than wall time so results are
 * machine-independent and reproducible: one detailed-simulated
 * instruction costs 1.0 units and the cheaper execution modes cost the
 * fractions below, calibrated to the detailed/functional speed ratios of
 * SimpleScalar-class simulators. The speed of a technique in the paper's
 * sense is its work divided by the reference run's work.
 */

#ifndef YASIM_TECHNIQUES_TECHNIQUE_HH
#define YASIM_TECHNIQUES_TECHNIQUE_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/livepoint.hh"
#include "sim/sharded.hh"
#include "sim/stats.hh"
#include "support/cancel.hh"
#include "workloads/suite.hh"

namespace yasim {

class SimulationService;
class TraceStore;

/** Relative cost of each execution mode (detailed instruction = 1.0). */
struct CostModel
{
    double detailedPerInst = 1.0;
    /** Functional warming: architectural state + caches + predictor
     *  (SMARTS reports ~25x faster than detailed simulation). */
    double functionalWarmPerInst = 0.04;
    /** Plain architectural fast-forward (sim-fast class, ~100x). */
    double fastForwardPerInst = 0.01;
    /** BBV profiling pass (SimPoint phase 1). */
    double profilePerInst = 0.015;
    /** Checkpoint generation (architectural state capture). */
    double checkpointPerInst = 0.01;
};

/** Everything a technique needs to know about the experiment. */
struct TechniqueContext
{
    /** Benchmark under study. */
    std::string benchmark;
    /** Suite scaling (reference length etc.). */
    SuiteConfig suite;
    /**
     * Measured dynamic length of the reference input. One paper
     * "M instructions" is referenceLength / 10000 of these (DESIGN.md
     * section 5).
     */
    uint64_t referenceLength = 0;
    /** Work-unit cost model. */
    CostModel cost;
    /**
     * Shared execution-trace store (techniques/trace_store.hh), or
     * nullptr to interpret live (--no-trace). Techniques open their
     * instruction streams through openStepSource(ctx, input), which
     * replays the store's recording when one is available; results are
     * bit-identical either way.
     */
    TraceStore *traces = nullptr;
    /**
     * Checkpoint-sharded parallel detailed simulation (sim/sharded.hh).
     * Applies to the full-reference run only — sampling techniques are
     * already cheap and their measured units are not shard-sized. The
     * default (1 shard) is the exact sequential path.
     */
    ShardOptions shards;
    /**
     * Live-point library for the sampling techniques
     * (sim/livepoint.hh): persisted per-unit entry states and a
     * parallel measurement fan-out. Disabling it (--no-livepoints)
     * selects the serial in-memory loop over the same sampling grid,
     * which is bit-identical — so, like shards, the knob is absent
     * from every cache key.
     */
    LivePointOptions livepoints;
    /**
     * Cooperative cancellation for this run (support/cancel.hh).
     * Polled at batch boundaries only; the default invalid token
     * never fires. Deliberately NOT part of the cache key: a token
     * can only stop a run early, and a cancelled run produces no
     * result to cache.
     */
    CancelToken cancel;

    /** Convert the paper's scaled M-instructions to instructions. */
    uint64_t scaledM(double m) const
    {
        double insts =
            m * static_cast<double>(referenceLength) / 10000.0;
        return insts < 1.0 ? 1 : static_cast<uint64_t>(insts);
    }

    /**
     * Build a context with the reference length resolved through
     * @p service — with an ExperimentEngine this hits the in-memory /
     * on-disk length cache instead of re-measuring. The preferred
     * construction path.
     */
    static TechniqueContext make(const std::string &benchmark,
                                 const SuiteConfig &suite,
                                 SimulationService &service);
};

/** What a technique reports back. */
struct TechniqueResult
{
    /** Technique family ("SimPoint", "Run Z", ...). */
    std::string technique;
    /** Permutation label ("multiple 10M", "Z=500M", ...). */
    std::string permutation;

    /** The technique's CPI estimate for the full reference run. */
    double cpi = 0.0;
    /**
     * Architecture-level metric estimates, paper order:
     * {IPC, branch accuracy, L1-D hit rate, L2 hit rate}.
     */
    std::vector<double> metrics;

    /** Raw statistics of the detailed-simulated portion. */
    SimStats detailed;

    /** Execution profile of the detail-simulated code (weighted). */
    std::vector<double> bbef;
    std::vector<double> bbv;

    /** Deterministic cost in work units (see CostModel). */
    double workUnits = 0.0;
    /** Dynamic instructions simulated in detail. */
    uint64_t detailedInsts = 0;
};

/** Abstract simulation technique. */
class Technique
{
  public:
    virtual ~Technique() = default;

    /** Technique family name (groups permutations in reports). */
    virtual std::string name() const = 0;

    /** Human-readable permutation label. */
    virtual std::string permutation() const = 0;

    /**
     * Estimate @p ctx.benchmark's behaviour on machine @p config.
     * Implementations must be deterministic for fixed inputs.
     */
    virtual TechniqueResult run(const TechniqueContext &ctx,
                                const SimConfig &config) const = 0;

    /**
     * Stable identity string for result caching. Must encode every
     * parameter that can change run()'s output; two techniques with
     * equal cacheKey() must produce identical results for identical
     * (context, config) inputs. The default covers techniques whose
     * permutation label pins down all parameters; techniques with
     * extra knobs (seeds, tolerances, ...) override it.
     */
    virtual std::string cacheKey() const;
};

/** Shared pointer alias used by the permutation tables. */
using TechniquePtr = std::shared_ptr<const Technique>;

/**
 * Measure the dynamic length of a benchmark's reference input under
 * @p suite scaling. This is the raw primitive — one architectural
 * fast-forward pass, uncached. Callers that loop should go through a
 * SimulationService (an ExperimentEngine caches lengths in memory and
 * on disk).
 */
uint64_t measureReferenceLength(const std::string &benchmark,
                                const SuiteConfig &suite);

} // namespace yasim

#endif // YASIM_TECHNIQUES_TECHNIQUE_HH
