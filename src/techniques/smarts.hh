/**
 * @file
 * SMARTS [Wunderlich03]: systematic sampling with functional warming
 * and statistical error estimation.
 *
 * The run alternates three modes: functional *warming* (architectural
 * execution that keeps the caches and branch predictor trained) between
 * samples, a detailed warm-up of W instructions whose statistics are
 * discarded (to fill the pipeline and window), and a detailed
 * measurement unit of U instructions. Samples are spaced evenly so that
 * n units cover the run. Afterwards the coefficient of variation of the
 * per-unit CPIs feeds the standard n >= (z * cv / eps)^2 rule at the
 * paper's 99.7% confidence / ±3% interval; when the achieved n is too
 * small the sample is escalated to the recommended n (up to 6
 * attempts, matching the paper's 1–1.59 average runs per permutation).
 *
 * Units live on the fixed grid of a SamplingPlan (sim/livepoint.hh)
 * and escalation only *adds* grid units — a denser selection is a
 * strict superset of a sparser one, so the units the previous attempt
 * measured are reused verbatim instead of re-simulated (TurboSMARTSim's
 * observation). Each unit's entry state comes from the LivePointLibrary,
 * which also lets the measurement fan out across the thread pool as
 * independent jobs; the sequential fallback (--no-livepoints) walks the
 * identical grid serially and is bit-identical by construction.
 *
 * The initial sample count is scaled from the paper's n = 10,000 by the
 * instruction-budget ratio (DESIGN.md section 5) and can be overridden.
 */

#ifndef YASIM_TECHNIQUES_SMARTS_HH
#define YASIM_TECHNIQUES_SMARTS_HH

#include "techniques/technique.hh"

namespace yasim {

/** The SMARTS technique. */
class Smarts : public Technique
{
  public:
    /**
     * @param unit_insts   detailed measurement unit U (instructions)
     * @param warmup_insts detailed warm-up W before each unit
     * @param confidence   confidence level (paper: 0.997)
     * @param interval     target relative CI half-width (paper: 0.03)
     * @param initial_n    initial sample count; 0 = auto-scale
     */
    Smarts(uint64_t unit_insts, uint64_t warmup_insts,
           double confidence = 0.997, double interval = 0.03,
           uint64_t initial_n = 0);

    std::string name() const override { return "SMARTS"; }
    std::string permutation() const override;

    /** The U=/W= label omits confidence, interval, and initial n. */
    std::string cacheKey() const override;

    TechniqueResult run(const TechniqueContext &ctx,
                        const SimConfig &config) const override;

    /** Number of simulation attempts the last run() needed (1..6). */
    static constexpr int maxAttempts = 6;

  private:
    uint64_t unitInsts;
    uint64_t warmupInsts;
    double confidence;
    double interval;
    uint64_t initialN;
};

} // namespace yasim

#endif // YASIM_TECHNIQUES_SMARTS_HH
