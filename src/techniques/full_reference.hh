/**
 * @file
 * The gold standard: simulate the reference input set to completion in
 * detail. Every characterization measures the other techniques' distance
 * from this one's results.
 */

#ifndef YASIM_TECHNIQUES_FULL_REFERENCE_HH
#define YASIM_TECHNIQUES_FULL_REFERENCE_HH

#include "techniques/technique.hh"

namespace yasim {

/** Full detailed simulation of the reference input. */
class FullReference : public Technique
{
  public:
    std::string name() const override { return "reference"; }
    std::string permutation() const override { return "full"; }

    TechniqueResult run(const TechniqueContext &ctx,
                        const SimConfig &config) const override;
};

} // namespace yasim

#endif // YASIM_TECHNIQUES_FULL_REFERENCE_HH
