#include "techniques/simpoint.hh"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>
#include <tuple>

#include "sim/bb_profiler.hh"
#include "sim/ooo_core.hh"
#include "stats/kmeans.hh"
#include "stats/projection.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "techniques/trace_store.hh"

namespace yasim {

SimPoint::SimPoint(double interval_m, int max_k, double warmup_m,
                   std::string label, size_t proj_dim, uint64_t seed,
                   int restarts, bool early, double early_tolerance)
    : intervalM(interval_m),
      maxK(max_k),
      warmupM(warmup_m),
      label(std::move(label)),
      projDim(proj_dim),
      seed(seed),
      restarts(restarts),
      early(early),
      earlyTolerance(early_tolerance)
{
    YASIM_ASSERT(interval_m > 0 && max_k >= 1 && restarts >= 1);
}

// yasim-lint: key(tech) covers SimPoint(techniques/simpoint.hh)
std::string
SimPoint::cacheKey() const
{
    return csprintf("SimPoint|iv=%.17g|k=%d|wu=%.17g|dim=%zu|seed=%llu"
                    "|rs=%d|early=%d|tol=%.17g",
                    intervalM, maxK, warmupM, projDim,
                    static_cast<unsigned long long>(seed), restarts,
                    early ? 1 : 0, earlyTolerance);
}

namespace {

/** Phase 1: one projected, L1-normalized BBV per interval. */
std::vector<std::vector<double>>
profileIntervals(StepSource &stream, const Program &program,
                 uint64_t interval_insts, size_t proj_dim, uint64_t seed,
                 uint64_t *profiled)
{
    Rng rng(seed);
    RandomProjection projection(program.numBlocks(), proj_dim, rng);

    std::vector<std::vector<double>> intervals;
    std::vector<double> bbv(program.numBlocks(), 0.0);

    uint64_t in_interval = 0;
    uint64_t total = 0;
    auto flush = [&]() {
        normalizeL1(bbv);
        intervals.push_back(projection.project(bbv));
        std::fill(bbv.begin(), bbv.end(), 0.0);
        in_interval = 0;
    };
    // Pull interval-bounded batches so every interval boundary lands
    // exactly where the per-step loop would have put it.
    constexpr uint64_t kProfileBatch = 4096;
    std::vector<ExecRecord> batch(kProfileBatch);
    for (;;) {
        const uint64_t want =
            std::min(kProfileBatch, interval_insts - in_interval);
        const uint64_t n = stream.stepBatch(batch.data(), want);
        if (n == 0)
            break;
        for (uint64_t i = 0; i < n; ++i)
            bbv[program.blockOf(batch[i].pc)] += 1.0;
        in_interval += n;
        total += n;
        if (in_interval == interval_insts)
            flush();
    }
    // A trailing partial interval longer than half the length counts.
    if (in_interval > interval_insts / 2)
        flush();
    if (intervals.empty())
        flush();
    *profiled = total;
    return intervals;
}

} // namespace

std::vector<SimulationPoint>
SimPoint::choosePoints(const TechniqueContext &ctx) const
{
    // Points depend only on the program and the clustering parameters,
    // not on the machine configuration, so characterization loops that
    // sweep dozens of configurations reuse them (exactly as architects
    // reuse published simulation points).
    using Key = std::tuple<std::string, uint64_t, uint64_t, double, int,
                           double, size_t, uint64_t, int, bool, double>;
    static std::map<Key, std::vector<SimulationPoint>> cache;
    static std::mutex mutex;
    Key key{ctx.benchmark,
            ctx.suite.referenceInstructions,
            ctx.suite.seed,
            intervalM,
            maxK,
            warmupM,
            projDim,
            seed,
            restarts,
            early,
            earlyTolerance};
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }

    StepSourceHandle src = openStepSource(ctx, InputSet::Reference);
    const uint64_t interval_insts = intervalInsts(ctx);

    uint64_t profiled = 0;
    auto intervals =
        profileIntervals(*src.source, src.program(), interval_insts,
                         projDim, seed, &profiled);

    Rng rng(seed ^ 0x5eedULL);
    KSelection selection =
        maxK > 20 ? selectKLadder(intervals, maxK, rng, 0.9, restarts)
                  : selectK(intervals, maxK, rng, 0.9, restarts);

    // Representative per cluster: the interval closest to the
    // centroid, or — in early-SimPoint mode [Perelman03] — the
    // *earliest* interval whose distance is within the tolerance of
    // the closest one.
    const auto &clustering = selection.best;
    const size_t k = clustering.centroids.size();
    std::vector<double> dist2(intervals.size(), 0.0);
    std::vector<int> representative(k, -1);
    std::vector<double> best_dist(k,
                                  std::numeric_limits<double>::max());
    std::vector<uint64_t> population(k, 0);
    for (size_t i = 0; i < intervals.size(); ++i) {
        auto c = static_cast<size_t>(clustering.assignment[i]);
        ++population[c];
        double acc = 0.0;
        for (size_t d = 0; d < intervals[i].size(); ++d) {
            double delta =
                intervals[i][d] - clustering.centroids[c][d];
            acc += delta * delta;
        }
        dist2[i] = acc;
        if (acc < best_dist[c]) {
            best_dist[c] = acc;
            representative[c] = static_cast<int>(i);
        }
    }
    if (early) {
        // Earliest interval within tolerance of the cluster's best
        // (the best interval itself always qualifies, so every
        // non-empty cluster keeps a representative).
        double factor = (1.0 + earlyTolerance) * (1.0 + earlyTolerance);
        std::vector<int> earliest(k, -1);
        for (size_t i = 0; i < intervals.size(); ++i) {
            auto c = static_cast<size_t>(clustering.assignment[i]);
            if (earliest[c] >= 0)
                continue;
            if (dist2[i] <= best_dist[c] * factor + 1e-12)
                earliest[c] = static_cast<int>(i);
        }
        for (size_t c = 0; c < k; ++c)
            if (earliest[c] >= 0)
                representative[c] = earliest[c];
    }

    std::vector<SimulationPoint> points;
    for (size_t c = 0; c < k; ++c) {
        if (representative[c] < 0)
            continue; // empty cluster
        SimulationPoint p;
        p.interval = static_cast<uint64_t>(representative[c]);
        p.startInst = p.interval * interval_insts;
        p.weight = static_cast<double>(population[c]) /
                   static_cast<double>(intervals.size());
        points.push_back(p);
    }
    std::sort(points.begin(), points.end(),
              [](const SimulationPoint &a, const SimulationPoint &b) {
                  return a.startInst < b.startInst;
              });
    std::lock_guard<std::mutex> lock(mutex);
    cache.emplace(key, points);
    return points;
}

uint64_t
SimPoint::intervalInsts(const TechniqueContext &ctx) const
{
    // Floor: at the paper's scale the shortest interval is 10M dynamic
    // instructions; scaled runs must not shrink an interval below the
    // point where single-interval jitter (pipeline fill, a handful of
    // cache misses) dominates what the interval is supposed to
    // represent.
    return std::max<uint64_t>(ctx.scaledM(intervalM), 2000);
}

TechniqueResult
SimPoint::run(const TechniqueContext &ctx, const SimConfig &config) const
{
    StepSourceHandle src = openStepSource(ctx, InputSet::Reference);
    StepSource &stream = *src.source;
    const uint64_t interval_insts = intervalInsts(ctx);
    const uint64_t warmup_insts =
        warmupM > 0
            ? std::max<uint64_t>(ctx.scaledM(warmupM), 256)
            : 0;

    std::vector<SimulationPoint> points = choosePoints(ctx);
    YASIM_ASSERT(!points.empty());

    // Phase 3: simulate each chosen interval in detail.
    OooCore core(config);
    BbProfiler profiler(src.program());

    double weighted_cpi = 0.0;
    std::vector<double> weighted_metrics(4, 0.0);
    double weight_total = 0.0;
    uint64_t detailed = 0;
    uint64_t last_position = 0;

    for (const SimulationPoint &point : points) {
        uint64_t warm_start = point.startInst >= warmup_insts
                                  ? point.startInst - warmup_insts
                                  : 0;
        // Skipped regions execute with functional warming so each
        // checkpoint carries warm cache/predictor state (the modern
        // SimPoint "warm checkpoint" practice; the paper's assume-hit
        // warm-up approximates the same thing).
        if (stream.instsExecuted() < warm_start) {
            stream.fastForwardWarm(warm_start - stream.instsExecuted(),
                                   &core.memHierarchy(),
                                   &core.predictor());
        }
        core.resetPipeline();
        if (stream.instsExecuted() < point.startInst)
            core.run(stream, point.startInst - stream.instsExecuted());

        SimStats before = core.snapshot();
        profiler.setWeight(point.weight);
        uint64_t done = core.run(stream, interval_insts, &profiler);
        SimStats delta = core.snapshot() - before;
        detailed += done + warmup_insts;
        last_position = point.startInst + done;

        if (delta.instructions == 0)
            continue;
        weighted_cpi += point.weight * delta.cpi();
        auto metrics = delta.metricVector();
        for (size_t m = 0; m < metrics.size(); ++m)
            weighted_metrics[m] += point.weight * metrics[m];
        weight_total += point.weight;
    }
    YASIM_ASSERT(weight_total > 0.0);

    TechniqueResult result;
    result.technique = name();
    result.permutation = permutation();
    result.cpi = weighted_cpi / weight_total;
    result.metrics = weighted_metrics;
    for (double &m : result.metrics)
        m /= weight_total;
    result.detailed = core.snapshot();
    result.bbef = profiler.bbef();
    result.bbv = profiler.bbv();
    result.detailedInsts = detailed;
    // Cost: the profiling pass, checkpoint generation up to the last
    // point, and the detailed interval (plus warm-up) simulations.
    result.workUnits =
        ctx.cost.profilePerInst *
            static_cast<double>(ctx.referenceLength) +
        ctx.cost.checkpointPerInst * static_cast<double>(last_position) +
        ctx.cost.detailedPerInst * static_cast<double>(detailed);
    return result;
}

} // namespace yasim
