/**
 * @file
 * The simulation-service seam between the analyses and the engine.
 *
 * Every characterization and driver obtains technique results through a
 * SimulationService instead of calling Technique::run directly. The
 * plain DirectService just forwards; the ExperimentEngine (src/engine/)
 * implements the same interface with memoization, an on-disk result
 * cache, and pooled grid scheduling. Keeping the interface here — below
 * the engine in the dependency order — lets core analyses accept an
 * engine handle without core depending on the engine library.
 */

#ifndef YASIM_TECHNIQUES_SERVICE_HH
#define YASIM_TECHNIQUES_SERVICE_HH

#include "techniques/technique.hh"

namespace yasim {

class TraceStore;

/** Abstract provider of technique results and reference lengths. */
class SimulationService
{
  public:
    virtual ~SimulationService() = default;

    /** Produce @p technique's result for (@p ctx, @p config). */
    virtual TechniqueResult run(const Technique &technique,
                                const TechniqueContext &ctx,
                                const SimConfig &config) = 0;

    /** Dynamic length of @p benchmark's reference input. */
    virtual uint64_t referenceLength(const std::string &benchmark,
                                     const SuiteConfig &suite) = 0;

    /**
     * The shared execution-trace store, or nullptr when this service
     * interprets live on every run. TechniqueContext::make copies this
     * into the context it builds.
     */
    virtual TraceStore *traceStore() { return nullptr; }
};

/** Pass-through service: simulate on every call, cache nothing. */
class DirectService final : public SimulationService
{
  public:
    TechniqueResult run(const Technique &technique,
                        const TechniqueContext &ctx,
                        const SimConfig &config) override
    {
        return technique.run(ctx, config);
    }

    uint64_t referenceLength(const std::string &benchmark,
                             const SuiteConfig &suite) override
    {
        return measureReferenceLength(benchmark, suite);
    }
};

} // namespace yasim

#endif // YASIM_TECHNIQUES_SERVICE_HH
