/**
 * @file
 * The candidate-technique permutation tables (the paper's Table 1).
 *
 * Sixty-nine permutations across six techniques: 3 SimPoint, 9 SMARTS,
 * up to 5 reduced input sets, 4 Run Z, 12 FF X + Run Z, and 36
 * FF X + WU Y + Run Z (X + Y always a multiple of 100M). X, Y, Z are in
 * scaled M-instructions; SMARTS U/W are in instructions with the initial
 * sample count auto-scaled to the instruction budget.
 *
 * Because reduced-input availability varies per benchmark (Table 2's
 * N/A holes), the table is materialized per benchmark.
 */

#ifndef YASIM_TECHNIQUES_PERMUTATIONS_HH
#define YASIM_TECHNIQUES_PERMUTATIONS_HH

#include <string>
#include <vector>

#include "techniques/technique.hh"

namespace yasim {

/** All Table-1 permutations applicable to @p benchmark. */
std::vector<TechniquePtr>
table1Permutations(const std::string &benchmark);

/**
 * A representative subset (one to two permutations per technique,
 * chosen to match the permutations the paper's Figures 3-6 highlight)
 * for benches that cannot afford the full 69-permutation sweep.
 */
std::vector<TechniquePtr>
representativePermutations(const std::string &benchmark);

/**
 * The Figure-3/4 legend permutations for one benchmark's
 * speed-versus-accuracy graph: three SimPoints, the available reduced
 * inputs, Run Z / FF+Run / FF+WU+Run sweeps, and three SMARTS points.
 *
 * @param ff_x  fast-forward X in scaled M (per-benchmark legend value)
 * @param wu_x  FF X of the FF+WU pair
 * @param wu_y  WU Y of the FF+WU pair
 */
std::vector<TechniquePtr>
svatPermutations(const std::string &benchmark, double ff_x, double wu_x,
                 double wu_y);

/** The technique family names in the paper's reporting order. */
const std::vector<std::string> &techniqueFamilies();

/** Count of Table-1 permutations per family for @p benchmark. */
size_t familyPermutationCount(const std::string &benchmark,
                              const std::string &family);

} // namespace yasim

#endif // YASIM_TECHNIQUES_PERMUTATIONS_HH
