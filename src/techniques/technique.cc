#include "techniques/technique.hh"

#include "sim/functional.hh"
#include "support/logging.hh"
#include "techniques/service.hh"

namespace yasim {

std::string
Technique::cacheKey() const
{
    return name() + "|" + permutation();
}

uint64_t
measureReferenceLength(const std::string &benchmark,
                       const SuiteConfig &suite)
{
    Workload workload =
        buildWorkload(benchmark, InputSet::Reference, suite);
    FunctionalSim fsim(workload.program);
    uint64_t length = fsim.fastForward(~0ULL);
    YASIM_ASSERT(fsim.halted());
    return length;
}

TechniqueContext
TechniqueContext::make(const std::string &benchmark,
                       const SuiteConfig &suite,
                       SimulationService &service)
{
    TechniqueContext ctx;
    ctx.benchmark = benchmark;
    ctx.suite = suite;
    ctx.referenceLength = service.referenceLength(benchmark, suite);
    ctx.traces = service.traceStore();
    return ctx;
}

} // namespace yasim
