#include "techniques/technique.hh"

#include <map>
#include <mutex>

#include "sim/functional.hh"
#include "support/logging.hh"

namespace yasim {

uint64_t
measureReferenceLength(const std::string &benchmark,
                       const SuiteConfig &suite)
{
    // Reference lengths are deterministic per (benchmark, suite); cache
    // them so characterization loops don't re-measure.
    using Key = std::pair<std::string, std::pair<uint64_t, uint64_t>>;
    static std::map<Key, uint64_t> cache;
    static std::mutex mutex;

    Key key{benchmark, {suite.referenceInstructions, suite.seed}};
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }

    Workload workload =
        buildWorkload(benchmark, InputSet::Reference, suite);
    FunctionalSim fsim(workload.program);
    uint64_t length = fsim.fastForward(~0ULL);
    YASIM_ASSERT(fsim.halted());

    std::lock_guard<std::mutex> lock(mutex);
    cache.emplace(key, length);
    return length;
}

TechniqueContext
makeContext(const std::string &benchmark, const SuiteConfig &suite)
{
    TechniqueContext ctx;
    ctx.benchmark = benchmark;
    ctx.suite = suite;
    ctx.referenceLength = measureReferenceLength(benchmark, suite);
    return ctx;
}

} // namespace yasim
