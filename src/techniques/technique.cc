#include "techniques/technique.hh"

#include "support/check.hh"
#include "techniques/service.hh"
#include "techniques/trace_store.hh"

namespace yasim {

std::string
Technique::cacheKey() const
{
    return name() + "|" + permutation();
}

uint64_t
measureReferenceLength(const std::string &benchmark,
                       const SuiteConfig &suite)
{
    // Through the StepSource seam (no trace store: one uncached live
    // pass), so this layer never touches the interpreter directly.
    StepSourceHandle handle = openStepSource(
        benchmark, InputSet::Reference, suite, nullptr);
    uint64_t length = handle.source->fastForward(~0ULL);
    YASIM_CHECK(handle.source->halted(),
                "reference run of '%s' did not halt", benchmark.c_str());
    return length;
}

TechniqueContext
TechniqueContext::make(const std::string &benchmark,
                       const SuiteConfig &suite,
                       SimulationService &service)
{
    TechniqueContext ctx;
    ctx.benchmark = benchmark;
    ctx.suite = suite;
    ctx.referenceLength = service.referenceLength(benchmark, suite);
    ctx.traces = service.traceStore();
    return ctx;
}

} // namespace yasim
