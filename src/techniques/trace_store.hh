/**
 * @file
 * TraceStore: the shared execution-trace artifact class.
 *
 * One ExecTrace per (benchmark, input, suite) is recorded at most once
 * per process and shared — read-only, thread-safe — by every pooled
 * worker sweeping machine configurations over the same stream.
 * Concurrent requests for the same key collapse onto one recording
 * (the others wait), the in-memory set is bounded in bytes with LRU
 * eviction, and with a cache directory configured traces also spill to
 * disk under versioned, key-verified headers (see docs/trace.md), so a
 * repeated bench invocation performs zero functional interpretations.
 *
 * openStepSource() is the one call sites use: it yields a TraceReplayer
 * over the shared trace when a store is available, or a freshly-built
 * workload plus live FunctionalSim when not (--no-trace) — with
 * bit-identical downstream results either way.
 */

#ifndef YASIM_TECHNIQUES_TRACE_STORE_HH
#define YASIM_TECHNIQUES_TRACE_STORE_HH

#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/trace.hh"
#include "techniques/technique.hh"
#include "workloads/suite.hh"

namespace yasim {

/** TraceStore construction knobs. */
struct TraceStoreOptions
{
    /** Spill directory; empty = in-memory only. */
    std::string cacheDir;
    /** Embedded-checkpoint spacing (0 = adaptive; see ExecTrace). */
    uint64_t checkpointSpacing = 0;
    /** In-memory trace budget in bytes; LRU eviction beyond it. */
    size_t maxBytes = size_t(1) << 30;
    /** Spill-directory budget in bytes (0 = unbounded); the oldest
     *  artifacts are evicted after each spill to stay under it. */
    uint64_t cacheBudgetBytes = 0;
};

/** Monotonic trace-store counters (bytesInMemory is a gauge). */
struct TraceCounters
{
    /** Functional interpretations actually performed. */
    uint64_t recordings = 0;
    /** Requests served from the in-memory set. */
    uint64_t hits = 0;
    /** Requests that joined an in-flight recording of the same key. */
    uint64_t inflightJoins = 0;
    uint64_t diskLoads = 0;
    uint64_t diskWrites = 0;
    uint64_t evictions = 0;
    /** Dynamic instructions captured by recordings. */
    uint64_t instsRecorded = 0;
    /** Current footprint of the in-memory set. */
    uint64_t bytesInMemory = 0;
    /** Spills that failed verification, were quarantined to
     *  "<file>.corrupt", and re-recorded. */
    uint64_t quarantined = 0;
    /** Spills written by another trace-format generation: deleted as
     *  stale (no quarantine) and re-recorded. Counted separately from
     *  quarantined so version churn never reads as corruption. */
    uint64_t versionMisses = 0;
    /** Transient-I/O retries performed by spill reads and writes. */
    uint64_t ioRetries = 0;
    /** Spill files evicted enforcing cacheBudgetBytes. */
    uint64_t budgetEvictions = 0;
};

/** Thread-safe record-once/replay-many trace cache. See file comment. */
class TraceStore
{
  public:
    explicit TraceStore(TraceStoreOptions options = {});

    TraceStore(const TraceStore &) = delete;
    TraceStore &operator=(const TraceStore &) = delete;

    /**
     * The trace for (@p benchmark, @p input, @p suite): from memory,
     * from disk, or recorded now (once, however many threads ask).
     */
    std::shared_ptr<const ExecTrace> get(const std::string &benchmark,
                                         InputSet input,
                                         const SuiteConfig &suite);

    const TraceStoreOptions &options() const { return opts; }

    /** Snapshot of the counters. */
    TraceCounters counters() const;

  private:
    struct Entry
    {
        std::shared_ptr<const ExecTrace> trace;
        size_t bytes = 0;
        std::list<std::string>::iterator lruPos;
    };

    struct InFlight
    {
        bool done = false;
        std::shared_ptr<const ExecTrace> trace;
    };

    std::string keyText(const std::string &benchmark, InputSet input,
                        const SuiteConfig &suite) const;
    std::string diskPath(const std::string &key_text) const;
    std::shared_ptr<const ExecTrace>
    loadFromDisk(const std::string &key_text, const Program &program);
    void spillToDisk(const std::string &key_text, const ExecTrace &trace);
    /** Insert and LRU-evict past the byte budget. Caller holds mutex. */
    void insertLocked(const std::string &key_text,
                      std::shared_ptr<const ExecTrace> trace);

    TraceStoreOptions opts;

    mutable std::mutex mutex;
    std::condition_variable inflightCv;
    std::unordered_map<std::string, Entry> entries;
    /** LRU order, most recent first; values are entry keys. */
    std::list<std::string> lru;
    std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight;
    TraceCounters ctr;
};

/**
 * Either face of the StepSource seam, plus everything the source must
 * keep alive: the shared trace (replay) or the built workload (live).
 */
struct StepSourceHandle
{
    /** Non-null in replay mode. */
    std::shared_ptr<const ExecTrace> trace;
    /** Non-null in live mode (owns the program the sim runs). */
    std::unique_ptr<Workload> workload;
    std::unique_ptr<StepSource> source;

    /** The program behind the stream (for profilers and block maps). */
    const Program &program() const
    {
        return trace ? trace->program() : workload->program;
    }

    /** True when steps come from a recording. */
    bool replay() const { return trace != nullptr; }
};

/**
 * Open the instruction stream for (@p benchmark, @p input, @p suite):
 * a TraceReplayer over @p traces when non-null, a live FunctionalSim
 * over a freshly-built workload otherwise.
 */
StepSourceHandle openStepSource(const std::string &benchmark,
                                InputSet input, const SuiteConfig &suite,
                                TraceStore *traces);

/** Convenience overload drawing benchmark/suite/store from @p ctx. */
StepSourceHandle openStepSource(const TechniqueContext &ctx,
                                InputSet input);

} // namespace yasim

#endif // YASIM_TECHNIQUES_TRACE_STORE_HH
