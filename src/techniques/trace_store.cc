#include "techniques/trace_store.hh"

#include <filesystem>
#include <sstream>

#include "sim/functional.hh"
#include "support/artifact_io.hh"
#include "support/check.hh"
#include "support/hash.hh"
#include "support/logging.hh"

namespace yasim {

namespace fs = std::filesystem;

namespace {

/** Inner frame magic for trace spills (see support/artifact_io.hh). */
constexpr const char *kTraceMagic = "yasim-trace";

} // namespace

TraceStore::TraceStore(TraceStoreOptions options)
    : opts(std::move(options))
{
    YASIM_CHECK_GE(opts.maxBytes, size_t(1));
    if (!opts.cacheDir.empty()) {
        std::error_code ec;
        fs::create_directories(opts.cacheDir, ec);
        if (ec)
            fatal("cannot create cache directory '%s': %s",
                  opts.cacheDir.c_str(), ec.message().c_str());
    }
}

std::string
TraceStore::keyText(const std::string &benchmark, InputSet input,
                    const SuiteConfig &suite) const
{
    return csprintf("yasim-trace|v%d|bench=%s|input=%s|"
                    "ref=%llu,seed=%llu|ckpt=%llu",
                    kTraceFormatVersion, benchmark.c_str(),
                    inputSetName(input),
                    (unsigned long long)suite.referenceInstructions,
                    (unsigned long long)suite.seed,
                    (unsigned long long)opts.checkpointSpacing);
}

std::string
TraceStore::diskPath(const std::string &key_text) const
{
    Hasher h;
    h.str(key_text);
    return (fs::path(opts.cacheDir) / (h.hex() + ".trace")).string();
}

std::shared_ptr<const ExecTrace>
TraceStore::loadFromDisk(const std::string &key_text,
                         const Program &program)
{
    const std::string path = diskPath(key_text);
    ArtifactReadResult read =
        readArtifact(path, kTraceMagic, kTraceFormatVersion);
    if (read.retries) {
        std::lock_guard<std::mutex> lock(mutex);
        ctr.ioRetries += read.retries;
    }
    if (read.status == ArtifactStatus::Missing)
        return nullptr;
    if (read.status == ArtifactStatus::VersionMismatch) {
        // Stale spill from another trace-format generation: the frame
        // verified (no rot), readArtifact already deleted the file.
        std::lock_guard<std::mutex> lock(mutex);
        ++ctr.versionMisses;
        warn("trace cache entry '%s' is from another format generation "
             "(%s); removed and re-recording",
             path.c_str(), read.error.c_str());
        return nullptr;
    }
    if (read.status != ArtifactStatus::Ok) {
        std::lock_guard<std::mutex> lock(mutex);
        if (read.status == ArtifactStatus::Corrupt)
            ++ctr.quarantined;
        warn("trace cache entry '%s' unusable (%s); re-recording",
             path.c_str(), read.error.c_str());
        return nullptr;
    }

    std::istringstream payload(read.payload);
    std::shared_ptr<const ExecTrace> trace =
        ExecTrace::read(payload, key_text, program);
    if (!trace) {
        // The frame verified, so the payload we wrote is intact — this
        // is a key/version mismatch or payload-level rot. Either way it
        // can never satisfy a future lookup: quarantine and re-record.
        quarantineArtifact(path);
        std::lock_guard<std::mutex> lock(mutex);
        ++ctr.quarantined;
        warn("trace cache entry '%s' failed payload verification; "
             "quarantined and re-recording",
             path.c_str());
    }
    return trace;
}

void
TraceStore::spillToDisk(const std::string &key_text,
                        const ExecTrace &trace)
{
    const std::string path = diskPath(key_text);
    std::ostringstream payload;
    trace.write(payload, key_text);
    ArtifactWriteResult wrote =
        writeArtifact(path, kTraceMagic, kTraceFormatVersion,
                      payload.str());
    uint64_t evicted = 0;
    if (wrote.ok && opts.cacheBudgetBytes)
        evicted = evictToBudget(opts.cacheDir, opts.cacheBudgetBytes);
    std::lock_guard<std::mutex> lock(mutex);
    ctr.ioRetries += wrote.retries;
    ctr.budgetEvictions += evicted;
    if (!wrote.ok) {
        warn("cannot publish trace cache file '%s': %s", path.c_str(),
             wrote.error.c_str());
        return;
    }
    ++ctr.diskWrites;
}

void
TraceStore::insertLocked(const std::string &key_text,
                         std::shared_ptr<const ExecTrace> trace)
{
    if (entries.count(key_text))
        return;
    const size_t bytes = trace->footprintBytes();
    lru.push_front(key_text);
    entries.emplace(key_text,
                    Entry{std::move(trace), bytes, lru.begin()});
    ctr.bytesInMemory += bytes;

    // Evict least-recently-used traces past the byte budget — but only
    // traces nobody is replaying right now (the map's reference is the
    // last one), and never the entry just inserted.
    auto it = lru.end();
    while (ctr.bytesInMemory > opts.maxBytes && it != lru.begin()) {
        --it;
        if (*it == key_text)
            continue;
        auto eit = entries.find(*it);
        YASIM_CHECK(eit != entries.end(),
                    "LRU key '%s' missing from the trace map",
                    it->c_str());
        if (eit->second.trace.use_count() > 1)
            continue;
        ctr.bytesInMemory -= eit->second.bytes;
        ++ctr.evictions;
        entries.erase(eit);
        it = lru.erase(it);
    }
}

std::shared_ptr<const ExecTrace>
TraceStore::get(const std::string &benchmark, InputSet input,
                const SuiteConfig &suite)
{
    const std::string key = keyText(benchmark, input, suite);

    std::shared_ptr<InFlight> flight;
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            auto it = entries.find(key);
            if (it != entries.end()) {
                ++ctr.hits;
                lru.splice(lru.begin(), lru, it->second.lruPos);
                return it->second.trace;
            }
            auto fit = inflight.find(key);
            if (fit == inflight.end())
                break;
            // Another worker is recording this exact stream: join it
            // instead of interpreting the program a second time.
            ++ctr.inflightJoins;
            std::shared_ptr<InFlight> other = fit->second;
            inflightCv.wait(lock, [&] { return other->done; });
            return other->trace;
        }
        flight = std::make_shared<InFlight>();
        inflight.emplace(key, flight);
    }

    Workload workload = buildWorkload(benchmark, input, suite);
    std::shared_ptr<const ExecTrace> trace;
    bool from_disk = false;
    if (!opts.cacheDir.empty()) {
        trace = loadFromDisk(key, workload.program);
        from_disk = trace != nullptr;
    }
    if (!trace) {
        ExecTrace::Options topts;
        topts.checkpointSpacing = opts.checkpointSpacing;
        trace = ExecTrace::record(workload.program, topts);
    }

    {
        std::lock_guard<std::mutex> lock(mutex);
        if (from_disk) {
            ++ctr.diskLoads;
        } else {
            ++ctr.recordings;
            ctr.instsRecorded += trace->length();
        }
        insertLocked(key, trace);
        flight->trace = trace;
        flight->done = true;
        inflight.erase(key);
    }
    inflightCv.notify_all();

    if (!from_disk && !opts.cacheDir.empty())
        spillToDisk(key, *trace);
    return trace;
}

TraceCounters
TraceStore::counters() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return ctr;
}

StepSourceHandle
openStepSource(const std::string &benchmark, InputSet input,
               const SuiteConfig &suite, TraceStore *traces)
{
    StepSourceHandle handle;
    if (traces) {
        handle.trace = traces->get(benchmark, input, suite);
        handle.source =
            std::make_unique<TraceReplayer>(handle.trace);
    } else {
        handle.workload = std::make_unique<Workload>(
            buildWorkload(benchmark, input, suite));
        handle.source =
            std::make_unique<FunctionalSim>(handle.workload->program);
    }
    return handle;
}

StepSourceHandle
openStepSource(const TechniqueContext &ctx, InputSet input)
{
    return openStepSource(ctx.benchmark, input, ctx.suite, ctx.traces);
}

} // namespace yasim
