#include "techniques/permutations.hh"

#include "techniques/full_reference.hh"
#include "techniques/reduced_input.hh"
#include "techniques/simpoint.hh"
#include "techniques/smarts.hh"
#include "techniques/truncated.hh"

namespace yasim {

namespace {

void
addSimPoint(std::vector<TechniquePtr> &out)
{
    // Single 100M; multiple 10M (max_k 100, 1M warm-up); multiple 100M
    // (max_k 10, no warm-up) — Table 1's SimPoint rows.
    out.push_back(std::make_shared<SimPoint>(100.0, 1, 0.0,
                                             "single 100M"));
    out.push_back(std::make_shared<SimPoint>(10.0, 100, 1.0,
                                             "multiple 10M"));
    out.push_back(std::make_shared<SimPoint>(100.0, 10, 0.0,
                                             "multiple 100M"));
}

void
addSmarts(std::vector<TechniquePtr> &out)
{
    // U in {100, 1000, 10000} x W in {2U, 20U, 200U} = 9 permutations.
    for (uint64_t u : {100ULL, 1000ULL, 10000ULL})
        for (uint64_t w_mult : {2ULL, 20ULL, 200ULL})
            out.push_back(std::make_shared<Smarts>(u, u * w_mult));
}

void
addReduced(std::vector<TechniquePtr> &out, const std::string &benchmark)
{
    for (InputSet input :
         {InputSet::Small, InputSet::Medium, InputSet::Large,
          InputSet::Test, InputSet::Train}) {
        if (hasInput(benchmark, input))
            out.push_back(std::make_shared<ReducedInput>(input));
    }
}

void
addRunZ(std::vector<TechniquePtr> &out)
{
    for (double z : {500.0, 1000.0, 1500.0, 2000.0})
        out.push_back(std::make_shared<RunZ>(z));
}

void
addFfRunZ(std::vector<TechniquePtr> &out)
{
    for (double x : {1000.0, 2000.0, 4000.0})
        for (double z : {100.0, 500.0, 1000.0, 2000.0})
            out.push_back(std::make_shared<FfRunZ>(x, z));
}

void
addFfWuRunZ(std::vector<TechniquePtr> &out)
{
    // (X, Y) pairs with X + Y a multiple of 100M, as in Table 1.
    const std::pair<double, double> xy[] = {
        {999, 1},   {1999, 1},   {3999, 1},
        {990, 10},  {1990, 10},  {3990, 10},
        {900, 100}, {1900, 100}, {3900, 100},
    };
    for (const auto &[x, y] : xy)
        for (double z : {100.0, 500.0, 1000.0, 2000.0})
            out.push_back(std::make_shared<FfWuRunZ>(x, y, z));
}

} // namespace

std::vector<TechniquePtr>
table1Permutations(const std::string &benchmark)
{
    std::vector<TechniquePtr> out;
    addSimPoint(out);
    addSmarts(out);
    addReduced(out, benchmark);
    addRunZ(out);
    addFfRunZ(out);
    addFfWuRunZ(out);
    return out;
}

std::vector<TechniquePtr>
representativePermutations(const std::string &benchmark)
{
    std::vector<TechniquePtr> out;
    // The permutations Figures 3-6 single out.
    out.push_back(std::make_shared<SimPoint>(10.0, 100, 1.0,
                                             "multiple 10M"));
    out.push_back(std::make_shared<SimPoint>(100.0, 1, 0.0,
                                             "single 100M"));
    out.push_back(std::make_shared<Smarts>(1000, 2000));
    for (InputSet input : {InputSet::Small, InputSet::Train}) {
        if (hasInput(benchmark, input))
            out.push_back(std::make_shared<ReducedInput>(input));
    }
    out.push_back(std::make_shared<RunZ>(1000.0));
    out.push_back(std::make_shared<FfRunZ>(1000.0, 500.0));
    out.push_back(std::make_shared<FfWuRunZ>(990.0, 10.0, 500.0));
    return out;
}

std::vector<TechniquePtr>
svatPermutations(const std::string &benchmark, double ff_x, double wu_x,
                 double wu_y)
{
    std::vector<TechniquePtr> techniques;
    techniques.push_back(
        std::make_shared<SimPoint>(100.0, 1, 0.0, "single 100M"));
    techniques.push_back(
        std::make_shared<SimPoint>(100.0, 10, 0.0, "multiple 100M"));
    techniques.push_back(
        std::make_shared<SimPoint>(10.0, 100, 1.0, "multiple 10M"));
    for (InputSet input :
         {InputSet::Small, InputSet::Medium, InputSet::Large,
          InputSet::Test, InputSet::Train}) {
        if (hasInput(benchmark, input))
            techniques.push_back(std::make_shared<ReducedInput>(input));
    }
    for (double z : {500.0, 1000.0, 1500.0, 2000.0})
        techniques.push_back(std::make_shared<RunZ>(z));
    for (double z : {100.0, 500.0, 1000.0, 2000.0})
        techniques.push_back(std::make_shared<FfRunZ>(ff_x, z));
    for (double z : {100.0, 500.0, 1000.0, 2000.0})
        techniques.push_back(std::make_shared<FfWuRunZ>(wu_x, wu_y, z));
    for (uint64_t u : {100ULL, 1000ULL, 10000ULL})
        techniques.push_back(std::make_shared<Smarts>(u, 2 * u));
    return techniques;
}

const std::vector<std::string> &
techniqueFamilies()
{
    static const std::vector<std::string> families = {
        "SimPoint", "SMARTS", "reduced", "Run Z", "FF+Run", "FF+WU+Run",
    };
    return families;
}

size_t
familyPermutationCount(const std::string &benchmark,
                       const std::string &family)
{
    size_t count = 0;
    for (const TechniquePtr &technique : table1Permutations(benchmark))
        if (technique->name() == family)
            ++count;
    return count;
}

} // namespace yasim
