/**
 * @file
 * Reduced-input-set technique: simulate a smaller input (MinneSPEC
 * small/medium/large or SPEC test/train) to completion in detail and
 * present its results as a stand-in for the reference input's.
 *
 * The whole program — initialization, main body, cleanup — runs in
 * detail, which is the technique's selling point; the paper's finding
 * is that the results are nonetheless "a completely different benchmark
 * program" because working sets and execution profiles differ.
 */

#ifndef YASIM_TECHNIQUES_REDUCED_INPUT_HH
#define YASIM_TECHNIQUES_REDUCED_INPUT_HH

#include "techniques/technique.hh"

namespace yasim {

/** Detailed full run of a non-reference input set. */
class ReducedInput : public Technique
{
  public:
    /** @param input the reduced input set to simulate */
    explicit ReducedInput(InputSet input);

    std::string name() const override { return "reduced"; }
    std::string permutation() const override;

    TechniqueResult run(const TechniqueContext &ctx,
                        const SimConfig &config) const override;

    InputSet input() const { return inputSet; }

  private:
    InputSet inputSet;
};

} // namespace yasim

#endif // YASIM_TECHNIQUES_REDUCED_INPUT_HH
