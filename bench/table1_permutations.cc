/**
 * @file
 * Regenerates Table 1: the 69 permutations of the candidate simulation
 * techniques, materialized per benchmark (reduced-input rows respect
 * Table 2's N/A holes).
 */

#include <iostream>

#include "engine/bench_driver.hh"
#include "support/table.hh"
#include "techniques/permutations.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv)
        .defaultRefInsts(500'000)
        .run([](BenchDriver &driver) {
            const std::string bench = driver.benchmarks().front();

            auto permutations = table1Permutations(bench);

            Table table("Table 1: candidate-technique permutations "
                        "(for " +
                        bench + ")");
            table.setHeader({"technique", "permutation"});
            std::string last_family;
            for (const TechniquePtr &technique : permutations) {
                if (technique->name() != last_family &&
                    !last_family.empty())
                    table.addRule();
                last_family = technique->name();
                table.addRow(
                    {technique->name(), technique->permutation()});
            }
            driver.print(table);

            Table counts("Permutations per technique family");
            counts.setHeader({"technique", "count"});
            size_t total = 0;
            for (const std::string &family : techniqueFamilies()) {
                size_t n = familyPermutationCount(bench, family);
                total += n;
                counts.addRow({family, std::to_string(n)});
            }
            counts.addRule();
            counts.addRow({"total", std::to_string(total)});
            counts.print(std::cout);
        });
}
