/**
 * @file
 * Regenerates Figure 5: the configuration-dependence histograms. For
 * each technique the paper shows its worst and best permutation (by
 * the fraction of configurations within 0-3% CPI error); the exact
 * twelve permutations from the figure's x axis are reproduced here and
 * run across the envelope-of-the-hypercube configuration set, with CPI
 * errors pooled over all benchmarks.
 *
 * Expected shape (paper section 6.2): reduced inputs and truncated
 * execution pile into the >30% bin with sign-flipping errors; SMARTS
 * is almost entirely within +/-3%; SimPoint's best permutation nearly
 * so.
 */

#include <cmath>
#include <iostream>
#include <memory>

#include "core/config_dependence.hh"
#include "engine/bench_driver.hh"
#include "support/table.hh"
#include "techniques/reduced_input.hh"
#include "techniques/simpoint.hh"
#include "techniques/smarts.hh"
#include "techniques/truncated.hh"

using namespace yasim;

namespace {

/** The twelve x-axis permutations of Figure 5 (worst/best pairs). */
std::vector<std::pair<std::string, TechniquePtr>>
figurePermutations()
{
    return {
        {"SimPoint 1-100M",
         std::make_shared<SimPoint>(100.0, 1, 0.0, "single 100M")},
        {"SimPoint X-10M",
         std::make_shared<SimPoint>(10.0, 100, 1.0, "multiple 10M")},
        {"reduced test", std::make_shared<ReducedInput>(InputSet::Test)},
        {"reduced large",
         std::make_shared<ReducedInput>(InputSet::Large)},
        {"Run 1500M", std::make_shared<RunZ>(1500.0)},
        {"Run 500M", std::make_shared<RunZ>(500.0)},
        {"FF 1000M + Run 100M",
         std::make_shared<FfRunZ>(1000.0, 100.0)},
        {"FF 4000M + Run 100M",
         std::make_shared<FfRunZ>(4000.0, 100.0)},
        {"FF 999M + WU 1M + Run 1000M",
         std::make_shared<FfWuRunZ>(999.0, 1.0, 1000.0)},
        {"FF 3999M + WU 1M + Run 1000M",
         std::make_shared<FfWuRunZ>(3999.0, 1.0, 1000.0)},
        {"SMARTS U=100 W=200", std::make_shared<Smarts>(100, 200)},
        {"SMARTS U=10000 W=20000",
         std::make_shared<Smarts>(10000, 20000)},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv).run([](BenchDriver &driver) {
        std::vector<SimConfig> configs = driver.configs();
        auto permutations = figurePermutations();

        // Pool the per-config CPI errors over every benchmark.
        std::vector<ConfigDependence> pooled;
        for (const auto &[label, technique] : permutations) {
            ConfigDependence d;
            d.technique = technique->name();
            d.permutation = label;
            pooled.push_back(std::move(d));
        }

        ExperimentEngine &engine = driver.engine();
        for (const std::string &bench : driver.benchmarks()) {
            TechniqueContext ctx = driver.context(bench);

            // Applicable permutations for this benchmark, pre-run on
            // the work-stealing pool (plus the reference baseline).
            std::vector<TechniquePtr> applicable;
            for (const auto &[label, technique] : permutations) {
                if (technique->name() == "reduced") {
                    auto *reduced = dynamic_cast<const ReducedInput *>(
                        technique.get());
                    if (!hasInput(bench, reduced->input()))
                        continue;
                }
                applicable.push_back(technique);
            }
            engine.prefetch(ctx, applicable, configs);

            std::vector<double> ref_cpis =
                referenceCpis(engine, ctx, configs);
            for (size_t i = 0; i < permutations.size(); ++i) {
                const auto &[label, technique] = permutations[i];
                if (technique->name() == "reduced") {
                    auto *reduced = dynamic_cast<const ReducedInput *>(
                        technique.get());
                    if (!hasInput(bench, reduced->input()))
                        continue;
                }
                ConfigDependence d = configDependence(
                    engine, *technique, ctx, configs, ref_cpis);
                for (double e : d.signedErrors) {
                    pooled[i].signedErrors.push_back(e);
                    pooled[i].errorHistogram.add(std::fabs(e));
                }
            }
            std::cerr << "fig5: " << bench << " done\n";
        }

        Table table("Figure 5: configuration dependence - % of "
                    "configurations per |CPI error| bin, pooled over " +
                    std::to_string(driver.benchmarks().size()) +
                    " benchmarks and " + std::to_string(configs.size()) +
                    " configurations");
        std::vector<std::string> header = {"permutation"};
        const Histogram &shape = pooled[0].errorHistogram;
        for (size_t b = 0; b <= shape.numBins(); ++b)
            header.push_back(shape.label(b));
        header.emplace_back("consistency");
        table.setHeader(header);

        for (const ConfigDependence &d : pooled) {
            std::vector<std::string> row = {d.permutation};
            for (size_t b = 0; b <= d.errorHistogram.numBins(); ++b)
                row.push_back(
                    Table::pct(d.errorHistogram.fraction(b) * 100.0, 1));
            row.push_back(Table::num(d.errorConsistency(), 2));
            table.addRow(row);
        }

        driver.print(table);
    });
}
