/**
 * @file
 * Ablation: does the fold-over matter for the PB bottleneck ranks?
 *
 * The paper's methodology ancestor [Yi03] folds the PB design over
 * (doubling the runs) to unalias main effects from two-factor
 * interactions. This bench runs the reference input through both the
 * 44-run plain design and the 88-run folded design and reports the
 * normalized distance between the two rank vectors — small distances
 * mean the cheap design already ranks the bottlenecks faithfully.
 */

#include <iostream>

#include "core/pb_characterization.hh"
#include "engine/bench_driver.hh"
#include "stats/distance.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv)
        .defaultRefInsts(300'000)
        .run([](BenchDriver &driver) {
            PbDesign plain = PbDesign::forFactors(numPbFactors(), false);
            PbDesign folded = PbDesign::forFactors(numPbFactors(), true);

            Table table("Ablation: plain (44-run) vs folded-over "
                        "(88-run) PB design, reference input");
            table.setHeader({"benchmark", "rank distance",
                             "top-5 agree"});

            ExperimentEngine &engine = driver.engine();
            for (const std::string &bench : driver.benchmarks()) {
                TechniqueContext ctx = driver.context(bench);
                FullReference reference;
                PbOutcome a = runPbDesign(engine, reference, ctx, plain);
                PbOutcome b = runPbDesign(engine, reference, ctx, folded);

                // How many of the folded design's five biggest
                // bottlenecks also rank top-5 in the plain design?
                int agree = 0;
                for (size_t j = 0; j < a.ranks.size(); ++j)
                    if (b.ranks[j] <= 5 && a.ranks[j] <= 5)
                        ++agree;
                table.addRow(
                    {bench,
                     Table::num(normalizedRankDistance(a.ranks, b.ranks),
                                2),
                     std::to_string(agree) + "/5"});
                std::cerr << "foldover: " << bench << " done\n";
            }

            driver.print(table);
        });
}
