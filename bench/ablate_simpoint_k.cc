/**
 * @file
 * Ablation: SimPoint accuracy versus max_k and the projected BBV
 * dimensionality.
 *
 * The paper attributes SimPoint's one weakness (underestimating gcc's
 * memory-latency bottleneck) to too-coarse clustering and notes that
 * raising max_k "can minimize or eliminate this problem"; this bench
 * quantifies that: CPI error against the reference on configuration #2
 * as max_k grows, and as the random projection keeps more dimensions.
 */

#include <cmath>
#include <iostream>

#include "engine/bench_driver.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"
#include "techniques/simpoint.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv).run([](BenchDriver &driver) {
        SimConfig config = architecturalConfig(2);

        Table k_table("Ablation: SimPoint CPI error vs max_k "
                      "(10M intervals, 15-dim projection, config #2)");
        std::vector<std::string> header = {"benchmark"};
        const int ks[] = {1, 5, 10, 30, 100};
        for (int k : ks)
            header.push_back("max_k=" + std::to_string(k));
        k_table.setHeader(header);

        Table d_table("Ablation: SimPoint CPI error vs projection "
                      "dimensionality (10M intervals, max_k=30)");
        std::vector<std::string> d_header = {"benchmark"};
        const size_t dims[] = {2, 5, 15, 50};
        for (size_t d : dims)
            d_header.push_back("dim=" + std::to_string(d));
        d_table.setHeader(d_header);

        ExperimentEngine &engine = driver.engine();
        for (const std::string &bench : driver.benchmarks()) {
            TechniqueContext ctx = driver.context(bench);
            FullReference reference;
            double ref_cpi = engine.run(reference, ctx, config).cpi;

            std::vector<std::string> k_row = {bench};
            for (int k : ks) {
                SimPoint sp(10.0, k, 1.0, "max_k=" + std::to_string(k));
                double cpi = engine.run(sp, ctx, config).cpi;
                k_row.push_back(Table::pct(
                    std::fabs(cpi - ref_cpi) / ref_cpi * 100.0, 2));
            }
            k_table.addRow(k_row);

            std::vector<std::string> d_row = {bench};
            for (size_t d : dims) {
                SimPoint sp(10.0, 30, 1.0, "dim=" + std::to_string(d),
                            d);
                double cpi = engine.run(sp, ctx, config).cpi;
                d_row.push_back(Table::pct(
                    std::fabs(cpi - ref_cpi) / ref_cpi * 100.0, 2));
            }
            d_table.addRow(d_row);
            std::cerr << "simpoint-k: " << bench << " done\n";
        }

        driver.print(k_table);
        if (!driver.options().csv)
            std::cout << "\n";
        driver.print(d_table);
    });
}
