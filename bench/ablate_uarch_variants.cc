/**
 * @file
 * Ablation: microarchitectural design variants of the substrate — the
 * three direction-predictor organizations (bimodal, gshare, combined)
 * and the three cache replacement policies (LRU, FIFO, random) — on
 * every benchmark's reference input.
 *
 * Sanity expectations: the combined predictor is at least as accurate
 * as its better component (that's what the chooser buys); perlbmk's
 * dispatch loop punishes bimodal hardest; LRU >= FIFO >= random hit
 * rates on reuse-heavy workloads.
 */

#include <iostream>

#include "engine/bench_driver.hh"
#include "sim/ooo_core.hh"
#include "support/table.hh"
#include "techniques/trace_store.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv)
        .defaultRefInsts(300'000)
        .run([](BenchDriver &driver) {
            Table bp_table("Ablation: direction-predictor organization "
                           "(conditional-branch accuracy, config #2 "
                           "sizing)");
            bp_table.setHeader(
                {"benchmark", "bimodal", "gshare", "combined"});

            Table rp_table("Ablation: L1-D replacement policy "
                           "(hit rate, config #2 geometry)");
            rp_table.setHeader({"benchmark", "LRU", "FIFO", "random"});

            for (const std::string &bench : driver.benchmarks()) {
                // Through the StepSource seam: the six variant runs
                // below replay one shared recording instead of
                // re-interpreting the benchmark per variant.
                TechniqueContext ctx = driver.context(bench);

                std::vector<std::string> bp_row = {bench};
                for (PredictorKind kind :
                     {PredictorKind::Bimodal, PredictorKind::Gshare,
                      PredictorKind::Combined}) {
                    SimConfig cfg = architecturalConfig(2);
                    cfg.bp.kind = kind;
                    StepSourceHandle src =
                        openStepSource(ctx, InputSet::Reference);
                    OooCore core(cfg);
                    core.run(*src.source, ~0ULL);
                    bp_row.push_back(Table::pct(
                        core.snapshot().branchAccuracy() * 100.0, 2));
                }
                bp_table.addRow(bp_row);

                std::vector<std::string> rp_row = {bench};
                for (ReplacementPolicy policy :
                     {ReplacementPolicy::Lru, ReplacementPolicy::Fifo,
                      ReplacementPolicy::Random}) {
                    SimConfig cfg = architecturalConfig(2);
                    cfg.mem.l1d.replacement = policy;
                    StepSourceHandle src =
                        openStepSource(ctx, InputSet::Reference);
                    OooCore core(cfg);
                    core.run(*src.source, ~0ULL);
                    rp_row.push_back(Table::pct(
                        core.snapshot().l1dHitRate() * 100.0, 2));
                }
                rp_table.addRow(rp_row);
                std::cerr << "uarch-variants: " << bench << " done\n";
            }

            driver.print(bp_table);
            if (!driver.options().csv)
                std::cout << "\n";
            driver.print(rp_table);
        });
}
