/**
 * @file
 * Ablation: how much detailed warm-up does truncated execution need?
 *
 * FF X + Run Z leaves the machine cold; FF X + WU Y + Run Z pays Y M
 * detailed instructions to warm it. This bench sweeps Y at a fixed
 * measurement window on the memory-sensitive benchmarks, reporting the
 * CPI delta against a fully-warm measurement of the same window (the
 * cold-start bias the warm-up is buying down). It explains why the
 * paper finds FF+WU+Run only marginally better than FF+Run: warm-up
 * fixes state, not unrepresentativeness.
 */

#include <cmath>
#include <iostream>

#include "engine/bench_driver.hh"
#include "sim/ooo_core.hh"
#include "support/table.hh"
#include "techniques/trace_store.hh"

using namespace yasim;

namespace {

/** CPI of window [start, start+len) with Y-instruction detailed warm-up
 *  after an architectural fast-forward. */
double
windowCpi(const TechniqueContext &ctx, const SimConfig &config,
          uint64_t start, uint64_t warm, uint64_t len,
          bool functional_warming)
{
    StepSourceHandle src = openStepSource(ctx, InputSet::Reference);
    StepSource &stream = *src.source;
    OooCore core(config);
    uint64_t ff = start >= warm ? start - warm : 0;
    if (functional_warming)
        stream.fastForwardWarm(ff, &core.memHierarchy(),
                               &core.predictor());
    else
        stream.fastForward(ff);
    if (warm > 0)
        core.run(stream, start - stream.instsExecuted());
    SimStats before = core.snapshot();
    core.run(stream, len);
    SimStats delta = core.snapshot() - before;
    return delta.cpi();
}

} // namespace

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv).run([](BenchDriver &driver) {
        SimConfig config = architecturalConfig(2);

        Table table("Ablation: cold-start CPI bias of FF + [WU Y +] Run "
                    "(window = 500 scaled-M at 40% of the run; baseline "
                    "= functionally-warmed measurement of the same "
                    "window)");
        table.setHeader({"benchmark", "warm-up Y", "CPI",
                         "bias vs warm"});

        for (const std::string &bench : driver.benchmarks()) {
            TechniqueContext ctx = driver.context(bench);
            uint64_t start = ctx.scaledM(4000);
            uint64_t len = ctx.scaledM(500);

            double warm_cpi =
                windowCpi(ctx, config, start, 0, len, true);
            table.addRow({bench, "full warming",
                          Table::num(warm_cpi, 3), "-"});
            for (double y : {0.0, 1.0, 10.0, 100.0}) {
                uint64_t warm = y > 0 ? ctx.scaledM(y) : 0;
                double cpi =
                    windowCpi(ctx, config, start, warm, len, false);
                table.addRow(
                    {bench,
                     y == 0 ? "none (FF+Run)" : Table::num(y, 0) + "M",
                     Table::num(cpi, 3),
                     Table::pct((cpi - warm_cpi) / warm_cpi * 100.0,
                                2)});
            }
            table.addRule();
            std::cerr << "warmup: " << bench << " done\n";
        }

        driver.print(table);
    });
}
