/**
 * @file
 * Regenerates the section-5.2 results the paper describes in prose:
 * the execution-profile characterization (chi-squared comparison of
 * BBEF and BBV distributions against the reference) and the
 * architecture-level characterization (normalized metric-vector
 * distance over the four Table-3 configurations).
 *
 * Expected shape: almost every permutation passes the chi-squared
 * similarity test (the reference's enormous block counts make the
 * critical value generous), yet the chi-squared *values* for reduced
 * inputs and truncated execution dwarf those of SimPoint and SMARTS;
 * the architecture-level distances tell the same story.
 */

#include <iostream>

#include "core/arch_characterization.hh"
#include "core/profile_characterization.hh"
#include "engine/bench_driver.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"
#include "techniques/permutations.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv).run([](BenchDriver &driver) {
        std::vector<SimConfig> configs = architecturalConfigs();
        SimConfig profile_config = configs[1]; // config #2

        Table table("Execution-profile (chi2 on BBV/BBEF at config #2) "
                    "and architecture-level (normalized metric distance "
                    "over configs #1-#4) characterizations");
        table.setHeader({"benchmark", "technique", "permutation",
                         "chi2 BBV", "chi2 BBEF", "similar?",
                         "arch distance"});

        ExperimentEngine &engine = driver.engine();
        for (const std::string &bench : driver.benchmarks()) {
            TechniqueContext ctx = driver.context(bench);

            auto permutations =
                driver.options().full
                    ? table1Permutations(bench)
                    : representativePermutations(bench);
            engine.prefetch(ctx, permutations, configs);

            FullReference reference;
            TechniqueResult ref_profile =
                engine.run(reference, ctx, profile_config);
            std::vector<TechniqueResult> ref_arch;
            for (const SimConfig &config : configs)
                ref_arch.push_back(engine.run(reference, ctx, config));

            for (const TechniquePtr &technique : permutations) {
                TechniqueResult profile =
                    engine.run(*technique, ctx, profile_config);
                ProfileComparison cmp =
                    compareProfiles(profile, ref_profile);

                std::vector<TechniqueResult> arch;
                for (const SimConfig &config : configs)
                    arch.push_back(engine.run(*technique, ctx, config));
                double arch_dist =
                    archDistanceOverConfigs(arch, ref_arch);

                table.addRow({bench, technique->name(),
                              technique->permutation(),
                              Table::num(cmp.bbv.statistic, 1),
                              Table::num(cmp.bbef.statistic, 1),
                              cmp.bbv.similar ? "yes" : "no",
                              Table::num(arch_dist, 4)});
            }
            table.addRule();
            std::cerr << "profile/arch: " << bench << " done\n";
        }

        driver.print(table);
    });
}
