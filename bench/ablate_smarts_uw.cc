/**
 * @file
 * Ablation: SMARTS accuracy and cost across the U x W grid.
 *
 * Section 6.1 observes that all nine SMARTS permutations land at very
 * similar accuracy; this bench reproduces that observation and shows
 * the cost side: larger units and warm-ups buy little accuracy while
 * inflating the detailed-simulation fraction.
 */

#include <cmath>
#include <iostream>

#include "engine/bench_driver.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"
#include "techniques/smarts.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv).run([](BenchDriver &driver) {
        SimConfig config = architecturalConfig(2);

        Table table("Ablation: SMARTS CPI error and cost across U x W "
                    "(config #2; cost = work as % of reference)");
        table.setHeader({"benchmark", "U", "W", "CPI error", "cost %"});

        ExperimentEngine &engine = driver.engine();
        for (const std::string &bench : driver.benchmarks()) {
            TechniqueContext ctx = driver.context(bench);
            FullReference reference;
            TechniqueResult ref = engine.run(reference, ctx, config);

            for (uint64_t u : {100ULL, 1000ULL, 10000ULL}) {
                for (uint64_t w_mult : {2ULL, 20ULL}) {
                    Smarts smarts(u, u * w_mult);
                    TechniqueResult r = engine.run(smarts, ctx, config);
                    table.addRow(
                        {bench, std::to_string(u),
                         std::to_string(u * w_mult),
                         Table::pct(std::fabs(r.cpi - ref.cpi) /
                                        ref.cpi * 100.0,
                                    2),
                         Table::num(100.0 * r.workUnits / ref.workUnits,
                                    1)});
                }
            }
            table.addRule();
            std::cerr << "smarts-uw: " << bench << " done\n";
        }

        driver.print(table);
    });
}
