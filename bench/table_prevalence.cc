/**
 * @file
 * Reprints the paper's section-2 survey of simulation-technique
 * prevalence over ten years of HPCA/ISCA/MICRO, plus the adoption-trend
 * statistic from Recommendation 2. The survey is an input to the study
 * (it fixed the candidate techniques), so it ships as data.
 */

#include <iostream>

#include "core/survey.hh"
#include "engine/bench_driver.hh"
#include "support/table.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv)
        .defaultRefInsts(500'000)
        .run([](BenchDriver &driver) {
            Table table("Prevalence of simulation techniques (10 years "
                        "of HPCA/ISCA/MICRO, from the paper's survey)");
            table.setHeader(
                {"technique", "% of known", "studied", "note"});
            for (const SurveyEntry &entry : prevalenceSurvey()) {
                table.addRow({entry.technique,
                              entry.percentOfKnown > 0.0
                                  ? Table::pct(entry.percentOfKnown, 1)
                                  : "-",
                              entry.studied ? "yes" : "no", entry.note});
            }
            driver.print(table);

            AdoptionTrend trend = adoptionTrend();
            std::cout << "\nreduced-input/truncated usage: "
                      << Table::pct(trend.beforeSimPointPct, 1)
                      << " of papers before SimPoint's introduction, "
                      << Table::pct(trend.afterSimPointPct, 1)
                      << " after\n";
        });
}
