/**
 * @file
 * Extension bench: where do the two enhancements rank among the 43
 * performance bottlenecks? (the [Yi03] PB application the paper's
 * methodology descends from). An enhancement whose |effect| ranks in
 * the 30s is fighting for scraps; one in the top 10 is attacking a
 * first-order bottleneck. NLP should rank high exactly where next-line
 * locality exists (art/equake streams), TC where long-latency trivial
 * arithmetic is dense (gcc's constant folding).
 */

#include <iostream>

#include "core/enhancement_pb.hh"
#include "core/options.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchOptions(argc, argv, 300'000);
    setInformEnabled(false);

    Table table("Enhancement effect ranked among the 43 PB bottleneck "
                "factors (rank 1 = largest |CPI effect| of 44)");
    table.setHeader({"benchmark", "NLP rank", "NLP effect", "TC rank",
                     "TC effect"});

    FullReference reference;
    for (const std::string &bench : options.benchmarks) {
        TechniqueContext ctx = makeContext(bench, options.suite);
        EnhancementPbOutcome nlp = rankEnhancementEffect(
            reference, ctx, Enhancement::NextLinePrefetch);
        EnhancementPbOutcome tc = rankEnhancementEffect(
            reference, ctx, Enhancement::TrivialComputation);
        table.addRow({bench, std::to_string(nlp.enhancementRank),
                      Table::num(nlp.enhancementEffect, 4),
                      std::to_string(tc.enhancementRank),
                      Table::num(tc.enhancementEffect, 4)});
        std::cerr << "enhancement-pb: " << bench << " done\n";
    }

    if (options.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
