/**
 * @file
 * Extension bench: where do the two enhancements rank among the 43
 * performance bottlenecks? (the [Yi03] PB application the paper's
 * methodology descends from). An enhancement whose |effect| ranks in
 * the 30s is fighting for scraps; one in the top 10 is attacking a
 * first-order bottleneck. NLP should rank high exactly where next-line
 * locality exists (art/equake streams), TC where long-latency trivial
 * arithmetic is dense (gcc's constant folding).
 */

#include <iostream>

#include "core/enhancement_pb.hh"
#include "engine/bench_driver.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv)
        .defaultRefInsts(300'000)
        .run([](BenchDriver &driver) {
            Table table("Enhancement effect ranked among the 43 PB "
                        "bottleneck factors (rank 1 = largest |CPI "
                        "effect| of 44)");
            table.setHeader({"benchmark", "NLP rank", "NLP effect",
                             "TC rank", "TC effect"});

            ExperimentEngine &engine = driver.engine();
            FullReference reference;
            for (const std::string &bench : driver.benchmarks()) {
                TechniqueContext ctx = driver.context(bench);
                EnhancementPbOutcome nlp = rankEnhancementEffect(
                    engine, reference, ctx,
                    Enhancement::NextLinePrefetch);
                EnhancementPbOutcome tc = rankEnhancementEffect(
                    engine, reference, ctx,
                    Enhancement::TrivialComputation);
                table.addRow({bench, std::to_string(nlp.enhancementRank),
                              Table::num(nlp.enhancementEffect, 4),
                              std::to_string(tc.enhancementRank),
                              Table::num(tc.enhancementEffect, 4)});
                std::cerr << "enhancement-pb: " << bench << " done\n";
            }

            driver.print(table);
        });
}
