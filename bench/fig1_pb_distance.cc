/**
 * @file
 * Regenerates Figure 1: the normalized Euclidean distance between each
 * technique's performance-bottleneck rank vector and the reference
 * input set's, per benchmark, with the per-family mean, minimum, and
 * maximum across permutations.
 *
 * The bottleneck ranks come from a 43-factor Plackett-Burman design
 * (one simulation per design row). By default each technique family is
 * represented by the permutations the paper's later figures highlight;
 * --full sweeps every Table-1 permutation (the paper's 40-CPU-year
 * experiment, scaled).
 *
 * Expected shape (paper section 5.1): reduced-input and truncated-
 * execution distances are large and erratic; SimPoint and SMARTS
 * distances are small, with SMARTS slightly ahead on most benchmarks.
 */

#include <iostream>
#include <map>

#include "core/pb_characterization.hh"
#include "engine/bench_driver.hh"
#include "stats/summary.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"
#include "techniques/permutations.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv).run([](BenchDriver &driver) {
        PbDesign design =
            PbDesign::forFactors(numPbFactors(), /*foldover=*/false);

        Table table("Figure 1: normalized PB rank-vector distance from "
                    "the reference input set (mean [min..max] across "
                    "permutations; 0 = identical bottlenecks, 100 = "
                    "completely out of phase)");
        std::vector<std::string> header = {"benchmark"};
        for (const std::string &family : techniqueFamilies())
            header.push_back(family);
        table.setHeader(header);

        ExperimentEngine &engine = driver.engine();
        const std::vector<SimConfig> configs = pbDesignConfigs(design);
        for (const std::string &bench : driver.benchmarks()) {
            TechniqueContext ctx = driver.context(bench);
            auto permutations = driver.options().full
                                    ? table1Permutations(bench)
                                    : representativePermutations(bench);
            // Warm the whole technique x design-row grid on the
            // engine's pool; the serial assembly below hits the memo
            // table, so row order never depends on scheduling.
            engine.prefetch(ctx, permutations, configs,
                            /*include_reference=*/true);

            FullReference reference;
            PbOutcome ref = runPbDesign(engine, reference, ctx, design);

            std::map<std::string, std::vector<double>>
                family_distances;
            for (const TechniquePtr &technique : permutations) {
                PbOutcome outcome =
                    runPbDesign(engine, *technique, ctx, design);
                family_distances[technique->name()].push_back(
                    pbDistance(outcome, ref));
            }

            std::vector<std::string> row = {bench};
            for (const std::string &family : techniqueFamilies()) {
                auto it = family_distances.find(family);
                if (it == family_distances.end()) {
                    row.emplace_back("-");
                    continue;
                }
                const std::vector<double> &d = it->second;
                row.push_back(Table::num(mean(d), 1) + " [" +
                              Table::num(minOf(d), 1) + ".." +
                              Table::num(maxOf(d), 1) + "]");
            }
            std::cerr << "fig1: " + bench + " done\n";
            table.addRow(row);
        }

        driver.print(table);
    });
}
