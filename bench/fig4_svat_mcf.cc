/**
 * @file
 * Regenerates Figure 4: the speed-versus-accuracy trade-off graph for
 * mcf. Expected shape (paper section 6.1): as Figure 3, with the
 * reduced inputs especially wrong because mcf's reference input is the
 * only one whose working set escapes the caches.
 */

#include "svat_common.hh"

int
main(int argc, char **argv)
{
    // FF X = 4000M; FF+WU pair 3990M + 10M (the paper's mcf legend).
    return yasim::runSvatBench(argc, argv, "mcf", "Figure 4", 4000.0,
                               3990.0, 10.0);
}
