/**
 * @file
 * Regenerates Figure 4: the speed-versus-accuracy trade-off graph for
 * mcf. Expected shape (paper section 6.1): as Figure 3, with the
 * reduced inputs especially wrong because mcf's reference input is the
 * only one whose working set escapes the caches.
 */

#include "engine/bench_driver.hh"
#include "techniques/permutations.hh"

int
main(int argc, char **argv)
{
    using namespace yasim;
    // FF X = 4000M; FF+WU pair 3990M + 10M (the paper's mcf legend).
    return BenchDriver(argc, argv)
        .defaultRefInsts(400'000)
        .benchmark("mcf")
        .figure("Figure 4")
        .techniques(svatPermutations("mcf", 4000.0, 3990.0, 10.0))
        .run();
}
