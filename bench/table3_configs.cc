/**
 * @file
 * Regenerates Table 3: the four processor configurations of the
 * architecture-level characterization, plus (with --full) the 43
 * Plackett-Burman factors with their low and high levels.
 */

#include <iostream>

#include "engine/bench_driver.hh"
#include "sim/config.hh"
#include "support/table.hh"

using namespace yasim;

namespace {

std::string
cacheDesc(const CacheConfig &c, uint32_t latency)
{
    return std::to_string(c.sizeKb) + "KB, " + std::to_string(c.assoc) +
           "-way, " + std::to_string(latency) + "cy";
}

} // namespace

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv)
        .defaultRefInsts(500'000)
        .run([](BenchDriver &driver) {
            auto configs = architecturalConfigs();
            Table table("Table 3: processor configurations for the "
                        "architecture-level characterization");
            table.setHeader({"parameter", "config #1", "config #2",
                             "config #3", "config #4"});
            auto row = [&](const std::string &name, auto getter) {
                std::vector<std::string> cells = {name};
                for (const SimConfig &c : configs)
                    cells.push_back(getter(c));
                table.addRow(cells);
            };
            row("decode/issue/commit width", [](const SimConfig &c) {
                return std::to_string(c.core.issueWidth) + "-way";
            });
            row("branch predictor", [](const SimConfig &c) {
                return "combined, " +
                       std::to_string(c.bp.bhtEntries / 1024) + "K BHT";
            });
            row("ROB/LSQ entries", [](const SimConfig &c) {
                return std::to_string(c.core.robEntries) + "/" +
                       std::to_string(c.core.lsqEntries);
            });
            row("int/FP ALUs (mult/div)", [](const SimConfig &c) {
                return std::to_string(c.core.intAlus) + "/" +
                       std::to_string(c.core.fpAlus) + " (" +
                       std::to_string(c.core.intMultDivUnits) + "/" +
                       std::to_string(c.core.fpMultDivUnits) + ")";
            });
            row("L1 D-cache", [](const SimConfig &c) {
                return cacheDesc(c.mem.l1d, c.mem.l1dLatency);
            });
            row("L2 cache", [](const SimConfig &c) {
                return cacheDesc(c.mem.l2, c.mem.l2Latency);
            });
            row("memory latency (first, next)", [](const SimConfig &c) {
                return std::to_string(c.mem.memLatencyFirst) + ", " +
                       std::to_string(c.mem.memLatencyNext);
            });
            driver.print(table);

            if (driver.options().full) {
                Table factors("The 43 Plackett-Burman factors (low/high "
                              "levels are applied by applyPbRow)");
                factors.setHeader({"#", "factor"});
                int i = 1;
                for (const PbFactor &factor : pbFactors())
                    factors.addRow({std::to_string(i++), factor.name});
                factors.print(std::cout);
            }
        });
}
