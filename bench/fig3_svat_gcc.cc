/**
 * @file
 * Regenerates Figure 3: the speed-versus-accuracy trade-off graph for
 * gcc. Expected shape (paper section 6.1): the sampling techniques sit
 * far down-left (fast and accurate); reduced inputs and truncated
 * execution combine poor accuracy with long simulation times, the
 * train input being the worst; and because of gcc's complex phase
 * behaviour, longer truncated windows do not reliably buy accuracy.
 */

#include "engine/bench_driver.hh"
#include "techniques/permutations.hh"

int
main(int argc, char **argv)
{
    using namespace yasim;
    // FF X = 1000M; FF+WU pair 999M + 1M (the paper's gcc legend).
    return BenchDriver(argc, argv)
        .defaultRefInsts(400'000)
        .benchmark("gcc")
        .figure("Figure 3")
        .techniques(svatPermutations("gcc", 1000.0, 999.0, 1.0))
        .run();
}
