/**
 * @file
 * bench_service — the yasimd load generator and correctness harness.
 *
 * Hammers one daemon with N concurrent clients, each pipelining the
 * same M-cell experiment grid, then proves the service honored its
 * contract under whatever faults were injected:
 *
 *   - zero lost responses: every client got a terminal answer for
 *     every request it submitted;
 *   - zero duplicated responses: ids are matched one-to-one;
 *   - bit-identical results: every response's key and serialized
 *     result equal a direct in-process executeRequest() of the same
 *     request on a local verification engine — the daemon's shared
 *     caches and the transport (including failpoint-corrupted frames
 *     and the reconnect+resubmit recovery) change nothing.
 *
 * --deadline-ms N turns on the deadline storm: requests carry a
 * deterministic mix of hopeless, plausible, generous, and absent
 * deadlines, so one run exercises queued expiry, mid-run deadline
 * unwinding, overload shedding, and untouched completions at once.
 * The contract tightens rather than loosens: every request still gets
 * exactly one response; Ok responses must still be bit-identical to
 * the in-process run; Cancelled/DeadlineExceeded/shed responses must
 * carry no result payload.
 *
 * By default it spawns an in-process daemon on a private Unix socket;
 * --socket/--port aims it at an external yasimd instead (the CI
 * service job starts one under YASIM_FAILPOINTS and drains it with
 * SIGTERM afterwards). Emits a JsonReport of kind "service-load" with
 * throughput, rejection/reconnect counts, and the daemon's shared-
 * cache hit rate. Exit status 0 only when every assertion held.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "engine/options.hh"
#include "engine/result_io.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"

using namespace yasim;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "\n"
        "load options:\n"
        "  --clients N     concurrent client connections (default 8)\n"
        "  --requests N    grid cells per client (default 200)\n"
        "  --window N      outstanding requests per client (default 16)\n"
        "  --json PATH     write the service-load JsonReport to PATH\n"
        "  --ref-insts N   suite reference length (default 2000000)\n"
        "  --seed N        suite data seed (default 12345)\n"
        "  --deadline-ms N deadline storm: mixed per-request deadlines "
        "around N ms (default 0 = off)\n"
        "\n"
        "daemon options (default: spawn an in-process daemon):\n"
        "  --socket PATH   use the external yasimd at PATH\n"
        "  --port N        use the external yasimd on loopback port N\n"
        "\n"
        "engine options (in-process daemon only):\n%s",
        argv0, engineCliUsage());
    std::exit(2);
}

const char *
nextValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_service: option '%s' needs a value\n",
                     argv[i]);
        std::exit(2);
    }
    return argv[++i];
}

uint64_t
parseCount(const char *flag, const char *text)
{
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr,
                     "bench_service: %s wants a number, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return value;
}

/** The grid: deterministic, and identical for every client. */
std::vector<ExperimentRequest>
buildGrid(size_t cells, const SuiteConfig &suite, uint64_t deadline_ms)
{
    static const char *const kBenchmarks[] = {"gzip", "mcf"};
    std::vector<ExperimentRequest> grid;
    grid.reserve(cells);
    for (size_t r = 0; r < cells; ++r) {
        ExperimentRequest request;
        request.kind = RequestKind::Run;
        request.benchmark = kBenchmarks[r % 2];
        request.technique = "reference";
        request.config = (r % 3 == 0)
                             ? csprintf("arch:%zu", r % 4 + 1)
                             : csprintf("pb:%zu", r % 40);
        request.priority = uint32_t(r % 3);
        request.suite = suite;
        if (deadline_ms > 0) {
            // The storm mix (file comment): hopeless, plausible,
            // generous, none — by request index, so every client
            // stresses the same deterministic spectrum.
            switch (r % 4) {
              case 0:
                request.deadlineMs = 1;
                break;
              case 1:
                request.deadlineMs = deadline_ms;
                break;
              case 2:
                request.deadlineMs = deadline_ms * 8;
                break;
              default:
                break; // no deadline
            }
        }
        grid.push_back(std::move(request));
    }
    return grid;
}

/** A response's comparable identity: status, key, exact result bytes. */
std::string
responseFingerprint(const ExperimentResponse &response)
{
    std::ostringstream os;
    os << "status " << uint32_t(response.status) << "\n"
       << "error " << response.error << "\n";
    if (!response.key.empty())
        writeResult(os, response.key, response.result);
    return os.str();
}

struct ClientOutcome
{
    bool ok = false;
    std::string error;
    BatchStats stats;
    std::vector<ExperimentResponse> responses;
};

} // namespace

int
main(int argc, char **argv)
{
    size_t clients = 8;
    size_t requests = 200;
    uint32_t window = 16;
    uint64_t deadline_ms = 0;
    std::string json_path;
    SuiteConfig suite;
    ClientOptions endpoint;
    EngineCliOptions engine_opts;

    for (int i = 1; i < argc; ++i) {
        if (parseEngineCliOption(engine_opts, argc, argv, i))
            continue;
        const std::string arg = argv[i];
        if (arg == "--clients") {
            clients = size_t(
                parseCount("--clients", nextValue(argc, argv, i)));
        } else if (arg == "--requests") {
            requests = size_t(
                parseCount("--requests", nextValue(argc, argv, i)));
        } else if (arg == "--window") {
            window = uint32_t(
                parseCount("--window", nextValue(argc, argv, i)));
        } else if (arg == "--json") {
            json_path = nextValue(argc, argv, i);
        } else if (arg == "--ref-insts") {
            suite.referenceInstructions =
                parseCount("--ref-insts", nextValue(argc, argv, i));
        } else if (arg == "--seed") {
            suite.seed = parseCount("--seed", nextValue(argc, argv, i));
        } else if (arg == "--deadline-ms") {
            deadline_ms =
                parseCount("--deadline-ms", nextValue(argc, argv, i));
        } else if (arg == "--socket") {
            endpoint.socketPath = nextValue(argc, argv, i);
        } else if (arg == "--port") {
            endpoint.tcpPort =
                int(parseCount("--port", nextValue(argc, argv, i)));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "bench_service: unknown option '%s'\n",
                         argv[i]);
            usage(argv[0]);
        }
    }
    if (clients == 0 || requests == 0) {
        std::fprintf(stderr,
                     "bench_service: --clients and --requests must be "
                     "> 0\n");
        return 2;
    }
    endpoint.window = window;

    // An in-process daemon unless an external endpoint was named. The
    // fault schedule (flags or YASIM_FAILPOINTS) applies to it too.
    applyEngineRuntime(engine_opts);
    if (engine_opts.failpoints.empty())
        failpoint::configureFromEnv();
    std::unique_ptr<ExperimentEngine> local_engine;
    std::unique_ptr<ServiceDaemon> local_daemon;
    const bool external =
        !endpoint.socketPath.empty() || endpoint.tcpPort >= 0;
    char socket_dir[] = "/tmp/yasim-svc-XXXXXX";
    if (!external) {
        if (!mkdtemp(socket_dir)) {
            std::fprintf(stderr, "bench_service: mkdtemp: %s\n",
                         std::strerror(errno));
            return 1;
        }
        local_engine = std::make_unique<ExperimentEngine>(
            engineOptionsFrom(engine_opts));
        DaemonOptions daemon_opts;
        daemon_opts.socketPath = std::string(socket_dir) + "/yasimd.sock";
        local_daemon = std::make_unique<ServiceDaemon>(daemon_opts,
                                                       *local_engine);
        std::string error;
        if (!local_daemon->start(error)) {
            std::fprintf(stderr, "bench_service: %s\n", error.c_str());
            return 1;
        }
        endpoint.socketPath = daemon_opts.socketPath;
    }

    const std::vector<ExperimentRequest> grid =
        buildGrid(requests, suite, deadline_ms);

    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<ClientOutcome> outcomes(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::vector<ExperimentRequest> mine = grid;
            for (size_t r = 0; r < mine.size(); ++r)
                mine[r].id = c * 1'000'000 + r + 1;
            ServiceClient client(endpoint);
            ClientOutcome &out = outcomes[c];
            out.ok = client.runBatch(mine, out.responses, out.stats,
                                     out.error);
        });
    }
    for (std::thread &t : threads)
        t.join();
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    // The verification engine recomputes the whole grid in-process;
    // every daemon response must match it byte for byte.
    ExperimentEngine verify_engine;
    std::vector<std::string> expected;
    expected.reserve(requests);
    for (const ExperimentRequest &request : grid)
        expected.push_back(
            responseFingerprint(executeRequest(verify_engine, request)));

    uint64_t lost = 0, mismatches = 0, duplicated = 0;
    uint64_t submitted = 0, completed = 0, rejections = 0,
             reconnects = 0;
    uint64_t ok_responses = 0, cancelled = 0, deadline_exceeded = 0,
             shed = 0;
    bool clients_ok = true;
    for (size_t c = 0; c < clients; ++c) {
        const ClientOutcome &out = outcomes[c];
        submitted += out.stats.submitted;
        completed += out.stats.completed;
        rejections += out.stats.rejections;
        reconnects += out.stats.reconnects;
        if (!out.ok) {
            std::fprintf(stderr, "bench_service: client %zu failed: %s\n",
                         c, out.error.c_str());
            clients_ok = false;
            lost += requests;
            continue;
        }
        std::map<uint64_t, size_t> seen;
        for (size_t r = 0; r < out.responses.size(); ++r) {
            const ExperimentResponse &response = out.responses[r];
            const uint64_t want_id = c * 1'000'000 + r + 1;
            if (response.id != want_id) {
                ++lost;
                continue;
            }
            if (!seen.emplace(response.id, r).second) {
                ++duplicated;
                continue;
            }
            switch (response.status) {
              case ResponseStatus::Cancelled:
              case ResponseStatus::DeadlineExceeded:
              case ResponseStatus::Rejected:
                // Terminal non-results (mid-run cancel, expiry, shed):
                // well-formed means *no* result payload rode along.
                if (response.status == ResponseStatus::Cancelled)
                    ++cancelled;
                else if (response.status ==
                         ResponseStatus::DeadlineExceeded)
                    ++deadline_exceeded;
                else
                    ++shed;
                if (!response.key.empty()) {
                    if (++mismatches == 1)
                        std::fprintf(
                            stderr,
                            "bench_service: client %zu request %zu "
                            "carried a result despite status %u\n",
                            c, r, uint32_t(response.status));
                }
                break;
              default:
                // Ok and Error compare byte-for-byte against the
                // in-process run — deadlines never perturb a result
                // they failed to stop.
                if (response.status == ResponseStatus::Ok)
                    ++ok_responses;
                if (responseFingerprint(response) != expected[r]) {
                    if (++mismatches == 1)
                        std::fprintf(
                            stderr,
                            "bench_service: client %zu request %zu "
                            "diverged from the in-process result\n",
                            c, r);
                }
                break;
            }
        }
    }

    // The daemon's own view: shared-cache hit rate and queue pressure.
    JsonReport daemon_stats("service-stats");
    {
        ServiceClient stats_client(endpoint);
        ExperimentRequest stats_request;
        stats_request.id = 999'999'999;
        stats_request.kind = RequestKind::Stats;
        ExperimentResponse stats_response;
        std::string error;
        if (stats_client.call(stats_request, stats_response, error) &&
            stats_response.status == ResponseStatus::Ok) {
            parseReport(stats_response.report, daemon_stats);
        } else {
            std::fprintf(stderr,
                         "bench_service: stats query failed: %s\n",
                         error.empty() ? stats_response.error.c_str()
                                       : error.c_str());
        }
    }

    if (local_daemon) {
        local_daemon->requestDrain();
        local_daemon->wait();
        unlink(endpoint.socketPath.c_str());
        rmdir(socket_dir);
    }

    const uint64_t memo_hits = daemon_stats.count("memo_hits");
    const uint64_t memo_misses = daemon_stats.count("memo_misses");
    const double hit_rate =
        memo_hits + memo_misses
            ? double(memo_hits) / double(memo_hits + memo_misses)
            : 0.0;

    JsonReport report("service-load");
    report.setCount("clients", clients);
    report.setCount("requests_per_client", requests);
    report.setCount("submitted", submitted);
    report.setCount("completed", completed);
    report.setCount("lost", lost);
    report.setCount("duplicated", duplicated);
    report.setCount("mismatches", mismatches);
    report.setCount("rejections", rejections);
    report.setCount("reconnects", reconnects);
    report.setCount("deadline_ms", deadline_ms);
    report.setCount("ok_responses", ok_responses);
    report.setCount("cancelled", cancelled);
    report.setCount("deadline_exceeded", deadline_exceeded);
    report.setCount("shed", shed);
    report.setNumber("wall_seconds", wall_seconds);
    report.setNumber("requests_per_sec",
                     wall_seconds > 0.0
                         ? double(clients * requests) / wall_seconds
                         : 0.0);
    report.setCount("daemon_memo_hits", memo_hits);
    report.setCount("daemon_memo_misses", memo_misses);
    report.setNumber("shared_cache_hit_rate", hit_rate);
    report.setCount("daemon_jobs_executed",
                    daemon_stats.count("svc_jobs_executed"));
    report.setCount("daemon_max_queue_depth",
                    daemon_stats.count("svc_max_queue_depth"));
    report.setCount("daemon_protocol_errors",
                    daemon_stats.count("svc_protocol_errors"));
    report.setCount("daemon_jobs_cancelled",
                    daemon_stats.count("svc_jobs_cancelled"));
    report.setCount("daemon_jobs_deadline_expired",
                    daemon_stats.count("svc_jobs_deadline_expired"));
    report.setCount("daemon_jobs_shed",
                    daemon_stats.count("svc_jobs_shed"));
    report.setCount("daemon_watchdog_wakeups",
                    daemon_stats.count("svc_watchdog_wakeups"));
    report.setBool("bit_identical", mismatches == 0);
    if (!json_path.empty())
        writeReportFile(report, json_path);
    std::cout << report.render();

    const bool passed = clients_ok && lost == 0 && duplicated == 0 &&
                        mismatches == 0 &&
                        completed == uint64_t(clients) * requests;
    if (!passed) {
        std::fprintf(stderr,
                     "bench_service: FAILED (lost=%llu duplicated=%llu "
                     "mismatches=%llu completed=%llu/%llu)\n",
                     static_cast<unsigned long long>(lost),
                     static_cast<unsigned long long>(duplicated),
                     static_cast<unsigned long long>(mismatches),
                     static_cast<unsigned long long>(completed),
                     static_cast<unsigned long long>(
                         uint64_t(clients) * requests));
        return 1;
    }
    std::fprintf(stderr,
                 "bench_service: OK (%llu responses, %.0f%% shared-cache "
                 "hit rate, %llu reconnects survived, %llu expired, "
                 "%llu shed)\n",
                 static_cast<unsigned long long>(completed),
                 hit_rate * 100.0,
                 static_cast<unsigned long long>(reconnects),
                 static_cast<unsigned long long>(deadline_exceeded),
                 static_cast<unsigned long long>(shed));
    return 0;
}
