/**
 * @file
 * Ablation: random sampling [Conte96] versus SMARTS.
 *
 * The paper excluded random sampling from its study; this extension
 * quantifies why that was no great loss. Plain random sampling skips
 * between samples with *stale* microarchitectural state, so its error
 * is dominated by cold-start bias; Conte et al.'s remedies — more
 * per-sample warm-up, more samples — help but never close the gap to
 * SMARTS, whose functional warming keeps caches and predictor live
 * through every skipped region.
 */

#include <cmath>
#include <iostream>

#include "engine/bench_driver.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"
#include "techniques/random_sampling.hh"
#include "techniques/smarts.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv).run([](BenchDriver &driver) {
        SimConfig config = architecturalConfig(2);

        Table table("Ablation: random sampling (Conte96) vs SMARTS "
                    "(config #2; error vs full reference CPI)");
        table.setHeader({"benchmark", "technique", "CPI error",
                         "cost %"});

        ExperimentEngine &engine = driver.engine();
        for (const std::string &bench : driver.benchmarks()) {
            TechniqueContext ctx = driver.context(bench);
            FullReference reference;
            TechniqueResult ref = engine.run(reference, ctx, config);

            auto report = [&](const Technique &t) {
                TechniqueResult r = engine.run(t, ctx, config);
                table.addRow(
                    {bench, t.name() + " " + t.permutation(),
                     Table::pct(std::fabs(r.cpi - ref.cpi) / ref.cpi *
                                    100.0,
                                2),
                     Table::num(100.0 * r.workUnits / ref.workUnits,
                                1)});
            };

            // Conte's axes: more warm-up, then more samples.
            report(RandomSampling(50, 1000, 0));
            report(RandomSampling(50, 1000, 2000));
            report(RandomSampling(50, 1000, 10000));
            report(RandomSampling(200, 1000, 2000));
            report(Smarts(1000, 2000));
            table.addRule();
            std::cerr << "random-sampling: " << bench << " done\n";
        }

        driver.print(table);
    });
}
