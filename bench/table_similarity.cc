/**
 * @file
 * Extension: the [Eeckhout02] benchmark-similarity analysis from the
 * paper's related-work section — characteristic vectors (instruction
 * mix, branch predictability, cache behaviour, inherent parallelism)
 * for every benchmark's reference input *and* its most-reduced input,
 * z-scored and clustered.
 *
 * Two readings: (a) which suite benchmarks are statistically redundant
 * (same cluster); (b) whether a reduced input lands in its reference
 * input's cluster — the paper's reduced-input finding restated as a
 * clustering result (mcf/small famously does not).
 */

#include <iostream>

#include "core/similarity.hh"
#include "engine/bench_driver.hh"
#include "support/table.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv)
        .defaultRefInsts(300'000)
        .run([](BenchDriver &driver) {
            // Reference input of every benchmark, plus the smallest
            // available reduced input of each.
            std::vector<std::pair<std::string, InputSet>> pairs;
            for (const std::string &bench : driver.benchmarks()) {
                pairs.emplace_back(bench, InputSet::Reference);
                for (InputSet input : availableInputs(bench)) {
                    if (input != InputSet::Reference) {
                        pairs.emplace_back(bench, input);
                        break; // smallest comes first in ladder order
                    }
                }
            }

            SimilarityAnalysis analysis =
                analyzeSimilarity(pairs, driver.options().suite, 8,
                                  driver.engine().traceStore());

            Table table("Benchmark/input similarity (z-scored "
                        "characteristics, k-means/BIC clustering -> " +
                        std::to_string(analysis.numClusters) +
                        " clusters)");
            std::vector<std::string> header = {"pair", "cluster"};
            for (const std::string &name :
                 WorkloadCharacteristics::metricNames())
                header.push_back(name);
            table.setHeader(header);

            for (size_t i = 0; i < analysis.items.size(); ++i) {
                const WorkloadCharacteristics &wc = analysis.items[i];
                std::vector<std::string> row = {
                    wc.benchmark + "/" + inputSetName(wc.input),
                    std::to_string(analysis.cluster[i])};
                for (double v : wc.vec())
                    row.push_back(Table::num(v, 3));
                table.addRow(row);
            }
            driver.print(table);

            // Does each reduced input share its reference's cluster?
            Table verdicts("\nReduced input in the reference's cluster?");
            verdicts.setHeader({"benchmark", "reduced input",
                                "same cluster", "distance to reference"});
            for (size_t i = 0; i < analysis.items.size(); ++i) {
                if (analysis.items[i].input == InputSet::Reference)
                    continue;
                // Find this benchmark's reference entry.
                for (size_t j = 0; j < analysis.items.size(); ++j) {
                    if (analysis.items[j].benchmark ==
                            analysis.items[i].benchmark &&
                        analysis.items[j].input == InputSet::Reference) {
                        verdicts.addRow(
                            {analysis.items[i].benchmark,
                             inputSetName(analysis.items[i].input),
                             analysis.cluster[i] == analysis.cluster[j]
                                 ? "yes"
                                 : "NO",
                             Table::num(analysis.distance[i][j], 2)});
                    }
                }
            }
            verdicts.print(std::cout);
        });
}
