/**
 * @file
 * Regenerates Table 2: the benchmark suite and its input sets, with
 * measured dynamic instruction counts for every available input under
 * the current suite scaling (the paper's N/A holes stay N/A).
 */

#include <iostream>

#include "engine/bench_driver.hh"
#include "support/table.hh"
#include "techniques/trace_store.hh"
#include "workloads/suite.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv)
        .defaultRefInsts(500'000)
        .run([](BenchDriver &driver) {
            Table table("Table 2: benchmarks and input sets (cells: "
                        "label / dynamic M-instructions at this scale)");
            std::vector<std::string> header = {"benchmark"};
            for (InputSet input : allInputSets())
                header.emplace_back(inputSetName(input));
            table.setHeader(header);

            for (const std::string &bench : driver.benchmarks()) {
                std::vector<std::string> row = {bench};
                for (InputSet input : allInputSets()) {
                    if (!hasInput(bench, input)) {
                        row.emplace_back("N/A");
                        continue;
                    }
                    // Live stream through the seam (no store: a pure
                    // length measurement has no replay customers).
                    StepSourceHandle src = openStepSource(
                        bench, input, driver.options().suite, nullptr);
                    uint64_t len = src.source->fastForward(~0ULL);
                    row.push_back(
                        src.workload->label + " / " +
                        Table::num(static_cast<double>(len) / 1e6, 2));
                }
                table.addRow(row);
            }
            driver.print(table);
        });
}
