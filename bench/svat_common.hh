/**
 * @file
 * Shared driver for the Figure-3/Figure-4 speed-versus-accuracy
 * benches: the permutation list mirrors the paper's figure legends, the
 * configuration set defaults to Table 3's four machines (envelope of
 * the hypercube with --full), and the output is one row per permutation
 * sorted by simulation speed.
 */

#ifndef YASIM_BENCH_SVAT_COMMON_HH
#define YASIM_BENCH_SVAT_COMMON_HH

#include <algorithm>
#include <iostream>

#include "core/options.hh"
#include "core/svat_analysis.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "techniques/reduced_input.hh"
#include "techniques/simpoint.hh"
#include "techniques/smarts.hh"
#include "techniques/truncated.hh"

namespace yasim {

/** Figure-legend permutations for one benchmark's SvAT graph. */
inline std::vector<TechniquePtr>
svatPermutations(const std::string &bench, double ff_x, double wu_x,
                 double wu_y)
{
    std::vector<TechniquePtr> techniques;
    techniques.push_back(
        std::make_shared<SimPoint>(100.0, 1, 0.0, "single 100M"));
    techniques.push_back(
        std::make_shared<SimPoint>(100.0, 10, 0.0, "multiple 100M"));
    techniques.push_back(
        std::make_shared<SimPoint>(10.0, 100, 1.0, "multiple 10M"));
    for (InputSet input :
         {InputSet::Small, InputSet::Medium, InputSet::Large,
          InputSet::Test, InputSet::Train}) {
        if (hasInput(bench, input))
            techniques.push_back(std::make_shared<ReducedInput>(input));
    }
    for (double z : {500.0, 1000.0, 1500.0, 2000.0})
        techniques.push_back(std::make_shared<RunZ>(z));
    for (double z : {100.0, 500.0, 1000.0, 2000.0})
        techniques.push_back(std::make_shared<FfRunZ>(ff_x, z));
    for (double z : {100.0, 500.0, 1000.0, 2000.0})
        techniques.push_back(std::make_shared<FfWuRunZ>(wu_x, wu_y, z));
    for (uint64_t u : {100ULL, 1000ULL, 10000ULL})
        techniques.push_back(std::make_shared<Smarts>(u, 2 * u));
    return techniques;
}

/** Run and print one benchmark's SvAT graph. */
inline int
runSvatBench(int argc, char **argv, const std::string &bench,
             const char *figure, double ff_x, double wu_x, double wu_y)
{
    BenchOptions options = parseBenchOptions(argc, argv, 400'000);
    setInformEnabled(false);

    TechniqueContext ctx = makeContext(bench, options.suite);
    std::vector<SimConfig> configs =
        options.full ? envelopeConfigs() : architecturalConfigs();

    auto techniques = svatPermutations(bench, ff_x, wu_x, wu_y);
    auto points = svatAnalysis(ctx, techniques, configs);
    std::sort(points.begin(), points.end(),
              [](const SvatPoint &a, const SvatPoint &b) {
                  return a.speedPct < b.speedPct;
              });

    Table table(std::string(figure) +
                ": speed vs accuracy trade-off for " + bench +
                " (speed = % of reference simulation work; accuracy = "
                "Manhattan distance of CPI vectors over " +
                std::to_string(configs.size()) + " configs)");
    table.setHeader({"technique", "permutation", "speed %",
                     "CPI distance"});
    for (const SvatPoint &p : points) {
        table.addRow({p.technique, p.permutation,
                      Table::num(p.speedPct, 2),
                      Table::num(p.cpiDistance, 3)});
    }
    if (options.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}

} // namespace yasim

#endif // YASIM_BENCH_SVAT_COMMON_HH
