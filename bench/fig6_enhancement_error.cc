/**
 * @file
 * Regenerates Figure 6: the difference between the apparent speedup
 * each technique reports for an enhancement and the speedup the
 * reference run reports — for next-line prefetching (the figure) and
 * trivial-computation simplification (discussed in section 7), on gcc
 * with processor configuration #2.
 *
 * Expected shape: reduced-input and truncated-execution speedup errors
 * are large and sign-inconsistent; SimPoint's multiple-10M permutation
 * is close; SMARTS's errors are fractions of a percent.
 */

#include <iostream>
#include <memory>

#include "core/enhancement_study.hh"
#include "engine/bench_driver.hh"
#include "support/table.hh"
#include "techniques/reduced_input.hh"
#include "techniques/simpoint.hh"
#include "techniques/smarts.hh"
#include "techniques/truncated.hh"

using namespace yasim;

namespace {

std::vector<TechniquePtr>
figurePermutations(const std::string &bench)
{
    std::vector<TechniquePtr> t;
    t.push_back(std::make_shared<SimPoint>(100.0, 1, 0.0, "single 100M"));
    t.push_back(
        std::make_shared<SimPoint>(100.0, 10, 0.0, "multiple 100M"));
    t.push_back(std::make_shared<SimPoint>(10.0, 1, 1.0, "single 10M"));
    t.push_back(
        std::make_shared<SimPoint>(10.0, 100, 1.0, "multiple 10M"));
    for (InputSet input :
         {InputSet::Small, InputSet::Medium, InputSet::Test,
          InputSet::Train}) {
        if (hasInput(bench, input))
            t.push_back(std::make_shared<ReducedInput>(input));
    }
    for (double z : {500.0, 1000.0, 2000.0})
        t.push_back(std::make_shared<RunZ>(z));
    for (double z : {100.0, 1000.0})
        t.push_back(std::make_shared<FfRunZ>(1000.0, z));
    for (double z : {100.0, 1000.0})
        t.push_back(std::make_shared<FfWuRunZ>(990.0, 10.0, z));
    for (uint64_t u : {100ULL, 1000ULL, 10000ULL})
        t.push_back(std::make_shared<Smarts>(u, 2 * u));
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv).run([](BenchDriver &driver) {
        const BenchOptions &options = driver.options();
        const std::string bench = options.benchmarks.size() == 1
                                      ? options.benchmarks[0]
                                      : "gcc";
        ExperimentEngine &engine = driver.engine();
        TechniqueContext ctx = driver.context(bench);
        SimConfig config = architecturalConfig(2);

        const Enhancement enhancements[] = {
            Enhancement::NextLinePrefetch,
            Enhancement::TrivialComputation};

        auto techniques = figurePermutations(bench);

        // Every (technique | reference) x (base | enhanced) cell, on
        // the work-stealing pool.
        std::vector<SimConfig> grid_configs = {config};
        for (Enhancement e : enhancements)
            grid_configs.push_back(withEnhancement(config, e));
        engine.prefetch(ctx, techniques, grid_configs);

        double ref_speedup[2];
        for (int e = 0; e < 2; ++e)
            ref_speedup[e] =
                referenceSpeedup(engine, ctx, config, enhancements[e]);

        std::cout << "reference speedups on " << bench
                  << "/config2: NLP "
                  << Table::num((ref_speedup[0] - 1.0) * 100.0, 2)
                  << "%, TC "
                  << Table::num((ref_speedup[1] - 1.0) * 100.0, 2)
                  << "%\n\n";

        Table table("Figure 6: apparent-speedup error "
                    "(technique minus reference, percentage points) "
                    "for " +
                    bench + " on configuration #2");
        table.setHeader({"technique", "permutation", "NLP error (pp)",
                         "TC error (pp)"});

        for (const TechniquePtr &technique : techniques) {
            std::vector<std::string> row = {technique->name(),
                                            technique->permutation()};
            for (int e = 0; e < 2; ++e) {
                EnhancementImpact impact = evaluateEnhancement(
                    engine, *technique, ctx, config, enhancements[e],
                    ref_speedup[e]);
                row.push_back(
                    Table::num(impact.speedupError() * 100.0, 2));
            }
            table.addRow(row);
        }

        driver.print(table);
    });
}
