/**
 * @file
 * Regenerates Figure 7: the decision tree for selecting a simulation
 * technique, and demonstrates the queryable recommend() API for each
 * selection goal.
 */

#include <iostream>

#include "core/decision_tree.hh"
#include "engine/bench_driver.hh"
#include "support/table.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv)
        .defaultRefInsts(500'000)
        .run([](BenchDriver &driver [[maybe_unused]]) {
            DecisionTree tree;
            tree.print(std::cout);

            Table table("recommend() for every goal "
                        "(best technique first)");
            table.setHeader({"goal", "1st", "2nd", "last"});
            for (SelectionGoal goal : allSelectionGoals()) {
                const CriterionRanking &r = tree.recommend(goal);
                table.addRow({selectionGoalName(goal),
                              r.ranking.front(), r.ranking[1],
                              r.ranking.back()});
            }
            std::cout << "\n";
            table.print(std::cout);
        });
}
