/**
 * @file
 * Ablation: early simulation points [Perelman03], which the paper
 * cites as the remedy for SimPoint's checkpoint-generation cost ("the
 * cost of which is amortized by successive runs and can be decreased
 * by picking early simulation points"). Per cluster, the earliest
 * interval within a distance tolerance of the centroid-closest one is
 * chosen instead — the last checkpoint moves toward the front of the
 * program and generation cost falls, at a small accuracy price.
 */

#include <cmath>
#include <iostream>

#include "engine/bench_driver.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"
#include "techniques/simpoint.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv).run([](BenchDriver &driver) {
        SimConfig config = architecturalConfig(2);

        Table table("Ablation: standard vs early SimPoints "
                    "(multiple 100M; last point position as % of the "
                    "run, total work as % of reference, CPI error)");
        table.setHeader({"benchmark", "variant", "last point @",
                         "cost %", "CPI error"});

        ExperimentEngine &engine = driver.engine();
        for (const std::string &bench : driver.benchmarks()) {
            TechniqueContext ctx = driver.context(bench);
            FullReference reference;
            TechniqueResult ref = engine.run(reference, ctx, config);

            for (int variant = 0; variant < 2; ++variant) {
                bool early = variant == 1;
                SimPoint sp(100.0, 10, 0.0,
                            early ? "early 100M" : "multiple 100M", 15,
                            42, 3, early);
                auto points = sp.choosePoints(ctx);
                uint64_t last =
                    points.empty() ? 0 : points.back().startInst;
                TechniqueResult r = engine.run(sp, ctx, config);
                table.addRow(
                    {bench, early ? "early" : "standard",
                     Table::pct(100.0 * static_cast<double>(last) /
                                    static_cast<double>(
                                        ctx.referenceLength),
                                1),
                     Table::num(100.0 * r.workUnits / ref.workUnits, 1),
                     Table::pct(std::fabs(r.cpi - ref.cpi) / ref.cpi *
                                    100.0,
                                2)});
            }
            table.addRule();
            std::cerr << "early-simpoints: " << bench << " done\n";
        }

        driver.print(table);
    });
}
