/**
 * @file
 * Regenerates Figure 2: the difference between SimPoint's and SMARTS's
 * Euclidean distances from the reference rank vector as progressively
 * less significant parameters are included (parameters sorted by
 * ascending reference rank). Positive values mean SMARTS is closer to
 * the reference for that prefix of parameters.
 *
 * Expected shape (paper section 5.1): near zero for the most
 * significant parameters on most benchmarks; gcc diverges early because
 * SimPoint underestimates the memory-latency bottleneck there.
 */

#include <iostream>

#include "core/pb_characterization.hh"
#include "engine/bench_driver.hh"
#include "support/table.hh"
#include "techniques/full_reference.hh"
#include "techniques/simpoint.hh"
#include "techniques/smarts.hh"

using namespace yasim;

int
main(int argc, char **argv)
{
    return BenchDriver(argc, argv).run([](BenchDriver &driver) {
        PbDesign design = PbDesign::forFactors(numPbFactors(), false);

        // The most accurate permutation of each technique, as in the
        // paper.
        SimPoint simpoint(10.0, 100, 1.0, "multiple 10M");
        Smarts smarts(1000, 2000);

        const std::vector<size_t> shown = {1, 2, 3, 4, 5, 6, 8,
                                           10, 15, 20, 30, 43};
        Table table("Figure 2: SimPoint minus SMARTS Euclidean distance "
                    "from the reference ranks, counting only the N most "
                    "significant reference parameters");
        std::vector<std::string> header = {"benchmark"};
        for (size_t n : shown)
            header.push_back("N=" + std::to_string(n));
        table.setHeader(header);

        ExperimentEngine &engine = driver.engine();
        for (const std::string &bench : driver.benchmarks()) {
            TechniqueContext ctx = driver.context(bench);
            FullReference reference;
            PbOutcome ref = runPbDesign(engine, reference, ctx, design);
            PbOutcome sp = runPbDesign(engine, simpoint, ctx, design);
            PbOutcome sm = runPbDesign(engine, smarts, ctx, design);
            std::vector<double> series =
                pbDistanceDifference(sp, sm, ref);

            std::vector<std::string> row = {bench};
            for (size_t n : shown)
                row.push_back(Table::num(series[n - 1], 2));
            table.addRow(row);

            // The gcc narrative: where does memory latency rank?
            for (size_t j = 0; j < pbFactors().size(); ++j) {
                if (pbFactors()[j].name == "memory latency (first)") {
                    std::cerr << "fig2: " << bench
                              << " memory-latency rank: reference "
                              << ref.ranks[j] << ", SimPoint "
                              << sp.ranks[j] << ", SMARTS "
                              << sm.ranks[j] << "\n";
                }
            }
        }

        driver.print(table);
    });
}
