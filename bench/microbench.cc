/**
 * @file
 * Google-benchmark microbenchmarks for the library's hot kernels: the
 * functional simulator, functional warming, the detailed core, cache
 * and predictor probes, k-means clustering, and the PB machinery.
 * These are throughput sanity checks for the simulator substrate (the
 * figure regenerators' runtimes are dominated by these loops).
 */

#include <benchmark/benchmark.h>

#include "sim/functional.hh"
#include "sim/ooo_core.hh"
#include "stats/kmeans.hh"
#include "stats/plackett_burman.hh"
#include "support/rng.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/cache.hh"
#include "workloads/suite.hh"

using namespace yasim;

namespace {

SuiteConfig
benchSuite()
{
    SuiteConfig suite;
    suite.referenceInstructions = 200'000;
    return suite;
}

void
BM_FunctionalSim(benchmark::State &state)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    uint64_t insts = 0;
    for (auto _ : state) {
        FunctionalSim fsim(w.program);
        insts += fsim.fastForward(~0ULL);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_FunctionalSim);

void
BM_FunctionalWarming(benchmark::State &state)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    SimConfig cfg = architecturalConfig(2);
    uint64_t insts = 0;
    for (auto _ : state) {
        FunctionalSim fsim(w.program);
        MemoryHierarchy mem(cfg.mem);
        CombinedPredictor bp(cfg.bp);
        insts += fsim.fastForwardWarm(~0ULL, &mem, &bp);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_FunctionalWarming);

void
BM_DetailedSim(benchmark::State &state)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    SimConfig cfg = architecturalConfig(2);
    uint64_t insts = 0;
    for (auto _ : state) {
        FunctionalSim fsim(w.program);
        OooCore core(cfg);
        insts += core.run(fsim, ~0ULL);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_DetailedSim);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache("bm", CacheConfig{64, 4, 64});
    Rng rng(1);
    uint64_t n = 0;
    for (auto _ : state) {
        cache.access(rng.nextBelow(1 << 22));
        ++n;
    }
    state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_CacheAccess);

void
BM_PredictorUpdate(benchmark::State &state)
{
    CombinedPredictor bp(BranchPredictorConfig{});
    Rng rng(2);
    uint64_t n = 0;
    for (auto _ : state) {
        uint64_t pc = 0x1000 + (rng.next() & 0xFF) * 4;
        bp.update(pc, true, rng.nextBool(0.7), pc + 64);
        ++n;
    }
    state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_PredictorUpdate);

void
BM_KmeansSelectK(benchmark::State &state)
{
    Rng rng(3);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 500; ++i) {
        std::vector<double> p(15);
        for (double &x : p)
            x = rng.nextGaussian() + (i % 4) * 5.0;
        points.push_back(std::move(p));
    }
    for (auto _ : state) {
        Rng seed(4);
        benchmark::DoNotOptimize(
            selectKLadder(points, static_cast<int>(state.range(0)),
                          seed));
    }
}
BENCHMARK(BM_KmeansSelectK)->Arg(10)->Arg(100);

void
BM_PbEffects(benchmark::State &state)
{
    PbDesign design = PbDesign::forFactors(43, true);
    std::vector<double> responses(design.numRuns());
    Rng rng(5);
    for (double &r : responses)
        r = rng.nextDouble();
    for (auto _ : state)
        benchmark::DoNotOptimize(design.computeEffects(responses));
}
BENCHMARK(BM_PbEffects);

} // namespace

BENCHMARK_MAIN();
