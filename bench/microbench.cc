/**
 * @file
 * Google-benchmark microbenchmarks for the library's hot kernels: the
 * functional simulator, functional warming, the detailed core, trace
 * record/replay, cache and predictor probes, k-means clustering, and
 * the PB machinery. These are throughput sanity checks for the
 * simulator substrate (the figure regenerators' runtimes are dominated
 * by these loops).
 *
 * `microbench --json [path]` switches to the machine-readable perf
 * gate instead: it measures live vs replayed stepping and a 44-config
 * PB sweep with and without the trace subsystem, writes the numbers to
 * BENCH_microbench.json, and exits nonzero when replay fails to beat
 * live interpretation.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/pb_characterization.hh"
#include "sim/functional.hh"
#include "sim/ooo_core.hh"
#include "sim/trace.hh"
#include "stats/kmeans.hh"
#include "stats/plackett_burman.hh"
#include "support/rng.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/cache.hh"
#include "workloads/suite.hh"

using namespace yasim;

namespace {

SuiteConfig
benchSuite()
{
    SuiteConfig suite;
    suite.referenceInstructions = 200'000;
    return suite;
}

void
BM_FunctionalSim(benchmark::State &state)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    uint64_t insts = 0;
    for (auto _ : state) {
        FunctionalSim fsim(w.program);
        insts += fsim.fastForward(~0ULL);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_FunctionalSim);

void
BM_FunctionalWarming(benchmark::State &state)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    SimConfig cfg = architecturalConfig(2);
    uint64_t insts = 0;
    for (auto _ : state) {
        FunctionalSim fsim(w.program);
        MemoryHierarchy mem(cfg.mem);
        CombinedPredictor bp(cfg.bp);
        insts += fsim.fastForwardWarm(~0ULL, &mem, &bp);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_FunctionalWarming);

void
BM_DetailedSim(benchmark::State &state)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    SimConfig cfg = architecturalConfig(2);
    uint64_t insts = 0;
    for (auto _ : state) {
        FunctionalSim fsim(w.program);
        OooCore core(cfg);
        insts += core.run(fsim, ~0ULL);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_DetailedSim);

void
BM_TraceRecord(benchmark::State &state)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    uint64_t insts = 0;
    for (auto _ : state) {
        auto trace = ExecTrace::record(w.program);
        insts += trace->length();
        benchmark::DoNotOptimize(trace);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_TraceRecord);

void
BM_TraceReplay(benchmark::State &state)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    auto trace = ExecTrace::record(w.program);
    uint64_t insts = 0;
    for (auto _ : state) {
        TraceReplayer replayer(trace);
        ExecRecord rec;
        while (replayer.step(rec))
            benchmark::DoNotOptimize(rec.nextPc);
        insts += replayer.instsExecuted();
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_TraceReplay);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache("bm", CacheConfig{64, 4, 64});
    Rng rng(1);
    uint64_t n = 0;
    for (auto _ : state) {
        cache.access(rng.nextBelow(1 << 22));
        ++n;
    }
    state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_CacheAccess);

void
BM_PredictorUpdate(benchmark::State &state)
{
    CombinedPredictor bp(BranchPredictorConfig{});
    Rng rng(2);
    uint64_t n = 0;
    for (auto _ : state) {
        uint64_t pc = 0x1000 + (rng.next() & 0xFF) * 4;
        bp.update(pc, true, rng.nextBool(0.7), pc + 64);
        ++n;
    }
    state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_PredictorUpdate);

void
BM_KmeansSelectK(benchmark::State &state)
{
    Rng rng(3);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 500; ++i) {
        std::vector<double> p(15);
        for (double &x : p)
            x = rng.nextGaussian() + (i % 4) * 5.0;
        points.push_back(std::move(p));
    }
    for (auto _ : state) {
        Rng seed(4);
        benchmark::DoNotOptimize(
            selectKLadder(points, static_cast<int>(state.range(0)),
                          seed));
    }
}
BENCHMARK(BM_KmeansSelectK)->Arg(10)->Arg(100);

void
BM_PbEffects(benchmark::State &state)
{
    PbDesign design = PbDesign::forFactors(43, true);
    std::vector<double> responses(design.numRuns());
    Rng rng(5);
    for (double &r : responses)
        r = rng.nextDouble();
    for (auto _ : state)
        benchmark::DoNotOptimize(design.computeEffects(responses));
}
BENCHMARK(BM_PbEffects);

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * Step every instruction of @p source to exhaustion and return the
 * throughput in instructions per second. ExecRecord consumption mirrors
 * what OooCore::run does per step, so live-vs-replay compares the cost
 * a detailed region actually pays for its stream.
 */
double
stepThroughput(StepSource &source)
{
    uint64_t sink = 0;
    auto start = std::chrono::steady_clock::now();
    ExecRecord rec;
    while (source.step(rec))
        sink += rec.nextPc;
    double seconds = secondsSince(start);
    benchmark::DoNotOptimize(sink);
    return static_cast<double>(source.instsExecuted()) /
           (seconds > 0 ? seconds : 1e-9);
}

/**
 * The machine-readable perf gate behind `microbench --json [path]`.
 *
 * Measures (a) live interpretation vs trace replay step throughput on
 * the gzip reference stream and (b) wall time for a 44-configuration
 * Plackett-Burman sweep (99% fast-forward + 1000 detailed instructions
 * per configuration) with one FunctionalSim per configuration vs one
 * shared ExecTrace (recording time included in the trace total).
 * Writes the numbers as JSON and returns nonzero when replay fails to
 * beat live stepping or the sweeps disagree on total cycles.
 */
int
runJsonGate(const char *path)
{
    // (a) Step throughput, best of 3 passes each way.
    Workload step_workload =
        buildWorkload("gzip", InputSet::Reference, benchSuite());
    auto step_trace = ExecTrace::record(step_workload.program);
    double live_ips = 0, replay_ips = 0;
    for (int pass = 0; pass < 3; ++pass) {
        FunctionalSim fsim(step_workload.program);
        live_ips = std::max(live_ips, stepThroughput(fsim));
        TraceReplayer replayer(step_trace);
        replay_ips = std::max(replay_ips, stepThroughput(replayer));
    }

    // (b) Configuration-sweep wall time: the record-once/replay-many
    // payoff on the paper's PB design (44 corner configurations).
    SuiteConfig sweep_suite;
    sweep_suite.referenceInstructions = 8'000'000;
    Workload sweep_workload =
        buildWorkload("gzip", InputSet::Reference, sweep_suite);
    std::vector<SimConfig> configs =
        pbDesignConfigs(PbDesign::forFactors(43, false));
    constexpr uint64_t kDetailedInsts = 1000;

    auto trace_start = std::chrono::steady_clock::now();
    auto sweep_trace = ExecTrace::record(sweep_workload.program);
    uint64_t ff_insts = sweep_trace->length() * 99 / 100;
    uint64_t trace_cycles = 0;
    for (const SimConfig &cfg : configs) {
        TraceReplayer replayer(sweep_trace);
        replayer.fastForward(ff_insts);
        OooCore core(cfg);
        core.run(replayer, kDetailedInsts);
        trace_cycles += core.cycles();
    }
    double trace_seconds = secondsSince(trace_start);

    auto live_start = std::chrono::steady_clock::now();
    uint64_t live_cycles = 0;
    for (const SimConfig &cfg : configs) {
        FunctionalSim fsim(sweep_workload.program);
        fsim.fastForward(ff_insts);
        OooCore core(cfg);
        core.run(fsim, kDetailedInsts);
        live_cycles += core.cycles();
    }
    double live_seconds = secondsSince(live_start);

    double speedup = live_seconds / (trace_seconds > 0 ? trace_seconds : 1e-9);

    std::FILE *out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "microbench: cannot open %s for writing\n",
                     path);
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"step_insts_per_sec_live\": %.0f,\n"
                 "  \"step_insts_per_sec_replay\": %.0f,\n"
                 "  \"step_replay_over_live\": %.3f,\n"
                 "  \"sweep_configs\": %zu,\n"
                 "  \"sweep_detailed_insts\": %llu,\n"
                 "  \"sweep_wall_seconds_live\": %.6f,\n"
                 "  \"sweep_wall_seconds_trace\": %.6f,\n"
                 "  \"sweep_speedup\": %.3f,\n"
                 "  \"sweep_cycles_match\": %s\n"
                 "}\n",
                 live_ips, replay_ips, replay_ips / live_ips,
                 configs.size(),
                 static_cast<unsigned long long>(kDetailedInsts),
                 live_seconds, trace_seconds, speedup,
                 trace_cycles == live_cycles ? "true" : "false");
    std::fclose(out);

    std::printf("step throughput: live %.1fM inst/s, replay %.1fM inst/s "
                "(%.2fx)\n",
                live_ips / 1e6, replay_ips / 1e6, replay_ips / live_ips);
    std::printf("%zu-config sweep: live %.3fs, traced %.3fs (%.2fx, "
                "cycles %s)\n",
                configs.size(), live_seconds, trace_seconds, speedup,
                trace_cycles == live_cycles ? "match" : "MISMATCH");
    std::printf("wrote %s\n", path);

    if (trace_cycles != live_cycles) {
        std::fprintf(stderr,
                     "microbench: replayed sweep diverged from live\n");
        return 1;
    }
    if (replay_ips < live_ips) {
        std::fprintf(stderr,
                     "microbench: replay slower than live stepping\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            return runJsonGate(i + 1 < argc ? argv[i + 1]
                                            : "BENCH_microbench.json");
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
