/**
 * @file
 * Google-benchmark microbenchmarks for the library's hot kernels: the
 * functional simulator, functional warming, the detailed core, trace
 * record/replay, cache and predictor probes, k-means clustering, and
 * the PB machinery. These are throughput sanity checks for the
 * simulator substrate (the figure regenerators' runtimes are dominated
 * by these loops).
 *
 * `microbench --json [path]` switches to the machine-readable perf
 * gate instead: it measures live vs replayed stepping (per-step and
 * batched), a 44-config PB sweep with and without the trace subsystem,
 * and the compressed spill's bytes/instruction and decode rate, writes
 * the numbers to BENCH_microbench.json, and exits nonzero when replay
 * fails to beat live interpretation, batched replay fails to beat
 * per-step replay, or the spill exceeds 6 bytes per instruction.
 *
 * `microbench --json-ooo [path]` runs the detailed-core gate: OoO
 * replay throughput plus the checkpoint-sharded reference at 8 shards,
 * written to BENCH_ooo.json. The binary exits nonzero only on
 * machine-independent correctness failures (stitched counters or CPI
 * drifting past the contract, replay diverging from live); the CI perf
 * job asserts the machine-dependent speedup from the JSON.
 *
 * `microbench --json-sampling [path]` runs the live-point sampling
 * gate: the same SMARTS experiment serial vs fanned across the worker
 * pool from a persisted live-point library, written to
 * BENCH_sampling.json. Exit status gates the byte-identity of the two
 * estimates; CI asserts the machine-dependent speedup and the on-disk
 * bytes-per-point budget from the JSON.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "core/pb_characterization.hh"
#include "engine/result_io.hh"
#include "sim/functional.hh"
#include "sim/livepoint.hh"
#include "sim/ooo_core.hh"
#include "sim/sharded.hh"
#include "sim/trace.hh"
#include "techniques/service.hh"
#include "techniques/smarts.hh"
#include "stats/kmeans.hh"
#include "stats/plackett_burman.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/cache.hh"
#include "workloads/suite.hh"

using namespace yasim;

namespace {

SuiteConfig
benchSuite()
{
    SuiteConfig suite;
    suite.referenceInstructions = 200'000;
    return suite;
}

void
BM_FunctionalSim(benchmark::State &state)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    uint64_t insts = 0;
    for (auto _ : state) {
        FunctionalSim fsim(w.program);
        insts += fsim.fastForward(~0ULL);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_FunctionalSim);

void
BM_FunctionalWarming(benchmark::State &state)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    SimConfig cfg = architecturalConfig(2);
    uint64_t insts = 0;
    for (auto _ : state) {
        FunctionalSim fsim(w.program);
        MemoryHierarchy mem(cfg.mem);
        CombinedPredictor bp(cfg.bp);
        insts += fsim.fastForwardWarm(~0ULL, &mem, &bp);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_FunctionalWarming);

void
BM_DetailedSim(benchmark::State &state)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    SimConfig cfg = architecturalConfig(2);
    uint64_t insts = 0;
    for (auto _ : state) {
        FunctionalSim fsim(w.program);
        OooCore core(cfg);
        insts += core.run(fsim, ~0ULL);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_DetailedSim);

void
BM_OoODetailed(benchmark::State &state)
{
    // Detailed-core throughput over the decoded-replay fast path — the
    // loop the sharded reference scales across workers.
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    SimConfig cfg = architecturalConfig(2);
    auto trace = ExecTrace::record(w.program);
    uint64_t insts = 0;
    for (auto _ : state) {
        TraceReplayer replayer(trace);
        OooCore core(cfg);
        insts += core.run(replayer, ~0ULL);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_OoODetailed);

void
BM_ShardedReference(benchmark::State &state)
{
    // The checkpoint-sharded reference at 8 shards, one ladder spacing
    // of functional warming per shard. The items/sec counter is the
    // whole-run detailed rate; divide by BM_OoODetailed for the
    // wall-clock speedup on this machine.
    SuiteConfig suite;
    suite.referenceInstructions = 2'000'000;
    Workload w = buildWorkload("gzip", InputSet::Reference, suite);
    auto trace = ExecTrace::record(w.program);
    SimConfig cfg = architecturalConfig(2);
    ShardOptions opts;
    opts.shards = 8;
    opts.warmupInsts = trace->checkpointSpacing();
    uint64_t insts = 0;
    for (auto _ : state) {
        ShardedRunResult r = runShardedReference(trace, cfg, opts);
        insts += r.detailedInsts;
        benchmark::DoNotOptimize(r.stats.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
    state.counters["shards"] = static_cast<double>(opts.shards);
    state.counters["workers"] = static_cast<double>(parallelWorkers());
}
BENCHMARK(BM_ShardedReference);

void
BM_TraceRecord(benchmark::State &state)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    uint64_t insts = 0;
    for (auto _ : state) {
        auto trace = ExecTrace::record(w.program);
        insts += trace->length();
        benchmark::DoNotOptimize(trace);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_TraceRecord);

void
BM_TraceReplay(benchmark::State &state)
{
    // Batched replay: whole chunk-resident spans through stepBatch,
    // the decode-amortized rate the converted consumers actually see.
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    auto trace = ExecTrace::record(w.program);
    uint64_t insts = 0;
    ExecRecord recs[256];
    for (auto _ : state) {
        TraceReplayer replayer(trace);
        uint64_t sink = 0;
        while (uint64_t n = replayer.stepBatch(recs, 256))
            for (uint64_t i = 0; i < n; ++i)
                sink += recs[i].nextPc;
        benchmark::DoNotOptimize(sink);
        insts += replayer.instsExecuted();
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_TraceReplay);

void
BM_TraceReplayStep(benchmark::State &state)
{
    // Per-record virtual step(): the unbatched baseline BM_TraceReplay
    // is compared against.
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    auto trace = ExecTrace::record(w.program);
    uint64_t insts = 0;
    for (auto _ : state) {
        TraceReplayer replayer(trace);
        ExecRecord rec;
        while (replayer.step(rec))
            benchmark::DoNotOptimize(rec.nextPc);
        insts += replayer.instsExecuted();
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_TraceReplayStep);

void
BM_TraceDecode(benchmark::State &state)
{
    // Deserialization of the delta/byte-plane spill format back into
    // chunked SoA, measured from memory (no disk in the loop). The
    // bytes_per_inst counter is the on-disk footprint of the payload.
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    auto trace = ExecTrace::record(w.program);
    const std::string key = "bm-trace-decode";
    std::ostringstream encoded;
    trace->write(encoded, key);
    const std::string bytes = encoded.str();
    uint64_t insts = 0;
    for (auto _ : state) {
        std::istringstream is(bytes);
        auto decoded = ExecTrace::read(is, key, w.program);
        benchmark::DoNotOptimize(decoded);
        insts += decoded ? decoded->length() : 0;
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
    state.counters["bytes_per_inst"] =
        static_cast<double>(bytes.size()) /
        static_cast<double>(trace->length());
}
BENCHMARK(BM_TraceDecode);

void
BM_LivePointBuild(benchmark::State &state)
{
    // One functional-warming pass building every live-point a 50-unit
    // SMARTS selection needs (in-memory; the library's cold path).
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    SimConfig cfg = architecturalConfig(2);
    FunctionalSim length_probe(w.program);
    const uint64_t length = length_probe.fastForward(~0ULL);
    SamplingPlan plan = SamplingPlan::make(1000, 2000, length);
    const std::vector<uint64_t> indices = plan.indicesFor(50);
    uint64_t insts = 0;
    for (auto _ : state) {
        LivePointLibrary library(w.program, plan, cfg,
                                 LivePointOptions{true, ""});
        insts += library.ensure(indices);
        benchmark::DoNotOptimize(library.counters().built);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
    state.counters["points"] = static_cast<double>(indices.size());
}
BENCHMARK(BM_LivePointBuild);

void
BM_LivePointLoad(benchmark::State &state)
{
    // Random-access loads from a persisted library: frame verification,
    // payload decode, and the warm-blob trial restore — the steady
    // state a configuration sweep pays instead of re-warming.
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "yasim_bm_livepoints";
    fs::remove_all(dir);
    Workload w = buildWorkload("gzip", InputSet::Reference, benchSuite());
    SimConfig cfg = architecturalConfig(2);
    FunctionalSim length_probe(w.program);
    const uint64_t length = length_probe.fastForward(~0ULL);
    SamplingPlan plan = SamplingPlan::make(1000, 2000, length);
    const std::vector<uint64_t> indices = plan.indicesFor(50);
    LivePointOptions opts{true, dir.string()};
    {
        LivePointLibrary seed_library(w.program, plan, cfg, opts);
        seed_library.ensure(indices);
    }
    uint64_t points = 0;
    for (auto _ : state) {
        LivePointLibrary library(w.program, plan, cfg, opts);
        library.ensure(indices);
        points += library.counters().diskLoads;
    }
    state.SetItemsProcessed(static_cast<int64_t>(points));
    fs::remove_all(dir);
}
BENCHMARK(BM_LivePointLoad);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache("bm", CacheConfig{64, 4, 64});
    Rng rng(1);
    uint64_t n = 0;
    for (auto _ : state) {
        cache.access(rng.nextBelow(1 << 22));
        ++n;
    }
    state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_CacheAccess);

void
BM_PredictorUpdate(benchmark::State &state)
{
    CombinedPredictor bp(BranchPredictorConfig{});
    Rng rng(2);
    uint64_t n = 0;
    for (auto _ : state) {
        uint64_t pc = 0x1000 + (rng.next() & 0xFF) * 4;
        bp.update(pc, true, rng.nextBool(0.7), pc + 64);
        ++n;
    }
    state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_PredictorUpdate);

void
BM_KmeansSelectK(benchmark::State &state)
{
    Rng rng(3);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 500; ++i) {
        std::vector<double> p(15);
        for (double &x : p)
            x = rng.nextGaussian() + (i % 4) * 5.0;
        points.push_back(std::move(p));
    }
    for (auto _ : state) {
        Rng seed(4);
        benchmark::DoNotOptimize(
            selectKLadder(points, static_cast<int>(state.range(0)),
                          seed));
    }
}
BENCHMARK(BM_KmeansSelectK)->Arg(10)->Arg(100);

void
BM_PbEffects(benchmark::State &state)
{
    PbDesign design = PbDesign::forFactors(43, true);
    std::vector<double> responses(design.numRuns());
    Rng rng(5);
    for (double &r : responses)
        r = rng.nextDouble();
    for (auto _ : state)
        benchmark::DoNotOptimize(design.computeEffects(responses));
}
BENCHMARK(BM_PbEffects);

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * Step every instruction of @p source to exhaustion and return the
 * throughput in instructions per second. ExecRecord consumption mirrors
 * what OooCore::run does per step, so live-vs-replay compares the cost
 * a detailed region actually pays for its stream.
 */
double
stepThroughput(StepSource &source)
{
    uint64_t sink = 0;
    auto start = std::chrono::steady_clock::now();
    ExecRecord rec;
    while (source.step(rec))
        sink += rec.nextPc;
    double seconds = secondsSince(start);
    benchmark::DoNotOptimize(sink);
    return static_cast<double>(source.instsExecuted()) /
           (seconds > 0 ? seconds : 1e-9);
}

/**
 * stepThroughput through stepBatch: the same per-record consumption,
 * pulled in 256-record spans — what the batch-converted consumers pay
 * for the stream.
 */
double
batchThroughput(StepSource &source)
{
    uint64_t sink = 0;
    ExecRecord recs[256];
    auto start = std::chrono::steady_clock::now();
    while (uint64_t n = source.stepBatch(recs, 256))
        for (uint64_t i = 0; i < n; ++i)
            sink += recs[i].nextPc;
    double seconds = secondsSince(start);
    benchmark::DoNotOptimize(sink);
    return static_cast<double>(source.instsExecuted()) /
           (seconds > 0 ? seconds : 1e-9);
}

/**
 * The machine-readable perf gate behind `microbench --json [path]`.
 *
 * Measures (a) live interpretation vs trace replay throughput on the
 * gzip reference stream, per-step and batched, (b) wall time for a
 * 44-configuration Plackett-Burman sweep (99% fast-forward + 1000
 * detailed instructions per configuration) with one FunctionalSim per
 * configuration vs one shared ExecTrace (recording time included in
 * the trace total), and (c) the compressed spill's on-disk
 * bytes/instruction and decode throughput. Writes the numbers as JSON
 * and returns nonzero when replay fails to beat live stepping, batched
 * replay fails to beat per-step replay, the spill exceeds 6
 * bytes/instruction, or the sweeps disagree on total cycles.
 */
int
runJsonGate(const char *path)
{
    // (a) Step throughput, best of 3 passes each way.
    Workload step_workload =
        buildWorkload("gzip", InputSet::Reference, benchSuite());
    auto step_trace = ExecTrace::record(step_workload.program);
    double live_ips = 0, replay_ips = 0, replay_batch_ips = 0;
    for (int pass = 0; pass < 3; ++pass) {
        FunctionalSim fsim(step_workload.program);
        live_ips = std::max(live_ips, stepThroughput(fsim));
        TraceReplayer replayer(step_trace);
        replay_ips = std::max(replay_ips, stepThroughput(replayer));
        TraceReplayer batch_replayer(step_trace);
        replay_batch_ips =
            std::max(replay_batch_ips, batchThroughput(batch_replayer));
    }

    // (b) Configuration-sweep wall time: the record-once/replay-many
    // payoff on the paper's PB design (44 corner configurations).
    SuiteConfig sweep_suite;
    sweep_suite.referenceInstructions = 8'000'000;
    Workload sweep_workload =
        buildWorkload("gzip", InputSet::Reference, sweep_suite);
    std::vector<SimConfig> configs =
        pbDesignConfigs(PbDesign::forFactors(43, false));
    constexpr uint64_t kDetailedInsts = 1000;

    auto trace_start = std::chrono::steady_clock::now();
    auto sweep_trace = ExecTrace::record(sweep_workload.program);
    uint64_t ff_insts = sweep_trace->length() * 99 / 100;
    uint64_t trace_cycles = 0;
    for (const SimConfig &cfg : configs) {
        TraceReplayer replayer(sweep_trace);
        replayer.fastForward(ff_insts);
        OooCore core(cfg);
        core.run(replayer, kDetailedInsts);
        trace_cycles += core.cycles();
    }
    double trace_seconds = secondsSince(trace_start);

    auto live_start = std::chrono::steady_clock::now();
    uint64_t live_cycles = 0;
    for (const SimConfig &cfg : configs) {
        FunctionalSim fsim(sweep_workload.program);
        fsim.fastForward(ff_insts);
        OooCore core(cfg);
        core.run(fsim, kDetailedInsts);
        live_cycles += core.cycles();
    }
    double live_seconds = secondsSince(live_start);

    double speedup = live_seconds / (trace_seconds > 0 ? trace_seconds : 1e-9);

    // (c) On-disk footprint and decode rate of the compressed spill
    // format, on the 8M-instruction sweep trace. The byte count is
    // deterministic (same trace -> same bytes), so it is gated here in
    // the binary as well as in CI.
    const std::string spill_key = "perf-gate-spill";
    std::ostringstream spill_os;
    sweep_trace->write(spill_os, spill_key);
    const std::string spill_bytes = spill_os.str();
    double bytes_per_inst = static_cast<double>(spill_bytes.size()) /
                            static_cast<double>(sweep_trace->length());
    double decode_ips = 0;
    for (int pass = 0; pass < 3; ++pass) {
        std::istringstream spill_is(spill_bytes);
        auto decode_start = std::chrono::steady_clock::now();
        auto decoded =
            ExecTrace::read(spill_is, spill_key, sweep_workload.program);
        double decode_seconds = secondsSince(decode_start);
        if (!decoded) {
            std::fprintf(stderr,
                         "microbench: spill round-trip failed to read\n");
            return 1;
        }
        decode_ips = std::max(
            decode_ips, static_cast<double>(decoded->length()) /
                            (decode_seconds > 0 ? decode_seconds : 1e-9));
    }

    // Historical field names, now under the versioned yasim-report
    // schema (the CI gate indexes them directly either way).
    JsonReport report("perf-gate");
    report.setNumber("step_insts_per_sec_live", live_ips);
    report.setNumber("step_insts_per_sec_replay", replay_ips);
    report.setNumber("step_replay_over_live", replay_ips / live_ips);
    report.setNumber("step_insts_per_sec_replay_batch", replay_batch_ips);
    report.setNumber("batch_replay_over_step",
                     replay_batch_ips / replay_ips);
    report.setNumber("trace_bytes_per_inst", bytes_per_inst);
    report.setNumber("trace_decode_insts_per_sec", decode_ips);
    report.setCount("sweep_configs", configs.size());
    report.setCount("sweep_detailed_insts", kDetailedInsts);
    report.setNumber("sweep_wall_seconds_live", live_seconds);
    report.setNumber("sweep_wall_seconds_trace", trace_seconds);
    report.setNumber("sweep_speedup", speedup);
    report.setBool("sweep_cycles_match", trace_cycles == live_cycles);
    writeReportFile(report, path);

    std::printf("step throughput: live %.1fM inst/s, replay %.1fM inst/s "
                "(%.2fx), batched replay %.1fM inst/s (%.2fx over step)\n",
                live_ips / 1e6, replay_ips / 1e6, replay_ips / live_ips,
                replay_batch_ips / 1e6, replay_batch_ips / replay_ips);
    std::printf("%zu-config sweep: live %.3fs, traced %.3fs (%.2fx, "
                "cycles %s)\n",
                configs.size(), live_seconds, trace_seconds, speedup,
                trace_cycles == live_cycles ? "match" : "MISMATCH");
    std::printf("trace spill: %.2f bytes/inst on disk, decode %.1fM "
                "inst/s\n",
                bytes_per_inst, decode_ips / 1e6);
    std::printf("wrote %s\n", path);

    if (trace_cycles != live_cycles) {
        std::fprintf(stderr,
                     "microbench: replayed sweep diverged from live\n");
        return 1;
    }
    if (replay_ips < live_ips) {
        std::fprintf(stderr,
                     "microbench: replay slower than live stepping\n");
        return 1;
    }
    if (replay_batch_ips < replay_ips) {
        std::fprintf(stderr,
                     "microbench: batched replay slower than stepping\n");
        return 1;
    }
    if (bytes_per_inst > 6.0) {
        std::fprintf(stderr,
                     "microbench: trace spill %.2f bytes/inst exceeds "
                     "the 6.0 budget\n",
                     bytes_per_inst);
        return 1;
    }
    return 0;
}

/**
 * The detailed-core / sharded-reference gate behind
 * `microbench --json-ooo [path]`.
 *
 * Measures sequential detailed replay throughput (best of 3), then the
 * checkpoint-sharded reference at 8 shards with one ladder spacing of
 * functional warming per shard, and cross-checks the whole exactness
 * contract: `--shards 1` bit-identical to sequential, sequential
 * replay bit-identical to live stepping, architectural counters exact
 * under sharding, and stitched CPI within 0.5%. Speedup is reported in
 * the JSON but asserted only by CI (it is a property of the machine,
 * not of the code).
 */
int
runOooGate(const char *path)
{
    SuiteConfig suite;
    suite.referenceInstructions = 8'000'000;
    Workload w = buildWorkload("gzip", InputSet::Reference, suite);
    auto trace = ExecTrace::record(w.program);
    SimConfig cfg = architecturalConfig(2);

    // Sequential detailed reference over replay, best of 3.
    double seq_seconds = 1e30;
    SimStats seq;
    for (int pass = 0; pass < 3; ++pass) {
        TraceReplayer replayer(trace);
        OooCore core(cfg);
        auto start = std::chrono::steady_clock::now();
        core.run(replayer, ~0ULL);
        seq_seconds = std::min(seq_seconds, secondsSince(start));
        seq = core.snapshot();
    }
    double ooo_ips = static_cast<double>(trace->length()) / seq_seconds;

    // Live stepping must agree with replay cycle for cycle.
    FunctionalSim live_sim(w.program);
    OooCore live_core(cfg);
    live_core.run(live_sim, ~0ULL);
    bool replay_live_match = live_core.snapshot().cycles == seq.cycles;

    // One shard is the sequential path by contract — bit-identical.
    ShardOptions one;
    one.shards = 1;
    SimStats single = runShardedReference(trace, cfg, one).stats;
    bool single_identical =
        single.cycles == seq.cycles &&
        single.instructions == seq.instructions &&
        single.l1iAccesses == seq.l1iAccesses &&
        single.l1dMisses == seq.l1dMisses &&
        single.condMispredicts == seq.condMispredicts &&
        single.memStallCycles == seq.memStallCycles;

    // The sharded reference: 8 shards with full-prefix functional
    // warming (warmupInsts = 0), the accuracy-preserving default.
    // Bounded warming trades accuracy for wall-clock and is exercised
    // by BM_ShardedReference instead. A warm directory lets the
    // best-of-3 passes measure the steady state — pass 1 saves the
    // warmed-uarch summaries, later passes restore them, exactly the
    // behaviour a cache-dir-configured engine sees on reruns.
    namespace fs = std::filesystem;
    fs::path warm_dir = fs::temp_directory_path() / "yasim_ooo_gate_warm";
    fs::remove_all(warm_dir);
    ShardOptions opts;
    opts.shards = 8;
    opts.warmupInsts = 0;
    opts.warmDir = warm_dir.string();
    double sharded_seconds = 1e30;
    ShardedRunResult sharded;
    for (int pass = 0; pass < 3; ++pass) {
        auto start = std::chrono::steady_clock::now();
        sharded = runShardedReference(trace, cfg, opts);
        sharded_seconds = std::min(sharded_seconds, secondsSince(start));
    }
    fs::remove_all(warm_dir);
    double speedup = seq_seconds / sharded_seconds;
    double cpi_drift =
        std::abs(sharded.stats.cpi() - seq.cpi()) / seq.cpi();
    bool counters_exact =
        sharded.stats.instructions == seq.instructions &&
        sharded.stats.condBranches == seq.condBranches &&
        sharded.stats.l1dAccesses == seq.l1dAccesses &&
        sharded.stats.trivialOps == seq.trivialOps;

    // Historical field names under the versioned yasim-report schema.
    JsonReport report("perf-gate-ooo");
    report.setNumber("ooo_detailed_insts_per_sec", ooo_ips);
    report.setCount("sharded_shards", opts.shards);
    report.setCount("sharded_warmup_insts", opts.warmupInsts);
    report.setCount("workers", parallelWorkers());
    report.setNumber("seq_wall_seconds", seq_seconds);
    report.setNumber("sharded_wall_seconds", sharded_seconds);
    report.setNumber("sharded_speedup", speedup);
    report.setNumber("sharded_cpi_drift", cpi_drift);
    report.setBool("counters_exact", counters_exact);
    report.setBool("shards1_bit_identical", single_identical);
    report.setBool("replay_live_cycles_match", replay_live_match);
    writeReportFile(report, path);

    std::printf("OoO detailed replay: %.2fM inst/s\n", ooo_ips / 1e6);
    std::printf("sharded reference (%u shards, %u workers): %.3fs vs "
                "%.3fs sequential (%.2fx), CPI drift %.4f%%\n",
                opts.shards, parallelWorkers(), sharded_seconds,
                seq_seconds, speedup, cpi_drift * 100.0);
    std::printf("wrote %s\n", path);

    // Exit status gates correctness only; CI asserts the speedup.
    if (!replay_live_match) {
        std::fprintf(stderr, "microbench: replay diverged from live\n");
        return 1;
    }
    if (!single_identical) {
        std::fprintf(stderr,
                     "microbench: --shards 1 not bit-identical\n");
        return 1;
    }
    if (!counters_exact) {
        std::fprintf(stderr,
                     "microbench: sharded counters not exact\n");
        return 1;
    }
    if (cpi_drift > 0.005) {
        std::fprintf(stderr, "microbench: sharded CPI drift %.4f%%\n",
                     cpi_drift * 100.0);
        return 1;
    }
    return 0;
}

/**
 * The live-point sampled-simulation gate behind
 * `microbench --json-sampling [path]`.
 *
 * Runs the same SMARTS experiment twice on the gzip reference:
 * `--no-livepoints` (the serial in-memory grid loop, best of 3) and
 * with a persisted live-point library (one untimed pass builds and
 * persists every point, then best of 3 steady-state passes load them
 * and fan the measurement units across the worker pool). Cross-checks
 * the exactness contract — CPI, metrics, detailed counters, and the
 * weighted basic-block profile byte-identical between the two modes —
 * and reports the parallel speedup plus the on-disk bytes per point.
 * Exit status gates the bit-identity only; CI asserts the speedup and
 * the byte budget (the former is a property of the machine).
 */
int
runSamplingGate(const char *path)
{
    SuiteConfig suite;
    suite.referenceInstructions = 8'000'000;
    DirectService service;
    TechniqueContext base =
        TechniqueContext::make("gzip", suite, service);
    SimConfig cfg = architecturalConfig(2);
    Smarts smarts(10000, 2000, 0.997, 0.03, 50);

    // Serial baseline: the in-memory grid loop, re-warming the whole
    // prefix functionally on every run (what --no-livepoints buys).
    TechniqueContext seq_ctx = base;
    seq_ctx.livepoints.enabled = false;
    double seq_seconds = 1e30;
    TechniqueResult seq;
    for (int pass = 0; pass < 3; ++pass) {
        auto start = std::chrono::steady_clock::now();
        seq = smarts.run(seq_ctx, cfg);
        seq_seconds = std::min(seq_seconds, secondsSince(start));
    }

    // Live-point fan-out, steady state: pass 0 builds and persists the
    // library (untimed — a one-off cost the cache amortizes across the
    // configuration sweep), later passes load points and measure in
    // parallel — the behaviour a cache-dir-configured engine sees on
    // every rerun.
    namespace fs = std::filesystem;
    fs::path lp_dir = fs::temp_directory_path() / "yasim_sampling_gate";
    fs::remove_all(lp_dir);
    TechniqueContext par_ctx = base;
    par_ctx.livepoints.enabled = true;
    par_ctx.livepoints.dir = lp_dir.string();
    TechniqueResult par = smarts.run(par_ctx, cfg);
    double par_seconds = 1e30;
    for (int pass = 0; pass < 3; ++pass) {
        auto start = std::chrono::steady_clock::now();
        par = smarts.run(par_ctx, cfg);
        par_seconds = std::min(par_seconds, secondsSince(start));
    }

    // On-disk footprint: every persisted measurement-unit point
    // (lp-*.lvpt), compressed frame included.
    uint64_t point_bytes = 0, point_count = 0;
    for (const auto &entry : fs::directory_iterator(lp_dir)) {
        if (entry.path().filename().string().rfind("lp-", 0) != 0)
            continue;
        point_bytes += entry.file_size();
        ++point_count;
    }
    fs::remove_all(lp_dir);
    double bytes_per_point =
        point_count ? static_cast<double>(point_bytes) /
                          static_cast<double>(point_count)
                    : 0.0;
    double speedup = seq_seconds / par_seconds;

    // The exactness contract: the fan-out must be byte-identical to
    // the serial loop, not merely statistically close.
    bool cpi_identical =
        std::memcmp(&par.cpi, &seq.cpi, sizeof(double)) == 0;
    bool metrics_identical = par.metrics == seq.metrics;
    bool counters_exact =
        par.detailed.cycles == seq.detailed.cycles &&
        par.detailed.instructions == seq.detailed.instructions &&
        par.detailed.l1iAccesses == seq.detailed.l1iAccesses &&
        par.detailed.l1dMisses == seq.detailed.l1dMisses &&
        par.detailed.condMispredicts == seq.detailed.condMispredicts &&
        par.detailed.memStallCycles == seq.detailed.memStallCycles &&
        par.detailedInsts == seq.detailedInsts;
    bool profile_identical = par.bbef == seq.bbef && par.bbv == seq.bbv;

    JsonReport report("perf-gate-sampling");
    report.setCount("workers", parallelWorkers());
    report.setCount("livepoint_count", point_count);
    report.setNumber("livepoint_bytes_per_point", bytes_per_point);
    report.setNumber("seq_smarts_wall_seconds", seq_seconds);
    report.setNumber("parallel_smarts_wall_seconds", par_seconds);
    report.setNumber("parallel_smarts_speedup", speedup);
    report.setNumber("smarts_cpi", seq.cpi);
    report.setCount("smarts_detailed_insts", seq.detailedInsts);
    report.setBool("smarts_cpi_identical", cpi_identical);
    report.setBool("smarts_metrics_identical", metrics_identical);
    report.setBool("smarts_counters_exact", counters_exact);
    report.setBool("smarts_profile_identical", profile_identical);
    writeReportFile(report, path);

    std::printf("SMARTS (%u workers): serial %.3fs, live-points %.3fs "
                "(%.2fx), CPI %s\n",
                parallelWorkers(), seq_seconds, par_seconds, speedup,
                cpi_identical ? "identical" : "MISMATCH");
    std::printf("live-point library: %llu points, %.0f bytes/point on "
                "disk\n",
                static_cast<unsigned long long>(point_count),
                bytes_per_point);
    std::printf("wrote %s\n", path);

    // Exit status gates correctness only; CI asserts the speedup.
    if (!cpi_identical || !metrics_identical) {
        std::fprintf(stderr,
                     "microbench: live-point SMARTS estimate diverged "
                     "from the serial loop\n");
        return 1;
    }
    if (!counters_exact) {
        std::fprintf(stderr,
                     "microbench: live-point SMARTS counters not "
                     "exact\n");
        return 1;
    }
    if (!profile_identical) {
        std::fprintf(stderr,
                     "microbench: live-point SMARTS profile diverged\n");
        return 1;
    }
    if (point_count == 0) {
        std::fprintf(stderr,
                     "microbench: no live-points were persisted\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json-sampling") == 0) {
            return runSamplingGate(i + 1 < argc ? argv[i + 1]
                                                : "BENCH_sampling.json");
        }
        if (std::strcmp(argv[i], "--json-ooo") == 0) {
            return runOooGate(i + 1 < argc ? argv[i + 1]
                                           : "BENCH_ooo.json");
        }
        if (std::strcmp(argv[i], "--json") == 0) {
            return runJsonGate(i + 1 < argc ? argv[i + 1]
                                            : "BENCH_microbench.json");
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
