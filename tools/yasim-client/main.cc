/**
 * @file
 * yasim-client — the CLI tenant of a yasimd (docs/service.md).
 *
 * Builds the one canonical ExperimentRequest from its flags and
 * exchanges it with a daemon over the framed service protocol:
 *
 *     yasim-client --socket /tmp/yasimd.sock ping
 *     yasim-client --socket /tmp/yasimd.sock submit --bench gzip \
 *         --technique "SimPoint/multiple 10M" --config arch:2 \
 *         --deadline-ms 5000
 *     yasim-client --socket /tmp/yasimd.sock cancel --target 7
 *     yasim-client --port 7443 stats
 *     yasim-client --socket /tmp/yasimd.sock shutdown
 *
 * `submit` prints the result in the cache's own text serialization
 * (key line, IEEE-754 doubles, strict end marker); `stats` prints the
 * daemon's merged JsonReport; `cancel` asks the daemon to cancel an
 * earlier submit on the *same connection* — useful from scripts that
 * pipeline requests, a no-op (exit 3) over this one-shot CLI's fresh
 * connection unless the daemon still queues the id. Exit status: 0 on
 * Ok, 3 when the daemon answered Error/Rejected, 4 when it answered
 * Cancelled/DeadlineExceeded, 1 when it was unreachable.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "service/client.hh"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] <submit|cancel|ping|stats|shutdown>\n"
        "\n"
        "connection options:\n"
        "  --socket PATH      daemon's Unix-domain socket\n"
        "  --port N           daemon's loopback TCP port\n"
        "  --reconnects N     reconnect attempts before giving up "
        "(default 32)\n"
        "\n"
        "submit options:\n"
        "  --bench NAME       suite benchmark to run (required)\n"
        "  --technique SEL    \"reference\" or \"<family>/<permutation>\" "
        "(default reference)\n"
        "  --config SEL       arch:N | envelope:N | pb:N "
        "(default arch:1)\n"
        "  --priority N       scheduling priority, lower runs sooner "
        "(default 1)\n"
        "  --id N             correlation id (default 1)\n"
        "  --ref-insts N      suite reference length (default 2000000)\n"
        "  --seed N           suite data seed (default 12345)\n"
        "  --deadline-ms N    answer DeadlineExceeded if not done in N "
        "ms (default: none)\n"
        "\n"
        "cancel options:\n"
        "  --target N         correlation id of the submit to cancel "
        "(required)\n",
        argv0);
    std::exit(2);
}

const char *
nextValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "yasim-client: option '%s' needs a value\n",
                     argv[i]);
        std::exit(2);
    }
    return argv[++i];
}

uint64_t
parseCount(const char *flag, const char *text)
{
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr,
                     "yasim-client: %s wants a number, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace yasim;

    ClientOptions client_opts;
    ExperimentRequest request;
    request.id = 1;
    std::string command;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            client_opts.socketPath = nextValue(argc, argv, i);
        } else if (arg == "--port") {
            client_opts.tcpPort =
                int(parseCount("--port", nextValue(argc, argv, i)));
        } else if (arg == "--reconnects") {
            client_opts.maxReconnects = uint32_t(
                parseCount("--reconnects", nextValue(argc, argv, i)));
        } else if (arg == "--bench") {
            request.benchmark = nextValue(argc, argv, i);
        } else if (arg == "--technique") {
            request.technique = nextValue(argc, argv, i);
        } else if (arg == "--config") {
            request.config = nextValue(argc, argv, i);
        } else if (arg == "--priority") {
            request.priority = uint32_t(
                parseCount("--priority", nextValue(argc, argv, i)));
        } else if (arg == "--id") {
            request.id = parseCount("--id", nextValue(argc, argv, i));
        } else if (arg == "--ref-insts") {
            request.suite.referenceInstructions =
                parseCount("--ref-insts", nextValue(argc, argv, i));
        } else if (arg == "--seed") {
            request.suite.seed =
                parseCount("--seed", nextValue(argc, argv, i));
        } else if (arg == "--deadline-ms") {
            request.deadlineMs =
                parseCount("--deadline-ms", nextValue(argc, argv, i));
        } else if (arg == "--target") {
            request.target =
                parseCount("--target", nextValue(argc, argv, i));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "yasim-client: unknown option '%s'\n",
                         argv[i]);
            usage(argv[0]);
        } else if (command.empty()) {
            command = arg;
        } else {
            std::fprintf(stderr, "yasim-client: extra argument '%s'\n",
                         argv[i]);
            usage(argv[0]);
        }
    }

    if (command == "submit") {
        request.kind = RequestKind::Run;
        if (request.benchmark.empty()) {
            std::fprintf(stderr, "yasim-client: submit needs --bench\n");
            usage(argv[0]);
        }
    } else if (command == "cancel") {
        request.kind = RequestKind::Cancel;
        if (request.target == 0) {
            std::fprintf(stderr, "yasim-client: cancel needs --target\n");
            usage(argv[0]);
        }
    } else if (command == "ping") {
        request.kind = RequestKind::Ping;
    } else if (command == "stats") {
        request.kind = RequestKind::Stats;
    } else if (command == "shutdown") {
        request.kind = RequestKind::Shutdown;
    } else {
        std::fprintf(stderr, "yasim-client: unknown command '%s'\n",
                     command.c_str());
        usage(argv[0]);
    }
    if (client_opts.socketPath.empty() && client_opts.tcpPort < 0) {
        std::fprintf(stderr,
                     "yasim-client: need a daemon (--socket or "
                     "--port)\n");
        usage(argv[0]);
    }

    ServiceClient client(client_opts);
    ExperimentResponse response;
    std::string error;
    if (!client.call(request, response, error)) {
        std::fprintf(stderr, "yasim-client: %s\n", error.c_str());
        return 1;
    }

    if (response.status != ResponseStatus::Ok) {
        const char *what = "error";
        int status = 3;
        switch (response.status) {
          case ResponseStatus::Rejected:
            what = "rejected";
            break;
          case ResponseStatus::Cancelled:
            what = "cancelled";
            status = 4;
            break;
          case ResponseStatus::DeadlineExceeded:
            what = "deadline exceeded";
            status = 4;
            break;
          default:
            break;
        }
        std::fprintf(stderr, "yasim-client: daemon answered %s: %s\n",
                     what, response.error.c_str());
        return status;
    }

    switch (request.kind) {
      case RequestKind::Run:
        writeResult(std::cout, response.key, response.result);
        break;
      case RequestKind::Stats:
        std::cout << response.report << "\n";
        break;
      case RequestKind::Ping:
        std::cout << "pong\n";
        break;
      case RequestKind::Shutdown:
        std::cout << "draining\n";
        break;
      case RequestKind::Cancel:
        std::cout << "cancelled\n";
        break;
    }
    return 0;
}
