/**
 * @file
 * yasimd — the multi-tenant experiment service daemon (docs/service.md).
 *
 * Binds the configured Unix and/or loopback-TCP listener, builds one
 * shared ExperimentEngine from the standard engine flags, and serves
 * the framed protocol of src/service until drained. SIGTERM and SIGINT
 * begin a graceful drain: every accepted job finishes, every response
 * flushes, then the process exits 0 — so "kill -TERM $(pidof yasimd)"
 * never loses an accepted job (the CI service job asserts this).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "engine/options.hh"
#include "service/daemon.hh"
#include "support/failpoint.hh"

namespace {

yasim::ServiceDaemon *activeDaemon = nullptr;

/** Async-signal-safe: requestDrain is a flag store + pipe write. */
void
onTerminate(int)
{
    if (activeDaemon)
        activeDaemon->requestDrain();
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options]\n"
                 "\n"
                 "service options:\n"
                 "  --socket PATH        listen on a Unix-domain socket\n"
                 "  --port N             listen on loopback TCP port N "
                 "(0 = ephemeral)\n"
                 "  --service-workers N  executor threads (default 2)\n"
                 "  --max-queue N        job-queue admission bound "
                 "(default 256)\n"
                 "  --client-quota N     per-connection outstanding-job "
                 "bound (default 64)\n"
                 "\n"
                 "engine options:\n%s",
                 argv0, yasim::engineCliUsage());
    std::exit(2);
}

const char *
nextValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "yasimd: option '%s' needs a value\n",
                     argv[i]);
        std::exit(2);
    }
    return argv[++i];
}

uint64_t
parseCount(const char *flag, const char *text)
{
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "yasimd: %s wants a number, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace yasim;

    DaemonOptions daemon_opts;
    EngineCliOptions engine_opts;

    for (int i = 1; i < argc; ++i) {
        if (parseEngineCliOption(engine_opts, argc, argv, i))
            continue;
        const std::string arg = argv[i];
        if (arg == "--socket") {
            daemon_opts.socketPath = nextValue(argc, argv, i);
        } else if (arg == "--port") {
            daemon_opts.tcpPort =
                int(parseCount("--port", nextValue(argc, argv, i)));
        } else if (arg == "--service-workers") {
            daemon_opts.workers = unsigned(parseCount(
                "--service-workers", nextValue(argc, argv, i)));
        } else if (arg == "--max-queue") {
            daemon_opts.maxQueue = size_t(
                parseCount("--max-queue", nextValue(argc, argv, i)));
        } else if (arg == "--client-quota") {
            daemon_opts.clientQuota = uint32_t(parseCount(
                "--client-quota", nextValue(argc, argv, i)));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "yasimd: unknown option '%s'\n",
                         argv[i]);
            usage(argv[0]);
        }
    }
    if (daemon_opts.socketPath.empty() && daemon_opts.tcpPort < 0) {
        std::fprintf(stderr,
                     "yasimd: need a listener (--socket or --port)\n");
        usage(argv[0]);
    }
    if (daemon_opts.workers == 0) {
        std::fprintf(stderr, "yasimd: --service-workers must be > 0\n");
        return 2;
    }

    // Engine flags configure failpoints when given; otherwise honor the
    // CI's YASIM_FAILPOINTS environment.
    applyEngineRuntime(engine_opts);
    if (engine_opts.failpoints.empty())
        failpoint::configureFromEnv();

    ExperimentEngine engine(engineOptionsFrom(engine_opts));
    ServiceDaemon daemon(daemon_opts, engine);

    activeDaemon = &daemon;
    struct sigaction action{};
    action.sa_handler = onTerminate;
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
    signal(SIGPIPE, SIG_IGN);

    std::string error;
    if (!daemon.start(error)) {
        std::fprintf(stderr, "yasimd: %s\n", error.c_str());
        return 1;
    }
    if (!daemon_opts.socketPath.empty())
        std::fprintf(stderr, "yasimd: listening on %s\n",
                     daemon_opts.socketPath.c_str());
    if (daemon.tcpPort() >= 0)
        std::fprintf(stderr, "yasimd: listening on 127.0.0.1:%d\n",
                     daemon.tcpPort());

    daemon.wait();
    activeDaemon = nullptr;

    if (engine_opts.engineStats)
        engine.printStats(std::cerr);
    if (!engine_opts.engineStatsJson.empty())
        writeReportFile(daemon.statsReport(),
                        engine_opts.engineStatsJson);

    const DaemonCounters counters = daemon.counters();
    std::fprintf(stderr,
                 "yasimd: drained cleanly (%llu jobs executed, "
                 "%llu responses dropped)\n",
                 static_cast<unsigned long long>(counters.jobsExecuted),
                 static_cast<unsigned long long>(
                     counters.responsesDropped));
    return 0;
}
