#include "source_model.hh"

#include <algorithm>
#include <cctype>

namespace yasim::lint {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
normalizePath(const std::string &path)
{
    std::string out = path;
    std::replace(out.begin(), out.end(), '\\', '/');
    return out;
}

bool
pathEndsWith(const std::string &path, const std::string &suffix)
{
    if (path.size() < suffix.size())
        return false;
    if (path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) != 0) {
        return false;
    }
    // Require a component boundary: "x/bench/foo.cc" matches
    // "bench/foo.cc", "prebench/foo.cc" does not.
    size_t at = path.size() - suffix.size();
    return at == 0 || path[at - 1] == '/';
}

MaskedSource
maskSource(const std::string &text)
{
    MaskedSource out;
    out.code.assign(text.size(), ' ');
    enum class State {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString
    };
    State state = State::Code;
    std::string rawDelim; // the )delim" terminator of a raw string
    int line = 1;
    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            out.code[i] = '\n';
            if (state == State::LineComment)
                state = State::Code;
            ++line;
            continue;
        }
        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                ++i;
            } else if (c == '"') {
                // R"delim( ... )delim" — check for a raw prefix.
                bool raw = i > 0 && text[i - 1] == 'R' &&
                           (i < 2 || !isIdentChar(text[i - 2]));
                if (raw) {
                    size_t open = text.find('(', i + 1);
                    if (open != std::string::npos) {
                        rawDelim.assign(1, ')');
                        rawDelim.append(text, i + 1, open - i - 1);
                        rawDelim.push_back('"');
                        state = State::RawString;
                        i = open;
                        break;
                    }
                }
                state = State::String;
            } else if (c == '\'') {
                // Digit separators (1'000) are not char literals.
                bool separator = i > 0 && isIdentChar(text[i - 1]) &&
                                 isIdentChar(next);
                if (!separator)
                    state = State::Char;
            } else {
                out.code[i] = c;
                if (!std::isspace(static_cast<unsigned char>(c)))
                    out.lineHasCode[line] = true;
            }
            break;
        case State::LineComment:
            out.comments[line].push_back(c);
            break;
        case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                ++i;
            } else {
                out.comments[line].push_back(c);
            }
            break;
        case State::String:
            if (c == '\\')
                ++i;
            else if (c == '"')
                state = State::Code;
            break;
        case State::Char:
            if (c == '\\')
                ++i;
            else if (c == '\'')
                state = State::Code;
            break;
        case State::RawString:
            if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
                i += rawDelim.size() - 1;
                state = State::Code;
            }
            break;
        }
    }
    return out;
}

std::vector<Token>
tokenize(const std::string &code)
{
    std::vector<Token> tokens;
    int line = 1;
    for (size_t i = 0; i < code.size(); ++i) {
        char c = code[i];
        if (c == '\n') {
            ++line;
            continue;
        }
        if (!isIdentChar(c) ||
            std::isdigit(static_cast<unsigned char>(c))) {
            continue;
        }
        size_t start = i;
        while (i < code.size() && isIdentChar(code[i]))
            ++i;
        tokens.push_back({code.substr(start, i - start), start, line});
        --i; // the for loop advances past the last ident char
    }
    return tokens;
}

char
nextSignificant(const std::string &code, size_t from)
{
    for (size_t i = from; i < code.size(); ++i) {
        if (!std::isspace(static_cast<unsigned char>(code[i])))
            return code[i];
    }
    return '\0';
}

size_t
nextSignificantPos(const std::string &code, size_t from)
{
    for (size_t i = from; i < code.size(); ++i) {
        if (!std::isspace(static_cast<unsigned char>(code[i])))
            return i;
    }
    return std::string::npos;
}

size_t
prevSignificantPos(const std::string &code, size_t at)
{
    for (size_t i = at; i > 0; --i) {
        if (!std::isspace(static_cast<unsigned char>(code[i - 1])))
            return i - 1;
    }
    return std::string::npos;
}

bool
qualifiedByStd(const std::string &code, size_t tokenStart)
{
    size_t i = tokenStart;
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(code[i - 1])))
        --i;
    if (i < 2 || code[i - 1] != ':' || code[i - 2] != ':')
        return false;
    i -= 2;
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(code[i - 1])))
        --i;
    size_t end = i;
    while (i > 0 && isIdentChar(code[i - 1]))
        --i;
    return code.substr(i, end - i) == "std";
}

bool
isMemberAccess(const std::string &code, size_t tokenStart)
{
    size_t i = tokenStart;
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(code[i - 1])))
        --i;
    if (i > 0 && code[i - 1] == '.')
        return true;
    return i > 1 && code[i - 1] == '>' && code[i - 2] == '-';
}

bool
qualifiedByOtherScope(const std::string &code, size_t tokenStart)
{
    size_t i = tokenStart;
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(code[i - 1])))
        --i;
    if (i < 2 || code[i - 1] != ':' || code[i - 2] != ':')
        return false;
    return !qualifiedByStd(code, tokenStart);
}

namespace {

/** Parse "rule, rule" out of an allow(...) argument list. */
void
parseRuleList(const std::string &args, std::set<std::string> &out)
{
    std::string current;
    for (char c : args) {
        if (isIdentChar(c) || c == '*') {
            current.push_back(c);
        } else if (!current.empty()) {
            out.insert(current);
            current.clear();
        }
    }
    if (!current.empty())
        out.insert(current);
}

/**
 * The line a standalone-comment directive applies to: the comment's
 * own line when it carries code, else the next line with code.
 */
int
targetLine(const MaskedSource &masked, int line)
{
    auto hasCode = masked.lineHasCode.find(line);
    if (hasCode != masked.lineHasCode.end() && hasCode->second)
        return line;
    auto next = masked.lineHasCode.upper_bound(line);
    if (next != masked.lineHasCode.end())
        return next->first;
    return line;
}

} // namespace

Suppressions
parseSuppressions(const MaskedSource &masked)
{
    Suppressions sup;
    for (const auto &[line, text] : masked.comments) {
        size_t at = text.find("yasim-lint:");
        if (at == std::string::npos)
            continue;
        std::string directive = text.substr(at + 11);

        size_t fileAt = directive.find("allow-file(");
        if (fileAt != std::string::npos) {
            size_t close = directive.find(')', fileAt);
            if (close != std::string::npos) {
                parseRuleList(
                    directive.substr(fileAt + 11, close - fileAt - 11),
                    sup.fileRules);
            }
            continue;
        }

        // guarded(<mutex>): the named mutex protects the shared state
        // declared on this line — C2's justified-suppression form.
        size_t guardAt = directive.find("guarded(");
        if (guardAt != std::string::npos) {
            size_t close = directive.find(')', guardAt);
            std::string mutex_name =
                close == std::string::npos
                    ? std::string()
                    : directive.substr(guardAt + 8, close - guardAt - 8);
            if (!mutex_name.empty()) {
                int target = targetLine(masked, line);
                sup.lineRules[target].insert("C2");
                sup.lineRules[line].insert("C2");
            }
            continue;
        }

        // keep: this include is intentional (H1).
        if (directive.find("keep") != std::string::npos &&
            directive.find("keep") < 4) {
            sup.lineRules[line].insert("H1");
            continue;
        }

        // key-exempt(result, warm: reason) — the reason is mandatory;
        // an exemption without one is ignored so the finding persists.
        size_t exemptAt = directive.find("key-exempt(");
        if (exemptAt != std::string::npos) {
            size_t close = directive.find(')', exemptAt);
            if (close != std::string::npos) {
                std::string args = directive.substr(
                    exemptAt + 11, close - exemptAt - 11);
                size_t colon = args.find(':');
                if (colon != std::string::npos &&
                    args.find_first_not_of(" \t", colon + 1) !=
                        std::string::npos) {
                    std::set<std::string> keys;
                    parseRuleList(args.substr(0, colon), keys);
                    int target = targetLine(masked, line);
                    sup.keyExempt[target].insert(keys.begin(),
                                                 keys.end());
                    sup.keyExempt[line].insert(keys.begin(),
                                               keys.end());
                }
            }
            continue;
        }

        size_t lineAt = directive.find("allow(");
        if (lineAt == std::string::npos)
            continue;
        size_t close = directive.find(')', lineAt);
        if (close == std::string::npos)
            continue;
        std::set<std::string> rules;
        parseRuleList(directive.substr(lineAt + 6, close - lineAt - 6),
                      rules);
        // A comment on its own line covers the next line with code;
        // a trailing comment covers its own line. Also cover the
        // comment's own line so a directive between `for (...)`
        // header lines still applies.
        sup.lineRules[targetLine(masked, line)].insert(rules.begin(),
                                                       rules.end());
        sup.lineRules[line].insert(rules.begin(), rules.end());
    }
    return sup;
}

std::vector<FunctionBody>
findFunctionBodies(const std::string &code,
                   const std::vector<Token> &tokens,
                   const std::set<std::string> &names)
{
    std::vector<FunctionBody> bodies;
    for (const Token &tok : tokens) {
        if (!names.count(tok.text))
            continue;
        size_t after = tok.offset + tok.text.size();
        size_t open = nextSignificantPos(code, after);
        if (open == std::string::npos || code[open] != '(')
            continue;
        // Balanced parameter list.
        int depth = 0;
        size_t i = open;
        for (; i < code.size(); ++i) {
            if (code[i] == '(')
                ++depth;
            else if (code[i] == ')' && --depth == 0)
                break;
        }
        if (i >= code.size())
            continue;
        // Skip cv/ref/noexcept/override/trailing-return tokens up to
        // '{'; a ';' or ',' or '=' first means declaration, not
        // definition (or a function pointer / default argument).
        size_t scan = i + 1;
        size_t bodyOpen = std::string::npos;
        while (scan < code.size()) {
            size_t pos = nextSignificantPos(code, scan);
            if (pos == std::string::npos)
                break;
            char c = code[pos];
            if (c == '{') {
                bodyOpen = pos;
                break;
            }
            if (c == ';' || c == ',' || c == '=' || c == ')')
                break;
            if (isIdentChar(c)) {
                // const / noexcept / override / -> Type
                size_t end = pos;
                while (end < code.size() && isIdentChar(code[end]))
                    ++end;
                scan = end;
                continue;
            }
            if (c == '-' || c == '>' || c == ':' || c == '<' ||
                c == '*' || c == '&' || c == '(') {
                // trailing return types and their template args
                scan = pos + 1;
                continue;
            }
            break;
        }
        if (bodyOpen == std::string::npos)
            continue;
        // Balanced body braces.
        depth = 0;
        size_t j = bodyOpen;
        for (; j < code.size(); ++j) {
            if (code[j] == '{')
                ++depth;
            else if (code[j] == '}' && --depth == 0)
                break;
        }
        if (j >= code.size())
            continue;
        bodies.push_back({tok.text, bodyOpen, j, tok.line});
    }
    return bodies;
}

uint64_t
fingerprintRange(const std::string &code, size_t begin, size_t end)
{
    uint64_t h = 1469598103934665603ull; // FNV offset basis
    for (size_t i = begin; i < end && i < code.size(); ++i) {
        char c = code[i];
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull; // FNV prime
    }
    return h;
}

} // namespace yasim::lint
