# Asserts the yasim-analyze exit-code contract:
#   0  clean run
#   1  findings reported
#   2  usage or I/O error
# Driven by the lint_exit_codes ctest with -DLINT=<binary> -DREPO=<src>.

function(expect_exit code)
    list(SUBLIST ARGV 1 -1 cmd)
    execute_process(COMMAND ${cmd} RESULT_VARIABLE got
                    OUTPUT_VARIABLE out ERROR_VARIABLE err)
    if(NOT got EQUAL ${code})
        message(FATAL_ERROR
                "expected exit ${code}, got ${got} from: ${cmd}\n"
                "stdout: ${out}\nstderr: ${err}")
    endif()
endfunction()

# 0: the repository itself is clean.
expect_exit(0 ${LINT} --root ${REPO} src bench tests)

# 1: a seeded violation produces findings (fixture trees are excluded
# from the clean run but can be pointed at directly).
expect_exit(1 ${LINT} --root ${REPO}/tests/lint_fixtures --serial
            --no-builtin-allowlist --rules D1 src/sim/entropy_sources.cc)

# 2: usage errors...
expect_exit(2 ${LINT} --definitely-not-an-option)
expect_exit(2 ${LINT} --rules)

# ...and I/O errors (an unreadable input is an operational failure,
# not a finding).
expect_exit(2 ${LINT} --root ${REPO} does/not/exist.cc)
